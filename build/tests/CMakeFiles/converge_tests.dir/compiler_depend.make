# Empty compiler generated dependencies file for converge_tests.
# This may be replaced when dependencies are built.
