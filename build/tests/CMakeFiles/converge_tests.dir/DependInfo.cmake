
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/call_integration_test.cc" "tests/CMakeFiles/converge_tests.dir/call_integration_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/call_integration_test.cc.o.d"
  "/root/repo/tests/cc_test.cc" "tests/CMakeFiles/converge_tests.dir/cc_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/cc_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/converge_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/ecf_scheduler_test.cc" "tests/CMakeFiles/converge_tests.dir/ecf_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/ecf_scheduler_test.cc.o.d"
  "/root/repo/tests/event_loop_test.cc" "tests/CMakeFiles/converge_tests.dir/event_loop_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/event_loop_test.cc.o.d"
  "/root/repo/tests/fec_test.cc" "tests/CMakeFiles/converge_tests.dir/fec_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/fec_test.cc.o.d"
  "/root/repo/tests/feedback_ablation_test.cc" "tests/CMakeFiles/converge_tests.dir/feedback_ablation_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/feedback_ablation_test.cc.o.d"
  "/root/repo/tests/frame_buffer_test.cc" "tests/CMakeFiles/converge_tests.dir/frame_buffer_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/frame_buffer_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/converge_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/link_test.cc" "tests/CMakeFiles/converge_tests.dir/link_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/link_test.cc.o.d"
  "/root/repo/tests/loss_model_test.cc" "tests/CMakeFiles/converge_tests.dir/loss_model_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/loss_model_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/converge_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/nack_test.cc" "tests/CMakeFiles/converge_tests.dir/nack_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/nack_test.cc.o.d"
  "/root/repo/tests/packet_buffer_test.cc" "tests/CMakeFiles/converge_tests.dir/packet_buffer_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/packet_buffer_test.cc.o.d"
  "/root/repo/tests/path_manager_test.cc" "tests/CMakeFiles/converge_tests.dir/path_manager_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/path_manager_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/converge_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/qoe_monitor_test.cc" "tests/CMakeFiles/converge_tests.dir/qoe_monitor_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/qoe_monitor_test.cc.o.d"
  "/root/repo/tests/receive_stream_test.cc" "tests/CMakeFiles/converge_tests.dir/receive_stream_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/receive_stream_test.cc.o.d"
  "/root/repo/tests/receiver_endpoint_test.cc" "tests/CMakeFiles/converge_tests.dir/receiver_endpoint_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/receiver_endpoint_test.cc.o.d"
  "/root/repo/tests/rtcp_test.cc" "tests/CMakeFiles/converge_tests.dir/rtcp_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/rtcp_test.cc.o.d"
  "/root/repo/tests/rtp_test.cc" "tests/CMakeFiles/converge_tests.dir/rtp_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/rtp_test.cc.o.d"
  "/root/repo/tests/scheduler_baselines_test.cc" "tests/CMakeFiles/converge_tests.dir/scheduler_baselines_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/scheduler_baselines_test.cc.o.d"
  "/root/repo/tests/sender_test.cc" "tests/CMakeFiles/converge_tests.dir/sender_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/sender_test.cc.o.d"
  "/root/repo/tests/signaling_test.cc" "tests/CMakeFiles/converge_tests.dir/signaling_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/signaling_test.cc.o.d"
  "/root/repo/tests/stats_json_test.cc" "tests/CMakeFiles/converge_tests.dir/stats_json_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/stats_json_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/converge_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/converge_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/video_aware_scheduler_test.cc" "tests/CMakeFiles/converge_tests.dir/video_aware_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/video_aware_scheduler_test.cc.o.d"
  "/root/repo/tests/video_test.cc" "tests/CMakeFiles/converge_tests.dir/video_test.cc.o" "gcc" "tests/CMakeFiles/converge_tests.dir/video_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/converge_session.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_receiver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_signaling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
