file(REMOVE_RECURSE
  "CMakeFiles/converge_video.dir/video/camera.cc.o"
  "CMakeFiles/converge_video.dir/video/camera.cc.o.d"
  "CMakeFiles/converge_video.dir/video/decoder.cc.o"
  "CMakeFiles/converge_video.dir/video/decoder.cc.o.d"
  "CMakeFiles/converge_video.dir/video/encoder.cc.o"
  "CMakeFiles/converge_video.dir/video/encoder.cc.o.d"
  "CMakeFiles/converge_video.dir/video/packetizer.cc.o"
  "CMakeFiles/converge_video.dir/video/packetizer.cc.o.d"
  "CMakeFiles/converge_video.dir/video/quality.cc.o"
  "CMakeFiles/converge_video.dir/video/quality.cc.o.d"
  "libconverge_video.a"
  "libconverge_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
