
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/camera.cc" "src/CMakeFiles/converge_video.dir/video/camera.cc.o" "gcc" "src/CMakeFiles/converge_video.dir/video/camera.cc.o.d"
  "/root/repo/src/video/decoder.cc" "src/CMakeFiles/converge_video.dir/video/decoder.cc.o" "gcc" "src/CMakeFiles/converge_video.dir/video/decoder.cc.o.d"
  "/root/repo/src/video/encoder.cc" "src/CMakeFiles/converge_video.dir/video/encoder.cc.o" "gcc" "src/CMakeFiles/converge_video.dir/video/encoder.cc.o.d"
  "/root/repo/src/video/packetizer.cc" "src/CMakeFiles/converge_video.dir/video/packetizer.cc.o" "gcc" "src/CMakeFiles/converge_video.dir/video/packetizer.cc.o.d"
  "/root/repo/src/video/quality.cc" "src/CMakeFiles/converge_video.dir/video/quality.cc.o" "gcc" "src/CMakeFiles/converge_video.dir/video/quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/converge_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
