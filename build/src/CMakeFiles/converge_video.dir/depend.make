# Empty dependencies file for converge_video.
# This may be replaced when dependencies are built.
