file(REMOVE_RECURSE
  "libconverge_video.a"
)
