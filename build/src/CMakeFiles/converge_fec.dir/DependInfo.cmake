
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/converge_fec_controller.cc" "src/CMakeFiles/converge_fec.dir/fec/converge_fec_controller.cc.o" "gcc" "src/CMakeFiles/converge_fec.dir/fec/converge_fec_controller.cc.o.d"
  "/root/repo/src/fec/fec_tables.cc" "src/CMakeFiles/converge_fec.dir/fec/fec_tables.cc.o" "gcc" "src/CMakeFiles/converge_fec.dir/fec/fec_tables.cc.o.d"
  "/root/repo/src/fec/webrtc_fec_controller.cc" "src/CMakeFiles/converge_fec.dir/fec/webrtc_fec_controller.cc.o" "gcc" "src/CMakeFiles/converge_fec.dir/fec/webrtc_fec_controller.cc.o.d"
  "/root/repo/src/fec/xor_fec.cc" "src/CMakeFiles/converge_fec.dir/fec/xor_fec.cc.o" "gcc" "src/CMakeFiles/converge_fec.dir/fec/xor_fec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/converge_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
