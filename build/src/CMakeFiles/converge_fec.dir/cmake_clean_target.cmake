file(REMOVE_RECURSE
  "libconverge_fec.a"
)
