file(REMOVE_RECURSE
  "CMakeFiles/converge_fec.dir/fec/converge_fec_controller.cc.o"
  "CMakeFiles/converge_fec.dir/fec/converge_fec_controller.cc.o.d"
  "CMakeFiles/converge_fec.dir/fec/fec_tables.cc.o"
  "CMakeFiles/converge_fec.dir/fec/fec_tables.cc.o.d"
  "CMakeFiles/converge_fec.dir/fec/webrtc_fec_controller.cc.o"
  "CMakeFiles/converge_fec.dir/fec/webrtc_fec_controller.cc.o.d"
  "CMakeFiles/converge_fec.dir/fec/xor_fec.cc.o"
  "CMakeFiles/converge_fec.dir/fec/xor_fec.cc.o.d"
  "libconverge_fec.a"
  "libconverge_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
