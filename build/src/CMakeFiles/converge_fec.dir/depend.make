# Empty dependencies file for converge_fec.
# This may be replaced when dependencies are built.
