# Empty dependencies file for converge_cc.
# This may be replaced when dependencies are built.
