file(REMOVE_RECURSE
  "CMakeFiles/converge_cc.dir/cc/aimd.cc.o"
  "CMakeFiles/converge_cc.dir/cc/aimd.cc.o.d"
  "CMakeFiles/converge_cc.dir/cc/gcc.cc.o"
  "CMakeFiles/converge_cc.dir/cc/gcc.cc.o.d"
  "CMakeFiles/converge_cc.dir/cc/loss_based.cc.o"
  "CMakeFiles/converge_cc.dir/cc/loss_based.cc.o.d"
  "CMakeFiles/converge_cc.dir/cc/pacer.cc.o"
  "CMakeFiles/converge_cc.dir/cc/pacer.cc.o.d"
  "CMakeFiles/converge_cc.dir/cc/trendline.cc.o"
  "CMakeFiles/converge_cc.dir/cc/trendline.cc.o.d"
  "libconverge_cc.a"
  "libconverge_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
