file(REMOVE_RECURSE
  "libconverge_cc.a"
)
