
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/aimd.cc" "src/CMakeFiles/converge_cc.dir/cc/aimd.cc.o" "gcc" "src/CMakeFiles/converge_cc.dir/cc/aimd.cc.o.d"
  "/root/repo/src/cc/gcc.cc" "src/CMakeFiles/converge_cc.dir/cc/gcc.cc.o" "gcc" "src/CMakeFiles/converge_cc.dir/cc/gcc.cc.o.d"
  "/root/repo/src/cc/loss_based.cc" "src/CMakeFiles/converge_cc.dir/cc/loss_based.cc.o" "gcc" "src/CMakeFiles/converge_cc.dir/cc/loss_based.cc.o.d"
  "/root/repo/src/cc/pacer.cc" "src/CMakeFiles/converge_cc.dir/cc/pacer.cc.o" "gcc" "src/CMakeFiles/converge_cc.dir/cc/pacer.cc.o.d"
  "/root/repo/src/cc/trendline.cc" "src/CMakeFiles/converge_cc.dir/cc/trendline.cc.o" "gcc" "src/CMakeFiles/converge_cc.dir/cc/trendline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/converge_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
