file(REMOVE_RECURSE
  "CMakeFiles/converge_core.dir/core/path_manager.cc.o"
  "CMakeFiles/converge_core.dir/core/path_manager.cc.o.d"
  "CMakeFiles/converge_core.dir/core/video_aware_scheduler.cc.o"
  "CMakeFiles/converge_core.dir/core/video_aware_scheduler.cc.o.d"
  "libconverge_core.a"
  "libconverge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
