# Empty compiler generated dependencies file for converge_core.
# This may be replaced when dependencies are built.
