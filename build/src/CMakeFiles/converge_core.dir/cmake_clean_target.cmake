file(REMOVE_RECURSE
  "libconverge_core.a"
)
