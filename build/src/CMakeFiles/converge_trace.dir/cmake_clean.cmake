file(REMOVE_RECURSE
  "CMakeFiles/converge_trace.dir/trace/generators.cc.o"
  "CMakeFiles/converge_trace.dir/trace/generators.cc.o.d"
  "libconverge_trace.a"
  "libconverge_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
