file(REMOVE_RECURSE
  "libconverge_trace.a"
)
