# Empty compiler generated dependencies file for converge_trace.
# This may be replaced when dependencies are built.
