# Empty compiler generated dependencies file for converge_util.
# This may be replaced when dependencies are built.
