file(REMOVE_RECURSE
  "libconverge_util.a"
)
