file(REMOVE_RECURSE
  "CMakeFiles/converge_util.dir/util/csv.cc.o"
  "CMakeFiles/converge_util.dir/util/csv.cc.o.d"
  "CMakeFiles/converge_util.dir/util/logging.cc.o"
  "CMakeFiles/converge_util.dir/util/logging.cc.o.d"
  "CMakeFiles/converge_util.dir/util/random.cc.o"
  "CMakeFiles/converge_util.dir/util/random.cc.o.d"
  "CMakeFiles/converge_util.dir/util/stats.cc.o"
  "CMakeFiles/converge_util.dir/util/stats.cc.o.d"
  "CMakeFiles/converge_util.dir/util/time.cc.o"
  "CMakeFiles/converge_util.dir/util/time.cc.o.d"
  "libconverge_util.a"
  "libconverge_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
