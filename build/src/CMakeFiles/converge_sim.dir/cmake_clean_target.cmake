file(REMOVE_RECURSE
  "libconverge_sim.a"
)
