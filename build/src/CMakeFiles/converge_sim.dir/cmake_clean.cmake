file(REMOVE_RECURSE
  "CMakeFiles/converge_sim.dir/sim/event_loop.cc.o"
  "CMakeFiles/converge_sim.dir/sim/event_loop.cc.o.d"
  "libconverge_sim.a"
  "libconverge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
