# Empty compiler generated dependencies file for converge_sim.
# This may be replaced when dependencies are built.
