file(REMOVE_RECURSE
  "CMakeFiles/converge_signaling.dir/signaling/ice.cc.o"
  "CMakeFiles/converge_signaling.dir/signaling/ice.cc.o.d"
  "CMakeFiles/converge_signaling.dir/signaling/negotiation.cc.o"
  "CMakeFiles/converge_signaling.dir/signaling/negotiation.cc.o.d"
  "CMakeFiles/converge_signaling.dir/signaling/sdp.cc.o"
  "CMakeFiles/converge_signaling.dir/signaling/sdp.cc.o.d"
  "libconverge_signaling.a"
  "libconverge_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
