# Empty compiler generated dependencies file for converge_signaling.
# This may be replaced when dependencies are built.
