file(REMOVE_RECURSE
  "libconverge_signaling.a"
)
