# Empty dependencies file for converge_session.
# This may be replaced when dependencies are built.
