file(REMOVE_RECURSE
  "CMakeFiles/converge_session.dir/session/call.cc.o"
  "CMakeFiles/converge_session.dir/session/call.cc.o.d"
  "CMakeFiles/converge_session.dir/session/metrics.cc.o"
  "CMakeFiles/converge_session.dir/session/metrics.cc.o.d"
  "CMakeFiles/converge_session.dir/session/receiver_endpoint.cc.o"
  "CMakeFiles/converge_session.dir/session/receiver_endpoint.cc.o.d"
  "CMakeFiles/converge_session.dir/session/sender.cc.o"
  "CMakeFiles/converge_session.dir/session/sender.cc.o.d"
  "CMakeFiles/converge_session.dir/session/stats_json.cc.o"
  "CMakeFiles/converge_session.dir/session/stats_json.cc.o.d"
  "libconverge_session.a"
  "libconverge_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
