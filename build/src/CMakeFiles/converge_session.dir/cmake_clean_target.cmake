file(REMOVE_RECURSE
  "libconverge_session.a"
)
