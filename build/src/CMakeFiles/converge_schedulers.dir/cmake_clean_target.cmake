file(REMOVE_RECURSE
  "libconverge_schedulers.a"
)
