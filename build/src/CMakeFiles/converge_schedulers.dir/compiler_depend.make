# Empty compiler generated dependencies file for converge_schedulers.
# This may be replaced when dependencies are built.
