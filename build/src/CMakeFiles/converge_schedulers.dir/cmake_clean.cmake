file(REMOVE_RECURSE
  "CMakeFiles/converge_schedulers.dir/schedulers/connection_migration.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/connection_migration.cc.o.d"
  "CMakeFiles/converge_schedulers.dir/schedulers/ecf_scheduler.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/ecf_scheduler.cc.o.d"
  "CMakeFiles/converge_schedulers.dir/schedulers/mprtp_scheduler.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/mprtp_scheduler.cc.o.d"
  "CMakeFiles/converge_schedulers.dir/schedulers/mtput_scheduler.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/mtput_scheduler.cc.o.d"
  "CMakeFiles/converge_schedulers.dir/schedulers/path_stats.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/path_stats.cc.o.d"
  "CMakeFiles/converge_schedulers.dir/schedulers/scheduler.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/scheduler.cc.o.d"
  "CMakeFiles/converge_schedulers.dir/schedulers/srtt_scheduler.cc.o"
  "CMakeFiles/converge_schedulers.dir/schedulers/srtt_scheduler.cc.o.d"
  "libconverge_schedulers.a"
  "libconverge_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
