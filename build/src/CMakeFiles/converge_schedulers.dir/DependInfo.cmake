
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedulers/connection_migration.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/connection_migration.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/connection_migration.cc.o.d"
  "/root/repo/src/schedulers/ecf_scheduler.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/ecf_scheduler.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/ecf_scheduler.cc.o.d"
  "/root/repo/src/schedulers/mprtp_scheduler.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/mprtp_scheduler.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/mprtp_scheduler.cc.o.d"
  "/root/repo/src/schedulers/mtput_scheduler.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/mtput_scheduler.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/mtput_scheduler.cc.o.d"
  "/root/repo/src/schedulers/path_stats.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/path_stats.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/path_stats.cc.o.d"
  "/root/repo/src/schedulers/scheduler.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/scheduler.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/scheduler.cc.o.d"
  "/root/repo/src/schedulers/srtt_scheduler.cc" "src/CMakeFiles/converge_schedulers.dir/schedulers/srtt_scheduler.cc.o" "gcc" "src/CMakeFiles/converge_schedulers.dir/schedulers/srtt_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/converge_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
