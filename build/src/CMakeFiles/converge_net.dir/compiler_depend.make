# Empty compiler generated dependencies file for converge_net.
# This may be replaced when dependencies are built.
