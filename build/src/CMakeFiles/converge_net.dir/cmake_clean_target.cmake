file(REMOVE_RECURSE
  "libconverge_net.a"
)
