file(REMOVE_RECURSE
  "CMakeFiles/converge_net.dir/net/link.cc.o"
  "CMakeFiles/converge_net.dir/net/link.cc.o.d"
  "CMakeFiles/converge_net.dir/net/loss_model.cc.o"
  "CMakeFiles/converge_net.dir/net/loss_model.cc.o.d"
  "CMakeFiles/converge_net.dir/net/network.cc.o"
  "CMakeFiles/converge_net.dir/net/network.cc.o.d"
  "CMakeFiles/converge_net.dir/net/path.cc.o"
  "CMakeFiles/converge_net.dir/net/path.cc.o.d"
  "CMakeFiles/converge_net.dir/net/trace.cc.o"
  "CMakeFiles/converge_net.dir/net/trace.cc.o.d"
  "libconverge_net.a"
  "libconverge_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
