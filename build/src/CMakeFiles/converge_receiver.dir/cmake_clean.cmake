file(REMOVE_RECURSE
  "CMakeFiles/converge_receiver.dir/receiver/fec_recovery.cc.o"
  "CMakeFiles/converge_receiver.dir/receiver/fec_recovery.cc.o.d"
  "CMakeFiles/converge_receiver.dir/receiver/frame_buffer.cc.o"
  "CMakeFiles/converge_receiver.dir/receiver/frame_buffer.cc.o.d"
  "CMakeFiles/converge_receiver.dir/receiver/nack_generator.cc.o"
  "CMakeFiles/converge_receiver.dir/receiver/nack_generator.cc.o.d"
  "CMakeFiles/converge_receiver.dir/receiver/packet_buffer.cc.o"
  "CMakeFiles/converge_receiver.dir/receiver/packet_buffer.cc.o.d"
  "CMakeFiles/converge_receiver.dir/receiver/qoe_monitor.cc.o"
  "CMakeFiles/converge_receiver.dir/receiver/qoe_monitor.cc.o.d"
  "CMakeFiles/converge_receiver.dir/receiver/receiver.cc.o"
  "CMakeFiles/converge_receiver.dir/receiver/receiver.cc.o.d"
  "libconverge_receiver.a"
  "libconverge_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
