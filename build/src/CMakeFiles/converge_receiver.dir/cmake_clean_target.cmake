file(REMOVE_RECURSE
  "libconverge_receiver.a"
)
