# Empty dependencies file for converge_receiver.
# This may be replaced when dependencies are built.
