
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/receiver/fec_recovery.cc" "src/CMakeFiles/converge_receiver.dir/receiver/fec_recovery.cc.o" "gcc" "src/CMakeFiles/converge_receiver.dir/receiver/fec_recovery.cc.o.d"
  "/root/repo/src/receiver/frame_buffer.cc" "src/CMakeFiles/converge_receiver.dir/receiver/frame_buffer.cc.o" "gcc" "src/CMakeFiles/converge_receiver.dir/receiver/frame_buffer.cc.o.d"
  "/root/repo/src/receiver/nack_generator.cc" "src/CMakeFiles/converge_receiver.dir/receiver/nack_generator.cc.o" "gcc" "src/CMakeFiles/converge_receiver.dir/receiver/nack_generator.cc.o.d"
  "/root/repo/src/receiver/packet_buffer.cc" "src/CMakeFiles/converge_receiver.dir/receiver/packet_buffer.cc.o" "gcc" "src/CMakeFiles/converge_receiver.dir/receiver/packet_buffer.cc.o.d"
  "/root/repo/src/receiver/qoe_monitor.cc" "src/CMakeFiles/converge_receiver.dir/receiver/qoe_monitor.cc.o" "gcc" "src/CMakeFiles/converge_receiver.dir/receiver/qoe_monitor.cc.o.d"
  "/root/repo/src/receiver/receiver.cc" "src/CMakeFiles/converge_receiver.dir/receiver/receiver.cc.o" "gcc" "src/CMakeFiles/converge_receiver.dir/receiver/receiver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/converge_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/converge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
