file(REMOVE_RECURSE
  "CMakeFiles/converge_rtp.dir/rtp/rtcp.cc.o"
  "CMakeFiles/converge_rtp.dir/rtp/rtcp.cc.o.d"
  "CMakeFiles/converge_rtp.dir/rtp/rtp_packet.cc.o"
  "CMakeFiles/converge_rtp.dir/rtp/rtp_packet.cc.o.d"
  "libconverge_rtp.a"
  "libconverge_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converge_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
