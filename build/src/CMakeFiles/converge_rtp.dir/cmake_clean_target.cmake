file(REMOVE_RECURSE
  "libconverge_rtp.a"
)
