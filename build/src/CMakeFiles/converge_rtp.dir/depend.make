# Empty dependencies file for converge_rtp.
# This may be replaced when dependencies are built.
