file(REMOVE_RECURSE
  "CMakeFiles/path_failover.dir/path_failover.cpp.o"
  "CMakeFiles/path_failover.dir/path_failover.cpp.o.d"
  "path_failover"
  "path_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
