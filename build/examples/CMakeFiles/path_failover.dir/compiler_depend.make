# Empty compiler generated dependencies file for path_failover.
# This may be replaced when dependencies are built.
