file(REMOVE_RECURSE
  "CMakeFiles/negotiated_call.dir/negotiated_call.cpp.o"
  "CMakeFiles/negotiated_call.dir/negotiated_call.cpp.o.d"
  "negotiated_call"
  "negotiated_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negotiated_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
