# Empty compiler generated dependencies file for negotiated_call.
# This may be replaced when dependencies are built.
