# Empty compiler generated dependencies file for multicam_conference.
# This may be replaced when dependencies are built.
