file(REMOVE_RECURSE
  "CMakeFiles/multicam_conference.dir/multicam_conference.cpp.o"
  "CMakeFiles/multicam_conference.dir/multicam_conference.cpp.o.d"
  "multicam_conference"
  "multicam_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicam_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
