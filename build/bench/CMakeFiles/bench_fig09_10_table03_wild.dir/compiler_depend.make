# Empty compiler generated dependencies file for bench_fig09_10_table03_wild.
# This may be replaced when dependencies are built.
