file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_10_table03_wild.dir/bench_fig09_10_table03_wild.cc.o"
  "CMakeFiles/bench_fig09_10_table03_wild.dir/bench_fig09_10_table03_wild.cc.o.d"
  "bench_fig09_10_table03_wild"
  "bench_fig09_10_table03_wild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_10_table03_wild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
