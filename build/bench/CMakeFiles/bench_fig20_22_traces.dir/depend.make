# Empty dependencies file for bench_fig20_22_traces.
# This may be replaced when dependencies are built.
