file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_22_traces.dir/bench_fig20_22_traces.cc.o"
  "CMakeFiles/bench_fig20_22_traces.dir/bench_fig20_22_traces.cc.o.d"
  "bench_fig20_22_traces"
  "bench_fig20_22_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_22_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
