file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_table04_feedback.dir/bench_fig11_table04_feedback.cc.o"
  "CMakeFiles/bench_fig11_table04_feedback.dir/bench_fig11_table04_feedback.cc.o.d"
  "bench_fig11_table04_feedback"
  "bench_fig11_table04_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_table04_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
