# Empty dependencies file for bench_fig11_table04_feedback.
# This may be replaced when dependencies are built.
