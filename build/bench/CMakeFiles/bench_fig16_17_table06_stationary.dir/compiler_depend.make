# Empty compiler generated dependencies file for bench_fig16_17_table06_stationary.
# This may be replaced when dependencies are built.
