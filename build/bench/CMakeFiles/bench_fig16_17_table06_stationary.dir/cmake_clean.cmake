file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_table06_stationary.dir/bench_fig16_17_table06_stationary.cc.o"
  "CMakeFiles/bench_fig16_17_table06_stationary.dir/bench_fig16_17_table06_stationary.cc.o.d"
  "bench_fig16_17_table06_stationary"
  "bench_fig16_17_table06_stationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_table06_stationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
