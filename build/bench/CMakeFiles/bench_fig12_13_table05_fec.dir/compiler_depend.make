# Empty compiler generated dependencies file for bench_fig12_13_table05_fec.
# This may be replaced when dependencies are built.
