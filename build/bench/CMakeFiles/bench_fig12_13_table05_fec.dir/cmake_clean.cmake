file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_table05_fec.dir/bench_fig12_13_table05_fec.cc.o"
  "CMakeFiles/bench_fig12_13_table05_fec.dir/bench_fig12_13_table05_fec.cc.o.d"
  "bench_fig12_13_table05_fec"
  "bench_fig12_13_table05_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_table05_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
