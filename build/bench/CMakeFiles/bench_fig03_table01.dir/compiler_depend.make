# Empty compiler generated dependencies file for bench_fig03_table01.
# This may be replaced when dependencies are built.
