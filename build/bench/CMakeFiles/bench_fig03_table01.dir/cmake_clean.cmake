file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_table01.dir/bench_fig03_table01.cc.o"
  "CMakeFiles/bench_fig03_table01.dir/bench_fig03_table01.cc.o.d"
  "bench_fig03_table01"
  "bench_fig03_table01.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_table01.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
