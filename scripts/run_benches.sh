#!/usr/bin/env bash
# Builds the benches in Release mode and records the machine-readable
# baselines: BENCH_micro.json (google-benchmark; compare across commits with
# tools/compare.py or by diffing the JSON) and BENCH_fleet.json (fleet-scale
# capacity envelope from bench_fleet --smoke). Both are gitignored.
#
# Environment knobs (see EXPERIMENTS.md):
#   CONVERGE_BENCH_JOBS   worker threads for the figure/table benches
#                         (default: hardware concurrency; 1 = serial)
#   CONVERGE_BENCH_FAST   1 = short smoke runs of every bench
#   CONVERGE_BENCH_SEEDS  seeds per table cell (default 5, fast mode 2)
#   RUN_FIGURE_BENCHES    1 = also run the fig/table reproduction benches
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== micro benchmarks -> BENCH_micro.json =="
"${BUILD_DIR}/bench/bench_micro" \
  --benchmark_format=json \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json

echo "== fleet capacity smoke -> BENCH_fleet.json =="
"${BUILD_DIR}/bench/bench_fleet" --smoke --out=BENCH_fleet.json

if [[ "${RUN_FIGURE_BENCHES:-0}" == "1" ]]; then
  for bench in "${BUILD_DIR}"/bench/bench_fig* "${BUILD_DIR}"/bench/bench_ablation*; do
    echo "== $(basename "${bench}") =="
    "${bench}"
  done
fi

echo "Done. Baselines written to BENCH_micro.json and BENCH_fleet.json"
