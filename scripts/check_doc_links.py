#!/usr/bin/env python3
"""Doc hygiene: every relative markdown link and referenced repo path in
tracked *.md files must resolve.

Two classes of reference are checked:

1. Markdown links/images `[text](target)` whose target is relative (no
   scheme, not an absolute URL). The target is resolved against the file's
   directory and must exist; `#anchor` suffixes are stripped, pure-anchor
   links are skipped.

2. Backtick-quoted repo paths like `src/session/hub_forwarder.cc` or
   `docs/ARCHITECTURE.md`. Only tokens that are unambiguously meant to be
   repository paths are checked: they must start with a known top-level
   directory (src/, tests/, bench/, docs/, examples/, scripts/, .github/)
   or be a top-level *.md name, and may use `*` globs (e.g.
   `src/video/quality.*` must match at least one file). Build outputs,
   env-var examples, and placeholder templates (`tests/<module>_test.cc`)
   are ignored.

Exit status is nonzero if any reference is broken, printing one
`file:line: message` per problem. Run from anywhere inside the repo.
"""

import glob
import os
import re
import subprocess
import sys

# Task/driver artifacts, not documentation: may cite files that do not
# exist yet (or no longer exist) by design.
SKIP_FILES = {"ISSUE.md", "CHANGES.md"}

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
# Top-level anchors that make a backticked token a checkable repo path.
PATH_ROOTS = ("src/", "tests/", "bench/", "docs/", "examples/", "scripts/",
              ".github/")
PATH_TOKEN_RE = re.compile(r"^[A-Za-z0-9_.*/-]+$")


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def tracked_markdown(root):
    out = subprocess.run(["git", "ls-files", "*.md"], cwd=root,
                         capture_output=True, text=True, check=True)
    return [line for line in out.stdout.splitlines() if line]


def is_external(target):
    return re.match(r"^[a-z][a-z0-9+.-]*:", target) or target.startswith("//")


def check_file(root, relpath, problems):
    path = os.path.join(root, relpath)
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1).split("#", 1)[0]
            if not target or is_external(m.group(1)):
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                problems.append(f"{relpath}:{lineno}: broken link "
                                f"'{m.group(1)}' -> {resolved}")
        for m in CODE_RE.finditer(line):
            token = m.group(1).strip()
            if not PATH_TOKEN_RE.match(token):
                continue  # flags, templates, expressions — not a path
            if not (token.startswith(PATH_ROOTS) or
                    (token.endswith(".md") and "/" not in token)):
                continue
            resolved = os.path.join(root, token)
            if "*" in token:
                if not glob.glob(resolved):
                    problems.append(f"{relpath}:{lineno}: path glob "
                                    f"'{token}' matches nothing")
            elif not os.path.exists(resolved):
                # `src/video/encoder` style module references name the
                # .h/.cc pair without an extension; accept them if the
                # stem matches something.
                stem = os.path.basename(token)
                if "." not in stem and glob.glob(resolved + ".*"):
                    continue
                problems.append(f"{relpath}:{lineno}: referenced path "
                                f"'{token}' does not exist")


def main():
    root = repo_root()
    problems = []
    files = [f for f in tracked_markdown(root)
             if os.path.basename(f) not in SKIP_FILES]
    for relpath in files:
        check_file(root, relpath, problems)
    for p in problems:
        print(p)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not problems else f'{len(problems)} broken references'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
