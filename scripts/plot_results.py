#!/usr/bin/env python3
"""Plot the CSV time series the bench binaries write.

The figure benches drop CSVs next to where they run:
  fig09_walking.csv / fig09_driving.csv   (Figure 9 time series)
  fig11_feedback.csv                      (Figure 11 IFD/FCD ablation)
  fig16_stationary.csv                    (Figure 16 time series)
  fig20_22_<scenario>.csv                 (Appendix D traces)

Usage:
  python3 scripts/plot_results.py [directory-with-csvs] [output-directory]

Requires matplotlib; falls back to printing summaries without it.
"""
import csv
import os
import sys


def read_csv(path):
    with open(path) as f:
        reader = csv.reader(f)
        header = next(reader)
        cols = {name: [] for name in header}
        for row in reader:
            for name, value in zip(header, row):
                cols[name].append(float(value))
    return cols


def summarize(name, cols):
    print(f"-- {name}")
    for key, values in cols.items():
        if key.startswith("t"):
            continue
        if values:
            mean = sum(values) / len(values)
            print(f"   {key:>16}: mean={mean:9.2f} min={min(values):9.2f} "
                  f"max={max(values):9.2f}")


def plot(name, cols, outdir, plt):
    t_key = next(k for k in cols if k.startswith("t"))
    t = cols[t_key]
    groups = {}
    for key in cols:
        if key == t_key:
            continue
        suffix = key.split("_")[-1]
        groups.setdefault(suffix, []).append(key)
    fig, axes = plt.subplots(len(groups), 1, figsize=(10, 3 * len(groups)),
                             sharex=True, squeeze=False)
    for ax, (suffix, keys) in zip(axes[:, 0], sorted(groups.items())):
        for key in keys:
            ax.plot(t, cols[key], label=key, linewidth=1)
        ax.set_ylabel(suffix)
        ax.legend(fontsize=7)
        ax.grid(alpha=0.3)
    axes[-1][0].set_xlabel("time (s)")
    fig.suptitle(name)
    out = os.path.join(outdir, name.replace(".csv", ".png"))
    fig.savefig(out, dpi=120, bbox_inches="tight")
    plt.close(fig)
    print(f"   wrote {out}")


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "."
    outdir = sys.argv[2] if len(sys.argv) > 2 else src
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available: printing summaries only")

    names = sorted(n for n in os.listdir(src)
                   if n.endswith(".csv") and (n.startswith("fig")))
    if not names:
        print(f"no fig*.csv files in {src}; run the bench binaries first")
        return 1
    for name in names:
        cols = read_csv(os.path.join(src, name))
        summarize(name, cols)
        if plt is not None:
            plot(name, cols, outdir, plt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
