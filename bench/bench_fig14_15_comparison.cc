// Figures 14 & 15: comparison with existing solutions (§6.2, driving).
//
//   Fig 14(a) normalized delivered throughput / FPS / stalls / QP
//   Fig 14(b) FEC overhead and utilization
//   Fig 14(c) E2E latency distribution (percentiles of per-frame latency)
//   Fig 15    PSNR distribution (single camera stream)
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figures 14/15 — Converge vs single-path and multipath systems "
         "(driving)");

  // ECF is an extra heterogeneity-aware baseline beyond the paper's set
  // (cited as related work in §2.2).
  const std::vector<std::pair<Variant, std::string>> systems = {
      {Variant::kWebRtcPath0, "WebRTC-V"}, {Variant::kWebRtcPath1, "WebRTC-T"},
      {Variant::kWebRtcCm, "WebRTC-CM"},   {Variant::kSrtt, "SRTT"},
      {Variant::kEcf, "ECF"},              {Variant::kMtput, "M-TPUT"},
      {Variant::kMrtp, "M-RTP"},           {Variant::kConverge, "Converge"}};

  // Aggregates across seeds (2 cameras: the multi-camera conferencing case).
  const int kStreams = FastMode() ? 1 : 2;
  std::vector<Aggregate> agg(systems.size());
  std::vector<std::function<void()>> cells;
  for (size_t i = 0; i < systems.size(); ++i) {
    cells.push_back([&, i] {
      CallConfig config;
      config.variant = systems[i].first;
      config.num_streams = kStreams;
      config.duration = CallLength();
      agg[i] = RunMany(
          config,
          [](uint64_t seed) { return ScenarioPaths(Scenario::kDriving, seed); },
          NumSeeds());
      std::fprintf(stderr, "  done %s\n", systems[i].second.c_str());
    });
  }
  RunCells(std::move(cells));

  std::printf("\nFigure 14(a): normalized QoE (driving, %d cameras)\n",
              kStreams);
  std::printf("%-10s %12s %10s %10s %10s\n", "system", "tput/enc", "fps/24",
              "stall(s)", "QP/60");
  for (size_t i = 0; i < systems.size(); ++i) {
    std::printf("%-10s %12.2f %10.2f %10.1f %10.2f\n",
                systems[i].second.c_str(),
                NormTput(agg[i].tput_mbps.mean(), kStreams),
                NormFps(agg[i].fps.mean()), agg[i].freeze_ms.mean() / 1000.0,
                NormQp(agg[i].qp.mean()));
  }

  std::printf("\nFigure 14(b): FEC overhead and utilization (%%)\n");
  std::printf("%-10s %12s %12s\n", "system", "overhead", "utilization");
  for (size_t i = 0; i < systems.size(); ++i) {
    std::printf("%-10s %12.1f %12.1f\n", systems[i].second.c_str(),
                agg[i].fec_overhead.mean() * 100,
                agg[i].fec_utilization.mean() * 100);
  }

  // Distributions come from one representative call each.
  std::printf("\nFigure 14(c): E2E latency percentiles (ms, one 1-camera "
              "call)\n");
  std::printf("%-10s %8s %8s %8s %8s %8s\n", "system", "p10", "p50", "p90",
              "p95", "p99");
  std::vector<std::unique_ptr<Call>> calls(systems.size());
  cells.clear();
  for (size_t i = 0; i < systems.size(); ++i) {
    cells.push_back([&, i] {
      CallConfig config;
      config.variant = systems[i].first;
      config.paths = ScenarioPaths(Scenario::kDriving, 4242);
      config.duration = CallLength();
      config.seed = 4242;
      calls[i] = std::make_unique<Call>(config);
      calls[i]->Run();
    });
  }
  RunCells(std::move(cells));
  for (size_t i = 0; i < systems.size(); ++i) {
    const SampleSet& e2e = calls[i]->metrics().e2e_samples(0);
    std::printf("%-10s %8.0f %8.0f %8.0f %8.0f %8.0f\n",
                systems[i].second.c_str(), e2e.Quantile(0.10),
                e2e.Quantile(0.50), e2e.Quantile(0.90), e2e.Quantile(0.95),
                e2e.Quantile(0.99));
  }

  std::printf("\nFigure 15: PSNR percentiles (dB, display-rate samples; "
              "freezes decay quality)\n");
  std::printf("%-10s %8s %8s %8s %8s\n", "system", "p10", "p25", "p50", "p90");
  for (size_t i = 0; i < systems.size(); ++i) {
    const SampleSet& psnr = calls[i]->metrics().psnr_samples(0);
    std::printf("%-10s %8.1f %8.1f %8.1f %8.1f\n", systems[i].second.c_str(),
                psnr.Quantile(0.10), psnr.Quantile(0.25), psnr.Quantile(0.50),
                psnr.Quantile(0.90));
  }

  std::printf("\nPaper shape check: Converge has the highest delivered "
              "throughput and FPS,\nthe least E2E latency (other multipath "
              "variants are qualitatively worse),\nthe smallest FEC overhead "
              "with the best utilization, and the best PSNR.\n");
  return 0;
}
