// Shared helpers for the figure/table reproduction benches: multi-seed call
// runners, mean +/- stddev aggregation, and the paper's QoE normalizations
// (§6: throughput / 10 Mbps per stream, FPS / 24, QP / 60).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "session/call.h"
#include "trace/generators.h"
#include "util/stats.h"

namespace converge::bench {

// Honors CONVERGE_BENCH_FAST=1 for quick smoke runs of every bench.
inline bool FastMode() {
  const char* env = std::getenv("CONVERGE_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline Duration CallLength() {
  return FastMode() ? Duration::Seconds(30) : Duration::Seconds(180);
}

inline int NumSeeds() {
  if (const char* env = std::getenv("CONVERGE_BENCH_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return FastMode() ? 2 : 5;
}

// Aggregate of repeated calls.
struct Aggregate {
  RunningStat fps;
  RunningStat freeze_ms;
  RunningStat e2e_ms;
  RunningStat tput_mbps;
  RunningStat qp;
  RunningStat psnr_db;
  RunningStat frame_drops;
  RunningStat keyframe_requests;
  RunningStat fec_overhead;     // fraction
  RunningStat fec_utilization;  // fraction
};

// Runs `seeds` calls; the path set is regenerated per seed (like repeating a
// drive test on different days).
inline Aggregate RunMany(
    CallConfig base,
    const std::function<std::vector<PathSpec>(uint64_t seed)>& paths_for_seed,
    int seeds) {
  Aggregate agg;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(i) * 77;
    CallConfig config = base;
    config.seed = seed;
    config.paths = paths_for_seed(seed);
    Call call(config);
    const CallStats stats = call.Run();
    agg.fps.Add(stats.AvgFps());
    agg.freeze_ms.Add(stats.AvgFreezeMs());
    agg.e2e_ms.Add(stats.AvgE2eMs());
    agg.tput_mbps.Add(stats.TotalTputMbps());
    agg.qp.Add(stats.AvgQp());
    agg.psnr_db.Add(stats.AvgPsnrDb());
    agg.frame_drops.Add(static_cast<double>(stats.total_frame_drops));
    agg.keyframe_requests.Add(
        static_cast<double>(stats.total_keyframe_requests));
    agg.fec_overhead.Add(stats.fec_overhead);
    agg.fec_utilization.Add(stats.fec_utilization);
  }
  return agg;
}

inline std::vector<PathSpec> ScenarioPaths(Scenario scenario, uint64_t seed) {
  TraceParams params;
  params.length = CallLength();
  return MakeScenarioPaths(scenario, seed, params);
}

// Paper §6 normalizations.
inline double NormTput(double tput_mbps, int streams) {
  return tput_mbps / (10.0 * streams);
}
inline double NormFps(double fps) { return fps / 24.0; }
inline double NormQp(double qp) { return qp / 60.0; }

inline std::string MeanStd(const RunningStat& s, const char* fmt = "%.1f") {
  char a[32], b[32], out[80];
  std::snprintf(a, sizeof(a), fmt, s.mean());
  std::snprintf(b, sizeof(b), fmt, s.stddev());
  std::snprintf(out, sizeof(out), "%s +- %s", a, b);
  return out;
}

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace converge::bench
