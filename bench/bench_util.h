// Shared helpers for the figure/table reproduction benches: multi-seed call
// runners, mean +/- stddev aggregation, and the paper's QoE normalizations
// (§6: throughput / 10 Mbps per stream, FPS / 24, QP / 60).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "session/call.h"
#include "trace/generators.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace converge::bench {

// Honors CONVERGE_BENCH_FAST=1 for quick smoke runs of every bench.
inline bool FastMode() {
  const char* env = std::getenv("CONVERGE_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline Duration CallLength() {
  return FastMode() ? Duration::Seconds(30) : Duration::Seconds(180);
}

inline int NumSeeds() {
  if (const char* env = std::getenv("CONVERGE_BENCH_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return FastMode() ? 2 : 5;
}

// Aggregate of repeated calls.
struct Aggregate {
  RunningStat fps;
  RunningStat freeze_ms;
  RunningStat e2e_ms;
  RunningStat tput_mbps;
  RunningStat qp;
  RunningStat psnr_db;
  RunningStat frame_drops;
  RunningStat keyframe_requests;
  RunningStat fec_overhead;     // fraction
  RunningStat fec_utilization;  // fraction
};

// Runs `seeds` calls fanned out across cores (CONVERGE_BENCH_JOBS workers;
// JOBS=1 falls back to a fully serial loop); the path set is regenerated per
// seed (like repeating a drive test on different days). Each worker receives
// a private CallConfig copy, and the Aggregate is reduced serially in seed
// order afterwards, so the result is bit-identical to the serial run no
// matter how many workers executed.
inline Aggregate RunMany(
    const CallConfig& base,
    const std::function<std::vector<PathSpec>(uint64_t seed)>& paths_for_seed,
    int seeds, int jobs = 0) {
  // Path generation stays on the caller's thread: the callback is invoked
  // exactly as often and in the same order as the old serial loop, so
  // stateful callbacks keep working.
  std::vector<CallConfig> configs;
  configs.reserve(static_cast<size_t>(seeds));
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(i) * 77;
    CallConfig config = base;  // by value: workers never alias shared state
    config.seed = seed;
    config.paths = paths_for_seed(seed);
    configs.push_back(std::move(config));
  }
  const std::vector<CallStats> results = RunCalls(configs, jobs);

  Aggregate agg;
  for (const CallStats& stats : results) {
    agg.fps.Add(stats.AvgFps());
    agg.freeze_ms.Add(stats.AvgFreezeMs());
    agg.e2e_ms.Add(stats.AvgE2eMs());
    agg.tput_mbps.Add(stats.TotalTputMbps());
    agg.qp.Add(stats.AvgQp());
    agg.psnr_db.Add(stats.AvgPsnrDb());
    agg.frame_drops.Add(static_cast<double>(stats.total_frame_drops));
    agg.keyframe_requests.Add(
        static_cast<double>(stats.total_keyframe_requests));
    agg.fec_overhead.Add(stats.fec_overhead);
    agg.fec_utilization.Add(stats.fec_utilization);
  }
  return agg;
}

// Fan a bench's table cells (variant x scenario jobs) out across the shared
// worker budget. Each job must write only its own result cell; jobs nest
// fine with the seed-level parallelism inside RunMany (the global thread
// budget keeps the machine from oversubscribing). Completion messages print
// from worker threads, so they may interleave between cells — pipe stderr
// through `sort` if exact ordering matters.
inline void RunCells(std::vector<std::function<void()>> jobs) {
  ParallelFor(static_cast<int64_t>(jobs.size()),
              [&](int64_t i) { jobs[static_cast<size_t>(i)](); });
}

inline std::vector<PathSpec> ScenarioPaths(Scenario scenario, uint64_t seed) {
  TraceParams params;
  params.length = CallLength();
  return MakeScenarioPaths(scenario, seed, params);
}

// --trace=<prefix> / CONVERGE_TRACE=<prefix>: instead of the bench's normal
// sweep, run ONE traced Converge call on the driving scenario (handovers and
// outages exercise every component) and write <prefix>.json (Chrome trace
// format — load it in https://ui.perfetto.dev or chrome://tracing) and
// <prefix>.csv (flat per-metric time series). Bench mains call this first
// and return early when it handled the run.
inline bool MaybeCaptureTrace(int argc, char** argv) {
  std::string prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) prefix = arg.substr(8);
  }
  if (prefix.empty()) {
    if (const char* env = std::getenv("CONVERGE_TRACE")) prefix = env;
  }
  if (prefix.empty()) return false;

  const uint64_t seed = 1;
  CallConfig config;
  config.variant = Variant::kConverge;
  config.duration = FastMode() ? Duration::Seconds(30) : Duration::Seconds(60);
  TraceParams params;
  params.length = config.duration;
  config.paths = MakeScenarioPathsWithFaults(Scenario::kDriving, seed, params);
  config.seed = seed;
  config.trace_capacity = TraceRecorder::kDefaultCapacity;

  Call call(config);
  const CallStats stats = call.Run();
  const TraceRecorder* trace = call.trace();

  const std::string json_path = prefix + ".json";
  const std::string csv_path = prefix + ".csv";
  const bool ok =
      trace->WriteChromeTrace(json_path) && trace->WriteCsv(csv_path);
  std::printf("traced driving call: %.2f Mbps avg, %lld events (%lld dropped)\n",
              stats.TotalTputMbps(),
              static_cast<long long>(trace->total_emitted()),
              static_cast<long long>(trace->dropped()));
  std::printf("wrote %s and %s\n", json_path.c_str(), csv_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "error: failed writing trace files\n");
    std::exit(1);
  }
  return true;
}

// Paper §6 normalizations.
inline double NormTput(double tput_mbps, int streams) {
  return tput_mbps / (10.0 * streams);
}
inline double NormFps(double fps) { return fps / 24.0; }
inline double NormQp(double qp) { return qp / 60.0; }

inline std::string MeanStd(const RunningStat& s, const char* fmt = "%.1f") {
  char a[32], b[32], out[80];
  std::snprintf(a, sizeof(a), fmt, s.mean());
  std::snprintf(b, sizeof(b), fmt, s.stddev());
  std::snprintf(out, sizeof(out), "%s +- %s", a, b);
  return out;
}

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace converge::bench
