// Ablation: Converge scheduler design choices (DESIGN.md starred items).
//
// Sweeps two of the video-aware scheduler's load-bearing parameters on the
// driving scenario:
//  * P_max probing headroom — how far positive feedback may push a path
//    past its congestion-controller rate (1.0 disables in-band probing);
//  * alpha decay — how quickly receiver feedback stops biasing the split
//    (0 makes feedback permanent, large values make it ephemeral).
// Also compares the FEC beta ceiling (NACK-driven protection boost).
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

namespace {

Aggregate RunDriving(const CallConfig& base, int seeds) {
  return RunMany(
      base,
      [](uint64_t seed) { return ScenarioPaths(Scenario::kDriving, seed); },
      seeds);
}

}  // namespace

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Ablation — video-aware scheduler parameters (driving)");
  const int seeds = FastMode() ? 1 : 3;

  // All three sweeps are computed in one parallel batch, printed serially.
  const std::vector<double> headrooms = {1.0, 1.3, 1.6, 2.0, 3.0};
  const std::vector<double> decays = {0.05, 0.2, 0.4, 1.0, 3.0};
  const std::vector<double> betas = {1.0, 2.0, 4.0, 8.0};
  std::vector<Aggregate> headroom_agg(headrooms.size());
  std::vector<Aggregate> decay_agg(decays.size());
  std::vector<Aggregate> beta_agg(betas.size());

  std::vector<std::function<void()>> cells;
  for (size_t i = 0; i < headrooms.size(); ++i) {
    cells.push_back([&, i] {
      CallConfig config;
      config.variant = Variant::kConverge;
      config.duration = CallLength();
      config.video_scheduler.pmax_headroom = headrooms[i];
      headroom_agg[i] = RunDriving(config, seeds);
    });
  }
  for (size_t i = 0; i < decays.size(); ++i) {
    cells.push_back([&, i] {
      CallConfig config;
      config.variant = Variant::kConverge;
      config.duration = CallLength();
      config.video_scheduler.alpha_decay_per_s = decays[i];
      decay_agg[i] = RunDriving(config, seeds);
    });
  }
  for (size_t i = 0; i < betas.size(); ++i) {
    cells.push_back([&, i] {
      CallConfig config;
      config.variant = Variant::kConverge;
      config.duration = CallLength();
      config.converge_fec.max_beta = betas[i];
      beta_agg[i] = RunDriving(config, seeds);
    });
  }
  RunCells(std::move(cells));

  std::printf("\nP_max headroom (in-band probing allowance):\n");
  std::printf("%10s %8s %10s %12s %10s\n", "headroom", "fps", "tput Mbps",
              "freeze(ms)", "drops");
  for (size_t i = 0; i < headrooms.size(); ++i) {
    const Aggregate& a = headroom_agg[i];
    std::printf("%10.1f %8.1f %10.2f %12.0f %10.0f\n", headrooms[i],
                a.fps.mean(), a.tput_mbps.mean(), a.freeze_ms.mean(),
                a.frame_drops.mean());
  }

  std::printf("\nAlpha decay rate (1/s) — how long QoE feedback biases the "
              "split:\n");
  std::printf("%10s %8s %10s %12s %10s\n", "decay", "fps", "tput Mbps",
              "freeze(ms)", "drops");
  for (size_t i = 0; i < decays.size(); ++i) {
    const Aggregate& a = decay_agg[i];
    std::printf("%10.2f %8.1f %10.2f %12.0f %10.0f\n", decays[i], a.fps.mean(),
                a.tput_mbps.mean(), a.freeze_ms.mean(), a.frame_drops.mean());
  }

  std::printf("\nFEC beta ceiling (NACK-driven protection boost, §4.3):\n");
  std::printf("%10s %8s %12s %12s %12s\n", "max beta", "fps", "fec ovh(%)",
              "fec util(%)", "freeze(ms)");
  for (size_t i = 0; i < betas.size(); ++i) {
    const Aggregate& a = beta_agg[i];
    std::printf("%10.1f %8.1f %12.2f %12.1f %12.0f\n", betas[i], a.fps.mean(),
                a.fec_overhead.mean() * 100, a.fec_utilization.mean() * 100,
                a.freeze_ms.mean());
  }

  std::printf("\nReading: large P_max headroom lets positive feedback "
              "overload a path\n(freezes grow with headroom); slow alpha "
              "decay (~0.05/s) strands capacity\nafter transient events "
              "(most freezes), while faster decay recovers it.\nA higher "
              "beta ceiling buys FEC utilization at slightly more "
              "overhead.\n");
  return 0;
}
