// Figures 9 & 10 + Table 3: "Converge in the wild" (§6.1).
//
// Walking scenario (WiFi + T-Mobile) and driving scenario (Verizon +
// T-Mobile). Prints the per-second time series (Figure 9), the normalized
// QoE comparison (Figure 10), and Table 3 (E2E latency, FEC overhead, FEC
// utilization for 1-3 camera streams).
#include "bench/bench_util.h"
#include "util/csv.h"

using namespace converge;
using namespace converge::bench;

namespace {

void TimeSeriesFigure9(Scenario scenario, Variant single_a, Variant single_b,
                       const char* name_a, const char* name_b) {
  const uint64_t seed = 2024;
  auto make = [&](Variant v) {
    CallConfig config;
    config.variant = v;
    config.paths = ScenarioPaths(scenario, seed);
    config.duration = CallLength();
    config.seed = seed;
    return config;
  };
  const std::vector<CallStats> calls =
      RunCalls({make(Variant::kConverge), make(single_a), make(single_b)});
  const CallStats& conv = calls[0];
  const CallStats& a = calls[1];
  const CallStats& b = calls[2];

  std::printf("\nFigure 9 (%s): per-second tput (Mbps) / fps / E2E (ms)\n",
              ToString(scenario).c_str());
  std::printf("%5s | %6s %5s %6s | %6s %5s %6s | %6s %5s %6s\n", "t",
              "Cv-tpt", "Cv-f", "Cv-e2e", name_a, "fps", "e2e", name_b, "fps",
              "e2e");
  const size_t n = std::min(
      {conv.time_series.size(), a.time_series.size(), b.time_series.size()});
  CsvWriter csv("fig09_" + ToString(scenario) + ".csv",
                {"t_s", "converge_tput", "converge_fps", "converge_e2e",
                 "a_tput", "a_fps", "a_e2e", "b_tput", "b_fps", "b_e2e"});
  for (size_t i = 0; i < n; ++i) {
    const auto& c = conv.time_series[i];
    const auto& sa = a.time_series[i];
    const auto& sb = b.time_series[i];
    csv.Row({c.t_s, c.tput_mbps, c.fps, c.e2e_ms, sa.tput_mbps, sa.fps,
             sa.e2e_ms, sb.tput_mbps, sb.fps, sb.e2e_ms});
    if (i % 5 == 0) {
      std::printf("%5.0f | %6.2f %5.1f %6.0f | %6.2f %5.1f %6.0f | %6.2f %5.1f %6.0f\n",
                  c.t_s, c.tput_mbps, c.fps, c.e2e_ms, sa.tput_mbps, sa.fps,
                  sa.e2e_ms, sb.tput_mbps, sb.fps, sb.e2e_ms);
    }
  }
  std::printf("(full series written to fig09_%s.csv)\n",
              ToString(scenario).c_str());
}

void Figure10AndTable3(Scenario scenario, Variant single_a, Variant single_b,
                       const char* name_a, const char* name_b) {
  const std::vector<std::pair<Variant, std::string>> systems = {
      {single_a, name_a}, {single_b, name_b}, {Variant::kConverge, "Converge"}};

  std::printf("\nFigure 10 (%s): normalized QoE, 1 camera stream\n",
              ToString(scenario).c_str());
  std::printf("%-12s %10s %10s %10s %10s\n", "system", "tput/10M", "fps/24",
              "stall(s)", "QP/60");

  // Keep the aggregates for Table 3 as well (per stream count). All cells
  // are computed up front in parallel; printing happens serially after.
  std::vector<std::vector<Aggregate>> per_streams(
      systems.size(), std::vector<Aggregate>(3));
  std::vector<std::function<void()>> cells;
  for (size_t i = 0; i < systems.size(); ++i) {
    for (int streams = 1; streams <= 3; ++streams) {
      cells.push_back([&, i, streams] {
        CallConfig config;
        config.variant = systems[i].first;
        config.num_streams = streams;
        config.duration = CallLength();
        per_streams[i][streams - 1] = RunMany(
            config,
            [scenario](uint64_t seed) { return ScenarioPaths(scenario, seed); },
            NumSeeds());
        std::fprintf(stderr, "  done %s %s x %d\n", ToString(scenario).c_str(),
                     systems[i].second.c_str(), streams);
      });
    }
  }
  RunCells(std::move(cells));
  for (size_t i = 0; i < systems.size(); ++i) {
    const Aggregate& one = per_streams[i][0];
    std::printf("%-12s %10.2f %10.2f %10.1f %10.2f\n",
                systems[i].second.c_str(), NormTput(one.tput_mbps.mean(), 1),
                NormFps(one.fps.mean()), one.freeze_ms.mean() / 1000.0,
                NormQp(one.qp.mean()));
  }

  auto table_block = [&](const char* title,
                         const std::function<std::string(const Aggregate&)>& cell) {
    std::printf("\nTable 3 (%s): %s\n%-4s", ToString(scenario).c_str(), title,
                "#");
    for (const auto& [v, name] : systems) std::printf(" %18s", name.c_str());
    std::printf("\n");
    for (int s = 0; s < 3; ++s) {
      std::printf("%-4d", s + 1);
      for (size_t i = 0; i < systems.size(); ++i) {
        std::printf(" %18s", cell(per_streams[i][s]).c_str());
      }
      std::printf("\n");
    }
  };

  table_block("end-to-end latency (s)", [](const Aggregate& a) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f +- %.3f", a.e2e_ms.mean() / 1000.0,
                  a.e2e_ms.stddev() / 1000.0);
    return std::string(buf);
  });
  table_block("FEC overhead (%)", [](const Aggregate& a) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f +- %.1f", a.fec_overhead.mean() * 100,
                  a.fec_overhead.stddev() * 100);
    return std::string(buf);
  });
  table_block("FEC utilization (%)", [](const Aggregate& a) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f +- %.1f",
                  a.fec_utilization.mean() * 100,
                  a.fec_utilization.stddev() * 100);
    return std::string(buf);
  });
}

}  // namespace

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figures 9/10 + Table 3 — Converge in the wild");

  // Walking: Converge on WiFi+T-Mobile vs WebRTC-W (path 0) / WebRTC-T (1).
  TimeSeriesFigure9(Scenario::kWalking, Variant::kWebRtcPath0,
                    Variant::kWebRtcPath1, "W-W", "W-T");
  Figure10AndTable3(Scenario::kWalking, Variant::kWebRtcPath0,
                    Variant::kWebRtcPath1, "WebRTC-W", "WebRTC-T");

  // Driving: Converge on Verizon+T-Mobile vs WebRTC-V (0) / WebRTC-T (1).
  TimeSeriesFigure9(Scenario::kDriving, Variant::kWebRtcPath0,
                    Variant::kWebRtcPath1, "W-V", "W-T");
  Figure10AndTable3(Scenario::kDriving, Variant::kWebRtcPath0,
                    Variant::kWebRtcPath1, "WebRTC-V", "WebRTC-T");

  std::printf("\nPaper shape check: Converge sustains FPS near/above 24 with "
              "lower stalls and\nE2E than either single path; FEC overhead "
              "smaller with higher utilization.\n");
  return 0;
}
