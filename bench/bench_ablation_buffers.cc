// Ablation: receiver buffer sizing (DESIGN.md starred decision).
//
// The paper stresses that conferencing uses "small, fixed-size buffers"
// (§7) and that the packet/frame buffers are where multipath asymmetry
// turns into QoE loss (§3.2). This bench sweeps both buffer capacities for
// Converge and for the video-unaware SRTT baseline on the driving scenario,
// showing (a) Converge is robust across sizes and (b) the baselines' frame
// drops trace back to buffer pressure.
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

int main() {
  Header("Ablation — receiver buffer sizing (driving scenario)");

  const std::vector<size_t> packet_caps = {128, 256, 512, 1024};
  const std::vector<size_t> frame_caps = {4, 8, 16, 32};
  const int seeds = FastMode() ? 1 : 3;

  for (Variant variant : {Variant::kConverge, Variant::kSrtt}) {
    std::printf("\n%s: avg FPS / frame drops per (packet buffer x frame "
                "buffer)\n",
                ToString(variant).c_str());
    std::printf("%-16s", "pkt-buf\\frm-buf");
    for (size_t fc : frame_caps) std::printf(" %14zu", fc);
    std::printf("\n");
    for (size_t pc : packet_caps) {
      std::printf("%-16zu", pc);
      for (size_t fc : frame_caps) {
        CallConfig config;
        config.variant = variant;
        config.duration = CallLength();
        config.packet_buffer_capacity = pc;
        config.frame_buffer_capacity = fc;
        const Aggregate agg = RunMany(
            config,
            [](uint64_t seed) { return ScenarioPaths(Scenario::kDriving, seed); },
            seeds);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f/%.0f", agg.fps.mean(),
                      agg.frame_drops.mean());
        std::printf(" %14s", buf);
      }
      std::printf("\n");
    }
  }

  std::printf("\nReading: cells are `fps/drops`. Converge should stay near "
              "24+ fps across the\nwhole grid; SRTT should lose frames "
              "everywhere and degrade further as buffers\nshrink (§2.3's "
              "buffer-pressure mechanism).\n");
  return 0;
}
