// Ablation: receiver buffer sizing (DESIGN.md starred decision).
//
// The paper stresses that conferencing uses "small, fixed-size buffers"
// (§7) and that the packet/frame buffers are where multipath asymmetry
// turns into QoE loss (§3.2). This bench sweeps both buffer capacities for
// Converge and for the video-unaware SRTT baseline on the driving scenario,
// showing (a) Converge is robust across sizes and (b) the baselines' frame
// drops trace back to buffer pressure.
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Ablation — receiver buffer sizing (driving scenario)");

  const std::vector<size_t> packet_caps = {128, 256, 512, 1024};
  const std::vector<size_t> frame_caps = {4, 8, 16, 32};
  const int seeds = FastMode() ? 1 : 3;

  // Compute the whole grid in parallel up front, then print it serially.
  const std::vector<Variant> variants = {Variant::kConverge, Variant::kSrtt};
  std::vector<std::vector<std::vector<Aggregate>>> grid(
      variants.size(),
      std::vector<std::vector<Aggregate>>(
          packet_caps.size(), std::vector<Aggregate>(frame_caps.size())));
  std::vector<std::function<void()>> cells;
  for (size_t v = 0; v < variants.size(); ++v) {
    for (size_t p = 0; p < packet_caps.size(); ++p) {
      for (size_t f = 0; f < frame_caps.size(); ++f) {
        cells.push_back([&, v, p, f] {
          CallConfig config;
          config.variant = variants[v];
          config.duration = CallLength();
          config.packet_buffer_capacity = packet_caps[p];
          config.frame_buffer_capacity = frame_caps[f];
          grid[v][p][f] = RunMany(
              config,
              [](uint64_t seed) {
                return ScenarioPaths(Scenario::kDriving, seed);
              },
              seeds);
        });
      }
    }
  }
  RunCells(std::move(cells));

  for (size_t v = 0; v < variants.size(); ++v) {
    std::printf("\n%s: avg FPS / frame drops per (packet buffer x frame "
                "buffer)\n",
                ToString(variants[v]).c_str());
    std::printf("%-16s", "pkt-buf\\frm-buf");
    for (size_t fc : frame_caps) std::printf(" %14zu", fc);
    std::printf("\n");
    for (size_t p = 0; p < packet_caps.size(); ++p) {
      std::printf("%-16zu", packet_caps[p]);
      for (size_t f = 0; f < frame_caps.size(); ++f) {
        const Aggregate& agg = grid[v][p][f];
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f/%.0f", agg.fps.mean(),
                      agg.frame_drops.mean());
        std::printf(" %14s", buf);
      }
      std::printf("\n");
    }
  }

  std::printf("\nReading: cells are `fps/drops`. Converge should stay near "
              "24+ fps across the\nwhole grid; SRTT should lose frames "
              "everywhere and degrade further as buffers\nshrink (§2.3's "
              "buffer-pressure mechanism).\n");
  return 0;
}
