// Micro-benchmarks (google-benchmark) for the hot components: the packet
// scheduler decision, XOR FEC encode/recover, the trendline estimator,
// packet-buffer insertion, trace sampling, and raw event-loop throughput.
#include <benchmark/benchmark.h>

#include <utility>

#include "cc/trendline.h"
#include "core/video_aware_scheduler.h"
#include "fec/xor_fec.h"
#include "net/link.h"
#include "net/trace.h"
#include "receiver/fec_recovery.h"
#include "receiver/packet_buffer.h"
#include "rtp/rtp_packet.h"
#include "session/call.h"
#include "sim/event_loop.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/trace_recorder.h"

namespace converge {
namespace {

std::vector<RtpPacket> MakeFrame(int media) {
  std::vector<RtpPacket> out;
  uint16_t seq = 0;
  RtpPacket pps;
  pps.seq = seq++;
  pps.kind = PayloadKind::kPps;
  pps.priority = Priority::kPps;
  pps.payload_bytes = 20;
  out.push_back(pps);
  for (int i = 0; i < media; ++i) {
    RtpPacket p;
    p.seq = seq++;
    p.kind = PayloadKind::kMedia;
    p.payload_bytes = 1100;
    out.push_back(p);
  }
  out.front().first_in_frame = true;
  out.back().last_in_frame = true;
  out.back().marker = true;
  return out;
}

std::vector<PathInfo> MakePaths(int n) {
  std::vector<PathInfo> paths;
  for (int i = 0; i < n; ++i) {
    PathInfo p;
    p.id = i;
    p.allocated_rate = DataRate::MegabitsPerSec(5 + i * 3);
    p.goodput = p.allocated_rate;
    p.srtt = Duration::Millis(30 + 20 * i);
    paths.push_back(p);
  }
  return paths;
}

void BM_VideoAwareAssignFrame(benchmark::State& state) {
  VideoAwareScheduler sched;
  const auto frame = MakeFrame(static_cast<int>(state.range(0)));
  const auto paths = MakePaths(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.AssignFrame(frame, paths));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_VideoAwareAssignFrame)
    ->Args({10, 2})
    ->Args({40, 2})
    ->Args({40, 4})
    ->Args({200, 4});

void BM_XorFecGenerate(benchmark::State& state) {
  const auto frame = MakeFrame(static_cast<int>(state.range(0)));
  std::vector<const RtpPacket*> ptrs;
  for (const auto& p : frame) ptrs.push_back(&p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        XorFecEncoder::Generate(ptrs, static_cast<int>(state.range(1)), 1));
  }
}
BENCHMARK(BM_XorFecGenerate)->Args({10, 1})->Args({40, 4})->Args({200, 10});

void BM_FecRecovery(benchmark::State& state) {
  const auto frame = MakeFrame(20);
  std::vector<const RtpPacket*> ptrs;
  for (const auto& p : frame) ptrs.push_back(&p);
  const auto parity = XorFecEncoder::Generate(ptrs, 2, 1);
  for (auto _ : state) {
    int recovered = 0;
    FecRecoverer rec([&](const RtpPacket&) { ++recovered; });
    for (size_t i = 1; i < frame.size(); ++i) rec.OnMediaPacket(frame[i]);
    for (const auto& f : parity) rec.OnFecPacket(f);
    benchmark::DoNotOptimize(recovered);
  }
}
BENCHMARK(BM_FecRecovery);

void BM_TrendlineUpdate(benchmark::State& state) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  for (auto _ : state) {
    send += Duration::Millis(10);
    est.OnPacketFeedback(send, send + Duration::Millis(30));
    benchmark::DoNotOptimize(est.State());
  }
}
BENCHMARK(BM_TrendlineUpdate);

void BM_PacketBufferInsertAssemble(benchmark::State& state) {
  const int media = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    int assembled = 0;
    PacketBuffer buffer({.capacity_packets = 2048},
                        [&](GatheredFrame&&) { ++assembled; });
    uint16_t seq = 0;
    state.ResumeTiming();
    for (int frame = 0; frame < 30; ++frame) {
      for (int i = 0; i <= media; ++i) {
        RtpPacket p;
        p.ssrc = 1;
        p.seq = seq++;
        p.frame_id = frame;
        p.first_in_frame = i == 0;
        p.last_in_frame = i == media;
        p.marker = i == media;
        p.payload_bytes = 1100;
        buffer.Insert(p, Timestamp::Millis(frame * 33), 0);
      }
    }
    benchmark::DoNotOptimize(assembled);
  }
  state.SetItemsProcessed(state.iterations() * 30 * (media + 1));
}
BENCHMARK(BM_PacketBufferInsertAssemble)->Arg(10)->Arg(40);

void BM_TraceLookup(benchmark::State& state) {
  Random rng(1);
  std::vector<TraceSample> samples;
  for (int t = 0; t < 1800; ++t) {
    samples.push_back({Timestamp::Millis(t * 100), rng.Uniform(1e6, 3e7)});
  }
  ValueTrace trace(std::move(samples));
  int64_t t = 0;
  for (auto _ : state) {
    t = (t + 7919) % 500'000'000;
    benchmark::DoNotOptimize(trace.ValueAt(Timestamp::Micros(t)));
  }
}
BENCHMARK(BM_TraceLookup);

void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      loop.ScheduleAt(Timestamp::Micros(i * 37 % 100'000), [&] { ++fired; });
    }
    loop.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventLoopThroughput);

// Steady-state event churn: each event schedules its successor, so the heap
// stays small and every slot is recycled — the simulator's inner loop shape.
// This is the allocation-elimination regression guard: before the flat-heap
// + InlineFunction rework, every event cost a std::function heap allocation
// plus a priority_queue node copy.
void BM_EventLoopSelfScheduling(benchmark::State& state) {
  constexpr int kEvents = 10'000;
  for (auto _ : state) {
    EventLoop loop;
    int fired = 0;
    std::function<void()> next = [&] {
      if (++fired < kEvents) loop.ScheduleIn(Duration::Micros(10), next);
    };
    loop.ScheduleAt(Timestamp::Zero(), next);
    loop.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventLoopSelfScheduling);

// Events whose callback carries a full RtpPacket by value — the link
// delivery shape. Must stay inside the EventLoop's inline callback buffer
// (no heap fallback): sizeof(RtpPacket) + capture overhead < 192 bytes.
void BM_EventLoopPacketCapture(benchmark::State& state) {
  constexpr int kEvents = 5'000;
  RtpPacket proto;
  proto.kind = PayloadKind::kMedia;
  proto.payload_bytes = 1100;
  for (auto _ : state) {
    EventLoop loop;
    int64_t bytes = 0;
    for (int i = 0; i < kEvents; ++i) {
      RtpPacket p = proto;
      p.seq = static_cast<uint16_t>(i);
      loop.ScheduleAt(Timestamp::Micros(i * 13 % 50'000),
                      [pkt = std::move(p), &bytes] {
                        bytes += pkt.payload_bytes;
                      });
    }
    loop.RunAll();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventLoopPacketCapture);

// Link enqueue/deliver with an RtpPacket riding in the delivery callback —
// the per-transmitted-packet hot path of every simulated call.
void BM_LinkEnqueueDeliver(benchmark::State& state) {
  constexpr int kPackets = 2'000;
  RtpPacket proto;
  proto.kind = PayloadKind::kMedia;
  proto.payload_bytes = 1100;
  for (auto _ : state) {
    EventLoop loop;
    Link::Config config;
    config.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(100));
    config.prop_delay = Duration::Millis(10);
    Link link(&loop, config, Random(1));
    int64_t delivered_bytes = 0;
    Timestamp at = Timestamp::Zero();
    for (int i = 0; i < kPackets; ++i) {
      // ~10 Mbps offered load: well under capacity, so nothing queues long.
      at += Duration::Micros(900);
      loop.ScheduleAt(at, [&link, &delivered_bytes, &proto, i] {
        RtpPacket p = proto;
        p.seq = static_cast<uint16_t>(i);
        link.Send(p.payload_bytes + 12,
                  [pkt = std::move(p), &delivered_bytes](Timestamp) {
                    delivered_bytes += pkt.payload_bytes;
                  });
      });
    }
    loop.RunAll();
    benchmark::DoNotOptimize(delivered_bytes);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_LinkEnqueueDeliver);

// Copy vs move of an RtpPacket carrying shared FEC metadata: the copy is a
// flat memcpy plus a refcount bump, the move is pointer swaps. Guards the
// shared_ptr<const FecBlockMeta> representation.
void BM_RtpPacketCopy(benchmark::State& state) {
  auto meta = std::make_shared<FecBlockMeta>();
  for (int i = 0; i < 40; ++i) {
    ProtectedPacketMeta m;
    m.seq = static_cast<uint16_t>(i);
    m.payload_bytes = 1100;
    meta->covered.push_back(m);
  }
  RtpPacket p;
  p.kind = PayloadKind::kFec;
  p.payload_bytes = 1100;
  p.fec = std::move(meta);
  for (auto _ : state) {
    RtpPacket copy = p;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RtpPacketCopy);

// Multi-quantile QoE report over one sample set — the shape of every bench
// table row (p5/p25/p50/p75/p95/p99 of e2e latency). Guards the sorted-order
// cache in SampleSet: before it, every Quantile() call re-sorted.
void BM_SampleSetQuantiles(benchmark::State& state) {
  Random rng(7);
  SampleSet samples;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    samples.Add(rng.Uniform(10.0, 400.0));
  }
  const double qs[] = {0.05, 0.25, 0.5, 0.75, 0.95, 0.99};
  for (auto _ : state) {
    double acc = 0.0;
    for (double q : qs) acc += samples.Quantile(q);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 6);
}
BENCHMARK(BM_SampleSetQuantiles)->Arg(1'000)->Arg(100'000);

// A probe site with no recorder installed: the disabled cost every hot path
// pays once tracing probes exist. Must stay at one thread-local load + one
// branch — effectively free next to any real work.
void BM_TraceProbeDisabled(benchmark::State& state) {
  int64_t hits = 0;
  for (auto _ : state) {
    if (TraceRecorder* trace = TraceRecorder::Current()) {
      trace->Counter("bench", "x", Timestamp::Zero(), 1.0);
      ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TraceProbeDisabled);

// End-to-end cost of one short 2-party call: the fleet-scale figure of
// merit. Everything this PR pools — timer wheel dispatch, link ring
// buffers, the per-call arena — lands in this number.
void BM_SingleCallSimulate(benchmark::State& state) {
  int64_t frames = 0;
  for (auto _ : state) {
    CallConfig config;
    config.variant = Variant::kConverge;
    config.duration = Duration::Seconds(2);
    config.seed = 7;
    PathSpec wifi;
    wifi.name = "wifi";
    wifi.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(7));
    wifi.prop_delay = Duration::Millis(20);
    PathSpec cell;
    cell.name = "cell";
    cell.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(5));
    cell.prop_delay = Duration::Millis(40);
    config.paths = {wifi, cell};
    Call call(config);
    const CallStats stats = call.Run();
    frames += stats.frames_encoded;
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(frames);
}
BENCHMARK(BM_SingleCallSimulate)->Unit(benchmark::kMillisecond);

// Emission cost with a recorder installed (ring write, no allocation).
void BM_TraceEmit(benchmark::State& state) {
  TraceRecorder recorder(1 << 16);
  TraceScope scope(&recorder);
  Timestamp at = Timestamp::Zero();
  for (auto _ : state) {
    at += Duration::Micros(10);
    TraceRecorder::Current()->Counter("bench", "value", at, 42.0, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

}  // namespace
}  // namespace converge

BENCHMARK_MAIN();
