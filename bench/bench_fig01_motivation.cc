// Figure 1: WebRTC performance degrades due to variations in cellular
// bandwidth with mobility. Runs single-path WebRTC over the T-Mobile and
// Verizon driving traces and prints the per-second FPS and E2E latency
// series (top of the figure is the bandwidth traces themselves; bottom is
// the QoE collapse).
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figure 1 — WebRTC degrades under cellular bandwidth variation "
         "(driving)");

  const uint64_t seed = 1042;
  TraceParams params;
  params.length = CallLength();

  // The two carriers' driving traces (Figure 1 top).
  const auto verizon =
      GenerateBandwidth(Scenario::kDriving, Carrier::kVerizon, seed, params);
  const auto tmobile =
      GenerateBandwidth(Scenario::kDriving, Carrier::kTmobile, seed + 1, params);

  std::printf("\nBandwidth traces (Mbps, sampled every 5 s):\n");
  std::printf("%6s %10s %10s\n", "t(s)", "Verizon", "T-Mobile");
  for (int t = 0; t < static_cast<int>(CallLength().seconds()); t += 5) {
    std::printf("%6d %10.2f %10.2f\n", t,
                verizon.CapacityAt(Timestamp::Seconds(t)).mbps(),
                tmobile.CapacityAt(Timestamp::Seconds(t)).mbps());
  }

  // One single-path WebRTC call per carrier (Figure 1 bottom), run
  // concurrently — each call is an independent deterministic simulation.
  auto make = [&](Variant variant) {
    CallConfig config;
    config.variant = variant;
    config.paths = ScenarioPaths(Scenario::kDriving, seed);
    config.duration = CallLength();
    config.seed = seed;
    return config;
  };
  // Path 0 = Verizon, path 1 = T-Mobile in the driving scenario.
  const std::vector<CallStats> calls =
      RunCalls({make(Variant::kWebRtcPath0), make(Variant::kWebRtcPath1)});
  const CallStats& verizon_call = calls[0];
  const CallStats& tmobile_call = calls[1];

  std::printf("\nPer-second QoE of single-path WebRTC:\n");
  std::printf("%6s %12s %12s %12s %12s\n", "t(s)", "V fps", "V e2e(ms)",
              "T fps", "T e2e(ms)");
  const size_t n = std::min(verizon_call.time_series.size(),
                            tmobile_call.time_series.size());
  for (size_t i = 0; i < n; i += 2) {
    const auto& v = verizon_call.time_series[i];
    const auto& t = tmobile_call.time_series[i];
    std::printf("%6.0f %12.1f %12.1f %12.1f %12.1f\n", v.t_s, v.fps, v.e2e_ms,
                t.fps, t.e2e_ms);
  }

  std::printf("\nSummary (paper: FPS variation + E2E spikes interrupt the "
              "call on either carrier alone):\n");
  std::printf("  WebRTC/Verizon : fps=%5.1f freeze=%7.0f ms e2e=%6.0f ms\n",
              verizon_call.AvgFps(), verizon_call.AvgFreezeMs(),
              verizon_call.AvgE2eMs());
  std::printf("  WebRTC/T-Mobile: fps=%5.1f freeze=%7.0f ms e2e=%6.0f ms\n",
              tmobile_call.AvgFps(), tmobile_call.AvgFreezeMs(),
              tmobile_call.AvgE2eMs());
  return 0;
}
