// Figure 11 + Table 4: the benefit of QoE feedback (§6.2).
//
// Controlled environment: Path 1 holds ~25 Mbps throughout; Path 2
// deteriorates between t=30 s and t=90 s, then recovers. Compares the
// video-aware scheduler with and without the QoE feedback module: received
// rate, IFD and FCD time series (Figure 11) plus frame drops / freeze
// duration / keyframe requests / E2E (Table 4).
#include "bench/bench_util.h"
#include "util/csv.h"

using namespace converge;
using namespace converge::bench;

namespace {

// Path 2 deteriorates between t=30s and t=90s. The paper collapses its
// bandwidth; in our substrate per-path congestion control alone already
// neutralizes a pure capacity collapse (loss/delay gradients are network
// metrics GCC sees), so to isolate what only the *QoE feedback* can catch we
// degrade the path the way §3.2 motivates: its base latency jumps (reroute/
// handover) and jitters, while capacity stays plentiful. Network metrics
// still look fine — only the receiver's frame-construction process reveals
// the damage. See EXPERIMENTS.md for this substitution note.
std::vector<PathSpec> FeedbackScenarioPaths(uint64_t seed) {
  PathSpec p1;
  p1.name = "path1";
  p1.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(25));
  p1.prop_delay = Duration::Millis(25);

  Random rng(seed);
  std::vector<TraceSample> capacity;
  std::vector<TraceSample> delay;
  for (int t = 0; t <= 180; ++t) {
    const bool bad = t >= 30 && t < 90;
    // During the bad phase the path's base latency sits at ~180 ms (smooth:
    // no congestion gradient for GCC to react to) while its capacity
    // fluctuates, so the *lateness* of its packets varies frame to frame —
    // which is what breaches IFD_exp at the receiver.
    const double mbps =
        bad ? rng.Uniform(8.0, 25.0)
            : std::max(5.0, 25.0 + rng.Gaussian(0.0, 0.8));
    capacity.push_back({Timestamp::Seconds(t), mbps * 1e6});
    const double delay_ms =
        bad ? 180.0 + rng.Uniform(-3.0, 3.0) : 30.0 + rng.Uniform(-1.0, 1.0);
    delay.push_back({Timestamp::Seconds(t), delay_ms * 1000.0});
  }
  PathSpec p2;
  p2.name = "path2";
  p2.capacity = BandwidthTrace(ValueTrace(std::move(capacity)));
  p2.prop_delay_trace = ValueTrace(std::move(delay));
  // The degraded phase also loses packets; recovering them over a ~180 ms
  // path races the frame buffer's patience, so frames die unless the
  // feedback moves traffic off the path.
  p2.loss = std::make_shared<TraceLoss>(
      ValueTrace({{Timestamp::Seconds(0), 0.0},
                  {Timestamp::Seconds(30), 0.04},
                  {Timestamp::Seconds(90), 0.0}},
                 /*repeat=*/false));
  return {p1, p2};
}

// The path-2 degradation occupies [30, 90] s, so this bench always runs the
// full window (fast mode would otherwise end before the event starts).
Duration FeedbackCallLength() {
  return FastMode() ? Duration::Seconds(120) : Duration::Seconds(180);
}

CallConfig MakeOne(Variant variant, uint64_t seed) {
  CallConfig config;
  config.variant = variant;
  config.paths = FeedbackScenarioPaths(seed);
  config.duration = FeedbackCallLength();
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figure 11 + Table 4 — video-aware scheduler with vs without QoE "
         "feedback");

  const uint64_t seed = 77;
  const std::vector<CallStats> figure_calls =
      RunCalls({MakeOne(Variant::kConverge, seed),
                MakeOne(Variant::kConvergeNoFeedback, seed)});
  const CallStats& with_fb = figure_calls[0];
  const CallStats& without_fb = figure_calls[1];

  std::printf("\nFigure 11(b-d): received rate (Mbps), IFD (ms), FCD (ms); "
              "IFD_exp = 33 ms\n");
  std::printf("%5s | %9s %7s %7s | %9s %7s %7s\n", "t(s)", "FB tput",
              "FB ifd", "FB fcd", "noFB tput", "ifd", "fcd");
  CsvWriter csv("fig11_feedback.csv",
                {"t_s", "fb_tput", "fb_ifd_ms", "fb_fcd_ms", "nofb_tput",
                 "nofb_ifd_ms", "nofb_fcd_ms"});
  const size_t n =
      std::min(with_fb.time_series.size(), without_fb.time_series.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& f = with_fb.time_series[i];
    const auto& o = without_fb.time_series[i];
    csv.Row({f.t_s, f.tput_mbps, f.ifd_ms, f.fcd_ms, o.tput_mbps, o.ifd_ms,
             o.fcd_ms});
    if (i % 5 == 0) {
      std::printf("%5.0f | %9.2f %7.1f %7.1f | %9.2f %7.1f %7.1f\n", f.t_s,
                  f.tput_mbps, f.ifd_ms, f.fcd_ms, o.tput_mbps, o.ifd_ms,
                  o.fcd_ms);
    }
  }
  std::printf("(full series written to fig11_feedback.csv)\n");

  // Table 4 over multiple seeds: the two variants' sweeps run concurrently.
  Aggregate fb, nofb;
  RunCells({[&] {
              CallConfig base;
              base.duration = FeedbackCallLength();
              base.variant = Variant::kConverge;
              fb = RunMany(base, FeedbackScenarioPaths, NumSeeds());
            },
            [&] {
              CallConfig base;
              base.duration = FeedbackCallLength();
              base.variant = Variant::kConvergeNoFeedback;
              nofb = RunMany(base, FeedbackScenarioPaths, NumSeeds());
            }});

  auto pct_gain = [](double with_v, double without_v) {
    if (without_v <= 0) return 0.0;
    return (1.0 - with_v / without_v) * 100.0;
  };
  std::printf("\nTable 4: Converge with QoE feedback vs without\n");
  std::printf("%-34s %14s %14s %10s\n", "QoE parameter", "with FB",
              "without FB", "gain");
  std::printf("%-34s %14.0f %14.0f %9.0f%%\n", "average # of frame drops",
              fb.frame_drops.mean(), nofb.frame_drops.mean(),
              pct_gain(fb.frame_drops.mean(), nofb.frame_drops.mean()));
  std::printf("%-34s %14.0f %14.0f %9.0f%%\n", "average freeze duration (ms)",
              fb.freeze_ms.mean(), nofb.freeze_ms.mean(),
              pct_gain(fb.freeze_ms.mean(), nofb.freeze_ms.mean()));
  std::printf("%-34s %14.1f %14.1f %9.0f%%\n", "total # keyframe requests",
              fb.keyframe_requests.mean(), nofb.keyframe_requests.mean(),
              pct_gain(fb.keyframe_requests.mean(),
                       nofb.keyframe_requests.mean()));
  std::printf("%-34s %14.0f %14.0f %9.0f%%\n", "average E2E latency (ms)",
              fb.e2e_ms.mean(), nofb.e2e_ms.mean(),
              pct_gain(fb.e2e_ms.mean(), nofb.e2e_ms.mean()));

  std::printf("\nPaper shape check (Table 4): feedback identifies path 2 as "
              "the culprit and pulls\ntraffic off it, cutting frame drops, "
              "freezes and E2E; without feedback the\nscheduler keeps using "
              "the late lossy path for the whole 60 s window\n(network "
              "metrics alone never flag it).\n");
  return 0;
}
