// Figure 12, Figure 13 and Table 5: QoE trade-off analysis of FEC (§6.2).
//
// Controlled environment: two 15 Mbps paths, 100 ms propagation delay,
// i.i.d. loss swept 0-10%. Compares Converge's path-specific loss-based FEC
// against WebRTC's static table-based FEC (running on the same video-aware
// scheduler so only the FEC policy differs):
//   Fig 12  FEC overhead and utilization vs loss
//   Fig 13  media throughput vs E2E delay trade-off
//   Table 5 % QoE improvement (drops / freeze / keyframe requests) per loss
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

namespace {

std::vector<PathSpec> LossyPaths(double loss) {
  auto make = [&](const char* name, int delay_ms) {
    PathSpec spec;
    spec.name = name;
    spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(15));
    spec.prop_delay = Duration::Millis(delay_ms);
    if (loss > 0) spec.loss = std::make_shared<BernoulliLoss>(loss);
    return spec;
  };
  // 100 ms propagation delay total across the pair (paper: 100 ms).
  return {make("p1", 50), make("p2", 50)};
}

}  // namespace

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figures 12/13 + Table 5 — path-specific FEC vs WebRTC's "
         "table-based FEC (2x15 Mbps, 100 ms, loss sweep)");

  struct Row {
    double loss;
    Aggregate converge;
    Aggregate table;
  };
  std::vector<Row> rows;
  const std::vector<double> losses = FastMode()
                                         ? std::vector<double>{0.01, 0.05, 0.10}
                                         : std::vector<double>{0.0,  0.01, 0.02,
                                                               0.03, 0.04, 0.05,
                                                               0.06, 0.07, 0.08,
                                                               0.09, 0.10};
  rows.resize(losses.size());
  std::vector<std::function<void()>> cells;
  for (size_t i = 0; i < losses.size(); ++i) {
    const double loss = losses[i];
    rows[i].loss = loss;
    cells.push_back([&, i, loss] {
      CallConfig base;
      base.duration = CallLength();
      base.variant = Variant::kConverge;
      rows[i].converge = RunMany(
          base, [loss](uint64_t) { return LossyPaths(loss); }, NumSeeds());
    });
    cells.push_back([&, i, loss] {
      CallConfig base;
      base.duration = CallLength();
      base.variant = Variant::kConvergeWebRtcFec;
      rows[i].table = RunMany(
          base, [loss](uint64_t) { return LossyPaths(loss); }, NumSeeds());
      std::fprintf(stderr, "  done loss=%.0f%%\n", loss * 100);
    });
  }
  RunCells(std::move(cells));

  std::printf("\nFigure 12: FEC overhead and utilization vs loss\n");
  std::printf("%8s | %14s %14s | %14s %14s\n", "loss(%)", "Cv ovh(%)",
              "Cv util(%)", "Tbl ovh(%)", "Tbl util(%)");
  for (const Row& r : rows) {
    std::printf("%8.0f | %14.1f %14.1f | %14.1f %14.1f\n", r.loss * 100,
                r.converge.fec_overhead.mean() * 100,
                r.converge.fec_utilization.mean() * 100,
                r.table.fec_overhead.mean() * 100,
                r.table.fec_utilization.mean() * 100);
  }

  std::printf("\nFigure 13: throughput vs E2E delay trade-off (one point per "
              "loss level)\n");
  std::printf("%8s | %12s %12s | %12s %12s\n", "loss(%)", "Cv tput",
              "Cv e2e(ms)", "Tbl tput", "Tbl e2e(ms)");
  for (const Row& r : rows) {
    std::printf("%8.0f | %12.2f %12.0f | %12.2f %12.0f\n", r.loss * 100,
                r.converge.tput_mbps.mean(), r.converge.e2e_ms.mean(),
                r.table.tput_mbps.mean(), r.table.e2e_ms.mean());
  }

  auto improvement = [](double conv, double table) {
    if (table <= 0) return 0.0;
    return (1.0 - conv / table) * 100.0;
  };
  std::printf("\nTable 5: %% QoE improvement of path-specific FEC over "
              "table-based FEC\n(absolute Converge/table values in "
              "parentheses)\n");
  std::printf("%8s %26s %26s %26s\n", "loss(%)", "frame drops", "freeze(ms)",
              "keyframe reqs");
  for (const Row& r : rows) {
    if (r.loss == 0.0) continue;
    char drops[40], freeze[40], kf[40];
    std::snprintf(drops, sizeof(drops), "%.0f%% (%.0f/%.0f)",
                  improvement(r.converge.frame_drops.mean(),
                              r.table.frame_drops.mean()),
                  r.converge.frame_drops.mean(), r.table.frame_drops.mean());
    std::snprintf(freeze, sizeof(freeze), "%.0f%% (%.0f/%.0f)",
                  improvement(r.converge.freeze_ms.mean(),
                              r.table.freeze_ms.mean()),
                  r.converge.freeze_ms.mean(), r.table.freeze_ms.mean());
    std::snprintf(kf, sizeof(kf), "%.0f%% (%.1f/%.1f)",
                  improvement(r.converge.keyframe_requests.mean(),
                              r.table.keyframe_requests.mean()),
                  r.converge.keyframe_requests.mean(),
                  r.table.keyframe_requests.mean());
    std::printf("%8.0f %26s %26s %26s\n", r.loss * 100, drops, freeze, kf);
  }

  std::printf("\nPaper shape check: table FEC sends ~40%% overhead at 1%% "
              "loss with <20%% used;\nConverge sends a few %% with high "
              "utilization, sits upper-left in Fig 13\n(more throughput, "
              "less delay), and improves drops/freezes at every loss.\n");
  return 0;
}
