// N-party scaling sweep over the conference runtime: per-participant QoE and
// driver wall-clock versus conference size, for both topologies. Mesh cost
// grows with the number of directed legs, N*(N-1); star grows with uplinks
// plus fan-out, so the crossover between the two is the quantity of interest.
//
//   --smoke            tiny sweep (N in {2,3}, 1 seed, 4 s calls) used as a
//                      CI build-and-run sanity check
//   CONVERGE_BENCH_FAST=1 / CONVERGE_BENCH_SEEDS / CONVERGE_BENCH_JOBS as in
//   the other benches
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "session/conference.h"
#include "session/stats_json.h"

namespace converge {
namespace {

ConferenceConfig NpartyConfig(Topology topology, int participants,
                              Duration duration, uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = topology;
  config.participants.assign(static_cast<size_t>(participants),
                             ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(4);
  config.duration = duration;
  config.seed = seed;

  // Every participant: a WiFi-like and a cellular-like access path. Star
  // downlinks out of the forwarder are provisioned for the aggregate of the
  // N-1 forwarded senders (the SFU sits in well-connected infrastructure).
  const int fanout = participants - 1;
  config.paths_for_edge = [fanout](int from, int) {
    auto path = [](const char* name, double mbps, int delay_ms, double loss) {
      PathSpec spec;
      spec.name = name;
      spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
      spec.prop_delay = Duration::Millis(delay_ms);
      if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
      return spec;
    };
    if (from == kHubId) {
      return std::vector<PathSpec>{
          path("dl-wifi", 10.0 * fanout, 10, 0.0),
          path("dl-cell", 8.0 * fanout, 20, 0.0)};
    }
    return std::vector<PathSpec>{path("wifi", 7.0, 20, 0.01),
                                 path("cell", 5.0, 40, 0.005)};
  };
  return config;
}

void SweepTopology(Topology topology, const std::vector<int>& sizes,
                   Duration duration, int seeds) {
  bench::Header(("n-party scaling: " + ToString(topology) + " topology").c_str());
  std::printf("%3s %5s %8s %8s %8s %9s %8s %10s\n", "N", "legs", "fps",
              "freeze", "e2e_ms", "mbps/recv", "drops", "wall_ms");
  for (int n : sizes) {
    std::vector<ConferenceConfig> configs;
    for (int i = 0; i < seeds; ++i) {
      configs.push_back(NpartyConfig(topology, n, duration,
                                     1000 + static_cast<uint64_t>(i) * 77));
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ConferenceStats> results = RunConferences(configs);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    RunningStat fps, freeze, e2e, tput, drops;
    size_t legs = 0;
    for (const ConferenceStats& stats : results) {
      legs = stats.legs.size();
      for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
        fps.Add(p.avg_fps);
        freeze.Add(p.avg_freeze_ms);
        e2e.Add(p.avg_e2e_ms);
        tput.Add(p.total_tput_mbps);
        drops.Add(static_cast<double>(p.frame_drops));
      }
    }
    std::printf("%3d %5zu %8.2f %8.1f %8.1f %9.2f %8.1f %10lld\n", n, legs,
                fps.mean(), freeze.mean(), e2e.mean(), tput.mean(),
                drops.mean(), static_cast<long long>(wall.count()));
  }
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<int> sizes;
  Duration duration = Duration::Seconds(0);
  int seeds = 0;
  if (smoke) {
    sizes = {2, 3};
    duration = Duration::Seconds(4);
    seeds = 1;
  } else {
    sizes = {2, 3, 4, 5, 6};
    duration = bench::FastMode() ? Duration::Seconds(10) : Duration::Seconds(60);
    seeds = bench::NumSeeds();
  }

  SweepTopology(Topology::kMesh, sizes, duration, seeds);
  SweepTopology(Topology::kStar, sizes, duration, seeds);

  if (smoke) {
    // Cheap structural sanity for CI: a 3-party mesh must produce 6 legs and
    // per-participant aggregates for everyone.
    Conference conference(
        NpartyConfig(Topology::kMesh, 3, Duration::Seconds(2), 7));
    const ConferenceStats stats = conference.Run();
    if (stats.legs.size() != 6 || stats.participants.size() != 3) {
      std::fprintf(stderr, "smoke failure: got %zu legs / %zu participants\n",
                   stats.legs.size(), stats.participants.size());
      return 1;
    }
    std::printf("\nsmoke ok: %s\n",
                ConferenceStatsToJson(stats, 0).substr(0, 60).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace converge

int main(int argc, char** argv) { return converge::Main(argc, argv); }
