// N-party scaling sweep over the conference runtime: per-participant QoE and
// driver wall-clock versus conference size, for both topologies. Mesh cost
// grows with the number of directed legs, N*(N-1); star grows with uplinks
// plus fan-out, so the crossover between the two is the quantity of interest.
//
// A second cell pins the PR 5 acceptance scenario: a star with one slow
// receiver (1 Mbps downlinks next to 10 Mbps peers), reporting per-downlink
// hub state (GCC target, thin/evict counts, queue highwater) so regressions
// in the forwarder's congestion loop show up as table diffs.
//
//   --smoke            tiny sweep (N in {2,3}, 1 seed, 4 s calls) plus
//                      short constrained-star, churn, and cross-traffic
//                      cells, used as a CI build-and-run sanity check
//   --churn            run ONLY the mid-call churn cell (join/leave/rejoin
//                      on a 4-party mesh, per-leg lifetime windows)
//   --layers           run ONLY the layered constrained-star cell: the same
//                      slow-receiver star with a 3-rung simulcast ladder,
//                      reporting per-downlink selected rung, switch counts,
//                      filtered packets, and ALR padding volume. Combined
//                      with --trace=<prefix> the traced subject is the
//                      layered star ("hub_layer" series in the export)
//   --cross-traffic    run ONLY the competing-TCP cell (call share vs a
//                      greedy AIMD flow on the primary path)
//   --hubs=<k>         run ONLY the cascaded-fabric cell: a fixed-size star
//                      swept across 1..k regional hubs (participants
//                      round-robin), reporting QoE, trunk state, and driver
//                      wall-clock vs hub count. With --smoke the sweep
//                      shrinks to a CI-sized sanity check. Combined with
//                      --trace=<prefix> it instead traces ONE k-hub call
//                      with a mid-call hub failure ("hub_trunk" categories
//                      + re-homing instants in the export)
//   --cc=<name>        congestion controller for every cell (gcc | nada |
//                      cross; default gcc)
//   --coupling=<name>  multipath coupling strategy (uncoupled | mp-weighted
//                      | mp-rr | mp-best; default uncoupled)
//   --trace=<prefix>   run ONE traced conference and write <prefix>.json
//                      (Perfetto / chrome://tracing) and <prefix>.csv.
//                      Default subject is the constrained star (hub queue +
//                      hub_gcc series); combined with --churn it traces the
//                      churn scenario instead (membership join/leave
//                      instants in the "conference" category)
//   CONVERGE_BENCH_FAST=1 / CONVERGE_BENCH_SEEDS / CONVERGE_BENCH_JOBS as in
//   the other benches
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/cross_traffic.h"
#include "net/fault_plan.h"
#include "session/conference.h"
#include "session/stats_json.h"

namespace converge {
namespace {

// --cc / --coupling selections, applied to every cell's config.
CcAlgorithm g_cc_algorithm = CcAlgorithm::kGcc;
CcCoupling g_cc_coupling = CcCoupling::kUncoupled;

void ApplyCcFlags(ConferenceConfig& config) {
  config.cc_algorithm = g_cc_algorithm;
  config.cc_coupling = g_cc_coupling;
}

ConferenceConfig NpartyConfig(Topology topology, int participants,
                              Duration duration, uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = topology;
  config.participants.assign(static_cast<size_t>(participants),
                             ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(4);
  config.duration = duration;
  config.seed = seed;

  // Every participant: a WiFi-like and a cellular-like access path. Star
  // downlinks out of the forwarder are provisioned for the aggregate of the
  // N-1 forwarded senders (the SFU sits in well-connected infrastructure).
  const int fanout = participants - 1;
  config.paths_for_edge = [fanout](int from, int) {
    auto path = [](const char* name, double mbps, int delay_ms, double loss) {
      PathSpec spec;
      spec.name = name;
      spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
      spec.prop_delay = Duration::Millis(delay_ms);
      if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
      return spec;
    };
    if (from == kHubId) {
      return std::vector<PathSpec>{
          path("dl-wifi", 10.0 * fanout, 10, 0.0),
          path("dl-cell", 8.0 * fanout, 20, 0.0)};
    }
    return std::vector<PathSpec>{path("wifi", 7.0, 20, 0.01),
                                 path("cell", 5.0, 40, 0.005)};
  };
  ApplyCcFlags(config);
  return config;
}

// One sender (3 Mbps cap), three receivers; receiver 3's downlink pair is
// scaled by slow_mbps (1.0 = the constrained acceptance scenario, 10.0 = the
// unconstrained baseline). Mirrors the fixture in tests/conference_test.cc.
ConferenceConfig ConstrainedStarConfig(double slow_mbps, Duration duration,
                                       uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(4, ParticipantSpec{});
  config.participants[0].receives = false;
  for (int p = 1; p < 4; ++p) config.participants[p].sends = false;
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = duration;
  config.seed = seed;
  config.paths_for_edge = [slow_mbps](int from, int to) {
    auto path = [](const char* name, double mbps, int delay_ms) {
      PathSpec spec;
      spec.name = name;
      spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
      spec.prop_delay = Duration::Millis(delay_ms);
      return spec;
    };
    if (from == kHubId) {
      const double scale = to == 3 ? slow_mbps : 10.0;
      return std::vector<PathSpec>{path("d0", 0.6 * scale, 15),
                                   path("d1", 0.4 * scale, 25)};
    }
    return std::vector<PathSpec>{path("u0", 6.0, 20), path("u1", 4.0, 35)};
  };
  ApplyCcFlags(config);
  return config;
}

// Constrained vs unconstrained star, with the hub's per-downlink rows. The
// interesting deltas: receiver 3's summed target_kbps converging toward its
// 1 Mbps downlink pair, thin/evict counters absorbing the excess, and
// receivers 1-2 matching the baseline row.
int ConstrainedStarCell(Duration duration) {
  bench::Header("constrained-downlink star: 1 sender @3 Mbps, receiver 3 slow");
  for (const double slow : {1.0, 10.0}) {
    Conference conference(ConstrainedStarConfig(slow, duration, 42));
    const ConferenceStats stats = conference.Run();
    std::printf("\nslow-downlink scale %.0fx (receiver 3 pair = %.1f Mbps)\n",
                slow, slow);
    std::printf("  %4s %8s %8s %8s %8s\n", "recv", "fps", "freeze", "e2e_ms",
                "mbps");
    for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
      if (p.inbound_streams == 0) continue;
      std::printf("  %4d %8.2f %8.1f %8.1f %8.2f\n", p.participant, p.avg_fps,
                  p.avg_freeze_ms, p.avg_e2e_ms, p.total_tput_mbps);
    }
    std::printf("  %4s %4s %8s %7s %6s %6s %6s %5s %9s %9s\n", "recv", "path",
                "tgt_kbps", "srtt_ms", "loss", "thin", "evict", "plis",
                "max_q_kB", "max_q_ms");
    for (const ConferenceStats::Downlink& d : stats.downlinks) {
      std::printf("  %4d %4d %8.0f %7.1f %6.3f %6lld %6lld %5lld %9.1f %9.1f\n",
                  d.receiver, static_cast<int>(d.path), d.target_kbps,
                  d.srtt_ms, d.loss,
                  static_cast<long long>(d.forwarder.frames_thinned),
                  static_cast<long long>(d.forwarder.frames_evicted),
                  static_cast<long long>(d.forwarder.plis_relayed),
                  d.forwarder.max_queue_bytes / 1000.0,
                  d.forwarder.max_queue_delay_ms);
    }
    // Structural sanity for CI: the hub must expose one row per
    // (receiver, path) and the constrained run must actually thin.
    if (stats.downlinks.size() != 6) {
      std::fprintf(stderr, "constrained cell: got %zu downlink rows, want 6\n",
                   stats.downlinks.size());
      return 1;
    }
    if (slow == 1.0) {
      int64_t thinned = 0;
      for (const ConferenceStats::Downlink& d : stats.downlinks) {
        if (d.receiver == 3) thinned += d.forwarder.frames_thinned;
      }
      if (thinned == 0) {
        std::fprintf(stderr,
                     "constrained cell: slow receiver was never thinned\n");
        return 1;
      }
    }
  }
  return 0;
}

// The layered variant of the constrained star: same shape, but the sender
// offers a 3-rung simulcast ladder and the hub runs per-(receiver, path)
// rung selection instead of whole-frame thinning.
ConferenceConfig LayeredStarConfig(double slow_mbps, Duration duration,
                                   uint64_t seed) {
  ConferenceConfig config = ConstrainedStarConfig(slow_mbps, duration, seed);
  config.simulcast_rungs = 3;
  return config;
}

// Layered constrained vs unconstrained star. The interesting deltas against
// ConstrainedStarCell: receiver 3 settles on a lower rung at full fps with
// zero thinning, receivers 1-2 hold rung 0, and the padding column shows the
// ALR probe volume the hub spent keeping each downlink's estimator honest.
int LayeredStarCell(Duration duration) {
  bench::Header(
      "layered star: 3-rung simulcast, per-downlink rung selection");
  for (const double slow : {1.0, 10.0}) {
    Conference conference(LayeredStarConfig(slow, duration, 42));
    const ConferenceStats stats = conference.Run();
    std::printf("\nslow-downlink scale %.0fx (receiver 3 pair = %.1f Mbps)\n",
                slow, slow);
    std::printf("  %4s %8s %8s %8s %8s\n", "recv", "fps", "freeze", "e2e_ms",
                "mbps");
    for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
      if (p.inbound_streams == 0) continue;
      std::printf("  %4d %8.2f %8.1f %8.1f %8.2f\n", p.participant, p.avg_fps,
                  p.avg_freeze_ms, p.avg_e2e_ms, p.total_tput_mbps);
    }
    std::printf("  %4s %4s %8s %5s %9s %9s %6s %6s %8s\n", "recv", "path",
                "tgt_kbps", "rung", "switches", "filtered", "thin", "evict",
                "padding");
    for (const ConferenceStats::Downlink& d : stats.downlinks) {
      std::printf("  %4d %4d %8.0f %5d %9lld %9lld %6lld %6lld %8lld\n",
                  d.receiver, static_cast<int>(d.path), d.target_kbps,
                  d.selected_rung,
                  static_cast<long long>(d.forwarder.layer_switches),
                  static_cast<long long>(d.forwarder.layer_packets_filtered),
                  static_cast<long long>(d.forwarder.frames_thinned),
                  static_cast<long long>(d.forwarder.frames_evicted),
                  static_cast<long long>(d.forwarder.padding_packets));
    }
    // Structural sanity for CI: the constrained run must adapt by rung
    // selection (not thinning), and unconstrained receivers stay on the
    // top rung at full rate.
    for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
      if (p.inbound_streams > 0 && p.avg_fps <= 20.0) {
        std::fprintf(stderr, "layered cell: receiver %d collapsed to %.2f fps\n",
                     p.participant, p.avg_fps);
        return 1;
      }
    }
    int max_slow_rung = 0;
    for (const ConferenceStats::Downlink& d : stats.downlinks) {
      if (d.receiver == 3) {
        max_slow_rung = std::max(max_slow_rung, d.selected_rung);
      } else if (d.selected_rung != 0) {
        std::fprintf(stderr,
                     "layered cell: fast receiver %d left rung 0 (rung %d)\n",
                     d.receiver, d.selected_rung);
        return 1;
      }
    }
    if (slow == 1.0 && max_slow_rung == 0) {
      std::fprintf(stderr,
                   "layered cell: slow receiver never left the top rung\n");
      return 1;
    }
    if (slow == 10.0 && max_slow_rung != 0) {
      std::fprintf(stderr,
                   "layered cell: unconstrained receiver 3 downswitched\n");
      return 1;
    }
  }
  return 0;
}

// Mid-call churn: a 4-party mesh where participant 3 joins late, 1 leaves
// and rejoins, and 2 leaves for good. Event times scale with the duration
// so the smoke run exercises the same shape in a few seconds.
ConferenceConfig ChurnConfig(Duration duration, uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(4, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = duration;
  config.seed = seed;
  config.paths_for_edge = [](int, int) {
    auto path = [](const char* name, double mbps, int delay_ms, double loss) {
      PathSpec spec;
      spec.name = name;
      spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
      spec.prop_delay = Duration::Millis(delay_ms);
      if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
      return spec;
    };
    return std::vector<PathSpec>{path("wifi", 6.0, 20, 0.01),
                                 path("cell", 4.0, 35, 0.005)};
  };
  auto at = [&](double frac) {
    return Timestamp::Zero() + duration * frac;
  };
  config.membership = {
      {MembershipEvent::Kind::kJoin, at(0.15), 3},
      {MembershipEvent::Kind::kLeave, at(0.40), 1},
      {MembershipEvent::Kind::kJoin, at(0.60), 1},
      {MembershipEvent::Kind::kLeave, at(0.80), 2},
  };
  ApplyCcFlags(config);
  return config;
}

// Per-leg lifetime windows and rates under churn. The interesting deltas:
// rejoin legs (incarnation 1) ramping back within their short window, and
// retired legs keeping sane whole-window aggregates.
int ChurnCell(Duration duration) {
  bench::Header("mid-call churn: 4-party mesh, late join + leave/rejoin");
  Conference conference(ChurnConfig(duration, 42));
  const ConferenceStats stats = conference.Run();
  std::printf("  %4s %8s %8s %8s\n", "part", "active_s", "fps", "mbps");
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    std::printf("  %4d %8.1f %8.2f %8.2f\n", p.participant, p.active_s,
                p.avg_fps, p.total_tput_mbps);
  }
  std::printf("  %4s %3s %3s %4s %7s %7s %8s %8s\n", "leg", "frm", "to",
              "inc", "join_s", "left_s", "fps", "mbps");
  for (size_t i = 0; i < stats.legs.size(); ++i) {
    const ConferenceStats::Leg& leg = stats.legs[i];
    std::printf("  %4zu %3d %3d %4d %7.1f %7.1f %8.2f %8.2f\n", i, leg.from,
                leg.to, leg.incarnation, leg.joined_s, leg.left_s,
                leg.stats.AvgFps(), leg.stats.TotalTputMbps());
  }
  // Structural sanity for CI: the initial 6 legs of {0,1,2}, 6 more from
  // p3's join, 6 rejoin legs for p1's second incarnation.
  if (stats.legs.size() != 18) {
    std::fprintf(stderr, "churn cell: got %zu legs, want 18\n",
                 stats.legs.size());
    return 1;
  }
  // p1's rejoin creates 6 fresh legs; the 3 it publishes carry its new
  // incarnation (inbound legs keep each sender's own incarnation 0).
  const double rejoin_s = (duration * 0.6).seconds();
  double rejoin_tput = 0.0;
  int rejoin_out = 0, rejoin_fresh = 0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    if (leg.joined_s == rejoin_s && (leg.from == 1 || leg.to == 1)) {
      ++rejoin_fresh;
    }
    if (leg.incarnation != 1) continue;
    ++rejoin_out;
    rejoin_tput += leg.stats.TotalTputMbps();
  }
  if (rejoin_out != 3 || rejoin_fresh != 6 || rejoin_tput <= 0.0) {
    std::fprintf(stderr,
                 "churn cell: %d inc-1 legs (want 3), %d fresh legs (want 6), "
                 "%.2f Mbps total\n",
                 rejoin_out, rejoin_fresh, rejoin_tput);
    return 1;
  }
  return 0;
}

// Competing cross-traffic: a duplex 2-party call whose 6 Mbps primary is
// shared with one greedy TCP-like flow, next to a clean 3 Mbps secondary.
// The delay-sensitive call concedes most of the shared path but must keep a
// nonzero stable share overall.
int CrossTrafficCell(Duration duration) {
  bench::Header("competing cross-traffic: 2-party call vs one TCP flow");
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(2, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(6);
  config.duration = duration;
  config.seed = 42;
  PathSpec p0;
  p0.name = "shared";
  p0.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(6));
  p0.prop_delay = Duration::Millis(20);
  CrossTrafficSpec bulk;
  bulk.name = "bulk";
  bulk.kind = CrossTrafficKind::kTcp;
  bulk.start = Timestamp::Zero() + duration * 0.1;
  p0.cross_traffic = {bulk};
  PathSpec p1;
  p1.name = "clean";
  p1.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(3));
  p1.prop_delay = Duration::Millis(35);
  config.paths = {p0, p1};
  ApplyCcFlags(config);

  Conference conference(config);
  const ConferenceStats stats = conference.Run();
  std::printf("  %4s %8s %8s\n", "part", "fps", "mbps");
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    std::printf("  %4d %8.2f %8.2f\n", p.participant, p.avg_fps,
                p.total_tput_mbps);
  }
  std::printf("  %-6s %4s %4s %8s %8s %7s %8s\n", "flow", "edge", "path",
              "mbps", "deliv", "loss", "cwnd");
  for (const ConferenceStats::CrossFlow& f : stats.cross_traffic) {
    std::printf("  %-6s %d->%d %4d %8.2f %8lld %7lld %8.1f\n", f.name.c_str(),
                f.from, f.to, static_cast<int>(f.path), f.throughput_mbps,
                static_cast<long long>(f.packets_delivered),
                static_cast<long long>(f.loss_events), f.final_cwnd);
  }
  // Structural sanity for CI: one flow per direction, both actually moved
  // bytes, and the call held a nonzero share.
  if (stats.cross_traffic.size() != 2) {
    std::fprintf(stderr, "cross-traffic cell: got %zu flows, want 2\n",
                 stats.cross_traffic.size());
    return 1;
  }
  for (const ConferenceStats::CrossFlow& f : stats.cross_traffic) {
    if (f.packets_delivered <= 0) {
      std::fprintf(stderr, "cross-traffic cell: flow %s moved nothing\n",
                   f.name.c_str());
      return 1;
    }
  }
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    if (p.total_tput_mbps <= 0.5) {
      std::fprintf(stderr,
                   "cross-traffic cell: participant %d starved (%.2f Mbps)\n",
                   p.participant, p.total_tput_mbps);
      return 1;
    }
  }
  return 0;
}

// Cascaded-fabric subject: the N-party star wired over `num_hubs` regional
// hubs. home_hub stays empty so participants land round-robin (p % hubs),
// and the trunks get a dedicated path pair provisioned for every sender's
// 4 Mbps cap with headroom — the inter-hub legs sit in well-connected
// infrastructure, like the hub downlinks above.
ConferenceConfig CascadeConfig(int participants, int num_hubs,
                               Duration duration, uint64_t seed) {
  ConferenceConfig config =
      NpartyConfig(Topology::kStar, participants, duration, seed);
  config.num_hubs = num_hubs;
  auto trunk = [](const char* name, double mbps, int delay_ms) {
    PathSpec spec;
    spec.name = name;
    spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
    spec.prop_delay = Duration::Millis(delay_ms);
    return spec;
  };
  config.trunk_paths = {trunk("trunk-a", 6.0 * participants, 15),
                        trunk("trunk-b", 4.0 * participants, 25)};
  return config;
}

// The traced chaos subject: a k-hub call whose last hub dies 40% into the
// call and recovers at 80%, so the export carries "hub_trunk" queue/CC
// series (the flight recorder keeps the newest events, so early instants
// may rotate out; the structural failure/re-home checks run on stats).
ConferenceConfig CascadeFailoverConfig(int participants, int num_hubs,
                                       Duration duration, uint64_t seed) {
  ConferenceConfig config =
      CascadeConfig(participants, num_hubs, duration, seed);
  FaultPlan plan;
  plan.Add(FaultEvent::Outage(Timestamp::Zero() + duration * 0.4,
                              duration * 0.4));
  config.hub_fault_plans.assign(static_cast<size_t>(num_hubs), FaultPlan{});
  config.hub_fault_plans[static_cast<size_t>(num_hubs - 1)] = plan;
  return config;
}

// QoE and driver wall-clock versus hub count: the same star swept from the
// degenerate 1-hub case (zero trunks) up to max_hubs. Each extra hub adds
// h*(h-1) directed trunks and one store-and-forward trunk crossing for
// remote-hub media, so the expected deltas are a modest e2e_ms rise and
// trunk rows appearing in the stats.
int HubSweepCell(int max_hubs, int participants, Duration duration,
                 int seeds) {
  bench::Header("cascaded fabric: fixed-size star vs hub count");
  std::printf("%4s %6s %8s %8s %8s %9s %10s\n", "hubs", "trunks", "fps",
              "freeze", "e2e_ms", "mbps/recv", "wall_ms");
  for (int h = 1; h <= max_hubs; ++h) {
    std::vector<ConferenceConfig> configs;
    for (int i = 0; i < seeds; ++i) {
      configs.push_back(CascadeConfig(participants, h, duration,
                                      1000 + static_cast<uint64_t>(i) * 77));
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ConferenceStats> results = RunConferences(configs);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    RunningStat fps, freeze, e2e, tput;
    size_t trunk_rows = 0;
    for (const ConferenceStats& stats : results) {
      trunk_rows = stats.trunks.size();
      for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
        fps.Add(p.avg_fps);
        freeze.Add(p.avg_freeze_ms);
        e2e.Add(p.avg_e2e_ms);
        tput.Add(p.total_tput_mbps);
      }
    }
    std::printf("%4d %6zu %8.2f %8.1f %8.1f %9.2f %10lld\n", h, trunk_rows,
                fps.mean(), freeze.mean(), e2e.mean(), tput.mean(),
                static_cast<long long>(wall.count()));
    // Structural sanity for CI: the degenerate case must stay trunk-free, a
    // real fabric must expose one stats row per directed trunk per path, and
    // every receiver must keep rendering across the extra trunk hop.
    const size_t want_rows =
        h == 1 ? 0 : static_cast<size_t>(h) * (h - 1) * 2;
    if (trunk_rows != want_rows) {
      std::fprintf(stderr,
                   "hub cell: got %zu trunk rows at %d hubs, want %zu\n",
                   trunk_rows, h, want_rows);
      return 1;
    }
    if (fps.mean() <= 1.0) {
      std::fprintf(stderr,
                   "hub cell: receivers starved at %d hubs (%.2f fps)\n", h,
                   fps.mean());
      return 1;
    }
  }
  return 0;
}

// --trace=<prefix> / CONVERGE_TRACE=<prefix>: one traced constrained-star
// conference; the export carries the hub's per-downlink queue counters
// ("hub" component) and the downlink controllers ("hub_gcc") alongside the
// usual sender-side probes.
bool MaybeCaptureHubTrace(int argc, char** argv) {
  std::string prefix;
  bool churn = false;
  bool layers = false;
  int hubs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) prefix = arg.substr(8);
    if (arg == "--churn") churn = true;
    if (arg == "--layers") layers = true;
    if (arg.rfind("--hubs=", 0) == 0) hubs = std::atoi(arg.c_str() + 7);
  }
  if (prefix.empty()) {
    if (const char* env = std::getenv("CONVERGE_TRACE")) prefix = env;
  }
  if (prefix.empty()) return false;

  const Duration duration =
      bench::FastMode() ? Duration::Seconds(8) : Duration::Seconds(30);
  ConferenceConfig config =
      hubs >= 2 ? CascadeFailoverConfig(9, hubs, duration, 42)
      : churn   ? ChurnConfig(duration, 42)
      : layers  ? LayeredStarConfig(1.0, duration, 42)
                : ConstrainedStarConfig(1.0, duration, 42);
  config.trace_capacity = TraceRecorder::kDefaultCapacity;
  Conference conference(config);
  const ConferenceStats stats = conference.Run();
  const TraceRecorder* trace = conference.trace();

  const std::string json_path = prefix + ".json";
  const std::string csv_path = prefix + ".csv";
  const bool ok =
      trace->WriteChromeTrace(json_path) && trace->WriteCsv(csv_path);
  if (hubs >= 2) {
    int64_t failures = 0, rehomed = 0;
    for (const ConferenceStats::Hub& hb : stats.hubs) {
      failures += hb.failures;
      rehomed += hb.rehomed_onto;
    }
    std::printf(
        "traced %d-hub failover: %lld hub failures, %lld participants "
        "re-homed, %zu trunk rows, %lld events (%lld dropped)\n",
        hubs, static_cast<long long>(failures),
        static_cast<long long>(rehomed), stats.trunks.size(),
        static_cast<long long>(trace->total_emitted()),
        static_cast<long long>(trace->dropped()));
    if (failures == 0 || rehomed == 0) {
      std::fprintf(stderr,
                   "error: traced failover never failed/re-homed a hub\n");
      std::exit(1);
    }
  } else if (churn) {
    double rejoin_tput = 0.0;
    for (const ConferenceStats::Leg& leg : stats.legs) {
      if (leg.incarnation == 1) rejoin_tput += leg.stats.TotalTputMbps();
    }
    std::printf(
        "traced churn mesh: rejoin legs %.2f Mbps total, %lld events "
        "(%lld dropped)\n",
        rejoin_tput, static_cast<long long>(trace->total_emitted()),
        static_cast<long long>(trace->dropped()));
  } else {
    double slow_tput = 0.0;
    for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
      if (p.participant == 3) slow_tput = p.total_tput_mbps;
    }
    std::printf(
        "traced %s star: slow receiver %.2f Mbps, %lld events "
        "(%lld dropped)\n",
        layers ? "layered" : "constrained", slow_tput,
        static_cast<long long>(trace->total_emitted()),
        static_cast<long long>(trace->dropped()));
  }
  std::printf("wrote %s and %s\n", json_path.c_str(), csv_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "error: failed writing trace files\n");
    std::exit(1);
  }
  return true;
}

void SweepTopology(Topology topology, const std::vector<int>& sizes,
                   Duration duration, int seeds) {
  bench::Header(("n-party scaling: " + ToString(topology) + " topology").c_str());
  std::printf("%3s %5s %8s %8s %8s %9s %8s %10s\n", "N", "legs", "fps",
              "freeze", "e2e_ms", "mbps/recv", "drops", "wall_ms");
  for (int n : sizes) {
    std::vector<ConferenceConfig> configs;
    for (int i = 0; i < seeds; ++i) {
      configs.push_back(NpartyConfig(topology, n, duration,
                                     1000 + static_cast<uint64_t>(i) * 77));
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ConferenceStats> results = RunConferences(configs);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    RunningStat fps, freeze, e2e, tput, drops;
    size_t legs = 0;
    for (const ConferenceStats& stats : results) {
      legs = stats.legs.size();
      for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
        fps.Add(p.avg_fps);
        freeze.Add(p.avg_freeze_ms);
        e2e.Add(p.avg_e2e_ms);
        tput.Add(p.total_tput_mbps);
        drops.Add(static_cast<double>(p.frame_drops));
      }
    }
    std::printf("%3d %5zu %8.2f %8.1f %8.1f %9.2f %8.1f %10lld\n", n, legs,
                fps.mean(), freeze.mean(), e2e.mean(), tput.mean(),
                drops.mean(), static_cast<long long>(wall.count()));
  }
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool churn_only = false;
  bool cross_only = false;
  bool layers_only = false;
  int hubs = 0;
  // CC flags are parsed before the trace short-circuit so a traced run
  // (`--trace=... --cc=nada`) exercises the requested controller too.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--churn") churn_only = true;
    if (arg == "--cross-traffic") cross_only = true;
    if (arg == "--layers") layers_only = true;
    if (arg.rfind("--hubs=", 0) == 0) {
      hubs = std::atoi(arg.c_str() + 7);
      if (hubs < 1) {
        std::fprintf(stderr, "bad --hubs value: %s\n", arg.c_str() + 7);
        return 2;
      }
    }
    if (arg.rfind("--cc=", 0) == 0) {
      if (!ParseCcAlgorithm(arg.substr(5), &g_cc_algorithm)) {
        std::fprintf(stderr, "unknown --cc value: %s\n", arg.c_str() + 5);
        return 2;
      }
    }
    if (arg.rfind("--coupling=", 0) == 0) {
      if (!ParseCcCoupling(arg.substr(11), &g_cc_coupling)) {
        std::fprintf(stderr, "unknown --coupling value: %s\n",
                     arg.c_str() + 11);
        return 2;
      }
    }
  }

  if (MaybeCaptureHubTrace(argc, argv)) return 0;
  if (g_cc_algorithm != CcAlgorithm::kGcc ||
      g_cc_coupling != CcCoupling::kUncoupled) {
    std::printf("congestion control: %s, coupling: %s\n",
                ToString(g_cc_algorithm).c_str(),
                ToString(g_cc_coupling).c_str());
  }
  if (churn_only || cross_only || layers_only) {
    const Duration cell_duration =
        smoke || bench::FastMode() ? Duration::Seconds(10)
                                   : Duration::Seconds(30);
    int rc = 0;
    if (churn_only) rc = ChurnCell(cell_duration);
    if (rc == 0 && cross_only) rc = CrossTrafficCell(cell_duration);
    if (rc == 0 && layers_only) rc = LayeredStarCell(cell_duration);
    return rc;
  }
  if (hubs > 0) {
    const bool fast = smoke || bench::FastMode();
    return HubSweepCell(hubs, /*participants=*/fast ? 6 : 12,
                        fast ? Duration::Seconds(6) : Duration::Seconds(30),
                        fast ? 1 : bench::NumSeeds());
  }

  std::vector<int> sizes;
  Duration duration = Duration::Seconds(0);
  int seeds = 0;
  if (smoke) {
    sizes = {2, 3};
    duration = Duration::Seconds(4);
    seeds = 1;
  } else {
    sizes = {2, 3, 4, 5, 6};
    duration = bench::FastMode() ? Duration::Seconds(10) : Duration::Seconds(60);
    seeds = bench::NumSeeds();
  }

  SweepTopology(Topology::kMesh, sizes, duration, seeds);
  SweepTopology(Topology::kStar, sizes, duration, seeds);
  if (int rc = ConstrainedStarCell(smoke ? Duration::Seconds(6) : duration);
      rc != 0) {
    return rc;
  }
  if (int rc = LayeredStarCell(smoke ? Duration::Seconds(10) : duration);
      rc != 0) {
    return rc;
  }
  const Duration cell_duration = smoke ? Duration::Seconds(10) : duration;
  if (int rc = ChurnCell(cell_duration); rc != 0) return rc;
  if (int rc = CrossTrafficCell(cell_duration); rc != 0) return rc;

  if (smoke) {
    // Cheap structural sanity for CI: a 3-party mesh must produce 6 legs and
    // per-participant aggregates for everyone.
    Conference conference(
        NpartyConfig(Topology::kMesh, 3, Duration::Seconds(2), 7));
    const ConferenceStats stats = conference.Run();
    if (stats.legs.size() != 6 || stats.participants.size() != 3) {
      std::fprintf(stderr, "smoke failure: got %zu legs / %zu participants\n",
                   stats.legs.size(), stats.participants.size());
      return 1;
    }
    std::printf("\nsmoke ok: %s\n",
                ConferenceStatsToJson(stats, 0).substr(0, 60).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace converge

int main(int argc, char** argv) { return converge::Main(argc, argv); }
