// N-party scaling sweep over the conference runtime: per-participant QoE and
// driver wall-clock versus conference size, for both topologies. Mesh cost
// grows with the number of directed legs, N*(N-1); star grows with uplinks
// plus fan-out, so the crossover between the two is the quantity of interest.
//
// A second cell pins the PR 5 acceptance scenario: a star with one slow
// receiver (1 Mbps downlinks next to 10 Mbps peers), reporting per-downlink
// hub state (GCC target, thin/evict counts, queue highwater) so regressions
// in the forwarder's congestion loop show up as table diffs.
//
//   --smoke            tiny sweep (N in {2,3}, 1 seed, 4 s calls) plus a
//                      short constrained-star cell, used as a CI
//                      build-and-run sanity check
//   --trace=<prefix>   run ONE traced constrained-star conference and write
//                      <prefix>.json (Perfetto / chrome://tracing) and
//                      <prefix>.csv with the hub queue + hub_gcc series
//   CONVERGE_BENCH_FAST=1 / CONVERGE_BENCH_SEEDS / CONVERGE_BENCH_JOBS as in
//   the other benches
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "session/conference.h"
#include "session/stats_json.h"

namespace converge {
namespace {

ConferenceConfig NpartyConfig(Topology topology, int participants,
                              Duration duration, uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = topology;
  config.participants.assign(static_cast<size_t>(participants),
                             ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(4);
  config.duration = duration;
  config.seed = seed;

  // Every participant: a WiFi-like and a cellular-like access path. Star
  // downlinks out of the forwarder are provisioned for the aggregate of the
  // N-1 forwarded senders (the SFU sits in well-connected infrastructure).
  const int fanout = participants - 1;
  config.paths_for_edge = [fanout](int from, int) {
    auto path = [](const char* name, double mbps, int delay_ms, double loss) {
      PathSpec spec;
      spec.name = name;
      spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
      spec.prop_delay = Duration::Millis(delay_ms);
      if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
      return spec;
    };
    if (from == kHubId) {
      return std::vector<PathSpec>{
          path("dl-wifi", 10.0 * fanout, 10, 0.0),
          path("dl-cell", 8.0 * fanout, 20, 0.0)};
    }
    return std::vector<PathSpec>{path("wifi", 7.0, 20, 0.01),
                                 path("cell", 5.0, 40, 0.005)};
  };
  return config;
}

// One sender (3 Mbps cap), three receivers; receiver 3's downlink pair is
// scaled by slow_mbps (1.0 = the constrained acceptance scenario, 10.0 = the
// unconstrained baseline). Mirrors the fixture in tests/conference_test.cc.
ConferenceConfig ConstrainedStarConfig(double slow_mbps, Duration duration,
                                       uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(4, ParticipantSpec{});
  config.participants[0].receives = false;
  for (int p = 1; p < 4; ++p) config.participants[p].sends = false;
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = duration;
  config.seed = seed;
  config.paths_for_edge = [slow_mbps](int from, int to) {
    auto path = [](const char* name, double mbps, int delay_ms) {
      PathSpec spec;
      spec.name = name;
      spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
      spec.prop_delay = Duration::Millis(delay_ms);
      return spec;
    };
    if (from == kHubId) {
      const double scale = to == 3 ? slow_mbps : 10.0;
      return std::vector<PathSpec>{path("d0", 0.6 * scale, 15),
                                   path("d1", 0.4 * scale, 25)};
    }
    return std::vector<PathSpec>{path("u0", 6.0, 20), path("u1", 4.0, 35)};
  };
  return config;
}

// Constrained vs unconstrained star, with the hub's per-downlink rows. The
// interesting deltas: receiver 3's summed target_kbps converging toward its
// 1 Mbps downlink pair, thin/evict counters absorbing the excess, and
// receivers 1-2 matching the baseline row.
int ConstrainedStarCell(Duration duration) {
  bench::Header("constrained-downlink star: 1 sender @3 Mbps, receiver 3 slow");
  for (const double slow : {1.0, 10.0}) {
    Conference conference(ConstrainedStarConfig(slow, duration, 42));
    const ConferenceStats stats = conference.Run();
    std::printf("\nslow-downlink scale %.0fx (receiver 3 pair = %.1f Mbps)\n",
                slow, slow);
    std::printf("  %4s %8s %8s %8s %8s\n", "recv", "fps", "freeze", "e2e_ms",
                "mbps");
    for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
      if (p.inbound_streams == 0) continue;
      std::printf("  %4d %8.2f %8.1f %8.1f %8.2f\n", p.participant, p.avg_fps,
                  p.avg_freeze_ms, p.avg_e2e_ms, p.total_tput_mbps);
    }
    std::printf("  %4s %4s %8s %7s %6s %6s %6s %5s %9s %9s\n", "recv", "path",
                "tgt_kbps", "srtt_ms", "loss", "thin", "evict", "plis",
                "max_q_kB", "max_q_ms");
    for (const ConferenceStats::Downlink& d : stats.downlinks) {
      std::printf("  %4d %4d %8.0f %7.1f %6.3f %6lld %6lld %5lld %9.1f %9.1f\n",
                  d.receiver, static_cast<int>(d.path), d.target_kbps,
                  d.srtt_ms, d.loss,
                  static_cast<long long>(d.forwarder.frames_thinned),
                  static_cast<long long>(d.forwarder.frames_evicted),
                  static_cast<long long>(d.forwarder.plis_relayed),
                  d.forwarder.max_queue_bytes / 1000.0,
                  d.forwarder.max_queue_delay_ms);
    }
    // Structural sanity for CI: the hub must expose one row per
    // (receiver, path) and the constrained run must actually thin.
    if (stats.downlinks.size() != 6) {
      std::fprintf(stderr, "constrained cell: got %zu downlink rows, want 6\n",
                   stats.downlinks.size());
      return 1;
    }
    if (slow == 1.0) {
      int64_t thinned = 0;
      for (const ConferenceStats::Downlink& d : stats.downlinks) {
        if (d.receiver == 3) thinned += d.forwarder.frames_thinned;
      }
      if (thinned == 0) {
        std::fprintf(stderr,
                     "constrained cell: slow receiver was never thinned\n");
        return 1;
      }
    }
  }
  return 0;
}

// --trace=<prefix> / CONVERGE_TRACE=<prefix>: one traced constrained-star
// conference; the export carries the hub's per-downlink queue counters
// ("hub" component) and the downlink controllers ("hub_gcc") alongside the
// usual sender-side probes.
bool MaybeCaptureHubTrace(int argc, char** argv) {
  std::string prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) prefix = arg.substr(8);
  }
  if (prefix.empty()) {
    if (const char* env = std::getenv("CONVERGE_TRACE")) prefix = env;
  }
  if (prefix.empty()) return false;

  ConferenceConfig config = ConstrainedStarConfig(
      1.0,
      bench::FastMode() ? Duration::Seconds(8) : Duration::Seconds(30), 42);
  config.trace_capacity = TraceRecorder::kDefaultCapacity;
  Conference conference(config);
  const ConferenceStats stats = conference.Run();
  const TraceRecorder* trace = conference.trace();

  const std::string json_path = prefix + ".json";
  const std::string csv_path = prefix + ".csv";
  const bool ok =
      trace->WriteChromeTrace(json_path) && trace->WriteCsv(csv_path);
  double slow_tput = 0.0;
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    if (p.participant == 3) slow_tput = p.total_tput_mbps;
  }
  std::printf(
      "traced constrained star: slow receiver %.2f Mbps, %lld events "
      "(%lld dropped)\n",
      slow_tput, static_cast<long long>(trace->total_emitted()),
      static_cast<long long>(trace->dropped()));
  std::printf("wrote %s and %s\n", json_path.c_str(), csv_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "error: failed writing trace files\n");
    std::exit(1);
  }
  return true;
}

void SweepTopology(Topology topology, const std::vector<int>& sizes,
                   Duration duration, int seeds) {
  bench::Header(("n-party scaling: " + ToString(topology) + " topology").c_str());
  std::printf("%3s %5s %8s %8s %8s %9s %8s %10s\n", "N", "legs", "fps",
              "freeze", "e2e_ms", "mbps/recv", "drops", "wall_ms");
  for (int n : sizes) {
    std::vector<ConferenceConfig> configs;
    for (int i = 0; i < seeds; ++i) {
      configs.push_back(NpartyConfig(topology, n, duration,
                                     1000 + static_cast<uint64_t>(i) * 77));
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ConferenceStats> results = RunConferences(configs);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    RunningStat fps, freeze, e2e, tput, drops;
    size_t legs = 0;
    for (const ConferenceStats& stats : results) {
      legs = stats.legs.size();
      for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
        fps.Add(p.avg_fps);
        freeze.Add(p.avg_freeze_ms);
        e2e.Add(p.avg_e2e_ms);
        tput.Add(p.total_tput_mbps);
        drops.Add(static_cast<double>(p.frame_drops));
      }
    }
    std::printf("%3d %5zu %8.2f %8.1f %8.1f %9.2f %8.1f %10lld\n", n, legs,
                fps.mean(), freeze.mean(), e2e.mean(), tput.mean(),
                drops.mean(), static_cast<long long>(wall.count()));
  }
}

int Main(int argc, char** argv) {
  if (MaybeCaptureHubTrace(argc, argv)) return 0;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<int> sizes;
  Duration duration = Duration::Seconds(0);
  int seeds = 0;
  if (smoke) {
    sizes = {2, 3};
    duration = Duration::Seconds(4);
    seeds = 1;
  } else {
    sizes = {2, 3, 4, 5, 6};
    duration = bench::FastMode() ? Duration::Seconds(10) : Duration::Seconds(60);
    seeds = bench::NumSeeds();
  }

  SweepTopology(Topology::kMesh, sizes, duration, seeds);
  SweepTopology(Topology::kStar, sizes, duration, seeds);
  if (int rc = ConstrainedStarCell(smoke ? Duration::Seconds(6) : duration);
      rc != 0) {
    return rc;
  }

  if (smoke) {
    // Cheap structural sanity for CI: a 3-party mesh must produce 6 legs and
    // per-participant aggregates for everyone.
    Conference conference(
        NpartyConfig(Topology::kMesh, 3, Duration::Seconds(2), 7));
    const ConferenceStats stats = conference.Run();
    if (stats.legs.size() != 6 || stats.participants.size() != 3) {
      std::fprintf(stderr, "smoke failure: got %zu legs / %zu participants\n",
                   stats.legs.size(), stats.participants.size());
      return 1;
    }
    std::printf("\nsmoke ok: %s\n",
                ConferenceStatsToJson(stats, 0).substr(0, 60).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace converge

int main(int argc, char** argv) { return converge::Main(argc, argv); }
