// Appendix D (Figures 20-22): bandwidth dynamics of the three scenarios.
// Prints summary statistics and a per-second dump of each generated trace,
// and writes them to CSV for plotting.
#include "bench/bench_util.h"
#include "util/csv.h"

using namespace converge;
using namespace converge::bench;

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figures 20-22 — bandwidth traces (stationary / walking / driving)");

  const uint64_t seed = 9;
  TraceParams params;
  params.length = Duration::Seconds(180);

  struct Entry {
    Scenario scenario;
    std::vector<Carrier> carriers;
  };
  const std::vector<Entry> entries = {
      {Scenario::kStationary, {Carrier::kWifi, Carrier::kTmobile}},
      {Scenario::kWalking, {Carrier::kWifi, Carrier::kTmobile}},
      {Scenario::kDriving, {Carrier::kVerizon, Carrier::kTmobile}},
  };

  for (const Entry& entry : entries) {
    std::printf("\n--- %s ---\n", ToString(entry.scenario).c_str());
    std::vector<BandwidthTrace> traces;
    std::vector<std::string> header = {"t_s"};
    for (size_t c = 0; c < entry.carriers.size(); ++c) {
      traces.push_back(GenerateBandwidth(entry.scenario, entry.carriers[c],
                                         seed + c, params));
      header.push_back(ToString(entry.carriers[c]));
    }
    header.push_back("sum");

    const std::string csv_name =
        "fig20_22_" + ToString(entry.scenario) + ".csv";
    CsvWriter csv(csv_name, header);

    std::vector<RunningStat> stats(traces.size());
    RunningStat sum_stat;
    double below_10_s = 0;  // seconds where even the sum < 10 Mbps
    for (int t = 0; t < 180; ++t) {
      std::vector<double> row = {static_cast<double>(t)};
      double sum = 0;
      for (size_t c = 0; c < traces.size(); ++c) {
        const double mbps = traces[c].CapacityAt(Timestamp::Seconds(t)).mbps();
        stats[c].Add(mbps);
        row.push_back(mbps);
        sum += mbps;
      }
      sum_stat.Add(sum);
      if (sum < 10.0) below_10_s += 1.0;
      row.push_back(sum);
      csv.Row(row);
    }

    for (size_t c = 0; c < traces.size(); ++c) {
      std::printf("  %-9s mean=%6.2f Mbps  std=%5.2f  min=%5.2f  max=%6.2f\n",
                  ToString(entry.carriers[c]).c_str(), stats[c].mean(),
                  stats[c].stddev(), stats[c].min(), stats[c].max());
    }
    std::printf("  %-9s mean=%6.2f Mbps  min=%5.2f   (< 10 Mbps for %.0f s "
                "of 180 s)\n",
                "sum", sum_stat.mean(), sum_stat.min(), below_10_s);
    std::printf("  (trace written to %s)\n", csv_name.c_str());
  }

  std::printf("\nPaper shape check (Appendix D): stationary traces nearly "
              "always cover 10 Mbps;\nwalking dips below occasionally; "
              "driving swings hard and even the sum of both\ncarriers "
              "briefly fails to reach 10 Mbps.\n");
  return 0;
}
