// Fleet capacity bench: how many concurrent conferences the simulator
// sustains per core, and at what memory cost.
//
// Drives sim/fleet.h with N identical (but independently seeded) 3-party
// calls, interleaved in fleet-time quanta across shards, and reports the
// throughput envelope — simulated seconds per wall second, calls per core,
// peak RSS — as machine-readable JSON (BENCH_fleet.json).
//
//   --smoke           CI envelope: 1000 concurrent 3-party calls, 1 s each
//   --calls=N         number of conferences            (default 1000)
//   --parties=N       participants per conference      (default 3)
//   --duration=SEC    simulated seconds per call       (default 1.0)
//   --shards=N        worker shards; 0 = DefaultJobs() (default 0)
//   --quantum=MS      fleet-time slice                 (default 250)
//   --churn=MS        staggers joins: call i joins at (i%16)*churn ms, so
//                     calls enter and leave mid-run    (default 0)
//   --hubs=N          cascade template: each call is a star over N regional
//                     hubs (participants round-robin) whose LAST hub fails
//                     mid-call, so every call re-homes participants under
//                     load; 1 = the historical mesh template (default 1)
//   --out=PATH        envelope JSON                    (default BENCH_fleet.json)
//   --stats=PATH      per-call digest JSON, byte-identical for any --shards
//                     value (CI diffs shards=1 against shards=8); empty =
//                     not written
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "sim/fleet.h"
#include "util/parallel.h"

namespace converge {
namespace {

ConferenceConfig FleetCallConfig(int parties, int hubs, Duration duration,
                                 uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = hubs > 1 ? Topology::kStar : Topology::kMesh;
  config.participants.assign(static_cast<size_t>(parties),
                             ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(2);
  config.duration = duration;
  config.seed = seed;

  PathSpec wifi;
  wifi.name = "wifi";
  wifi.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(7));
  wifi.prop_delay = Duration::Millis(20);
  PathSpec cell;
  cell.name = "cell";
  cell.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(5));
  cell.prop_delay = Duration::Millis(40);
  config.paths = {wifi, cell};
  if (hubs > 1) {
    // Cascaded fabric under churn pressure: round-robin homing, wide trunks,
    // and the last hub failing mid-call so every call exercises the
    // re-homing machinery while the fleet driver interleaves it.
    config.num_hubs = hubs;
    PathSpec trunk = wifi;
    trunk.name = "trunk";
    trunk.capacity = BandwidthTrace::Constant(
        DataRate::MegabitsPerSec(2.0 * parties + 4.0));
    trunk.prop_delay = Duration::Millis(10);
    PathSpec trunk2 = trunk;
    trunk2.name = "trunk2";
    trunk2.prop_delay = Duration::Millis(20);
    config.trunk_paths = {trunk, trunk2};
    FaultPlan outage;
    outage.Add(FaultEvent::Outage(Timestamp::Zero() + duration * 0.4,
                                  duration * 0.3));
    config.hub_fault_plans.resize(static_cast<size_t>(hubs));
    config.hub_fault_plans[static_cast<size_t>(hubs - 1)] = outage;
  }
  return config;
}

int64_t FlagInt(const char* arg, const char* name, int64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoll(arg + len + 1);
  }
  return fallback;
}

bool FlagStr(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

void WriteEnvelope(const std::string& path, const FleetResult& result,
                   int parties, int hubs, double duration_s,
                   int64_t quantum_ms, int64_t churn_ms, bool smoke) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  // Mean per-call digest so the envelope alone flags QoE-level regressions.
  double fps = 0.0;
  double tput = 0.0;
  int64_t drops = 0;
  int64_t rehomed = 0;
  for (const FleetCallSummary& c : result.calls) {
    fps += c.avg_fps;
    tput += c.total_tput_mbps;
    drops += c.frame_drops;
    rehomed += c.rehomed;
  }
  const double n = result.calls.empty()
                       ? 1.0
                       : static_cast<double>(result.calls.size());
  std::fprintf(f,
               "{\n"
               "  \"name\": \"bench_fleet\",\n"
               "  \"smoke\": %s,\n"
               "  \"calls\": %zu,\n"
               "  \"parties\": %d,\n"
               "  \"hubs\": %d,\n"
               "  \"duration_s\": %.3f,\n"
               "  \"shards\": %d,\n"
               "  \"quantum_ms\": %" PRId64 ",\n"
               "  \"churn_ms\": %" PRId64 ",\n"
               "  \"max_concurrent\": %d,\n"
               "  \"sim_seconds\": %.3f,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"sim_per_wall\": %.3f,\n"
               "  \"calls_per_core\": %.1f,\n"
               "  \"peak_rss_kb\": %" PRId64 ",\n"
               "  \"mean_avg_fps\": %.3f,\n"
               "  \"mean_tput_mbps\": %.3f,\n"
               "  \"total_frame_drops\": %" PRId64 ",\n"
               "  \"total_rehomed\": %" PRId64 "\n"
               "}\n",
               smoke ? "true" : "false", result.calls.size(), parties, hubs,
               duration_s, result.shards, quantum_ms, churn_ms,
               result.max_concurrent, result.sim_seconds,
               result.wall_seconds, result.sim_per_wall,
               result.calls_per_core, result.peak_rss_kb, fps / n, tput / n,
               drops, rehomed);
  std::fclose(f);
}

void WritePerCallStats(const std::string& path, const FleetResult& result) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  // %.17g round-trips doubles exactly, so two runs agree byte-for-byte iff
  // the per-call results agree bit-for-bit — the shard-independence check.
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < result.calls.size(); ++i) {
    const FleetCallSummary& c = result.calls[i];
    std::fprintf(f,
                 "  {\"i\": %d, \"fps\": %.17g, \"freeze_ms\": %.17g, "
                 "\"e2e_ms\": %.17g, \"tput_mbps\": %.17g, "
                 "\"drops\": %" PRId64 ", \"kf\": %" PRId64
                 ", \"pkts\": %" PRId64 ", \"frames\": %" PRId64
                 ", \"rehomed\": %" PRId64 "}%s\n",
                 c.index, c.avg_fps, c.avg_freeze_ms, c.avg_e2e_ms,
                 c.total_tput_mbps, c.frame_drops, c.keyframe_requests,
                 c.media_packets_sent, c.frames_encoded, c.rehomed,
                 i + 1 < result.calls.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int64_t calls = 1000;
  int64_t parties = 3;
  double duration_s = 1.0;
  int64_t shards = 0;
  int64_t quantum_ms = 250;
  int64_t churn_ms = 0;
  int64_t hubs = 1;
  std::string out = "BENCH_fleet.json";
  std::string stats_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
      continue;
    }
    calls = FlagInt(arg, "--calls", calls);
    parties = FlagInt(arg, "--parties", parties);
    shards = FlagInt(arg, "--shards", shards);
    quantum_ms = FlagInt(arg, "--quantum", quantum_ms);
    churn_ms = FlagInt(arg, "--churn", churn_ms);
    hubs = FlagInt(arg, "--hubs", hubs);
    std::string v;
    if (FlagStr(arg, "--duration", &v)) duration_s = std::atof(v.c_str());
    FlagStr(arg, "--out", &out);
    FlagStr(arg, "--stats", &stats_path);
  }
  if (smoke) {
    // CI envelope: 1k concurrent 3-party calls, short enough for every run.
    // The template (and so the pinned envelope) stays single-hub unless the
    // caller asks for the cascade variant explicitly.
    calls = 1000;
    parties = 3;
    duration_s = 1.0;
  }
  if (hubs < 1) {
    std::fprintf(stderr, "bad --hubs value: %" PRId64 "\n", hubs);
    return 2;
  }

  FleetConfig config;
  config.shards = static_cast<int>(shards);
  config.quantum = Duration::Millis(quantum_ms);
  config.calls.reserve(static_cast<size_t>(calls));
  for (int64_t i = 0; i < calls; ++i) {
    config.calls.push_back(FleetCallConfig(
        static_cast<int>(parties), static_cast<int>(hubs),
        Duration::Seconds(duration_s), static_cast<uint64_t>(i + 1)));
    if (churn_ms > 0) {
      config.start_offsets.push_back(Duration::Millis((i % 16) * churn_ms));
    }
  }

  const FleetResult result = RunFleet(config);
  WriteEnvelope(out, result, static_cast<int>(parties),
                static_cast<int>(hubs), duration_s, quantum_ms, churn_ms,
                smoke);
  if (!stats_path.empty()) WritePerCallStats(stats_path, result);

  std::printf(
      "fleet: %zu x %" PRId64
      "-party calls, %d shards, peak %d concurrent\n"
      "  sim %.1f s in wall %.1f s => %.1fx realtime, %.1f calls/core, "
      "peak RSS %.1f MiB\n",
      result.calls.size(), parties, result.shards, result.max_concurrent,
      result.sim_seconds, result.wall_seconds, result.sim_per_wall,
      result.calls_per_core,
      static_cast<double>(result.peak_rss_kb) / 1024.0);
  return 0;
}

}  // namespace
}  // namespace converge

int main(int argc, char** argv) { return converge::Main(argc, argv); }
