// Figure 3 + Table 1: "Multipath is not enough" (§2.3).
//
// Driving traces (Verizon + T-Mobile), 1-3 camera streams, comparing legacy
// WebRTC against the multipath WebRTC variants (M-RTP, M-TPUT, SRTT) and
// Converge:
//   Fig 3(a) normalized FPS, (b) freeze duration, (c) FEC overhead
//   Table 1  frame drops and keyframe requests (mean +- std over seeds)
#include "bench/bench_util.h"

using namespace converge;
using namespace converge::bench;

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figure 3 + Table 1 — WebRTC and multipath variants vs Converge "
         "(driving, 1-3 streams)");

  const std::vector<Variant> variants = {Variant::kWebRtcPath1,  // T-Mobile
                                         Variant::kMrtp, Variant::kMtput,
                                         Variant::kSrtt, Variant::kConverge};

  struct Cell {
    Aggregate agg;
  };
  std::vector<std::vector<Cell>> results(variants.size(),
                                         std::vector<Cell>(3));

  std::vector<std::function<void()>> cells;
  for (size_t v = 0; v < variants.size(); ++v) {
    for (int streams = 1; streams <= 3; ++streams) {
      cells.push_back([&, v, streams] {
        CallConfig config;
        config.variant = variants[v];
        config.num_streams = streams;
        config.duration = CallLength();
        results[v][streams - 1].agg = RunMany(
            config,
            [](uint64_t seed) {
              return ScenarioPaths(Scenario::kDriving, seed);
            },
            NumSeeds());
        std::fprintf(stderr, "  done %s x %d streams\n",
                     ToString(variants[v]).c_str(), streams);
      });
    }
  }
  RunCells(std::move(cells));

  auto print_metric = [&](const char* title,
                          const std::function<double(const Aggregate&)>& get,
                          const char* fmt) {
    std::printf("\n%s\n%-12s %10s %10s %10s\n", title, "variant", "1 cam",
                "2 cams", "3 cams");
    for (size_t v = 0; v < variants.size(); ++v) {
      std::printf("%-12s", ToString(variants[v]).c_str());
      for (int s = 0; s < 3; ++s) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), fmt, get(results[v][s].agg));
        std::printf(" %10s", buf);
      }
      std::printf("\n");
    }
  };

  print_metric("Figure 3(a): normalized FPS (fps / 24; >=1.0 is good)",
               [](const Aggregate& a) { return NormFps(a.fps.mean()); },
               "%.2f");
  print_metric("Figure 3(b): average freeze duration (s)",
               [](const Aggregate& a) { return a.freeze_ms.mean() / 1000.0; },
               "%.1f");
  print_metric("Figure 3(c): FEC overhead (%)",
               [](const Aggregate& a) { return a.fec_overhead.mean() * 100; },
               "%.1f");

  std::printf("\nTable 1: average number of frame drops (mean +- std)\n");
  std::printf("%-9s", "#streams");
  for (const Variant v : variants) std::printf(" %16s", ToString(v).c_str());
  std::printf("\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("%-9d", s + 1);
    for (size_t v = 0; v < variants.size(); ++v) {
      std::printf(" %16s", MeanStd(results[v][s].agg.frame_drops, "%.0f").c_str());
    }
    std::printf("\n");
  }
  std::printf("\nTable 1: total number of keyframe requests (mean +- std)\n");
  std::printf("%-9s", "#streams");
  for (const Variant v : variants) std::printf(" %16s", ToString(v).c_str());
  std::printf("\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("%-9d", s + 1);
    for (size_t v = 0; v < variants.size(); ++v) {
      std::printf(" %16s",
                  MeanStd(results[v][s].agg.keyframe_requests, "%.1f").c_str());
    }
    std::printf("\n");
  }

  std::printf("\nPaper shape check: multipath variants should drop far more "
              "frames and request\nmore keyframes than single-path WebRTC, "
              "while Converge matches WebRTC's drops\nwith higher FPS and "
              "lower FEC overhead.\n");
  return 0;
}
