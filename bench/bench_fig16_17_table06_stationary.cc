// Appendix A (Figures 16/17, Table 6): the stationary scenario.
// Converge on WiFi + T-Mobile vs single-path WebRTC-W / WebRTC-T.
#include "bench/bench_util.h"
#include "util/csv.h"

using namespace converge;
using namespace converge::bench;

int main(int argc, char** argv) {
  if (converge::bench::MaybeCaptureTrace(argc, argv)) return 0;
  Header("Figures 16/17 + Table 6 — stationary scenario (WiFi + T-Mobile)");

  const uint64_t seed = 3100;
  auto make = [&](Variant v) {
    CallConfig config;
    config.variant = v;
    config.paths = ScenarioPaths(Scenario::kStationary, seed);
    config.duration = CallLength();
    config.seed = seed;
    return config;
  };
  const std::vector<CallStats> figure_calls =
      RunCalls({make(Variant::kConverge), make(Variant::kWebRtcPath0),
                make(Variant::kWebRtcPath1)});
  const CallStats& conv = figure_calls[0];
  const CallStats& wifi = figure_calls[1];
  const CallStats& tmob = figure_calls[2];

  std::printf("\nFigure 16: per-second tput (Mbps) / fps / E2E (ms)\n");
  std::printf("%5s | %6s %5s %6s | %6s %5s %6s | %6s %5s %6s\n", "t",
              "Cv", "fps", "e2e", "W-W", "fps", "e2e", "W-T", "fps", "e2e");
  CsvWriter csv("fig16_stationary.csv",
                {"t_s", "cv_tput", "cv_fps", "cv_e2e", "w_tput", "w_fps",
                 "w_e2e", "t_tput", "t_fps", "t_e2e"});
  const size_t n = std::min(
      {conv.time_series.size(), wifi.time_series.size(), tmob.time_series.size()});
  for (size_t i = 0; i < n; ++i) {
    const auto& c = conv.time_series[i];
    const auto& w = wifi.time_series[i];
    const auto& t = tmob.time_series[i];
    csv.Row({c.t_s, c.tput_mbps, c.fps, c.e2e_ms, w.tput_mbps, w.fps, w.e2e_ms,
             t.tput_mbps, t.fps, t.e2e_ms});
    if (i % 5 == 0) {
      std::printf("%5.0f | %6.2f %5.1f %6.0f | %6.2f %5.1f %6.0f | %6.2f %5.1f %6.0f\n",
                  c.t_s, c.tput_mbps, c.fps, c.e2e_ms, w.tput_mbps, w.fps,
                  w.e2e_ms, t.tput_mbps, t.fps, t.e2e_ms);
    }
  }
  std::printf("(full series written to fig16_stationary.csv)\n");

  // Figure 17 + Table 6 across seeds and stream counts.
  const std::vector<std::pair<Variant, std::string>> systems = {
      {Variant::kWebRtcPath0, "WebRTC-W"},
      {Variant::kWebRtcPath1, "WebRTC-T"},
      {Variant::kConverge, "Converge"}};
  std::vector<std::vector<Aggregate>> agg(systems.size(),
                                          std::vector<Aggregate>(3));
  std::vector<std::function<void()>> cells;
  for (size_t i = 0; i < systems.size(); ++i) {
    for (int streams = 1; streams <= 3; ++streams) {
      cells.push_back([&, i, streams] {
        CallConfig config;
        config.variant = systems[i].first;
        config.num_streams = streams;
        config.duration = CallLength();
        agg[i][streams - 1] = RunMany(
            config,
            [](uint64_t s) { return ScenarioPaths(Scenario::kStationary, s); },
            NumSeeds());
        std::fprintf(stderr, "  done %s x %d\n", systems[i].second.c_str(),
                     streams);
      });
    }
  }
  RunCells(std::move(cells));

  std::printf("\nFigure 17: normalized QoE (1 camera)\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "system", "tput/10M", "fps/24",
              "stall(s)", "QP/60");
  for (size_t i = 0; i < systems.size(); ++i) {
    const Aggregate& a = agg[i][0];
    std::printf("%-10s %10.2f %10.2f %10.1f %10.2f\n",
                systems[i].second.c_str(), NormTput(a.tput_mbps.mean(), 1),
                NormFps(a.fps.mean()), a.freeze_ms.mean() / 1000.0,
                NormQp(a.qp.mean()));
  }

  auto table = [&](const char* title,
                   const std::function<std::string(const Aggregate&)>& cell) {
    std::printf("\nTable 6: %s\n%-4s", title, "#");
    for (const auto& [v, name] : systems) std::printf(" %18s", name.c_str());
    std::printf("\n");
    for (int s = 0; s < 3; ++s) {
      std::printf("%-4d", s + 1);
      for (size_t i = 0; i < systems.size(); ++i) {
        std::printf(" %18s", cell(agg[i][s]).c_str());
      }
      std::printf("\n");
    }
  };
  table("end-to-end latency (ms)", [](const Aggregate& a) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f +- %.0f", a.e2e_ms.mean(),
                  a.e2e_ms.stddev());
    return std::string(buf);
  });
  table("FEC overhead (%)", [](const Aggregate& a) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f +- %.2f", a.fec_overhead.mean() * 100,
                  a.fec_overhead.stddev() * 100);
    return std::string(buf);
  });
  table("FEC utilization (%)", [](const Aggregate& a) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f +- %.1f",
                  a.fec_utilization.mean() * 100,
                  a.fec_utilization.stddev() * 100);
    return std::string(buf);
  });

  std::printf("\nPaper shape check: with stable WiFi, Converge ~= WebRTC-W "
              "on FPS/stalls but\nbeats WebRTC-T clearly; Converge's "
              "throughput gain grows with camera count;\nFEC overhead is "
              "minimal for everyone (little loss when stationary).\n");
  return 0;
}
