// Umbrella header: everything a downstream application needs to run
// Converge calls, swap schedulers/FEC controllers, negotiate sessions, and
// consume results.
//
//   #include "converge.h"
//
// See examples/quickstart.cpp for the 20-line version.
#pragma once

// Session layer: calls, endpoints, metrics, JSON export.
#include "session/call.h"           // IWYU pragma: export
#include "session/metrics.h"        // IWYU pragma: export
#include "session/receiver_endpoint.h"  // IWYU pragma: export
#include "session/sender.h"         // IWYU pragma: export
#include "session/stats_json.h"     // IWYU pragma: export

// The Converge contribution.
#include "core/path_manager.h"           // IWYU pragma: export
#include "core/video_aware_scheduler.h"  // IWYU pragma: export

// Baseline schedulers.
#include "schedulers/connection_migration.h"  // IWYU pragma: export
#include "schedulers/ecf_scheduler.h"         // IWYU pragma: export
#include "schedulers/mprtp_scheduler.h"       // IWYU pragma: export
#include "schedulers/mtput_scheduler.h"       // IWYU pragma: export
#include "schedulers/scheduler.h"             // IWYU pragma: export
#include "schedulers/single_path.h"           // IWYU pragma: export
#include "schedulers/srtt_scheduler.h"        // IWYU pragma: export

// FEC.
#include "fec/converge_fec_controller.h"  // IWYU pragma: export
#include "fec/webrtc_fec_controller.h"    // IWYU pragma: export
#include "fec/xor_fec.h"                  // IWYU pragma: export

// Signaling (SDP / ICE / negotiation with legacy fallback).
#include "signaling/negotiation.h"  // IWYU pragma: export

// Network emulation & traces.
#include "net/network.h"       // IWYU pragma: export
#include "trace/generators.h"  // IWYU pragma: export
