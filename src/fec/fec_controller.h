// FEC rate controllers: decide how many parity packets protect the media
// packets of one frame on one path.
#pragma once

#include "net/path.h"
#include "rtp/rtp_packet.h"

namespace converge {

class FecController {
 public:
  virtual ~FecController() = default;

  // Number of parity packets for `media_packets` media packets of a frame of
  // kind `kind` headed for `path`, whose measured loss is `path_loss`.
  // `aggregate_loss` is the media-weighted loss across all paths (what the
  // stock WebRTC controller keys on).
  virtual int NumFecPackets(int media_packets, FrameKind kind, PathId path,
                            double path_loss, double aggregate_loss) = 0;

  // NACK count observed for `path` since the last call (drives Converge's
  // beta adaptation, §4.3). Default: ignored.
  virtual void OnNack(PathId path, int nacked_packets) { (void)path; (void)nacked_packets; }

  // Bookkeeping after a frame's packets are handed to the pacer.
  virtual void OnFrameSent(PathId path, int media_packets, int fec_packets) {
    (void)path; (void)media_packets; (void)fec_packets;
  }
};

}  // namespace converge
