// Stock WebRTC behaviour: a static protection table keyed on the loss
// aggregated across all paths, applied uniformly regardless of which path a
// packet takes (application-level protection, §3.3). Fractional protection
// accumulates across frames so the long-run overhead matches the table.
#pragma once

#include <map>

#include "fec/fec_controller.h"

namespace converge {

class WebRtcFecController final : public FecController {
 public:
  int NumFecPackets(int media_packets, FrameKind kind, PathId path,
                    double path_loss, double aggregate_loss) override;

 private:
  std::map<PathId, double> credit_;
};

}  // namespace converge
