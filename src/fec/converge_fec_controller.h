// Converge's path-specific FEC controller (§4.3):
//
//   FEC_i = l_i * P_i * beta_i
//
// where l_i is the path's measured loss, P_i the media packets placed on the
// path, and beta_i a per-path multiplier raised when NACKs show the parity
// budget was insufficient: beta = 1 + NACK_i / (P_i - FEC_i). Beta decays
// back toward 1 while no NACKs arrive. Fractional budget accumulates across
// frames so small per-frame packet counts still realize the target rate.
#pragma once

#include <map>

#include "fec/fec_controller.h"

namespace converge {

class ConvergeFecController final : public FecController {
 public:
  struct Config {
    double keyframe_factor = 2.0;  // extra protection for keyframes
    double beta_decay = 0.02;      // per-frame pull of beta toward 1
    double max_beta = 4.0;
  };

  ConvergeFecController();
  explicit ConvergeFecController(Config config);

  int NumFecPackets(int media_packets, FrameKind kind, PathId path,
                    double path_loss, double aggregate_loss) override;
  void OnNack(PathId path, int nacked_packets) override;
  void OnFrameSent(PathId path, int media_packets, int fec_packets) override;

  double beta(PathId path) const;

 private:
  struct PathState {
    double beta = 1.0;
    double credit = 0.0;
    // Recent (last-frame) counts: beta = 1 + NACK_i / (P_i - FEC_i) uses
    // per-interval quantities, not lifetime totals.
    int last_media = 0;
    int last_fec = 0;
  };

  Config config_;
  std::map<PathId, PathState> paths_;
};

}  // namespace converge
