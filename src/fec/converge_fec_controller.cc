#include "fec/converge_fec_controller.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {

ConvergeFecController::ConvergeFecController()
    : ConvergeFecController(Config{}) {}

ConvergeFecController::ConvergeFecController(Config config)
    : config_(config) {}

int ConvergeFecController::NumFecPackets(int media_packets, FrameKind kind,
                                         PathId path, double path_loss,
                                         double /*aggregate_loss*/) {
  if (media_packets <= 0) return 0;
  PathState& st = paths_[path];
  const double key_boost =
      kind == FrameKind::kKey ? config_.keyframe_factor : 1.0;
  st.credit +=
      path_loss * static_cast<double>(media_packets) * st.beta * key_boost;
  int fec = static_cast<int>(std::floor(st.credit));
  fec = std::min(fec, media_packets);
  st.credit -= fec;
  // Cap carried credit: a long lossless stretch should not bank protection.
  st.credit = std::min(st.credit, 2.0);
  // §4.3 overhead cap: never more parity than media, beta stays in its band.
  // The controller has no clock; FormatTime renders this as "no-sim-time".
  CONVERGE_INVARIANT("ConvergeFec", Timestamp::MinusInfinity(),
                     fec >= 0 && fec <= media_packets,
                     "fec=" + std::to_string(fec) +
                         " media=" + std::to_string(media_packets));
  CONVERGE_INVARIANT("ConvergeFec", Timestamp::MinusInfinity(),
                     st.beta >= 1.0 && st.beta <= config_.max_beta,
                     "beta=" + std::to_string(st.beta) +
                         " max_beta=" + std::to_string(config_.max_beta));
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    // No clock here — events inherit the recorder's newest simulation time
    // (the sender emitted clocked events for this same frame just before).
    const Timestamp at = Timestamp::MinusInfinity();
    const int32_t p = static_cast<int32_t>(path);
    trace->Counter("fec", "beta", at, st.beta, p);
    trace->Counter("fec", "loss", at, path_loss, p);
    trace->Counter("fec", "n_fec", at, static_cast<double>(fec), p);
  }
  return fec;
}

void ConvergeFecController::OnNack(PathId path, int nacked_packets) {
  PathState& st = paths_[path];
  // Eq. in §4.3 with per-frame quantities: P_i - FEC_i unprotected packets
  // in the last scheduling round.
  const int unprotected = std::max(1, st.last_media - st.last_fec);
  const double target =
      1.0 + static_cast<double>(nacked_packets) / unprotected;
  st.beta = std::min(config_.max_beta, std::max(st.beta, target));
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant("fec", "nack_boost", Timestamp::MinusInfinity(),
                   static_cast<double>(nacked_packets),
                   static_cast<int32_t>(path), -1, st.beta);
  }
}

void ConvergeFecController::OnFrameSent(PathId path, int media_packets,
                                        int fec_packets) {
  PathState& st = paths_[path];
  st.last_media = media_packets;
  st.last_fec = fec_packets;
  // Decay beta toward 1 while the parity budget proves sufficient.
  st.beta += config_.beta_decay * (1.0 - st.beta);
  st.beta = std::clamp(st.beta, 1.0, config_.max_beta);
}

double ConvergeFecController::beta(PathId path) const {
  auto it = paths_.find(path);
  return it == paths_.end() ? 1.0 : it->second.beta;
}

}  // namespace converge
