#include "fec/xor_fec.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace converge {

ProtectedPacketMeta MetaOf(const RtpPacket& packet) {
  ProtectedPacketMeta meta;
  meta.seq = packet.seq;
  meta.stream_id = packet.stream_id;
  meta.frame_id = packet.frame_id;
  meta.gop_id = packet.gop_id;
  meta.frame_kind = packet.frame_kind;
  meta.kind = packet.kind;
  meta.priority = packet.priority;
  meta.first_in_frame = packet.first_in_frame;
  meta.last_in_frame = packet.last_in_frame;
  meta.marker = packet.marker;
  meta.payload_bytes = packet.payload_bytes;
  meta.capture_time = packet.capture_time;
  meta.spatial_id = packet.spatial_id;
  meta.num_spatial = packet.num_spatial;
  meta.temporal_id = packet.temporal_id;
  meta.num_temporal = packet.num_temporal;
  return meta;
}

RtpPacket PacketFromMeta(const ProtectedPacketMeta& meta, uint32_t ssrc) {
  RtpPacket p;
  p.ssrc = ssrc;
  p.seq = meta.seq;
  p.stream_id = meta.stream_id;
  p.frame_id = meta.frame_id;
  p.gop_id = meta.gop_id;
  p.frame_kind = meta.frame_kind;
  p.kind = meta.kind;
  p.priority = meta.priority;
  p.first_in_frame = meta.first_in_frame;
  p.last_in_frame = meta.last_in_frame;
  p.marker = meta.marker;
  p.payload_bytes = meta.payload_bytes;
  p.capture_time = meta.capture_time;
  p.spatial_id = meta.spatial_id;
  p.num_spatial = meta.num_spatial;
  p.temporal_id = meta.temporal_id;
  p.num_temporal = meta.num_temporal;
  return p;
}

std::vector<RtpPacket> XorFecEncoder::Generate(
    const std::vector<const RtpPacket*>& media, int num_fec,
    int64_t block_id) {
  std::vector<RtpPacket> out;
  if (media.empty() || num_fec <= 0) return out;
  num_fec = std::min<int>(num_fec, static_cast<int>(media.size()));

  for (int g = 0; g < num_fec; ++g) {
    RtpPacket fec;
    const RtpPacket& sample = *media.front();
    fec.ssrc = sample.ssrc;
    fec.kind = PayloadKind::kFec;
    fec.priority = Priority::kFec;
    fec.stream_id = sample.stream_id;
    fec.frame_id = sample.frame_id;
    fec.gop_id = sample.gop_id;
    fec.frame_kind = sample.frame_kind;
    fec.capture_time = sample.capture_time;
    fec.fec_block = block_id;
    // Parity inherits the covered rung's layer coordinates so a hub can
    // forward only the parity protecting the subscribed rung.
    fec.spatial_id = sample.spatial_id;
    fec.num_spatial = sample.num_spatial;
    fec.temporal_id = sample.temporal_id;
    fec.num_temporal = sample.num_temporal;

    int64_t max_payload = 0;
    auto block = std::make_shared<FecBlockMeta>();
    for (size_t j = static_cast<size_t>(g); j < media.size();
         j += static_cast<size_t>(num_fec)) {
      const RtpPacket& covered = *media[j];
      block->covered.push_back(MetaOf(covered));
      max_payload = std::max(max_payload, covered.payload_bytes);
    }
    fec.fec = std::move(block);
    fec.payload_bytes = max_payload + 10;  // FEC level header
    out.push_back(std::move(fec));
  }
  return out;
}

}  // namespace converge
