// WebRTC's static, table-based FEC protection (§2.3, §4.3).
//
// The table maps measured loss to a protection factor (FEC packets per media
// packet); keyframes get double protection. The paper observes this is
// overly aggressive — ~40% overhead at 1% loss (Figure 12) and >=60% once
// multipath aggregates loss across paths (Figure 3c) — which is exactly the
// behaviour this table reproduces.
#pragma once

#include "rtp/rtp_packet.h"

namespace converge {

// Protection factor (FEC/media ratio) for the given loss fraction.
double WebRtcProtectionFactor(double loss_rate, FrameKind kind);

}  // namespace converge
