#include "fec/webrtc_fec_controller.h"

#include <cmath>

#include "fec/fec_tables.h"

namespace converge {

int WebRtcFecController::NumFecPackets(int media_packets, FrameKind kind,
                                       PathId path, double /*path_loss*/,
                                       double aggregate_loss) {
  if (media_packets <= 0) return 0;
  const double factor = WebRtcProtectionFactor(aggregate_loss, kind);
  double& credit = credit_[path];
  credit += factor * static_cast<double>(media_packets);
  const int fec = static_cast<int>(std::floor(credit));
  credit -= fec;
  return fec;
}

}  // namespace converge
