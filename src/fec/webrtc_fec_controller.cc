#include "fec/webrtc_fec_controller.h"

#include <cmath>
#include <string>

#include "fec/fec_tables.h"
#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {

int WebRtcFecController::NumFecPackets(int media_packets, FrameKind kind,
                                       PathId path, double path_loss,
                                       double aggregate_loss) {
  (void)path_loss;
  if (media_packets <= 0) return 0;
  const double factor = WebRtcProtectionFactor(aggregate_loss, kind);
  double& credit = credit_[path];
  credit += factor * static_cast<double>(media_packets);
  const int fec = static_cast<int>(std::floor(credit));
  credit -= fec;
  // The protection tables top out at 0.8 (with keyframe doubling already
  // capped), and carried credit stays below one packet — so parity can never
  // exceed 80% of the media plus the fractional carry.
  CONVERGE_INVARIANT(
      "WebRtcFec", Timestamp::MinusInfinity(),
      fec >= 0 && fec <= static_cast<int>(0.8 * media_packets) + 1,
      "fec=" + std::to_string(fec) +
          " media=" + std::to_string(media_packets));
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    const Timestamp at = Timestamp::MinusInfinity();  // clock-less: inherit
    const int32_t p = static_cast<int32_t>(path);
    trace->Counter("fec", "protection", at, factor, p);
    trace->Counter("fec", "loss", at, aggregate_loss, p);
    trace->Counter("fec", "n_fec", at, static_cast<double>(fec), p);
  }
  return fec;
}

}  // namespace converge
