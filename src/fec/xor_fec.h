// XOR-based forward error correction (ULPFEC-style, [31]).
//
// A FEC block covers the media packets of one frame (WebRTC mode: all paths
// together; Converge mode: the packets assigned to one path, §4.3). With k
// parity packets over n media packets, media packet j is covered by parity
// group (j mod k); each parity packet can rebuild exactly one missing packet
// of its group, so k losses are recoverable when they fall in distinct
// groups — the combinatorics that drive FEC utilization in Figure 12.
#pragma once

#include <cstdint>
#include <vector>

#include "rtp/rtp_packet.h"

namespace converge {

// Extracts the recovery metadata of a packet (ProtectedPacketMeta is
// declared next to RtpPacket, which carries a list of them in parity
// packets).
ProtectedPacketMeta MetaOf(const RtpPacket& packet);
RtpPacket PacketFromMeta(const ProtectedPacketMeta& meta, uint32_t ssrc);

class XorFecEncoder {
 public:
  // Generates `num_fec` parity packets covering `media` (all same SSRC).
  // Parity payload size is the largest covered payload. Sequence numbers are
  // assigned by the caller (sender's packetizer sequence space).
  static std::vector<RtpPacket> Generate(
      const std::vector<const RtpPacket*>& media, int num_fec,
      int64_t block_id);
};

}  // namespace converge
