#include "fec/fec_tables.h"

#include <algorithm>

namespace converge {
namespace {

// Piecewise-linear protection table: (loss fraction, protection factor).
// Calibrated to the paper's measurements of stock WebRTC: ~25% overhead in
// mobile networks (§1), ~40% at 1% loss, climbing above 60% at 10% loss
// (Figure 12 "table-based" series).
struct TableEntry {
  double loss;
  double factor;
};
constexpr TableEntry kTable[] = {
    {0.000, 0.02}, {0.002, 0.10}, {0.005, 0.25}, {0.010, 0.40},
    {0.020, 0.44}, {0.030, 0.48}, {0.050, 0.52}, {0.080, 0.58},
    {0.100, 0.62}, {0.200, 0.70},
};

}  // namespace

double WebRtcProtectionFactor(double loss_rate, FrameKind kind) {
  loss_rate = std::clamp(loss_rate, 0.0, 0.5);
  double factor = kTable[0].factor;
  const size_t n = sizeof(kTable) / sizeof(kTable[0]);
  if (loss_rate >= kTable[n - 1].loss) {
    factor = kTable[n - 1].factor;
  } else {
    for (size_t i = 1; i < n; ++i) {
      if (loss_rate < kTable[i].loss) {
        const double span = kTable[i].loss - kTable[i - 1].loss;
        const double frac = (loss_rate - kTable[i - 1].loss) / span;
        factor = kTable[i - 1].factor +
                 frac * (kTable[i].factor - kTable[i - 1].factor);
        break;
      }
    }
  }
  // WebRTC doubles keyframe protection (§3.3), capped.
  if (kind == FrameKind::kKey) factor = std::min(0.8, factor * 2.0);
  return factor;
}

}  // namespace converge
