// Offer/answer negotiation with multipath capability exchange and the
// backward-compatibility fallback the paper highlights (§1, §5): "Converge
// seamlessly falls back to the standard WebRTC protocols if either endpoint
// does not support multipath."
#pragma once

#include "signaling/ice.h"
#include "signaling/sdp.h"

namespace converge {

// Everything one endpoint brings to the negotiation.
struct EndpointCapabilities {
  bool supports_multipath = true;
  int max_paths = 2;
  int num_streams = 1;
  std::vector<NetworkInterface> interfaces;
};

// Result of offer/answer + ICE: what the media session should use.
struct NegotiatedSession {
  bool use_multipath = false;
  int num_paths = 1;
  int num_streams = 1;
  std::vector<CandidatePair> pairs;  // one per media path
};

// Builds the SDP offer for an endpoint (advertises multipath iff capable).
SessionDescription CreateOffer(const EndpointCapabilities& caps);

// Builds the answer given a remote offer: multipath appears in the answer
// only when both sides support it.
SessionDescription CreateAnswer(const EndpointCapabilities& caps,
                                const SessionDescription& offer);

// Completes the handshake: capability intersection + ICE gathering/pairing
// on both sides. `remote` answers `local`'s offer.
NegotiatedSession Negotiate(const EndpointCapabilities& local,
                            const EndpointCapabilities& remote);

}  // namespace converge
