// Offer/answer negotiation with multipath capability exchange and the
// backward-compatibility fallback the paper highlights (§1, §5): "Converge
// seamlessly falls back to the standard WebRTC protocols if either endpoint
// does not support multipath." N-party conferences negotiate pairwise: a
// mesh runs offer/answer for every participant pair, a star has each
// participant negotiate its uplink with the forwarder (NegotiateMesh /
// NegotiateStar below).
#pragma once

#include <string>

#include "signaling/ice.h"
#include "signaling/sdp.h"
#include "util/time.h"

namespace converge {

// One scheduled membership change: a participant joining or leaving the
// conference at a simulated time. A timeline of these drives mid-call churn:
// the Conference wires up (or tears down) the participant's legs when the
// event fires, and signaling validates the timeline up front so an
// impossible schedule (leaving twice, joining while present) is rejected at
// negotiation time rather than surfacing as a dangling leg mid-call.
struct MembershipEvent {
  enum class Kind : uint8_t { kJoin, kLeave };
  Kind kind = Kind::kJoin;
  Timestamp at = Timestamp::Zero();
  int participant = 0;
};

// Validates a membership timeline against `num_participants`: events must
// name valid participants, carry finite non-decreasing times (per
// participant strictly increasing), and alternate join/leave consistently
// with the initial-presence rule — a participant is absent at t=0 iff its
// first event is a join. Returns an empty string when valid, else a
// description of the first problem.
std::string ValidateMembership(int num_participants,
                               const std::vector<MembershipEvent>& events);

// Initial-presence rule shared by Conference and the negotiators.
bool MembershipPresentAtStart(int participant,
                              const std::vector<MembershipEvent>& events);

// Number of completed leave events for `participant` at or before `t`; a
// rejoin after the k-th leave runs as incarnation k, which scopes its SSRC
// bank (rtp/ssrc_allocator.h) disjoint from every earlier stream.
int MembershipIncarnationAt(int participant, Timestamp t,
                            const std::vector<MembershipEvent>& events);

// Everything one endpoint brings to the negotiation.
struct EndpointCapabilities {
  bool supports_multipath = true;
  int max_paths = 2;
  int num_streams = 1;
  // Congestion-control algorithm this endpoint is configured to run
  // ("gcc" | "nada" | "cross" — cc/cc_controller.h owns the vocabulary).
  // Offered via `a=x-converge-cc`; the answer echoes it only when the
  // answerer runs the same algorithm, so a mismatch (or a legacy endpoint
  // that drops the unknown attribute) falls back to GCC on both sides.
  std::string cc_algorithm = "gcc";
  // Conference participant id; scopes the endpoint's published SSRCs
  // (rtp/ssrc_allocator.h) so N senders never collide. The historical
  // 2-party default of 0 keeps legacy SDP byte-compatible.
  int participant_id = 0;
  // Regional hub this endpoint asks to home its uplink at in a cascaded
  // SFU fabric (DESIGN §10). Offered via `a=x-converge-home-hub` only when
  // > 0 — legacy SDP stays byte-identical and a legacy endpoint (whose
  // offer never carries the attribute) lands on hub 0.
  int home_hub = 0;
  // Layered-media capability, offered via `a=x-converge-layers:<S>x<T>`
  // only when either dimension exceeds 1. The answer echoes the
  // element-wise minimum of both sides; a legacy peer (whose SDP never
  // carries the attribute) resolves the session to single-layer (1x1).
  int simulcast_rungs = 1;
  int temporal_layers = 1;
  std::vector<NetworkInterface> interfaces;
};

// Result of offer/answer + ICE: what the media session should use.
struct NegotiatedSession {
  bool use_multipath = false;
  int num_paths = 1;
  int num_streams = 1;
  // Resolved congestion controller: the offered algorithm when both sides
  // advertise it, otherwise "gcc" (the legacy fallback).
  std::string cc_algorithm = "gcc";
  // Home hub the offer requested, through the serialized round trip (0 when
  // the attribute was absent). NegotiateCascade validates it against the
  // fabric's hub count.
  int home_hub = 0;
  // Layer capability both sides agreed on through the serialized round
  // trip: min(offer, answer) per dimension, 1x1 when either side stayed
  // silent (the legacy fallback).
  int simulcast_rungs = 1;
  int temporal_layers = 1;
  std::vector<CandidatePair> pairs;  // one per media path
};

// Builds the SDP offer for an endpoint (advertises multipath iff capable).
SessionDescription CreateOffer(const EndpointCapabilities& caps);

// Builds the answer given a remote offer: multipath appears in the answer
// only when both sides support it.
SessionDescription CreateAnswer(const EndpointCapabilities& caps,
                                const SessionDescription& offer);

// Completes the handshake: capability intersection + ICE gathering/pairing
// on both sides. `remote` answers `local`'s offer.
NegotiatedSession Negotiate(const EndpointCapabilities& local,
                            const EndpointCapabilities& remote);

// Result of negotiating an N-party conference, one pairwise session per
// edge of the topology.
struct ConferencePlan {
  int num_participants = 0;
  bool star = false;
  // Mesh: sessions for unordered pairs (i, j), i < j, in row-major order
  // ((0,1), (0,2), ..., (1,2), ...). Star: session i is participant i's
  // uplink to the forwarder.
  std::vector<NegotiatedSession> sessions;
  // Scheduled mid-call joins/leaves, sorted by time. Empty = everyone is in
  // the call for its whole duration (the historical behaviour).
  std::vector<MembershipEvent> membership;
  // Cascaded fabric shape (star only): number of regional hubs and the
  // validated per-participant home hub. num_hubs == 1 (every non-cascade
  // negotiation) leaves home_hub empty — the degenerate single-star plan.
  int num_hubs = 1;
  std::vector<int> home_hub;

  // Mesh lookup: the session negotiated between participants a and b.
  const NegotiatedSession& PairSession(int a, int b) const;
  // Membership queries over the timeline above.
  bool PresentAtStart(int participant) const {
    return MembershipPresentAtStart(participant, membership);
  }
  bool PresentAt(int participant, Timestamp t) const;
  // Star lookup: participant's uplink session.
  const NegotiatedSession& UplinkSession(int participant) const {
    return sessions.at(static_cast<size_t>(participant));
  }
};

// Full-mesh negotiation: offer/answer between every participant pair (lower
// id offers). A single legacy endpoint only downgrades its own pairs — the
// rest of the mesh keeps multipath.
ConferencePlan NegotiateMesh(
    const std::vector<EndpointCapabilities>& participants);

// Star negotiation: every participant negotiates its uplink against the
// forwarder's capabilities (the forwarder answers).
ConferencePlan NegotiateStar(
    const EndpointCapabilities& forwarder,
    const std::vector<EndpointCapabilities>& participants);

// Churn-aware overloads: negotiate the full roster up front (every
// participant that will EVER be in the call, as real conferencing services
// do — a rejoiner re-uses its negotiated session under a fresh incarnation),
// then validate and attach the membership timeline, sorted by time. The
// timeline must pass ValidateMembership; invalid timelines are rejected via
// the invariant registry and attached empty.
ConferencePlan NegotiateMesh(
    const std::vector<EndpointCapabilities>& participants,
    std::vector<MembershipEvent> membership);
ConferencePlan NegotiateStar(
    const EndpointCapabilities& forwarder,
    const std::vector<EndpointCapabilities>& participants,
    std::vector<MembershipEvent> membership);

// Cascaded-fabric negotiation (DESIGN §10): a star over `num_hubs` regional
// hubs. Each participant negotiates its uplink against the forwarder
// exactly as NegotiateStar does (so a 1-hub cascade plan is the star plan
// plus num_hubs/home_hub), and its `a=x-converge-home-hub` request is
// resolved through the SDP round trip: a pin inside [0, num_hubs) is
// honored — a legacy endpoint, whose offer never carries the attribute,
// parses as hub 0 and lands there — while an out-of-range pin falls back
// to participant_index % num_hubs (round-robin).
ConferencePlan NegotiateCascade(
    const EndpointCapabilities& forwarder,
    const std::vector<EndpointCapabilities>& participants, int num_hubs,
    std::vector<MembershipEvent> membership = {});

}  // namespace converge
