#include "signaling/negotiation.h"

#include <algorithm>
#include <utility>

#include "rtp/ssrc_allocator.h"
#include "util/invariants.h"

namespace converge {
namespace {

SessionDescription BaseDescription(const EndpointCapabilities& caps) {
  SessionDescription desc;
  for (int i = 0; i < caps.num_streams; ++i) {
    SdpMediaStream stream;
    // Participant-scoped SSRCs (participant 0 keeps the historical
    // 0x1000 + i layout).
    stream.ssrc = SsrcAllocator::StreamSsrc(caps.participant_id, i);
    stream.label = "camera" + std::to_string(i);
    desc.streams.push_back(stream);
  }
  return desc;
}

}  // namespace

SessionDescription CreateOffer(const EndpointCapabilities& caps) {
  SessionDescription offer = BaseDescription(caps);
  if (caps.supports_multipath && caps.interfaces.size() > 1) {
    offer.multipath_supported = true;
    offer.max_paths = std::min<int>(caps.max_paths,
                                    static_cast<int>(caps.interfaces.size()));
    offer.header_extensions.push_back(kMultipathExtensionUri);
  }
  offer.cc_algorithm = caps.cc_algorithm;
  offer.home_hub = caps.home_hub;
  offer.simulcast_rungs = std::max(1, caps.simulcast_rungs);
  offer.temporal_layers = std::max(1, caps.temporal_layers);
  return offer;
}

SessionDescription CreateAnswer(const EndpointCapabilities& caps,
                                const SessionDescription& offer) {
  SessionDescription answer = BaseDescription(caps);
  // Multipath only if the offer carried it AND we are capable: a legacy
  // answerer never echoes the attribute, so the offerer falls back.
  if (offer.multipath_supported && caps.supports_multipath &&
      caps.interfaces.size() > 1) {
    answer.multipath_supported = true;
    answer.max_paths =
        std::min({offer.max_paths, caps.max_paths,
                  static_cast<int>(caps.interfaces.size())});
    answer.header_extensions.push_back(kMultipathExtensionUri);
  }
  // The CC attribute is echoed only when this endpoint runs the SAME
  // algorithm the offer advertised; a silent answer means "gcc".
  if (offer.cc_algorithm != "gcc" && offer.cc_algorithm == caps.cc_algorithm) {
    answer.cc_algorithm = offer.cc_algorithm;
  }
  // Layers: the answer carries the element-wise minimum of what the offer
  // advertised and what we can do. A legacy offer parses as 1x1, so the
  // answer stays silent and both sides run single-layer.
  answer.simulcast_rungs =
      std::min(std::max(1, offer.simulcast_rungs),
               std::max(1, caps.simulcast_rungs));
  answer.temporal_layers =
      std::min(std::max(1, offer.temporal_layers),
               std::max(1, caps.temporal_layers));
  return answer;
}

NegotiatedSession Negotiate(const EndpointCapabilities& local,
                            const EndpointCapabilities& remote) {
  // SDP round trip (serialize/parse so the text format is the contract).
  const SessionDescription offer = CreateOffer(local);
  const auto offer_parsed = ParseSdp(SerializeSdp(offer));
  const SessionDescription answer =
      CreateAnswer(remote, offer_parsed.value_or(SessionDescription{}));
  const auto answer_parsed = ParseSdp(SerializeSdp(answer));

  NegotiatedSession session;
  session.num_streams = local.num_streams;
  const bool multipath = offer.multipath_supported &&
                         answer_parsed.has_value() &&
                         answer_parsed->multipath_supported;

  const auto local_candidates = GatherCandidates(local.interfaces);
  const auto remote_candidates = GatherCandidates(remote.interfaces, 60000);
  session.pairs =
      PairCandidates(local_candidates, remote_candidates, multipath);

  if (multipath) {
    const int limit =
        std::min(offer.max_paths, answer_parsed->max_paths);
    if (static_cast<int>(session.pairs.size()) > limit) {
      session.pairs.resize(static_cast<size_t>(limit));
    }
  }
  session.num_paths = static_cast<int>(session.pairs.size());
  session.use_multipath = multipath && session.num_paths > 1;
  // CC resolution goes through the serialized round trip too: if either
  // side's SDP dropped the attribute (legacy endpoint, mismatched
  // algorithm), both ends land on the GCC default.
  if (offer_parsed.has_value() && answer_parsed.has_value() &&
      offer_parsed->cc_algorithm != "gcc" &&
      answer_parsed->cc_algorithm == offer_parsed->cc_algorithm) {
    session.cc_algorithm = offer_parsed->cc_algorithm;
  }
  // The home-hub request also survives only through the serialized round
  // trip: a legacy offer never carries the attribute and parses as hub 0.
  if (offer_parsed.has_value()) session.home_hub = offer_parsed->home_hub;
  // Layer capability: the answer already carries min(offer, answerer); a
  // legacy endpoint on either side leaves the attribute out and the
  // parsed default (1x1) wins.
  if (offer_parsed.has_value() && answer_parsed.has_value()) {
    session.simulcast_rungs = std::min(offer_parsed->simulcast_rungs,
                                       answer_parsed->simulcast_rungs);
    session.temporal_layers = std::min(offer_parsed->temporal_layers,
                                       answer_parsed->temporal_layers);
  }
  return session;
}

bool MembershipPresentAtStart(int participant,
                              const std::vector<MembershipEvent>& events) {
  for (const MembershipEvent& ev : events) {
    if (ev.participant != participant) continue;
    return ev.kind != MembershipEvent::Kind::kJoin;
  }
  return true;  // no events: in the call for its whole duration
}

int MembershipIncarnationAt(int participant, Timestamp t,
                            const std::vector<MembershipEvent>& events) {
  int leaves = 0;
  for (const MembershipEvent& ev : events) {
    if (ev.participant != participant) continue;
    if (ev.kind == MembershipEvent::Kind::kLeave && ev.at <= t) ++leaves;
  }
  return leaves;
}

std::string ValidateMembership(int num_participants,
                               const std::vector<MembershipEvent>& events) {
  Timestamp prev = Timestamp::MinusInfinity();
  for (const MembershipEvent& ev : events) {
    if (ev.participant < 0 || ev.participant >= num_participants) {
      return "membership event names participant " +
             std::to_string(ev.participant) + " outside [0, " +
             std::to_string(num_participants) + ")";
    }
    if (!ev.at.IsFinite() || ev.at < Timestamp::Zero()) {
      return "membership event time must be finite and >= 0";
    }
    if (ev.at < prev) return "membership events must be sorted by time";
    prev = ev.at;
  }
  // Per-participant: alternation consistent with the initial-presence rule,
  // strictly increasing times.
  for (int p = 0; p < num_participants; ++p) {
    bool present = MembershipPresentAtStart(p, events);
    Timestamp last = Timestamp::MinusInfinity();
    for (const MembershipEvent& ev : events) {
      if (ev.participant != p) continue;
      if (ev.at <= last) {
        return "participant " + std::to_string(p) +
               " has two membership events at the same time";
      }
      last = ev.at;
      const bool join = ev.kind == MembershipEvent::Kind::kJoin;
      if (join && present) {
        return "participant " + std::to_string(p) + " joins while present";
      }
      if (!join && !present) {
        return "participant " + std::to_string(p) + " leaves while absent";
      }
      present = join;
    }
  }
  return "";
}

bool ConferencePlan::PresentAt(int participant, Timestamp t) const {
  bool present = PresentAtStart(participant);
  for (const MembershipEvent& ev : membership) {
    if (ev.participant != participant || ev.at > t) continue;
    present = ev.kind == MembershipEvent::Kind::kJoin;
  }
  return present;
}

namespace {

std::vector<MembershipEvent> CheckedTimeline(
    int num_participants, std::vector<MembershipEvent> membership) {
  std::stable_sort(membership.begin(), membership.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.at < b.at;
                   });
  const std::string error = ValidateMembership(num_participants, membership);
  CONVERGE_INVARIANT("Negotiation", Timestamp::Zero(), error.empty(), error);
  if (!error.empty()) membership.clear();
  return membership;
}

}  // namespace

const NegotiatedSession& ConferencePlan::PairSession(int a, int b) const {
  if (a > b) std::swap(a, b);
  // Row-major index of unordered pair (a, b), a < b, over num_participants:
  // rows 0..a-1 contribute (n-1-r) entries each, then (b - a - 1) into row a.
  const int n = num_participants;
  const int index = a * (2 * n - a - 1) / 2 + (b - a - 1);
  return sessions.at(static_cast<size_t>(index));
}

ConferencePlan NegotiateMesh(
    const std::vector<EndpointCapabilities>& participants) {
  ConferencePlan plan;
  plan.num_participants = static_cast<int>(participants.size());
  plan.star = false;
  for (size_t a = 0; a < participants.size(); ++a) {
    for (size_t b = a + 1; b < participants.size(); ++b) {
      plan.sessions.push_back(Negotiate(participants[a], participants[b]));
    }
  }
  return plan;
}

ConferencePlan NegotiateStar(
    const EndpointCapabilities& forwarder,
    const std::vector<EndpointCapabilities>& participants) {
  ConferencePlan plan;
  plan.num_participants = static_cast<int>(participants.size());
  plan.star = true;
  for (const EndpointCapabilities& participant : participants) {
    plan.sessions.push_back(Negotiate(participant, forwarder));
  }
  return plan;
}

ConferencePlan NegotiateMesh(
    const std::vector<EndpointCapabilities>& participants,
    std::vector<MembershipEvent> membership) {
  ConferencePlan plan = NegotiateMesh(participants);
  plan.membership =
      CheckedTimeline(plan.num_participants, std::move(membership));
  return plan;
}

ConferencePlan NegotiateStar(
    const EndpointCapabilities& forwarder,
    const std::vector<EndpointCapabilities>& participants,
    std::vector<MembershipEvent> membership) {
  ConferencePlan plan = NegotiateStar(forwarder, participants);
  plan.membership =
      CheckedTimeline(plan.num_participants, std::move(membership));
  return plan;
}

ConferencePlan NegotiateCascade(
    const EndpointCapabilities& forwarder,
    const std::vector<EndpointCapabilities>& participants, int num_hubs,
    std::vector<MembershipEvent> membership) {
  CONVERGE_INVARIANT("Negotiation", Timestamp::Zero(), num_hubs >= 1,
                     "cascade needs >= 1 hub, got " +
                         std::to_string(num_hubs));
  if (num_hubs < 1) num_hubs = 1;
  ConferencePlan plan =
      NegotiateStar(forwarder, participants, std::move(membership));
  plan.num_hubs = num_hubs;
  if (num_hubs == 1) return plan;  // degenerate single-star plan
  plan.home_hub.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    const int requested = plan.sessions[i].home_hub;
    if (requested >= 0 && requested < num_hubs) {
      plan.home_hub.push_back(requested);
      continue;
    }
    CONVERGE_INVARIANT(
        "Negotiation", Timestamp::Zero(), false,
        "participant " + std::to_string(i) + " pinned to hub " +
            std::to_string(requested) + " outside [0, " +
            std::to_string(num_hubs) + "); falling back to round-robin");
    plan.home_hub.push_back(static_cast<int>(i) % num_hubs);
  }
  return plan;
}

}  // namespace converge
