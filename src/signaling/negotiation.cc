#include "signaling/negotiation.h"

#include <algorithm>

namespace converge {
namespace {

SessionDescription BaseDescription(const EndpointCapabilities& caps) {
  SessionDescription desc;
  for (int i = 0; i < caps.num_streams; ++i) {
    SdpMediaStream stream;
    stream.ssrc = 0x1000 + static_cast<uint32_t>(i);
    stream.label = "camera" + std::to_string(i);
    desc.streams.push_back(stream);
  }
  return desc;
}

}  // namespace

SessionDescription CreateOffer(const EndpointCapabilities& caps) {
  SessionDescription offer = BaseDescription(caps);
  if (caps.supports_multipath && caps.interfaces.size() > 1) {
    offer.multipath_supported = true;
    offer.max_paths = std::min<int>(caps.max_paths,
                                    static_cast<int>(caps.interfaces.size()));
    offer.header_extensions.push_back(kMultipathExtensionUri);
  }
  return offer;
}

SessionDescription CreateAnswer(const EndpointCapabilities& caps,
                                const SessionDescription& offer) {
  SessionDescription answer = BaseDescription(caps);
  // Multipath only if the offer carried it AND we are capable: a legacy
  // answerer never echoes the attribute, so the offerer falls back.
  if (offer.multipath_supported && caps.supports_multipath &&
      caps.interfaces.size() > 1) {
    answer.multipath_supported = true;
    answer.max_paths =
        std::min({offer.max_paths, caps.max_paths,
                  static_cast<int>(caps.interfaces.size())});
    answer.header_extensions.push_back(kMultipathExtensionUri);
  }
  return answer;
}

NegotiatedSession Negotiate(const EndpointCapabilities& local,
                            const EndpointCapabilities& remote) {
  // SDP round trip (serialize/parse so the text format is the contract).
  const SessionDescription offer = CreateOffer(local);
  const auto offer_parsed = ParseSdp(SerializeSdp(offer));
  const SessionDescription answer =
      CreateAnswer(remote, offer_parsed.value_or(SessionDescription{}));
  const auto answer_parsed = ParseSdp(SerializeSdp(answer));

  NegotiatedSession session;
  session.num_streams = local.num_streams;
  const bool multipath = offer.multipath_supported &&
                         answer_parsed.has_value() &&
                         answer_parsed->multipath_supported;

  const auto local_candidates = GatherCandidates(local.interfaces);
  const auto remote_candidates = GatherCandidates(remote.interfaces, 60000);
  session.pairs =
      PairCandidates(local_candidates, remote_candidates, multipath);

  if (multipath) {
    const int limit =
        std::min(offer.max_paths, answer_parsed->max_paths);
    if (static_cast<int>(session.pairs.size()) > limit) {
      session.pairs.resize(static_cast<size_t>(limit));
    }
  }
  session.num_paths = static_cast<int>(session.pairs.size());
  session.use_multipath = multipath && session.num_paths > 1;
  return session;
}

}  // namespace converge
