#include "signaling/ice.h"

#include <algorithm>
#include <map>

namespace converge {
namespace {

int TypePreference(CandidateType type) {
  switch (type) {
    case CandidateType::kHost:
      return 126;
    case CandidateType::kServerReflexive:
      return 100;
    case CandidateType::kRelayed:
      return 0;
  }
  return 0;
}

}  // namespace

uint32_t CandidatePriority(CandidateType type, int local_preference,
                           int component) {
  return (static_cast<uint32_t>(TypePreference(type)) << 24) |
         (static_cast<uint32_t>(local_preference & 0xFFFF) << 8) |
         static_cast<uint32_t>(256 - component);
}

std::vector<IceCandidate> GatherCandidates(
    const std::vector<NetworkInterface>& interfaces, uint16_t base_port) {
  std::vector<IceCandidate> out;
  uint16_t port = base_port;
  int foundation = 1;
  for (const NetworkInterface& iface : interfaces) {
    IceCandidate host;
    host.foundation = std::to_string(foundation++);
    host.address = iface.address;
    host.port = port++;
    host.type = CandidateType::kHost;
    host.network_id = iface.network_id;
    host.priority =
        CandidatePriority(CandidateType::kHost, iface.local_preference, 1);
    out.push_back(host);

    if (iface.behind_nat) {
      IceCandidate srflx = host;
      srflx.foundation = std::to_string(foundation++);
      srflx.address = "203.0.113." + std::to_string(iface.network_id + 1);
      srflx.port = port++;
      srflx.type = CandidateType::kServerReflexive;
      srflx.priority = CandidatePriority(CandidateType::kServerReflexive,
                                         iface.local_preference, 1);
      out.push_back(srflx);
    }
  }
  return out;
}

std::vector<CandidatePair> PairCandidates(
    const std::vector<IceCandidate>& local,
    const std::vector<IceCandidate>& remote, bool multipath) {
  // RFC 5245 pair priority with the controlling side = local.
  auto pair_priority = [](uint32_t g, uint32_t d) {
    const uint64_t lo = std::min(g, d);
    const uint64_t hi = std::max(g, d);
    return (lo << 32) + 2 * hi + (g > d ? 1 : 0);
  };

  // Best pair per (local network, remote network).
  std::map<std::pair<int, int>, CandidatePair> best;
  for (const IceCandidate& l : local) {
    for (const IceCandidate& r : remote) {
      if (l.protocol != r.protocol) continue;
      CandidatePair pair;
      pair.local = l;
      pair.remote = r;
      pair.pair_priority = pair_priority(l.priority, r.priority);
      const auto key = std::make_pair(l.network_id, r.network_id);
      auto it = best.find(key);
      if (it == best.end() || pair.pair_priority > it->second.pair_priority) {
        best[key] = pair;
      }
    }
  }

  std::vector<CandidatePair> out;
  for (auto& [key, pair] : best) out.push_back(pair);
  std::sort(out.begin(), out.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              return a.pair_priority > b.pair_priority;
            });

  if (!multipath && !out.empty()) {
    // Legacy WebRTC: keep only the single best checked pair.
    out.resize(1);
    return out;
  }
  // Converge: at most one pair per *local* interface (a local modem cannot
  // carry two independent paths to the same peer usefully).
  std::vector<CandidatePair> deduped;
  std::map<int, bool> local_used;
  for (const CandidatePair& pair : out) {
    if (local_used[pair.local.network_id]) continue;
    local_used[pair.local.network_id] = true;
    deduped.push_back(pair);
  }
  return deduped;
}

}  // namespace converge
