// Session Description Protocol support for Converge (§5 "Connections
// management"): the standard offer/answer video description extended with a
// multipath capability attribute. A legacy WebRTC endpoint simply ignores
// the unknown `a=x-converge-multipath` line, which is what makes the
// fallback path work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace converge {

struct SdpMediaStream {
  uint32_t ssrc = 0;
  std::string label;  // e.g. "camera0"
};

struct SessionDescription {
  std::string session_name = "converge";
  std::string origin = "converge-agent";
  std::vector<SdpMediaStream> streams;
  std::string codec = "VP8/90000";
  int payload_type = 96;

  // Converge extension: advertised only by multipath-capable endpoints.
  bool multipath_supported = false;
  int max_paths = 1;
  // Converge extension: congestion-control algorithm token ("gcc", "nada",
  // "cross"; cc/cc_controller.h owns the vocabulary). Serialized only when
  // non-default, so legacy SDP stays byte-identical; a legacy endpoint
  // ignores the unknown attribute and both sides fall back to GCC.
  std::string cc_algorithm = "gcc";
  // Converge extension: the regional hub this endpoint wants its uplink
  // terminated at in a cascaded SFU fabric (DESIGN §10). Serialized only
  // when > 0, so legacy SDP — and every single-hub offer — stays
  // byte-identical; a legacy endpoint ignores the attribute and lands on
  // hub 0.
  int home_hub = 0;
  // Converge extension: layered-media capability, "<rungs>x<temporal>"
  // (e.g. `a=x-converge-layers:3x1` = 3 simulcast rungs, no temporal SVC).
  // Serialized only when either dimension exceeds 1, so legacy SDP — and
  // every single-layer offer — stays byte-identical; a legacy endpoint
  // ignores the attribute and the session resolves to single-layer.
  int simulcast_rungs = 1;
  int temporal_layers = 1;
  // RTP header extension URIs (the Appendix-B multipath extension).
  std::vector<std::string> header_extensions;
};

// Serializes to SDP text (RFC 4566 subset + the Converge attribute).
std::string SerializeSdp(const SessionDescription& desc);

// Parses SDP text produced by SerializeSdp or by a legacy endpoint (no
// multipath attribute). Returns nullopt on malformed input.
std::optional<SessionDescription> ParseSdp(const std::string& text);

inline constexpr char kMultipathAttribute[] = "x-converge-multipath";
inline constexpr char kCcAttribute[] = "x-converge-cc";
inline constexpr char kHomeHubAttribute[] = "x-converge-home-hub";
inline constexpr char kLayersAttribute[] = "x-converge-layers";
inline constexpr char kMultipathExtensionUri[] =
    "urn:x-converge:rtp-hdrext:multipath";

}  // namespace converge
