// Interactive Connectivity Establishment model (§5): Converge extends ICE
// to gather candidates on *every* network interface (WiFi + one or two
// cellular modems) and to form one candidate pair per interface pair, so
// the media layer sees multiple usable paths instead of the single best
// pair legacy WebRTC keeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace converge {

enum class CandidateType { kHost = 0, kServerReflexive, kRelayed };

// A local network interface the agent can bind to.
struct NetworkInterface {
  std::string name;      // "wlan0", "rmnet0", ...
  std::string address;   // textual IP
  int network_id = 0;    // distinct per physical network
  bool behind_nat = true;
  // Type preference tweak: cellular interfaces rank below WiFi by default
  // (matches how the paper prefers WiFi when stationary).
  int local_preference = 65535;
};

struct IceCandidate {
  std::string foundation;
  int component = 1;  // RTP
  std::string protocol = "udp";
  uint32_t priority = 0;
  std::string address;
  uint16_t port = 0;
  CandidateType type = CandidateType::kHost;
  int network_id = 0;
};

// RFC 5245 §4.1.2.1 priority: (2^24)·type-pref + (2^8)·local-pref +
// (256 - component).
uint32_t CandidatePriority(CandidateType type, int local_preference,
                           int component);

// Gathers host (and, for NATed interfaces, server-reflexive) candidates on
// each interface.
std::vector<IceCandidate> GatherCandidates(
    const std::vector<NetworkInterface>& interfaces, uint16_t base_port = 50000);

// A checked candidate pair that can carry media.
struct CandidatePair {
  IceCandidate local;
  IceCandidate remote;
  uint64_t pair_priority = 0;  // RFC 5245 §5.7.2
};

// Converge pairing: at most one (highest-priority) pair per
// (local network, remote network) combination, sorted by pair priority.
// Legacy pairing keeps only the single best pair overall.
std::vector<CandidatePair> PairCandidates(
    const std::vector<IceCandidate>& local,
    const std::vector<IceCandidate>& remote, bool multipath);

}  // namespace converge
