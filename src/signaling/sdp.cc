#include "signaling/sdp.h"

#include <sstream>

namespace converge {

std::string SerializeSdp(const SessionDescription& desc) {
  std::ostringstream out;
  out << "v=0\r\n";
  out << "o=" << desc.origin << " 0 0 IN IP4 0.0.0.0\r\n";
  out << "s=" << desc.session_name << "\r\n";
  out << "t=0 0\r\n";
  out << "m=video 9 UDP/TLS/RTP/SAVPF " << desc.payload_type << "\r\n";
  out << "a=rtpmap:" << desc.payload_type << " " << desc.codec << "\r\n";
  for (size_t i = 0; i < desc.header_extensions.size(); ++i) {
    out << "a=extmap:" << (i + 1) << " " << desc.header_extensions[i]
        << "\r\n";
  }
  if (desc.multipath_supported) {
    out << "a=" << kMultipathAttribute << ":" << desc.max_paths << "\r\n";
  }
  if (desc.cc_algorithm != "gcc" && !desc.cc_algorithm.empty()) {
    out << "a=" << kCcAttribute << ":" << desc.cc_algorithm << "\r\n";
  }
  if (desc.home_hub > 0) {
    out << "a=" << kHomeHubAttribute << ":" << desc.home_hub << "\r\n";
  }
  if (desc.simulcast_rungs > 1 || desc.temporal_layers > 1) {
    out << "a=" << kLayersAttribute << ":" << desc.simulcast_rungs << "x"
        << desc.temporal_layers << "\r\n";
  }
  for (const SdpMediaStream& s : desc.streams) {
    out << "a=ssrc:" << s.ssrc << " label:" << s.label << "\r\n";
  }
  return out.str();
}

std::optional<SessionDescription> ParseSdp(const std::string& text) {
  SessionDescription desc;
  desc.header_extensions.clear();
  desc.streams.clear();
  desc.multipath_supported = false;
  desc.max_paths = 1;
  desc.cc_algorithm = "gcc";
  desc.home_hub = 0;
  desc.simulcast_rungs = 1;
  desc.temporal_layers = 1;

  bool saw_version = false;
  bool saw_media = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line.size() < 2 || line[1] != '=') return std::nullopt;
    const char type = line[0];
    const std::string value = line.substr(2);
    switch (type) {
      case 'v':
        if (value != "0") return std::nullopt;
        saw_version = true;
        break;
      case 'o':
        desc.origin = value.substr(0, value.find(' '));
        break;
      case 's':
        desc.session_name = value;
        break;
      case 'm': {
        if (value.rfind("video ", 0) != 0) return std::nullopt;
        saw_media = true;
        const size_t last_space = value.rfind(' ');
        if (last_space != std::string::npos) {
          desc.payload_type = std::atoi(value.c_str() + last_space + 1);
        }
        break;
      }
      case 'a': {
        if (value.rfind("rtpmap:", 0) == 0) {
          const size_t space = value.find(' ');
          if (space != std::string::npos) desc.codec = value.substr(space + 1);
        } else if (value.rfind("extmap:", 0) == 0) {
          const size_t space = value.find(' ');
          if (space != std::string::npos) {
            desc.header_extensions.push_back(value.substr(space + 1));
          }
        } else if (value.rfind(std::string(kMultipathAttribute) + ":", 0) ==
                   0) {
          desc.multipath_supported = true;
          desc.max_paths =
              std::atoi(value.c_str() + std::string(kMultipathAttribute).size() + 1);
          if (desc.max_paths < 1) desc.max_paths = 1;
        } else if (value.rfind(std::string(kCcAttribute) + ":", 0) == 0) {
          desc.cc_algorithm =
              value.substr(std::string(kCcAttribute).size() + 1);
          if (desc.cc_algorithm.empty()) desc.cc_algorithm = "gcc";
        } else if (value.rfind(std::string(kHomeHubAttribute) + ":", 0) ==
                   0) {
          desc.home_hub = std::atoi(
              value.c_str() + std::string(kHomeHubAttribute).size() + 1);
          if (desc.home_hub < 0) desc.home_hub = 0;
        } else if (value.rfind(std::string(kLayersAttribute) + ":", 0) == 0) {
          const char* spec =
              value.c_str() + std::string(kLayersAttribute).size() + 1;
          char* after = nullptr;
          desc.simulcast_rungs =
              static_cast<int>(std::strtol(spec, &after, 10));
          if (after != nullptr && *after == 'x') {
            desc.temporal_layers =
                static_cast<int>(std::strtol(after + 1, nullptr, 10));
          }
          if (desc.simulcast_rungs < 1) desc.simulcast_rungs = 1;
          if (desc.temporal_layers < 1) desc.temporal_layers = 1;
        } else if (value.rfind("ssrc:", 0) == 0) {
          SdpMediaStream stream;
          stream.ssrc = static_cast<uint32_t>(
              std::strtoul(value.c_str() + 5, nullptr, 10));
          const size_t label = value.find("label:");
          if (label != std::string::npos) {
            stream.label = value.substr(label + 6);
          }
          desc.streams.push_back(stream);
        }
        break;
      }
      default:
        break;  // tolerated (t=, c=, b=, ...)
    }
  }
  if (!saw_version || !saw_media) return std::nullopt;
  return desc;
}

}  // namespace converge
