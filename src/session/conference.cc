#include "session/conference.h"

#include <algorithm>
#include <string>
#include <utility>
#include <variant>

#include "util/invariants.h"
#include "util/parallel.h"

#include "core/video_aware_scheduler.h"
#include "fec/converge_fec_controller.h"
#include "fec/webrtc_fec_controller.h"
#include "rtp/ssrc_allocator.h"
#include "schedulers/connection_migration.h"
#include "schedulers/ecf_scheduler.h"
#include "schedulers/mprtp_scheduler.h"
#include "schedulers/mtput_scheduler.h"
#include "schedulers/single_path.h"
#include "schedulers/srtt_scheduler.h"

namespace converge {

std::string ToString(Variant v) {
  switch (v) {
    case Variant::kWebRtcPath0:
      return "WebRTC(p0)";
    case Variant::kWebRtcPath1:
      return "WebRTC(p1)";
    case Variant::kWebRtcCm:
      return "WebRTC-CM";
    case Variant::kSrtt:
      return "SRTT";
    case Variant::kEcf:
      return "ECF";
    case Variant::kMtput:
      return "M-TPUT";
    case Variant::kMrtp:
      return "M-RTP";
    case Variant::kConverge:
      return "Converge";
    case Variant::kConvergeNoFeedback:
      return "Converge-NoFB";
    case Variant::kConvergeWebRtcFec:
      return "Converge-TblFEC";
  }
  return "?";
}

bool IsMultipath(Variant v) {
  switch (v) {
    case Variant::kWebRtcPath0:
    case Variant::kWebRtcPath1:
    case Variant::kWebRtcCm:
      return false;
    case Variant::kSrtt:
    case Variant::kEcf:
    case Variant::kMtput:
    case Variant::kMrtp:
    case Variant::kConverge:
    case Variant::kConvergeNoFeedback:
    case Variant::kConvergeWebRtcFec:
      return true;
  }
  return true;
}

std::string ToString(Topology t) {
  switch (t) {
    case Topology::kMesh:
      return "mesh";
    case Topology::kStar:
      return "star";
  }
  return "?";
}

namespace {

std::unique_ptr<Scheduler> MakeScheduler(const ConferenceConfig& config) {
  switch (config.variant) {
    case Variant::kWebRtcPath0:
      return std::make_unique<SinglePathScheduler>(0);
    case Variant::kWebRtcPath1:
      return std::make_unique<SinglePathScheduler>(1);
    case Variant::kWebRtcCm:
      return std::make_unique<ConnectionMigrationScheduler>();
    case Variant::kSrtt:
      return std::make_unique<SrttScheduler>();
    case Variant::kEcf:
      return std::make_unique<EcfScheduler>();
    case Variant::kMtput:
      return std::make_unique<MtputScheduler>();
    case Variant::kMrtp:
      return std::make_unique<MprtpScheduler>();
    case Variant::kConverge:
    case Variant::kConvergeNoFeedback:
    case Variant::kConvergeWebRtcFec:
      return std::make_unique<VideoAwareScheduler>(config.video_scheduler);
  }
  // The switch above is exhaustive; only a Variant forged from an
  // out-of-range integer lands here. Scream under the harness, then degrade
  // to single-path so release builds still produce a run.
  CONVERGE_INVARIANT(
      "Conference", Timestamp::MinusInfinity(), false,
      "unknown Variant " +
          std::to_string(static_cast<int>(config.variant)));
  return std::make_unique<SinglePathScheduler>(0);
}

std::unique_ptr<FecController> MakeFec(const ConferenceConfig& config) {
  switch (config.variant) {
    case Variant::kConverge:
    case Variant::kConvergeNoFeedback:
      return std::make_unique<ConvergeFecController>(config.converge_fec);
    case Variant::kWebRtcPath0:
    case Variant::kWebRtcPath1:
    case Variant::kWebRtcCm:
    case Variant::kSrtt:
    case Variant::kEcf:
    case Variant::kMtput:
    case Variant::kMrtp:
    case Variant::kConvergeWebRtcFec:
      // Baselines and the table-FEC ablation use stock WebRTC protection.
      return std::make_unique<WebRtcFecController>();
  }
  CONVERGE_INVARIANT(
      "Conference", Timestamp::MinusInfinity(), false,
      "unknown Variant " +
          std::to_string(static_cast<int>(config.variant)));
  return std::make_unique<WebRtcFecController>();
}

bool QoeFeedbackEnabled(Variant v) {
  return v == Variant::kConverge || v == Variant::kConvergeWebRtcFec;
}

// The per-path sequence spaces (Appendix B RTP extension) exist only on
// Converge endpoints; everything else runs standard SSRC-sequence NACK.
bool HasMultipathRtpExtension(Variant v) {
  return v == Variant::kConverge || v == Variant::kConvergeNoFeedback ||
         v == Variant::kConvergeWebRtcFec;
}

// End-to-end signals the star hub relays to the origin sender: keyframe
// requests (the origin owns the encoder) and Converge QoE feedback (the
// origin owns the scheduler split). Everything else from a downlink
// receiver is consumed at the hub: RR/transport feedback drive the
// per-downlink congestion controllers and NACKs are answered from hub
// history (HubForwarder::OnReceiverRtcp) — the uplink congestion loop is
// closed separately by the hub's own feedback endpoint, so the origin's
// GCC must never see downlink feedback.
bool ForwardsUpstream(const RtcpPacket& packet) {
  return std::holds_alternative<KeyframeRequest>(packet.payload) ||
         std::holds_alternative<QoeFeedback>(packet.payload);
}

}  // namespace

Conference::Conference(const ConferenceConfig& config) : config_(config) {
  if (config_.participants.empty()) {
    config_.participants = {ParticipantSpec{}, ParticipantSpec{}};
  }
  const int n = static_cast<int>(config_.participants.size());
  CONVERGE_INVARIANT("Conference", Timestamp::Zero(), n >= 2,
                     "conference needs >= 2 participants, got " +
                         std::to_string(n));
  CONVERGE_INVARIANT(
      "Conference", Timestamp::Zero(),
      n <= SsrcAllocator::kMaxParticipantsPerIncarnation,
      "too many participants for the SSRC layout: " + std::to_string(n));
  for (const ParticipantSpec& p : config_.participants) {
    CONVERGE_INVARIANT(
        "Conference", Timestamp::Zero(),
        p.num_streams >= 1 &&
            p.num_streams <= SsrcAllocator::kMaxStreamsPerParticipant,
        "num_streams out of range: " + std::to_string(p.num_streams));
  }
  {
    std::stable_sort(config_.membership.begin(), config_.membership.end(),
                     [](const MembershipEvent& a, const MembershipEvent& b) {
                       return a.at < b.at;
                     });
    const std::string error = ValidateMembership(n, config_.membership);
    CONVERGE_INVARIANT("Conference", Timestamp::Zero(), error.empty(), error);
    if (!error.empty()) config_.membership.clear();
  }
  present_.resize(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    present_[static_cast<size_t>(p)] =
        MembershipPresentAtStart(p, config_.membership) ? 1 : 0;
  }
  // Hub-graph validation. The cascade is a star concept; a mesh with
  // num_hubs > 1 is rejected and degraded to the plain mesh.
  if (config_.num_hubs < 1) {
    CONVERGE_INVARIANT("Conference", Timestamp::Zero(), false,
                       "num_hubs must be >= 1, got " +
                           std::to_string(config_.num_hubs));
    config_.num_hubs = 1;
  }
  if (config_.num_hubs > 1 && config_.topology != Topology::kStar) {
    CONVERGE_INVARIANT("Conference", Timestamp::Zero(), false,
                       "multi-hub cascade requires the star topology");
    config_.num_hubs = 1;
  }
  CONVERGE_INVARIANT(
      "Conference", Timestamp::Zero(),
      config_.home_hub.empty() ||
          config_.home_hub.size() == static_cast<size_t>(n),
      "home_hub must be empty or have one entry per participant");
  CONVERGE_INVARIANT(
      "Conference", Timestamp::Zero(),
      config_.hub_fault_plans.size() <=
          static_cast<size_t>(config_.num_hubs),
      "more hub fault plans than hubs");
  // Layered-media gating. Simulcast needs (a) the star topology — a mesh
  // receiver would get every rung and the receiver's PacketBuffer keys
  // frames by (stream, frame_id), so two rungs of one capture would collide
  // — and (b) a Converge-family variant: rung filtering leaves per-SSRC
  // `seq` gaps at the hub, which only the multipath extension's per-path
  // (mp_seq-based) NACK machinery tolerates. Invalid combinations degrade
  // to single-layer through the invariant registry, mirroring the hub-graph
  // rules above.
  if (config_.simulcast_rungs < 1) config_.simulcast_rungs = 1;
  if (config_.temporal_layers < 1) config_.temporal_layers = 1;
  if (config_.simulcast_rungs > HubForwarder::kMaxRungs) {
    CONVERGE_INVARIANT("Conference", Timestamp::Zero(), false,
                       "simulcast_rungs " +
                           std::to_string(config_.simulcast_rungs) +
                           " exceeds the wire/selection limit of " +
                           std::to_string(HubForwarder::kMaxRungs));
    config_.simulcast_rungs = HubForwarder::kMaxRungs;
  }
  if (config_.temporal_layers > 4) config_.temporal_layers = 4;
  if (config_.simulcast_rungs > 1 && config_.topology != Topology::kStar) {
    CONVERGE_INVARIANT("Conference", Timestamp::Zero(), false,
                       "simulcast requires the star topology");
    config_.simulcast_rungs = 1;
  }
  if (config_.simulcast_rungs > 1 &&
      !HasMultipathRtpExtension(config_.variant)) {
    CONVERGE_INVARIANT(
        "Conference", Timestamp::Zero(), false,
        "simulcast requires a Converge-family variant (per-path NACK)");
    config_.simulcast_rungs = 1;
  }
  home_hub_.resize(static_cast<size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    int hub = p % config_.num_hubs;
    if (config_.home_hub.size() == static_cast<size_t>(n)) {
      const int pinned = config_.home_hub[static_cast<size_t>(p)];
      if (pinned >= 0 && pinned < config_.num_hubs) {
        hub = pinned;
      } else {
        CONVERGE_INVARIANT("Conference", Timestamp::Zero(), false,
                           "home_hub[" + std::to_string(p) + "]=" +
                               std::to_string(pinned) + " outside [0, " +
                               std::to_string(config_.num_hubs) + ")");
      }
    }
    home_hub_[static_cast<size_t>(p)] = hub;
  }
  hub_alive_.assign(static_cast<size_t>(config_.num_hubs), 1);
  hub_failures_.assign(static_cast<size_t>(config_.num_hubs), 0);
  rehomed_away_.assign(static_cast<size_t>(config_.num_hubs), 0);
  rehomed_onto_.assign(static_cast<size_t>(config_.num_hubs), 0);
  extra_incarnations_.assign(static_cast<size_t>(n), 0);
  if (config_.trace_capacity > 0) {
    trace_ = std::make_unique<TraceRecorder>(config_.trace_capacity);
  }
  Random rng(config_.seed);
  if (config_.topology == Topology::kMesh) {
    BuildMesh(rng);
  } else {
    BuildStar(rng);
  }
  // Forked last: the initial build above consumes exactly the historical
  // fork sequence, so churn-free configs stay byte-identical.
  churn_rng_ = rng.Fork();
}

Conference::~Conference() = default;

std::vector<PathSpec> Conference::EdgePaths(int from, int to) const {
  return config_.paths_for_edge ? config_.paths_for_edge(from, to)
                                : config_.paths;
}

namespace {

Sender::Config MakeSenderConfig(const ConferenceConfig& config,
                                int participant, int incarnation) {
  const ParticipantSpec& spec =
      config.participants[static_cast<size_t>(participant)];
  Sender::Config sconf;
  for (int i = 0; i < spec.num_streams; ++i) {
    Sender::StreamConfig sc;
    sc.ssrc = SsrcAllocator::StreamSsrc(participant, i, incarnation);
    sc.camera.stream_id = i;
    sc.camera.fps = config.fps;
    sc.camera.width = config.width;
    sc.camera.height = config.height;
    sc.encoder.max_rate = config.max_rate_per_stream;
    sc.encoder.simulcast_rungs = config.simulcast_rungs;
    sc.encoder.temporal_layers = config.temporal_layers;
    if (config.simulcast_rungs > 1) {
      // Layered mode moves the resolution choice to the hub's per-receiver
      // rung selection; the sender-side adaptive ladder would fight it.
      sc.encoder.adapt_resolution = false;
    }
    sconf.streams.push_back(sc);
  }
  sconf.max_total_rate =
      config.max_rate_per_stream * static_cast<int64_t>(spec.num_streams);
  sconf.cc.algorithm = config.cc_algorithm;
  sconf.cc.max_rate = sconf.max_total_rate * 2;
  sconf.cc_coupling = config.cc_coupling;
  sconf.enable_fec = config.enable_fec;
  return sconf;
}

// Receiver-side subscription to `from`'s published streams. `subscribe` is
// false for the star hub's feedback-only endpoint: it answers RR/transport
// feedback/NACK for the uplink but never decodes media.
ReceiverEndpoint::Config MakeReceiverConfig(const ConferenceConfig& config,
                                            int from, int incarnation,
                                            bool subscribe,
                                            PoolArena* arena) {
  ReceiverEndpoint::Config rconf;
  rconf.arena = arena;
  if (subscribe) {
    const ParticipantSpec& spec =
        config.participants[static_cast<size_t>(from)];
    for (int i = 0; i < spec.num_streams; ++i) {
      rconf.ssrcs.push_back(SsrcAllocator::StreamSsrc(from, i, incarnation));
    }
  }
  rconf.stream_template.packet_buffer.capacity_packets =
      config.packet_buffer_capacity;
  rconf.stream_template.frame_buffer.capacity_frames =
      config.frame_buffer_capacity;
  rconf.stream_template.enable_qoe_feedback =
      QoeFeedbackEnabled(config.variant);
  rconf.per_path_nack = HasMultipathRtpExtension(config.variant);
  return rconf;
}

}  // namespace

// One full pipeline for the ordered pair (from, to), built in exactly the
// order the historical point-to-point Call used (network fork, scheduler,
// FEC, metrics, sender fork, receiver) — with one sending participant and
// one receiving participant this IS the old Call, RNG stream and event
// schedule included, which is what keeps the 2-party adapter byte-identical.
// The initial build calls this with the construction RNG; mid-call joins
// call it with churn_rng_.
Conference::Leg* Conference::BuildMeshLeg(int from, int to, int incarnation,
                                          Random& rng) {
  uplinks_.push_back(std::make_unique<Uplink>());
  Uplink& up = *uplinks_.back();
  legs_.push_back(std::make_unique<Leg>());
  Leg& leg = *legs_.back();
  up.from = from;
  up.to = to;
  up.incarnation = incarnation;
  leg.from = from;
  leg.to = to;
  leg.incarnation = incarnation;
  leg.uplink = &up;
  Leg* leg_ptr = &leg;
  {
    TraceParticipantScope scope(from);
    up.network =
        std::make_unique<Network>(&loop_, EdgePaths(from, to), rng.Fork());
    up.scheduler = MakeScheduler(config_);
    up.fec = MakeFec(config_);
  }
  {
    TraceParticipantScope scope(to);
    MetricsCollector::Config mconf;
    mconf.num_streams =
        config_.participants[static_cast<size_t>(from)].num_streams;
    mconf.expected_frame_interval = Duration::Seconds(1.0 / config_.fps);
    leg.metrics = std::make_unique<MetricsCollector>(&loop_, mconf);
  }
  {
    TraceParticipantScope scope(from);
    up.sender = std::make_unique<Sender>(
        &loop_, MakeSenderConfig(config_, from, incarnation),
        up.scheduler.get(), up.fec.get(), up.network->path_ids(), rng.Fork(),
        [this, leg_ptr](PathId path, RtpPacket packet) {
          MeshTransmitRtp(leg_ptr, path, std::move(packet));
        },
        [this, leg_ptr](PathId path, const RtcpPacket& packet) {
          MeshTransmitRtcpForward(leg_ptr, path, packet);
        });
  }
  {
    TraceParticipantScope scope(to);
    leg.receiver = std::make_unique<ReceiverEndpoint>(
        &loop_,
        MakeReceiverConfig(config_, from, incarnation, /*subscribe=*/true,
                           &arena_),
        leg.metrics.get(),
        [this, leg_ptr](PathId path, const RtcpPacket& packet) {
          MeshTransmitRtcpBackward(leg_ptr, path, packet);
        });
  }
  return leg_ptr;
}

void Conference::BuildMesh(Random& rng) {
  const int n = static_cast<int>(config_.participants.size());
  size_t num_legs = 0;
  for (int from = 0; from < n; ++from) {
    if (!config_.participants[static_cast<size_t>(from)].sends) continue;
    for (int to = 0; to < n; ++to) {
      if (to == from) continue;
      if (config_.participants[static_cast<size_t>(to)].receives) ++num_legs;
    }
  }
  uplinks_.reserve(num_legs);
  legs_.reserve(num_legs);

  for (int from = 0; from < n; ++from) {
    if (!present_[static_cast<size_t>(from)]) continue;
    if (!config_.participants[static_cast<size_t>(from)].sends) continue;
    for (int to = 0; to < n; ++to) {
      if (to == from) continue;
      if (!present_[static_cast<size_t>(to)]) continue;
      if (!config_.participants[static_cast<size_t>(to)].receives) continue;
      BuildMeshLeg(from, to, /*incarnation=*/0, rng);
    }
  }
}

// Hub->participant downlink network, shared by every stream forwarded to
// that participant.
void Conference::BuildStarDownlink(int to, Random& rng) {
  TraceParticipantScope scope(to);
  downlinks_[static_cast<size_t>(to)] =
      std::make_unique<Network>(&loop_, EdgePaths(kHubId, to), rng.Fork());
}

// Per-sender uplink: pipeline into the hub plus the hub-side endpoint that
// terminates the uplink congestion-control loop.
Conference::Uplink* Conference::BuildStarUplink(int from, int incarnation,
                                                Random& rng) {
  const int n = static_cast<int>(config_.participants.size());
  uplinks_.push_back(std::make_unique<Uplink>());
  Uplink& up = *uplinks_.back();
  up.from = from;
  up.to = kHubId;
  up.incarnation = incarnation;
  up.hub = home_hub_[static_cast<size_t>(from)];
  Uplink* up_ptr = &up;
  TraceParticipantScope scope(from);
  up.network =
      std::make_unique<Network>(&loop_, EdgePaths(from, kHubId), rng.Fork());
  up.scheduler = MakeScheduler(config_);
  up.fec = MakeFec(config_);
  up.sender = std::make_unique<Sender>(
      &loop_, MakeSenderConfig(config_, from, incarnation),
      up.scheduler.get(), up.fec.get(), up.network->path_ids(), rng.Fork(),
      [this, up_ptr](PathId path, RtpPacket packet) {
        StarTransmitRtp(up_ptr, path, std::move(packet));
      },
      [this, up_ptr](PathId path, const RtcpPacket& packet) {
        StarTransmitRtcpForward(up_ptr, path, packet);
      });
  up.hub_feedback = std::make_unique<ReceiverEndpoint>(
      &loop_,
      MakeReceiverConfig(config_, from, incarnation, /*subscribe=*/false,
                         &arena_),
      /*metrics=*/nullptr,
      [this, up_ptr](PathId path, const RtcpPacket& packet) {
        up_ptr->network->path(path).backward().Send(
            packet.wire_size(), [up_ptr, packet](Timestamp arrival) {
              TraceParticipantScope deliver_scope(up_ptr->from);
              up_ptr->sender->HandleRtcp(packet, arrival);
            });
      });

  // The hub forwards uplink path p onto downlink path p, so every edge of
  // a star must expose the same number of paths.
  for (int to = 0; to < n; ++to) {
    const Network* down = downlinks_[static_cast<size_t>(to)].get();
    CONVERGE_INVARIANT(
        "Conference", Timestamp::Zero(),
        down == nullptr || down->num_paths() == up.network->num_paths(),
        "star edge path-count mismatch: uplink " + std::to_string(from) +
            " has " + std::to_string(up.network->num_paths()) +
            ", downlink " + std::to_string(to) + " has " +
            std::to_string(down == nullptr ? 0 : down->num_paths()));
  }
  // Mid-call builds (joins, re-homings) register with the trunks already
  // leaving this hub; the initial build has no trunks yet — BuildTrunk
  // registers the existing uplinks itself.
  for (auto& t : trunks_) {
    if (t->live && t->from_hub == up.hub) BuildTrunkAgent(t.get(), up_ptr);
  }
  return up_ptr;
}

// Receiving leg: per (sender, receiver) metrics + receive pipeline,
// registered with the sender's uplink for hub fan-out.
Conference::Leg* Conference::BuildStarLeg(Uplink* up, int to) {
  legs_.push_back(std::make_unique<Leg>());
  Leg& leg = *legs_.back();
  leg.from = up->from;
  leg.to = to;
  leg.incarnation = up->incarnation;
  leg.hub = home_hub_[static_cast<size_t>(to)];
  leg.uplink = up;
  leg.downlink = downlinks_[static_cast<size_t>(to)].get();
  Leg* leg_ptr = &leg;
  TraceParticipantScope scope(to);
  MetricsCollector::Config mconf;
  mconf.num_streams =
      config_.participants[static_cast<size_t>(up->from)].num_streams;
  mconf.expected_frame_interval = Duration::Seconds(1.0 / config_.fps);
  leg.metrics = std::make_unique<MetricsCollector>(&loop_, mconf);
  leg.receiver = std::make_unique<ReceiverEndpoint>(
      &loop_,
      MakeReceiverConfig(config_, up->from, up->incarnation,
                         /*subscribe=*/true, &arena_),
      leg.metrics.get(),
      [this, leg_ptr](PathId path, const RtcpPacket& packet) {
        StarTransmitRtcpBackward(leg_ptr, path, packet);
      });
  up->fanout.push_back(leg_ptr);
  star_leg_lookup_[static_cast<size_t>(to)][static_cast<size_t>(up->from)] =
      leg_ptr;
  return leg_ptr;
}

// Per-receiver forwarding engine.
void Conference::BuildStarForwarder(int to) {
  const int n = static_cast<int>(config_.participants.size());
  Network* down = downlinks_[static_cast<size_t>(to)].get();
  if (down == nullptr) return;
  // An SFU starts each downlink optimistic — at the aggregate publisher
  // rate it would have to carry — and lets delay/loss signals pull a
  // constrained downlink back down. Aggregated over currently-present
  // senders (= all senders when membership is static).
  DataRate aggregate = DataRate::Zero();
  for (int from = 0; from < n; ++from) {
    if (from == to) continue;
    if (!present_[static_cast<size_t>(from)]) continue;
    const ParticipantSpec& spec =
        config_.participants[static_cast<size_t>(from)];
    if (!spec.sends) continue;
    aggregate = aggregate + config_.max_rate_per_stream *
                                static_cast<int64_t>(spec.num_streams);
  }
  HubForwarder::Config hconf = config_.hub;
  hconf.cc.controller.algorithm = config_.cc_algorithm;
  hconf.cc.controller.start_rate = aggregate;
  hconf.cc.controller.max_rate = aggregate * 2;
  hconf.cc.controller.trace_component = HubTraceComponent(config_.cc_algorithm);
  // Receiver-facing engines run rung selection whenever the conference is
  // layered; hub.layers carries only the tunables.
  hconf.layers.enabled = config_.simulcast_rungs > 1;
  // Hub work on this receiver's downlinks is attributed to the receiver,
  // like the downlink delivery callbacks.
  TraceParticipantScope scope(to);
  forwarder_hub_[static_cast<size_t>(to)] =
      home_hub_[static_cast<size_t>(to)];
  forwarders_[static_cast<size_t>(to)] = std::make_unique<HubForwarder>(
      &loop_, hconf, down->path_ids(),
      [this, to](int from, PathId path, RtpPacket packet) {
        Leg* leg = star_leg_lookup_[static_cast<size_t>(to)]
                                   [static_cast<size_t>(from)];
        // A retired leg's forwarder is stopped with it, but a packet can be
        // in flight through the hub when the receiver leaves.
        if (leg == nullptr || !leg->live) return;
        StarDeliverDownlink(leg, path, std::move(packet));
      },
      [this, to](int from, uint32_t ssrc, PathId path) {
        Uplink* u = LiveUplinkOf(from);
        if (u == nullptr) return;
        const int serving_hub = forwarder_hub_[static_cast<size_t>(to)];
        if (!multi_hub() || serving_hub == u->hub) {
          StarRelayPli(u, ssrc, path);
          return;
        }
        // The receiver is served by a remote hub: the keyframe request
        // first crosses the trunk that carried the media (its feedback
        // direction), then rides the origin's uplink backward link.
        Trunk* t = LiveTrunk(u->hub, serving_hub);
        if (t == nullptr) return;
        RtcpPacket pli;
        pli.path_id = path;
        pli.payload = KeyframeRequest{ssrc};
        t->network->path(path).backward().Send(
            pli.wire_size(), [this, t, from, ssrc, path](Timestamp) {
              if (!t->live) return;
              if (Uplink* u2 = LiveUplinkOf(from)) {
                StarRelayPli(u2, ssrc, path);
              }
            });
      });
}

void Conference::BuildStar(Random& rng) {
  const int n = static_cast<int>(config_.participants.size());
  size_t num_uplinks = 0;
  size_t num_legs = 0;
  for (int from = 0; from < n; ++from) {
    if (!config_.participants[static_cast<size_t>(from)].sends) continue;
    ++num_uplinks;
    for (int to = 0; to < n; ++to) {
      if (to == from) continue;
      if (config_.participants[static_cast<size_t>(to)].receives) ++num_legs;
    }
  }
  uplinks_.reserve(num_uplinks);
  legs_.reserve(num_legs);
  downlinks_.resize(static_cast<size_t>(n));
  forwarders_.resize(static_cast<size_t>(n));
  forwarder_hub_.assign(static_cast<size_t>(n), 0);
  star_leg_lookup_.assign(static_cast<size_t>(n),
                          std::vector<Leg*>(static_cast<size_t>(n), nullptr));

  auto in_call = [&](int p, bool (ParticipantSpec::*role)) {
    return present_[static_cast<size_t>(p)] != 0 &&
           config_.participants[static_cast<size_t>(p)].*role;
  };

  for (int to = 0; to < n; ++to) {
    if (in_call(to, &ParticipantSpec::receives)) BuildStarDownlink(to, rng);
  }
  for (int from = 0; from < n; ++from) {
    if (!in_call(from, &ParticipantSpec::sends)) continue;
    Uplink* up = BuildStarUplink(from, /*incarnation=*/0, rng);
    (void)up;
  }
  for (auto& up : uplinks_) {
    for (int to = 0; to < n; ++to) {
      if (to == up->from) continue;
      if (!in_call(to, &ParticipantSpec::receives)) continue;
      BuildStarLeg(up.get(), to);
    }
  }
  for (int to = 0; to < n; ++to) {
    if (in_call(to, &ParticipantSpec::receives)) BuildStarForwarder(to);
  }
  // Trunks are built last — after every single-star phase — so the RNG fork
  // sequence up to here is the historical one and num_hubs == 1 (which
  // skips this entirely) stays byte-identical.
  if (multi_hub()) {
    for (int a = 0; a < config_.num_hubs; ++a) {
      for (int b = 0; b < config_.num_hubs; ++b) {
        if (a != b) BuildTrunk(a, b, rng);
      }
    }
  }
}

std::vector<PathSpec> Conference::TrunkPaths(int from_hub,
                                             int to_hub) const {
  if (config_.paths_for_trunk) {
    return config_.paths_for_trunk(from_hub, to_hub);
  }
  return config_.trunk_paths.empty() ? config_.paths : config_.trunk_paths;
}

Conference::Trunk* Conference::LiveTrunk(int from_hub, int to_hub) {
  for (auto& t : trunks_) {
    if (t->live && t->from_hub == from_hub && t->to_hub == to_hub) {
      return t.get();
    }
  }
  return nullptr;
}

Conference::Trunk* Conference::BuildTrunk(int from_hub, int to_hub,
                                          Random& rng) {
  trunks_.push_back(std::make_unique<Trunk>());
  Trunk& t = *trunks_.back();
  t.from_hub = from_hub;
  t.to_hub = to_hub;
  Trunk* t_ptr = &t;
  t.network = std::make_unique<Network>(&loop_, TrunkPaths(from_hub, to_hub),
                                        rng.Fork());
  // Uplink path p crosses trunk path p onto downlink path p, so the trunk
  // must expose the same path count as the star's edges.
  for (size_t p = 0; p < downlinks_.size(); ++p) {
    const Network* down = downlinks_[p].get();
    CONVERGE_INVARIANT(
        "Conference", loop_.now(),
        down == nullptr || down->num_paths() == t.network->num_paths(),
        "trunk " + std::to_string(from_hub) + "->" + std::to_string(to_hub) +
            " path-count mismatch: trunk has " +
            std::to_string(t.network->num_paths()) + ", downlink " +
            std::to_string(p) + " has " +
            std::to_string(down == nullptr ? 0 : down->num_paths()));
  }
  // Like a downlink forwarder, the trunk engine starts optimistic — at the
  // aggregate rate of the publishers homed at the near hub — and lets the
  // trunk's own delay/loss feedback pull it down.
  DataRate aggregate = DataRate::Zero();
  const int n = static_cast<int>(config_.participants.size());
  for (int from = 0; from < n; ++from) {
    if (!present_[static_cast<size_t>(from)]) continue;
    if (home_hub_[static_cast<size_t>(from)] != from_hub) continue;
    const ParticipantSpec& spec =
        config_.participants[static_cast<size_t>(from)];
    if (!spec.sends) continue;
    aggregate = aggregate + config_.max_rate_per_stream *
                                static_cast<int64_t>(spec.num_streams);
  }
  if (aggregate.bps() == 0) aggregate = config_.max_rate_per_stream;
  HubForwarder::Config tconf = config_.trunk;
  tconf.cc.controller.algorithm = config_.cc_algorithm;
  tconf.cc.controller.start_rate = aggregate;
  tconf.cc.controller.max_rate = aggregate * 2;
  tconf.cc.controller.trace_component = "hub_trunk";
  tconf.trace_category = "hub_trunk";
  // A trunk must carry EVERY rung: the remote hub's per-receiver engines
  // make their own selections, so filtering here would starve them.
  tconf.layers.enabled = false;
  t.engine = std::make_unique<HubForwarder>(
      &loop_, tconf, t.network->path_ids(),
      [this, t_ptr](int origin, PathId path, RtpPacket packet) {
        if (!t_ptr->live) return;
        TrunkTransmitRtp(t_ptr, origin, path, std::move(packet));
      },
      [this, t_ptr](int origin, uint32_t ssrc, PathId path) {
        // Trunk thinning broke a dependency chain: chase the keyframe all
        // the way to the origin publisher.
        if (!t_ptr->live) return;
        if (Uplink* u = LiveUplinkOf(origin)) StarRelayPli(u, ssrc, path);
      });
  for (auto& up : uplinks_) {
    if (up->live && up->hub_feedback != nullptr && up->hub == from_hub) {
      BuildTrunkAgent(t_ptr, up.get());
    }
  }
  return t_ptr;
}

void Conference::BuildTrunkAgent(Trunk* t, Uplink* up) {
  const int origin = up->from;
  auto it = t->agents.find(origin);
  if (it != t->agents.end()) {
    // Defensive replace (a re-homing retires the old uplink's agent via
    // DetachParticipantPipelines first, so this should not trigger).
    it->second->Stop();
    retired_trunk_agents_.push_back(std::move(it->second));
    t->agents.erase(it);
  }
  Trunk* t_ptr = t;
  TraceParticipantScope scope(origin);
  auto agent = std::make_unique<ReceiverEndpoint>(
      &loop_,
      MakeReceiverConfig(config_, origin, up->incarnation,
                         /*subscribe=*/false, &arena_),
      /*metrics=*/nullptr,
      [this, t_ptr, origin](PathId path, const RtcpPacket& packet) {
        if (!t_ptr->live) return;
        t_ptr->network->path(path).backward().Send(
            packet.wire_size(), [t_ptr, origin, path, packet](Timestamp) {
              // The trunk may have been retired while this feedback was in
              // flight. Live or not, trunk feedback terminates HERE — it
              // never reaches the publisher's uplink CC or the remote hub's
              // downlink CC.
              if (!t_ptr->live) return;
              TraceParticipantScope scope(origin);
              t_ptr->engine->OnReceiverRtcp(origin, path, packet);
            });
      });
  if (started_) agent->Start();
  t->agents.emplace(origin, std::move(agent));
}

void Conference::RetireTrunk(Trunk* t) {
  if (!t->live) return;
  t->live = false;
  t->engine->Stop();
  for (auto& [origin, agent] : t->agents) {
    agent->Stop();
    retired_trunk_agents_.push_back(std::move(agent));
  }
  t->agents.clear();
}

void Conference::TrunkTransmitRtp(Trunk* t, int origin, PathId path,
                                  RtpPacket packet) {
  const int64_t wire_bytes = packet.wire_size();
  Link& link = t->network->path(path).forward();
  // Duplication faults clone the payload here, like every other wire hop.
  for (int copy = link.SendCopies(); copy > 1; --copy) {
    link.Send(wire_bytes,
              [this, t, origin, packet, path](Timestamp arrival) mutable {
                TrunkDeliverRtp(t, origin, path, std::move(packet), arrival);
              });
  }
  link.Send(wire_bytes,
            [this, t, origin, packet = std::move(packet),
             path](Timestamp arrival) mutable {
              TrunkDeliverRtp(t, origin, path, std::move(packet), arrival);
            });
}

void Conference::TrunkDeliverRtp(Trunk* t, int origin, PathId path,
                                 RtpPacket packet, Timestamp arrival) {
  if (!t->live) return;
  // The far-end feedback agent sees every trunk arrival: it answers
  // RR/transport feedback/NACK toward the trunk engine, so trunk losses are
  // chased hub-to-hub instead of end-to-end.
  auto agent = t->agents.find(origin);
  if (agent != t->agents.end()) {
    TraceParticipantScope scope(origin);
    RtpPacket agent_copy = packet;
    agent->second->OnRtpPacket(std::move(agent_copy), arrival, path);
  }
  // Skip the fan-out when the origin re-homed while this packet crossed:
  // its fresh uplink publishes under a new incarnation through (possibly)
  // another trunk, and the remote forwarders' state for the old incarnation
  // has been reset.
  Uplink* up = LiveUplinkOf(origin);
  if (up == nullptr || up->hub != t->from_hub) return;
  for (Leg* leg : up->fanout) {
    if (!leg->live || leg->hub != t->to_hub) continue;
    HubForwarder* fwd = forwarders_[static_cast<size_t>(leg->to)].get();
    if (fwd == nullptr) continue;
    TraceParticipantScope scope(leg->to);
    fwd->OnMediaFromUplink(origin, path, RtpPacket(packet));
  }
}

void Conference::CascadeFanOut(Uplink* uplink, PathId path,
                               RtpPacket packet) {
  // Legs homed at the origin's own hub fan out locally, exactly like the
  // single-star path.
  for (Leg* leg : uplink->fanout) {
    if (!leg->live || leg->hub != uplink->hub) continue;
    HubForwarder* fwd = forwarders_[static_cast<size_t>(leg->to)].get();
    if (fwd == nullptr) continue;
    TraceParticipantScope scope(leg->to);
    fwd->OnMediaFromUplink(leg->from, path, RtpPacket(packet));
  }
  // Media crosses each trunk at most ONCE per remote hub — the defining
  // economy of a cascaded SFU — and only when that hub currently serves a
  // live subscribed leg.
  for (auto& t : trunks_) {
    if (!t->live || t->from_hub != uplink->hub) continue;
    if (!hub_alive_[static_cast<size_t>(t->to_hub)]) continue;
    bool wanted = false;
    for (Leg* leg : uplink->fanout) {
      if (leg->live && leg->hub == t->to_hub) {
        wanted = true;
        break;
      }
    }
    if (!wanted) continue;
    TraceParticipantScope scope(uplink->from);
    t->engine->OnMediaFromUplink(uplink->from, path, RtpPacket(packet));
  }
}

int Conference::NextAliveHub(int hub) const {
  for (int step = 1; step < config_.num_hubs; ++step) {
    const int h = (hub + step) % config_.num_hubs;
    if (hub_alive_[static_cast<size_t>(h)]) return h;
  }
  return -1;
}

void Conference::FailHub(int hub) {
  if (!multi_hub() || !hub_alive_[static_cast<size_t>(hub)]) return;
  hub_alive_[static_cast<size_t>(hub)] = 0;
  ++hub_failures_[static_cast<size_t>(hub)];
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant("conference", "hub_fail", loop_.now(),
                   static_cast<double>(hub));
  }
  for (auto& t : trunks_) {
    if (t->live && (t->from_hub == hub || t->to_hub == hub)) {
      RetireTrunk(t.get());
    }
  }
  const int fallback = NextAliveHub(hub);
  CONVERGE_INVARIANT("Conference", loop_.now(), fallback >= 0,
                     "hub " + std::to_string(hub) +
                         " failed with no alive hub to re-home onto");
  if (fallback < 0) return;
  const int n = static_cast<int>(config_.participants.size());
  std::vector<int> affected;
  for (int p = 0; p < n; ++p) {
    if (present_[static_cast<size_t>(p)] &&
        home_hub_[static_cast<size_t>(p)] == hub) {
      affected.push_back(p);
    }
  }
  // Teardown-all first, then rebuild-all: a rebuilt participant's legs must
  // never be wired against a forwarder or uplink that the next teardown in
  // the batch is about to retire. The whole batch is marked absent for the
  // rebuild so each JoinParticipant wires only pairs whose far side is
  // already rebuilt — exactly a batch of simultaneous rejoins; a leg toward
  // a torn-down peer would capture its null downlink slot.
  for (int p : affected) {
    TraceParticipantScope scope(p);
    present_[static_cast<size_t>(p)] = 0;
    DetachParticipantPipelines(p, /*rehomed=*/true);
  }
  for (int p : affected) {
    home_hub_[static_cast<size_t>(p)] = fallback;
    ++extra_incarnations_[static_cast<size_t>(p)];
    ++rehomed_away_[static_cast<size_t>(hub)];
    ++rehomed_onto_[static_cast<size_t>(fallback)];
  }
  for (int p : affected) {
    TraceParticipantScope scope(p);
    JoinParticipant(p);
    if (TraceRecorder* trace = TraceRecorder::Current()) {
      trace->Instant("conference", "rehome", loop_.now(),
                     static_cast<double>(p));
    }
  }
}

void Conference::RecoverHub(int hub) {
  if (!multi_hub() || hub_alive_[static_cast<size_t>(hub)]) return;
  hub_alive_[static_cast<size_t>(hub)] = 1;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant("conference", "hub_recover", loop_.now(),
                   static_cast<double>(hub));
  }
  // Rebuild the trunks so the hub can serve future re-homings; participants
  // re-homed away do not move back.
  for (int other = 0; other < config_.num_hubs; ++other) {
    if (other == hub || !hub_alive_[static_cast<size_t>(other)]) continue;
    if (LiveTrunk(hub, other) == nullptr) BuildTrunk(hub, other, churn_rng_);
    if (LiveTrunk(other, hub) == nullptr) BuildTrunk(other, hub, churn_rng_);
  }
}

void Conference::MeshTransmitRtp(Leg* leg, PathId path, RtpPacket packet) {
  // Retired legs keep their pipelines alive (in-flight continuations) but
  // put nothing new on the wire.
  if (!leg->live) return;
  const int64_t wire_bytes = packet.wire_size();
  Link& link = leg->uplink->network->path(path).forward();
  // Duplication faults clone the payload here: the link only sees bytes and
  // an opaque move-only continuation, so it cannot copy a packet itself.
  for (int copy = link.SendCopies(); copy > 1; --copy) {
    link.Send(wire_bytes, [leg, packet, path](Timestamp arrival) mutable {
      TraceParticipantScope scope(leg->to);
      leg->receiver->OnRtpPacket(std::move(packet), arrival, path);
    });
  }
  // The in-flight packet rides inside the link's inline delivery callback —
  // no heap allocation per transmitted packet.
  link.Send(
      wire_bytes,
      [leg, packet = std::move(packet), path](Timestamp arrival) mutable {
        TraceParticipantScope scope(leg->to);
        leg->receiver->OnRtpPacket(std::move(packet), arrival, path);
      });
}

void Conference::MeshTransmitRtcpForward(Leg* leg, PathId path,
                                         const RtcpPacket& packet) {
  if (!leg->live) return;
  leg->uplink->network->path(path).forward().Send(
      packet.wire_size(), [leg, packet, path](Timestamp arrival) {
        TraceParticipantScope scope(leg->to);
        leg->receiver->OnRtcpPacket(packet, arrival, path);
      });
}

void Conference::MeshTransmitRtcpBackward(Leg* leg, PathId path,
                                          const RtcpPacket& packet) {
  if (!leg->live) return;
  leg->uplink->network->path(path).backward().Send(
      packet.wire_size(), [leg, packet](Timestamp arrival) {
        TraceParticipantScope scope(leg->from);
        leg->uplink->sender->HandleRtcp(packet, arrival);
      });
}

void Conference::StarTransmitRtp(Uplink* uplink, PathId path,
                                 RtpPacket packet) {
  if (!uplink->live) return;
  const int64_t wire_bytes = packet.wire_size();
  Link& link = uplink->network->path(path).forward();
  for (int copy = link.SendCopies(); copy > 1; --copy) {
    link.Send(wire_bytes,
              [this, uplink, packet, path](Timestamp arrival) mutable {
                StarHubDeliverRtp(uplink, path, std::move(packet), arrival);
              });
  }
  link.Send(wire_bytes,
            [this, uplink, packet = std::move(packet),
             path](Timestamp arrival) mutable {
              StarHubDeliverRtp(uplink, path, std::move(packet), arrival);
            });
}

void Conference::StarHubDeliverRtp(Uplink* uplink, PathId path,
                                   RtpPacket packet, Timestamp arrival) {
  {
    // The hub's feedback endpoint sees every uplink arrival: it is what
    // answers RR/transport feedback/NACK toward the sender. Attributed to
    // the uplink owner, like a real SFU's per-publisher transport context.
    TraceParticipantScope scope(uplink->from);
    RtpPacket hub_copy = packet;
    uplink->hub_feedback->OnRtpPacket(std::move(hub_copy), arrival, path);
  }
  if (multi_hub()) {
    CascadeFanOut(uplink, path, std::move(packet));
    return;
  }
  // Fan out to every subscribed receiver through its forwarding engine,
  // uplink path p -> downlink path p (equal path counts, checked at
  // build). The forwarder owns the downlink pacing/drop decisions; packets
  // reach the wire via StarDeliverDownlink.
  for (size_t k = 0; k < uplink->fanout.size(); ++k) {
    Leg* leg = uplink->fanout[k];
    // Retired legs stay in the fan-out list (in-flight deliveries walk it)
    // but their receiver — and possibly their forwarder slot — is gone.
    if (!leg->live) continue;
    // Last fan-out leg takes ownership; earlier ones copy.
    RtpPacket fwd = (k + 1 == uplink->fanout.size()) ? std::move(packet)
                                                     : RtpPacket(packet);
    TraceParticipantScope scope(leg->to);
    forwarders_[static_cast<size_t>(leg->to)]->OnMediaFromUplink(
        leg->from, path, std::move(fwd));
  }
}

void Conference::StarDeliverDownlink(Leg* leg, PathId path,
                                     RtpPacket packet) {
  const int64_t wire_bytes = packet.wire_size();
  Link& down = leg->downlink->path(path).forward();
  // Duplication faults clone the payload here, like every other wire hop.
  for (int copy = down.SendCopies(); copy > 1; --copy) {
    down.Send(wire_bytes, [leg, packet, path](Timestamp at) mutable {
      TraceParticipantScope scope(leg->to);
      leg->receiver->OnRtpPacket(std::move(packet), at, path);
    });
  }
  down.Send(wire_bytes,
            [leg, packet = std::move(packet), path](Timestamp at) mutable {
              TraceParticipantScope scope(leg->to);
              leg->receiver->OnRtpPacket(std::move(packet), at, path);
            });
}

void Conference::StarRelayPli(Uplink* uplink, uint32_t ssrc, PathId path) {
  RtcpPacket pli;
  pli.path_id = path;
  pli.payload = KeyframeRequest{ssrc};
  uplink->network->path(path).backward().Send(
      pli.wire_size(), [uplink, pli](Timestamp arrival) {
        TraceParticipantScope scope(uplink->from);
        uplink->sender->HandleRtcp(pli, arrival);
      });
}

void Conference::StarTransmitRtcpForward(Uplink* uplink, PathId path,
                                         const RtcpPacket& packet) {
  if (!uplink->live) return;
  uplink->network->path(path).forward().Send(
      packet.wire_size(), [this, uplink, packet, path](Timestamp arrival) {
        {
          TraceParticipantScope scope(uplink->from);
          uplink->hub_feedback->OnRtcpPacket(packet, arrival, path);
        }
        for (Leg* leg : uplink->fanout) {
          if (!leg->live) continue;
          // Legs served by a remote hub get the SR via their trunk below.
          if (multi_hub() && leg->hub != uplink->hub) continue;
          leg->downlink->path(path).forward().Send(
              packet.wire_size(), [leg, packet, path](Timestamp at) {
                TraceParticipantScope scope(leg->to);
                leg->receiver->OnRtcpPacket(packet, at, path);
              });
        }
        if (!multi_hub()) return;
        // One trunk copy per remote hub with a live subscribed leg; on
        // arrival the SR fans onto that hub's downlinks.
        for (auto& t : trunks_) {
          Trunk* t_ptr = t.get();
          if (!t_ptr->live || t_ptr->from_hub != uplink->hub) continue;
          bool wanted = false;
          for (Leg* leg : uplink->fanout) {
            if (leg->live && leg->hub == t_ptr->to_hub) {
              wanted = true;
              break;
            }
          }
          if (!wanted) continue;
          t_ptr->network->path(path).forward().Send(
              packet.wire_size(),
              [t_ptr, uplink, packet, path](Timestamp) {
                if (!t_ptr->live || !uplink->live) return;
                for (Leg* leg : uplink->fanout) {
                  if (!leg->live || leg->hub != t_ptr->to_hub) continue;
                  leg->downlink->path(path).forward().Send(
                      packet.wire_size(),
                      [leg, packet, path](Timestamp at) {
                        TraceParticipantScope scope(leg->to);
                        leg->receiver->OnRtcpPacket(packet, at, path);
                      });
                }
              });
        }
      });
}

void Conference::StarTransmitRtcpBackward(Leg* leg, PathId path,
                                          const RtcpPacket& packet) {
  // Receiver -> hub on the downlink's feedback direction.
  if (!leg->live) return;
  leg->downlink->path(path).backward().Send(
      packet.wire_size(), [this, leg, path, packet](Timestamp) {
        // The leg may have been retired while this feedback was in flight;
        // its forwarder slot may already belong to a rejoin.
        if (!leg->live) return;
        // At the hub: the receiver's forwarding engine consumes transport
        // feedback and receiver reports (per-downlink congestion loop) and
        // answers NACKs from hub history; only end-to-end signals —
        // keyframe requests and QoE feedback — travel on to the origin.
        {
          TraceParticipantScope scope(leg->to);
          if (forwarders_[static_cast<size_t>(leg->to)]->OnReceiverRtcp(
                  leg->from, path, packet)) {
            return;
          }
        }
        if (!ForwardsUpstream(packet)) return;
        Uplink* up = leg->uplink;
        if (multi_hub() && leg->hub != up->hub) {
          // The receiver is served by a remote hub: the end-to-end signal
          // first crosses the trunk that carried the media (its feedback
          // direction) back to the origin's hub, then rides the uplink.
          Trunk* t = LiveTrunk(up->hub, leg->hub);
          if (t == nullptr) return;
          t->network->path(path).backward().Send(
              packet.wire_size(), [t, up, packet, path](Timestamp) {
                if (!t->live || !up->live) return;
                up->network->path(path).backward().Send(
                    packet.wire_size(), [up, packet](Timestamp arrival) {
                      TraceParticipantScope scope(up->from);
                      up->sender->HandleRtcp(packet, arrival);
                    });
              });
          return;
        }
        up->network->path(path).backward().Send(
            packet.wire_size(), [up, packet](Timestamp arrival) {
              TraceParticipantScope scope(up->from);
              up->sender->HandleRtcp(packet, arrival);
            });
      });
}

Conference::Uplink* Conference::LiveUplinkOf(int p) {
  for (auto& up : uplinks_) {
    if (up->live && up->from == p) return up.get();
  }
  return nullptr;
}

void Conference::RetireLeg(Leg* leg, Timestamp now) {
  if (!leg->live) return;
  leg->live = false;
  leg->left = now;
  leg->receiver->Stop();
  leg->metrics->Stop();
}

void Conference::RetireUplink(Uplink* up) {
  if (!up->live) return;
  up->live = false;
  up->sender->Stop();
  if (up->hub_feedback != nullptr) up->hub_feedback->Stop();
}

void Conference::LeaveParticipant(int p) {
  present_[static_cast<size_t>(p)] = 0;
  DetachParticipantPipelines(p, /*rehomed=*/false);
}

void Conference::DetachParticipantPipelines(int p, bool rehomed) {
  const Timestamp now = loop_.now();
  for (auto& leg : legs_) {
    if (leg->live && (leg->from == p || leg->to == p)) {
      RetireLeg(leg.get(), now);
    }
  }
  for (auto& up : uplinks_) {
    if (up->live && up->from == p) RetireUplink(up.get());
  }
  if (config_.topology != Topology::kStar) return;

  // Hub-side teardown. The forwarder and downlink network of the leaver are
  // moved to the retired lists (in-flight continuations may still reference
  // them) and their slots cleared so a rejoin rebuilds fresh ones; the
  // remaining receivers' forwarders drop the leaver's queued media and
  // forget its egress/gate/RTX state so a rejoin (fresh incarnation, new
  // SSRCs) never inherits stamp counters from the previous life.
  if (forwarders_[static_cast<size_t>(p)] != nullptr) {
    forwarders_[static_cast<size_t>(p)]->Stop();
    retired_forwarders_.push_back(
        RetiredForwarder{forwarder_hub_[static_cast<size_t>(p)], p, rehomed,
                         std::move(forwarders_[static_cast<size_t>(p)])});
  }
  if (downlinks_[static_cast<size_t>(p)] != nullptr) {
    retired_downlinks_.emplace_back(
        p, std::move(downlinks_[static_cast<size_t>(p)]));
  }
  const int n = static_cast<int>(config_.participants.size());
  for (int q = 0; q < n; ++q) {
    if (forwarders_[static_cast<size_t>(q)] != nullptr) {
      forwarders_[static_cast<size_t>(q)]->ResetOrigin(p);
    }
    star_leg_lookup_[static_cast<size_t>(p)][static_cast<size_t>(q)] =
        nullptr;
    star_leg_lookup_[static_cast<size_t>(q)][static_cast<size_t>(p)] =
        nullptr;
  }
  // Trunk state: p's far-end feedback agents die with its uplink, and the
  // trunk engines drop p's queued media / egress spaces exactly like the
  // per-receiver forwarders above.
  for (auto& t : trunks_) {
    t->engine->ResetOrigin(p);
    auto it = t->agents.find(p);
    if (it == t->agents.end()) continue;
    it->second->Stop();
    retired_trunk_agents_.push_back(std::move(it->second));
    t->agents.erase(it);
  }
}

void Conference::JoinParticipant(int p) {
  const Timestamp now = loop_.now();
  present_[static_cast<size_t>(p)] = 1;
  const int n = static_cast<int>(config_.participants.size());
  const ParticipantSpec& spec = config_.participants[static_cast<size_t>(p)];
  // Incarnation = membership-timeline leave count + re-homing bumps, so
  // every rebuild (rejoin OR re-home) publishes under a fresh, never-reused
  // SSRC bank.
  const int inc = MembershipIncarnationAt(p, now, config_.membership) +
                  extra_incarnations_[static_cast<size_t>(p)];
  std::vector<Leg*> fresh_legs;
  std::vector<Uplink*> fresh_ups;

  if (config_.topology == Topology::kMesh) {
    // Mesh semantics: every directed pair runs its own encode loop, so the
    // join creates full pipelines both ways — p toward every present
    // receiver, and every present sender toward p (under the *sender's*
    // current incarnation; its other legs keep their own networks, so SSRC
    // spaces never mix).
    if (spec.sends) {
      for (int q = 0; q < n; ++q) {
        if (q == p || !present_[static_cast<size_t>(q)]) continue;
        if (!config_.participants[static_cast<size_t>(q)].receives) continue;
        Leg* leg = BuildMeshLeg(p, q, inc, churn_rng_);
        fresh_legs.push_back(leg);
        fresh_ups.push_back(leg->uplink);
      }
    }
    if (spec.receives) {
      for (int q = 0; q < n; ++q) {
        if (q == p || !present_[static_cast<size_t>(q)]) continue;
        if (!config_.participants[static_cast<size_t>(q)].sends) continue;
        const int qinc = MembershipIncarnationAt(q, now, config_.membership) +
                         extra_incarnations_[static_cast<size_t>(q)];
        Leg* leg = BuildMeshLeg(q, p, qinc, churn_rng_);
        fresh_legs.push_back(leg);
        fresh_ups.push_back(leg->uplink);
      }
    }
  } else {
    // Star: mirror the constructor's phase order for this one participant —
    // downlink, uplink (path counts re-checked), legs, forwarder.
    if (spec.receives) BuildStarDownlink(p, churn_rng_);
    if (spec.sends) {
      Uplink* up = BuildStarUplink(p, inc, churn_rng_);
      fresh_ups.push_back(up);
      for (int q = 0; q < n; ++q) {
        if (q == p || !present_[static_cast<size_t>(q)]) continue;
        if (!config_.participants[static_cast<size_t>(q)].receives) continue;
        fresh_legs.push_back(BuildStarLeg(up, q));
      }
    }
    if (spec.receives) {
      // One inbound leg per live publisher, in uplink construction order.
      for (auto& up : uplinks_) {
        if (!up->live || up->from == p) continue;
        fresh_legs.push_back(BuildStarLeg(up.get(), p));
      }
      BuildStarForwarder(p);
    }
  }

  // Arm the fresh pipelines in Start()'s order: receivers, hub feedback
  // endpoints, then senders.
  for (Leg* leg : fresh_legs) {
    leg->joined = now;
    TraceParticipantScope scope(leg->to);
    leg->receiver->Start();
  }
  for (Uplink* up : fresh_ups) {
    if (up->hub_feedback == nullptr) continue;
    TraceParticipantScope scope(up->from);
    up->hub_feedback->Start();
  }
  for (Uplink* up : fresh_ups) {
    TraceParticipantScope scope(up->from);
    up->sender->Start();
  }
}

void Conference::ApplyMembershipEvent(const MembershipEvent& ev) {
  TraceParticipantScope scope(ev.participant);
  if (ev.kind == MembershipEvent::Kind::kJoin) {
    JoinParticipant(ev.participant);
  } else {
    LeaveParticipant(ev.participant);
  }
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    if (ev.kind == MembershipEvent::Kind::kJoin) {
      trace->Instant("conference", "join", loop_.now(),
                     static_cast<double>(ev.participant));
    } else {
      trace->Instant("conference", "leave", loop_.now(),
                     static_cast<double>(ev.participant));
    }
  }
}

namespace {

CallStats CollectLegStats(const ConferenceConfig& config, int num_streams,
                          MetricsCollector* metrics, const Sender& sender,
                          const ReceiverEndpoint& receiver,
                          Timestamp window_start, Timestamp window_end) {
  CallStats out;
  for (int i = 0; i < num_streams; ++i) {
    const auto rx_stats = receiver.stream(i).GetStats();
    metrics->SetReceiverCounters(i, rx_stats.FrameDrops(),
                                 rx_stats.keyframe_requests);
    out.total_frame_drops += rx_stats.FrameDrops();
    out.total_keyframe_requests += rx_stats.keyframe_requests;
  }
  out.streams = metrics->AllStreams(window_start, window_end);
  out.time_series = metrics->time_series();

  const auto& tx = sender.stats();
  out.media_packets_sent = tx.media_packets_sent;
  out.fec_packets_sent = tx.fec_packets_sent;
  out.rtx_packets_sent = tx.rtx_packets_sent;
  out.frames_encoded = tx.frames_encoded;
  out.fec_overhead =
      tx.media_packets_sent > 0
          ? static_cast<double>(tx.fec_packets_sent) /
                static_cast<double>(tx.media_packets_sent)
          : 0.0;

  int64_t fec_received = 0;
  int64_t fec_used = 0;
  for (int i = 0; i < num_streams; ++i) {
    fec_received += receiver.stream(i).fec().stats().fec_received;
    fec_used += receiver.stream(i).fec().stats().fec_used;
    out.fec_recovered_packets +=
        receiver.stream(i).fec().stats().packets_recovered;
  }
  out.fec_utilization =
      fec_received > 0
          ? static_cast<double>(fec_used) / static_cast<double>(fec_received)
          : 0.0;
  return out;
}

// Seconds participant p spent in the call, from the membership timeline
// (sorted by time), clamped to the call window.
double ActiveSeconds(int p, const ConferenceConfig& config) {
  const Timestamp end = Timestamp::Zero() + config.duration;
  bool present = MembershipPresentAtStart(p, config.membership);
  Timestamp open = Timestamp::Zero();
  double total = 0.0;
  for (const MembershipEvent& ev : config.membership) {
    if (ev.participant != p) continue;
    if (ev.at >= end) break;
    if (ev.kind == MembershipEvent::Kind::kLeave && present) {
      total += (ev.at - open).seconds();
      present = false;
    } else if (ev.kind == MembershipEvent::Kind::kJoin && !present) {
      open = ev.at;
      present = true;
    }
  }
  if (present) total += (end - open).seconds();
  return total;
}

}  // namespace

ConferenceStats Conference::Run() {
  Start();
  AdvanceTo(Timestamp::Zero() + config_.duration);
  return Collect();
}

void Conference::SetInvariantContext() {
  // Label invariant violations with the run that produced them — essential
  // when a parallel multi-seed chaos sweep trips one check in one run. A
  // single-leg conference (the 2-party Call adapter) keeps the historical
  // "<variant> seed=<n>" label.
  if (InvariantRegistry::enabled()) {
    std::string context = ToString(config_.variant) +
                          " seed=" + std::to_string(config_.seed);
    if (legs_.size() > 1) {
      context += " " + ToString(config_.topology) +
                 " n=" + std::to_string(config_.participants.size());
    }
    InvariantRegistry::SetContext(std::move(context));
  }
}

void Conference::Start() {
  SetInvariantContext();
  // Conferences run single-threaded (one per worker in parallel sweeps), so
  // the thread-local recorder covers exactly this conference's components.
  TraceScope trace_scope(trace_.get());
  for (auto& leg : legs_) {
    TraceParticipantScope scope(leg->to);
    leg->receiver->Start();
  }
  for (auto& up : uplinks_) {
    if (up->hub_feedback == nullptr) continue;
    TraceParticipantScope scope(up->from);
    up->hub_feedback->Start();
  }
  for (auto& t : trunks_) {
    if (!t->live) continue;
    for (auto& [origin, agent] : t->agents) {
      TraceParticipantScope scope(origin);
      agent->Start();
    }
  }
  for (auto& up : uplinks_) {
    TraceParticipantScope scope(up->from);
    up->sender->Start();
  }
  // Arm the membership timeline once: events fire inside AdvanceTo (which
  // re-establishes the trace/invariant scopes per slice), and scheduling
  // them all up front keeps their (time, sequence) dispatch order identical
  // however the run is sliced.
  if (!started_) {
    started_ = true;
    for (const MembershipEvent& ev : config_.membership) {
      loop_.ScheduleAt(ev.at, [this, ev] { ApplyMembershipEvent(ev); });
    }
    // Hub outages are scheduled the same way: every kOutage window of hub
    // h's fault plan kills the hub at its start and recovers it at its end.
    if (multi_hub()) {
      for (size_t h = 0; h < config_.hub_fault_plans.size(); ++h) {
        const int hub = static_cast<int>(h);
        for (const auto& [fail_at, recover_at] :
             config_.hub_fault_plans[h].OutageWindows()) {
          loop_.ScheduleAt(fail_at, [this, hub] { FailHub(hub); });
          loop_.ScheduleAt(recover_at, [this, hub] { RecoverHub(hub); });
        }
      }
    }
  }
}

void Conference::AdvanceTo(Timestamp t) {
  // Re-established per slice: a fleet driver interleaves many conferences on
  // one thread, each with its own recorder (usually none) and label.
  SetInvariantContext();
  TraceScope trace_scope(trace_.get());
  loop_.RunUntil(t);
}

ConferenceStats Conference::Collect() {
  ConferenceStats out;
  const Timestamp call_end = Timestamp::Zero() + config_.duration;
  out.legs.reserve(legs_.size());
  for (auto& leg : legs_) {
    ConferenceStats::Leg ls;
    ls.from = leg->from;
    ls.to = leg->to;
    ls.incarnation = leg->incarnation;
    // QoE is normalized over the leg's own membership window, so a
    // churn-created leg's rates are comparable to a whole-call leg's.
    const Timestamp window_start = leg->joined;
    const Timestamp window_end = std::min(leg->left, call_end);
    ls.joined_s = (window_start - Timestamp::Zero()).seconds();
    ls.left_s = (window_end - Timestamp::Zero()).seconds();
    // Star note: the sender-side counters (packets sent, FEC overhead) come
    // from the shared uplink, so they repeat across the uplink's legs; the
    // receive-side QoE is per leg.
    ls.stats = CollectLegStats(
        config_,
        config_.participants[static_cast<size_t>(leg->from)].num_streams,
        leg->metrics.get(), *leg->uplink->sender, *leg->receiver,
        window_start, window_end);
    out.legs.push_back(std::move(ls));
  }

  const int n = static_cast<int>(config_.participants.size());
  out.participants.reserve(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    ConferenceStats::ParticipantQoe q;
    q.participant = p;
    q.active_s = ActiveSeconds(p, config_);
    std::vector<const StreamQoe*> inbound;
    for (const ConferenceStats::Leg& ls : out.legs) {
      if (ls.to != p) continue;
      for (const StreamQoe& s : ls.stats.streams) inbound.push_back(&s);
      q.frame_drops += ls.stats.total_frame_drops;
      q.keyframe_requests += ls.stats.total_keyframe_requests;
    }
    q.inbound_streams = static_cast<int>(inbound.size());
    q.avg_fps = MeanOverStreams(inbound, &StreamQoe::avg_fps);
    q.avg_freeze_ms = MeanOverStreams(inbound, &StreamQoe::freeze_total_ms);
    q.avg_freeze_ratio = MeanOverStreams(inbound, &StreamQoe::freeze_ratio);
    q.avg_e2e_ms = MeanOverStreams(inbound, &StreamQoe::e2e_mean_ms);
    q.total_tput_mbps = SumOverStreams(inbound, &StreamQoe::tput_mbps);
    q.avg_qp = MeanOverStreams(inbound, &StreamQoe::qp_mean);
    q.avg_psnr_db = MeanOverStreams(inbound, &StreamQoe::psnr_mean_db);
    out.participants.push_back(q);
  }

  // Star only: final per-(hub, receiver, path) downlink state. Live
  // forwarders first, in (receiver, path) order — the historical single-hub
  // row order, unchanged. Forwarders retired by a mid-call leave are
  // intentionally not reported (the slot either belongs to the rejoin or to
  // nobody); forwarders retired by a re-homing ARE reported afterwards,
  // tagged with the hub that ran them, so a failed-over call accounts for
  // both serving hubs.
  out.num_hubs = config_.num_hubs;
  out.simulcast_rungs = config_.simulcast_rungs;
  out.temporal_layers = config_.temporal_layers;
  for (int p = 0; p < n; ++p) {
    const HubForwarder* fwd = hub_forwarder(p);
    if (fwd == nullptr) continue;
    const Network* down = downlinks_[static_cast<size_t>(p)].get();
    for (PathId path : down->path_ids()) {
      ConferenceStats::Downlink d;
      d.hub = forwarder_hub_[static_cast<size_t>(p)];
      d.receiver = p;
      d.path = path;
      d.selected_rung = fwd->max_selected_rung();
      d.target_kbps =
          static_cast<double>(fwd->downlink_target(path).bps()) / 1000.0;
      d.srtt_ms = fwd->downlink_srtt(path).seconds() * 1000.0;
      d.loss = fwd->downlink_loss(path);
      d.forwarder = fwd->stats(path);
      out.downlinks.push_back(d);
    }
  }
  for (const RetiredForwarder& rf : retired_forwarders_) {
    if (!rf.rehomed) continue;
    for (PathId path : rf.forwarder->path_ids()) {
      ConferenceStats::Downlink d;
      d.hub = rf.hub;
      d.receiver = rf.receiver;
      d.path = path;
      d.selected_rung = rf.forwarder->max_selected_rung();
      d.target_kbps =
          static_cast<double>(rf.forwarder->downlink_target(path).bps()) /
          1000.0;
      d.srtt_ms = rf.forwarder->downlink_srtt(path).seconds() * 1000.0;
      d.loss = rf.forwarder->downlink_loss(path);
      d.forwarder = rf.forwarder->stats(path);
      out.downlinks.push_back(d);
    }
  }

  // Multi-hub only: trunk and hub state (both stay empty for single-hub
  // conferences, keeping their stats JSON byte-identical).
  if (multi_hub()) {
    for (const auto& t : trunks_) {
      for (PathId path : t->engine->path_ids()) {
        ConferenceStats::Trunk ts;
        ts.from_hub = t->from_hub;
        ts.to_hub = t->to_hub;
        ts.path = path;
        ts.live = t->live;
        ts.target_kbps =
            static_cast<double>(t->engine->downlink_target(path).bps()) /
            1000.0;
        ts.srtt_ms = t->engine->downlink_srtt(path).seconds() * 1000.0;
        ts.loss = t->engine->downlink_loss(path);
        ts.feedback_batches = t->engine->cc(path).feedback_batches();
        ts.packets_registered = t->engine->cc(path).packets_registered();
        ts.forwarder = t->engine->stats(path);
        out.trunks.push_back(ts);
      }
    }
    for (int h = 0; h < config_.num_hubs; ++h) {
      ConferenceStats::Hub hs;
      hs.hub = h;
      hs.alive = hub_alive_[static_cast<size_t>(h)] != 0;
      hs.failures = hub_failures_[static_cast<size_t>(h)];
      hs.rehomed_away = rehomed_away_[static_cast<size_t>(h)];
      hs.rehomed_onto = rehomed_onto_[static_cast<size_t>(h)];
      for (int p = 0; p < n; ++p) {
        if (present_[static_cast<size_t>(p)] &&
            home_hub_[static_cast<size_t>(p)] == h) {
          ++hs.home_participants;
        }
      }
      out.hubs.push_back(hs);
    }
  }

  // Competing cross-traffic, in deterministic construction order: uplink
  // edges first (mesh pair networks are "uplinks" here too), then live
  // star downlinks by receiver, then downlinks retired by churn.
  auto collect_flows = [&](int from, int to, const Network& net) {
    for (const auto& src : net.cross_traffic()) {
      ConferenceStats::CrossFlow f;
      f.from = from;
      f.to = to;
      f.path = src->path();
      f.name = src->spec().name;
      f.kind = CrossTrafficKindName(src->spec().kind);
      f.packets_sent = src->stats().packets_sent;
      f.packets_delivered = src->stats().packets_delivered;
      f.packets_dropped = src->stats().packets_dropped;
      f.loss_events = src->stats().loss_events;
      f.throughput_mbps = src->ThroughputMbps(call_end);
      f.final_cwnd = src->stats().final_cwnd;
      out.cross_traffic.push_back(std::move(f));
    }
  };
  for (auto& up : uplinks_) collect_flows(up->from, up->to, *up->network);
  for (size_t p = 0; p < downlinks_.size(); ++p) {
    if (downlinks_[p] != nullptr) {
      collect_flows(kHubId, static_cast<int>(p), *downlinks_[p]);
    }
  }
  for (const auto& retired : retired_downlinks_) {
    collect_flows(kHubId, retired.first, *retired.second);
  }
  for (const auto& t : trunks_) collect_flows(kHubId, kHubId, *t->network);
  return out;
}

const HubForwarder* Conference::hub_forwarder(int participant) const {
  if (participant < 0 ||
      static_cast<size_t>(participant) >= forwarders_.size()) {
    return nullptr;
  }
  return forwarders_[static_cast<size_t>(participant)].get();
}

int Conference::home_hub(int participant) const {
  if (participant < 0 ||
      static_cast<size_t>(participant) >= home_hub_.size()) {
    return 0;
  }
  return home_hub_[static_cast<size_t>(participant)];
}

const HubForwarder* Conference::trunk_engine(int from_hub,
                                             int to_hub) const {
  for (const auto& t : trunks_) {
    if (t->live && t->from_hub == from_hub && t->to_hub == to_hub) {
      return t->engine.get();
    }
  }
  return nullptr;
}

int Conference::leg_from(size_t leg) const { return legs_.at(leg)->from; }
int Conference::leg_to(size_t leg) const { return legs_.at(leg)->to; }

const MetricsCollector& Conference::leg_metrics(size_t leg) const {
  return *legs_.at(leg)->metrics;
}

const Sender& Conference::leg_sender(size_t leg) const {
  return *legs_.at(leg)->uplink->sender;
}

const ReceiverEndpoint& Conference::leg_receiver(size_t leg) const {
  return *legs_.at(leg)->receiver;
}

Scheduler& Conference::leg_scheduler(size_t leg) {
  return *legs_.at(leg)->uplink->scheduler;
}

const Network& Conference::leg_network(size_t leg) const {
  return *legs_.at(leg)->uplink->network;
}

double CallStats::AvgFps() const {
  return MeanOverStreams(streams, &StreamQoe::avg_fps);
}

double CallStats::AvgFreezeMs() const {
  return MeanOverStreams(streams, &StreamQoe::freeze_total_ms);
}

double CallStats::AvgE2eMs() const {
  return MeanOverStreams(streams, &StreamQoe::e2e_mean_ms);
}

double CallStats::TotalTputMbps() const {
  return SumOverStreams(streams, &StreamQoe::tput_mbps);
}

double CallStats::AvgQp() const {
  return MeanOverStreams(streams, &StreamQoe::qp_mean);
}

double CallStats::AvgPsnrDb() const {
  return MeanOverStreams(streams, &StreamQoe::psnr_mean_db);
}

std::vector<ConferenceStats> RunConferences(
    const std::vector<ConferenceConfig>& configs, int jobs) {
  std::vector<ConferenceStats> out(configs.size());
  ParallelFor(
      static_cast<int64_t>(configs.size()),
      [&](int64_t i) {
        // Each worker gets a private copy of the config: nothing a
        // Conference mutates can alias another worker's state.
        ConferenceConfig config = configs[static_cast<size_t>(i)];
        Conference conference(config);
        out[static_cast<size_t>(i)] = conference.Run();
      },
      jobs);
  return out;
}

}  // namespace converge
