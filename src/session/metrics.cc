#include "session/metrics.h"

#include <algorithm>

namespace converge {

MetricsCollector::MetricsCollector(EventLoop* loop, Config config)
    : loop_(loop), config_(config) {
  for (int i = 0; i < config.num_streams; ++i) streams_[i];
  second_task_ = std::make_unique<RepeatingTask>(
      loop_, Duration::Seconds(1.0), [this] { SecondTick(); });
  display_task_ = std::make_unique<RepeatingTask>(
      loop_, config_.expected_frame_interval, [this] { DisplayTick(); });
}

void MetricsCollector::OnDecodedFrame(const DecodedFrame& frame) {
  StreamState& st = streams_[frame.stream_id];

  if (st.last_render.IsFinite()) {
    const Duration gap = frame.render_time - st.last_render;
    if (gap > config_.freeze_threshold) {
      st.freeze_total_ms +=
          (gap - config_.expected_frame_interval).ms();
      ++st.freeze_count;
    }
  }
  st.last_render = frame.render_time;
  st.last_psnr = frame.psnr_db;
  st.stale_ticks = 0;

  st.e2e_ms.Add(frame.e2e_latency.ms());
  st.qp.Add(frame.qp);
  st.decoded_bytes += frame.size_bytes;
  ++st.frames;

  ++sec_frames_;
  sec_e2e_.Add(frame.e2e_latency.ms());
}

void MetricsCollector::OnMediaBytesReceived(int stream_id, int64_t bytes) {
  streams_[stream_id].media_bytes += bytes;
  sec_bytes_ += bytes;
}

void MetricsCollector::OnFrameGatheredDelays(Duration fcd, Duration ifd) {
  sec_fcd_.Add(fcd.ms());
  sec_ifd_.Add(ifd.ms());
}

void MetricsCollector::SetReceiverCounters(int stream_id, int64_t frame_drops,
                                           int64_t keyframe_requests) {
  receiver_counters_[stream_id] = {frame_drops, keyframe_requests};
}

void MetricsCollector::SecondTick() {
  SecondSample s;
  s.t_s = loop_->now().seconds();
  s.tput_mbps = static_cast<double>(sec_bytes_) * 8.0 / 1e6;
  s.fps = static_cast<double>(sec_frames_) /
          static_cast<double>(std::max(1, config_.num_streams));
  s.e2e_ms = sec_e2e_.mean();
  s.ifd_ms = sec_ifd_.mean();
  s.fcd_ms = sec_fcd_.mean();
  series_.push_back(s);
  sec_bytes_ = 0;
  sec_frames_ = 0;
  sec_e2e_.Clear();
  sec_ifd_.Clear();
  sec_fcd_.Clear();
}

void MetricsCollector::DisplayTick() {
  // Display-rate PSNR: a frozen display shows an increasingly stale image of
  // a moving scene, so effective quality decays until a fresh frame lands.
  for (auto& [id, st] : streams_) {
    if (st.frames == 0) continue;
    double psnr = st.last_psnr;
    if (st.stale_ticks > 0) {
      psnr = std::max(18.0, psnr - 0.8 * static_cast<double>(st.stale_ticks));
    }
    st.psnr_db.Add(psnr);
    ++st.stale_ticks;
  }
}

void MetricsCollector::Stop() {
  second_task_.reset();
  display_task_.reset();
}

StreamQoe MetricsCollector::StreamResult(int stream_id, Timestamp start,
                                         Timestamp end) const {
  StreamQoe out;
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return out;
  const StreamState& st = it->second;

  const double seconds = std::max(1e-9, (end - start).seconds());
  out.avg_fps = static_cast<double>(st.frames) / seconds;
  out.freeze_total_ms = st.freeze_total_ms;
  out.freeze_count = st.freeze_count;
  // A freeze still in progress when the observation window closes is real
  // frozen wall time the per-frame accounting above never closes (it only
  // books a freeze on the *next* decoded frame). For a whole-call stream the
  // window end is the call end; for a participant that left mid-call it is
  // the leave time.
  if (st.last_render.IsFinite()) {
    const Duration tail = end - st.last_render;
    if (tail > config_.freeze_threshold) {
      out.freeze_total_ms += (tail - config_.expected_frame_interval).ms();
      ++out.freeze_count;
    }
  }
  out.freeze_ratio =
      std::clamp(out.freeze_total_ms / (seconds * 1000.0), 0.0, 1.0);
  out.e2e_mean_ms = st.e2e_ms.Mean();
  out.e2e_p95_ms = st.e2e_ms.Quantile(0.95);
  out.e2e_std_ms = st.e2e_ms.Stddev();
  out.tput_mbps = static_cast<double>(st.decoded_bytes) * 8.0 / 1e6 / seconds;
  out.received_mbps =
      static_cast<double>(st.media_bytes) * 8.0 / 1e6 / seconds;
  out.qp_mean = st.qp.mean();
  out.psnr_mean_db = st.psnr_db.Mean();
  out.frames_decoded = st.frames;
  auto cit = receiver_counters_.find(stream_id);
  if (cit != receiver_counters_.end()) {
    out.frame_drops = cit->second.first;
    out.keyframe_requests = cit->second.second;
  }
  return out;
}

std::vector<StreamQoe> MetricsCollector::AllStreams(Timestamp start,
                                                    Timestamp end) const {
  std::vector<StreamQoe> out;
  for (const auto& [id, st] : streams_) {
    out.push_back(StreamResult(id, start, end));
  }
  return out;
}

const SampleSet& MetricsCollector::e2e_samples(int stream_id) const {
  static const SampleSet kEmpty;
  auto it = streams_.find(stream_id);
  return it == streams_.end() ? kEmpty : it->second.e2e_ms;
}

const SampleSet& MetricsCollector::psnr_samples(int stream_id) const {
  static const SampleSet kEmpty;
  auto it = streams_.find(stream_id);
  return it == streams_.end() ? kEmpty : it->second.psnr_db;
}

double SumOverStreams(const std::vector<StreamQoe>& streams,
                      double StreamQoe::*field) {
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.*field;
  return acc;
}

double MeanOverStreams(const std::vector<StreamQoe>& streams,
                       double StreamQoe::*field) {
  if (streams.empty()) return 0.0;
  return SumOverStreams(streams, field) /
         static_cast<double>(streams.size());
}

double SumOverStreams(const std::vector<const StreamQoe*>& streams,
                      double StreamQoe::*field) {
  double acc = 0.0;
  for (const StreamQoe* s : streams) acc += s->*field;
  return acc;
}

double MeanOverStreams(const std::vector<const StreamQoe*>& streams,
                       double StreamQoe::*field) {
  if (streams.empty()) return 0.0;
  return SumOverStreams(streams, field) /
         static_cast<double>(streams.size());
}

}  // namespace converge
