#include "session/stats_json.h"

#include <cmath>
#include <sstream>

namespace converge {
namespace {

class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  void OpenObject() { Open('{'); }
  // Keyed nested object ("stats": { ... }).
  void OpenObject(const std::string& key) {
    Key(key);
    out_ << "{";
    ++depth_;
    first_ = true;
  }
  void CloseObject() { Close('}'); }
  void OpenArray(const std::string& key) {
    Key(key);
    out_ << "[";
    ++depth_;
    first_ = true;
  }
  void CloseArray() { Close(']'); }
  void OpenObjectInArray() {
    Separator();
    Newline();
    out_ << "{";
    ++depth_;
    first_ = true;
  }

  void Field(const std::string& key, double value) {
    Key(key);
    if (std::isfinite(value)) {
      out_ << value;
    } else {
      out_ << "null";
    }
  }
  void Field(const std::string& key, int64_t value) {
    Key(key);
    out_ << value;
  }
  void Field(const std::string& key, const std::string& value) {
    Key(key);
    out_ << '"' << value << '"';
  }

  std::string str() const { return out_.str(); }

 private:
  void Open(char c) {
    Separator();
    if (depth_ > 0) Newline();
    out_ << c;
    ++depth_;
    first_ = true;
  }
  void Close(char c) {
    --depth_;
    Newline();
    out_ << c;
    first_ = false;
  }
  void Key(const std::string& key) {
    Separator();
    Newline();
    out_ << '"' << key << "\": ";
    first_ = false;
  }
  void Separator() {
    if (!first_) out_ << ',';
    first_ = false;
  }
  void Newline() {
    out_ << '\n';
    for (int i = 0; i < depth_ * indent_; ++i) out_ << ' ';
  }

  std::ostringstream out_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
};

// Body of one CallStats object (fields + streams + time_series arrays),
// shared between the top-level CallStatsToJson export and the nested per-leg
// objects in ConferenceStatsToJson. The field order is pinned by the
// seed-era fixtures in tests/data — do not reorder.
void WriteCallStatsBody(JsonWriter& w, const CallStats& stats) {
  w.Field("avg_fps", stats.AvgFps());
  w.Field("avg_freeze_ms", stats.AvgFreezeMs());
  w.Field("avg_e2e_ms", stats.AvgE2eMs());
  w.Field("total_tput_mbps", stats.TotalTputMbps());
  w.Field("avg_qp", stats.AvgQp());
  w.Field("avg_psnr_db", stats.AvgPsnrDb());
  w.Field("media_packets_sent", stats.media_packets_sent);
  w.Field("fec_packets_sent", stats.fec_packets_sent);
  w.Field("rtx_packets_sent", stats.rtx_packets_sent);
  w.Field("frames_encoded", stats.frames_encoded);
  w.Field("fec_overhead", stats.fec_overhead);
  w.Field("fec_utilization", stats.fec_utilization);
  w.Field("fec_recovered_packets", stats.fec_recovered_packets);
  w.Field("total_frame_drops", stats.total_frame_drops);
  w.Field("total_keyframe_requests", stats.total_keyframe_requests);

  w.OpenArray("streams");
  for (const StreamQoe& s : stats.streams) {
    w.OpenObjectInArray();
    w.Field("avg_fps", s.avg_fps);
    w.Field("freeze_total_ms", s.freeze_total_ms);
    w.Field("freeze_count", s.freeze_count);
    w.Field("e2e_mean_ms", s.e2e_mean_ms);
    w.Field("e2e_p95_ms", s.e2e_p95_ms);
    w.Field("tput_mbps", s.tput_mbps);
    w.Field("qp_mean", s.qp_mean);
    w.Field("psnr_mean_db", s.psnr_mean_db);
    w.Field("frames_decoded", s.frames_decoded);
    w.Field("frame_drops", s.frame_drops);
    w.Field("keyframe_requests", s.keyframe_requests);
    w.CloseObject();
  }
  w.CloseArray();

  w.OpenArray("time_series");
  for (const SecondSample& s : stats.time_series) {
    w.OpenObjectInArray();
    w.Field("t_s", s.t_s);
    w.Field("tput_mbps", s.tput_mbps);
    w.Field("fps", s.fps);
    w.Field("e2e_ms", s.e2e_ms);
    w.Field("ifd_ms", s.ifd_ms);
    w.Field("fcd_ms", s.fcd_ms);
    w.CloseObject();
  }
  w.CloseArray();
}

}  // namespace

std::string CallStatsToJson(const CallStats& stats, int indent) {
  JsonWriter w(indent);
  w.OpenObject();
  WriteCallStatsBody(w, stats);
  w.CloseObject();
  return w.str();
}

std::string ConferenceStatsToJson(const ConferenceStats& stats, int indent) {
  JsonWriter w(indent);
  w.OpenObject();

  w.OpenArray("participants");
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    w.OpenObjectInArray();
    w.Field("participant", static_cast<int64_t>(p.participant));
    w.Field("inbound_streams", static_cast<int64_t>(p.inbound_streams));
    w.Field("active_s", p.active_s);
    w.Field("avg_fps", p.avg_fps);
    w.Field("avg_freeze_ms", p.avg_freeze_ms);
    w.Field("avg_freeze_ratio", p.avg_freeze_ratio);
    w.Field("avg_e2e_ms", p.avg_e2e_ms);
    w.Field("total_tput_mbps", p.total_tput_mbps);
    w.Field("avg_qp", p.avg_qp);
    w.Field("avg_psnr_db", p.avg_psnr_db);
    w.Field("frame_drops", p.frame_drops);
    w.Field("keyframe_requests", p.keyframe_requests);
    w.CloseObject();
  }
  w.CloseArray();

  w.OpenArray("legs");
  for (const ConferenceStats::Leg& leg : stats.legs) {
    w.OpenObjectInArray();
    w.Field("from", static_cast<int64_t>(leg.from));
    w.Field("to", static_cast<int64_t>(leg.to));
    w.Field("incarnation", static_cast<int64_t>(leg.incarnation));
    w.Field("joined_s", leg.joined_s);
    w.Field("left_s", leg.left_s);
    w.OpenObject("stats");
    WriteCallStatsBody(w, leg.stats);
    w.CloseObject();
    w.CloseObject();
  }
  w.CloseArray();

  // Star only: hub-side downlink state (empty array for mesh). Rows are
  // keyed (hub, receiver, path); the hub key is emitted only for multi-hub
  // conferences so single-hub JSON stays byte-identical to the seed-era
  // fixtures.
  w.OpenArray("downlinks");
  for (const ConferenceStats::Downlink& d : stats.downlinks) {
    w.OpenObjectInArray();
    if (stats.num_hubs > 1) w.Field("hub", static_cast<int64_t>(d.hub));
    w.Field("receiver", static_cast<int64_t>(d.receiver));
    w.Field("path", static_cast<int64_t>(d.path));
    w.Field("target_kbps", d.target_kbps);
    w.Field("srtt_ms", d.srtt_ms);
    w.Field("loss", d.loss);
    w.Field("packets_forwarded", d.forwarder.packets_forwarded);
    w.Field("bytes_forwarded", d.forwarder.bytes_forwarded);
    w.Field("frames_thinned", d.forwarder.frames_thinned);
    w.Field("frames_evicted", d.forwarder.frames_evicted);
    w.Field("packets_dropped", d.forwarder.packets_dropped);
    w.Field("rtx_answered", d.forwarder.rtx_answered);
    w.Field("plis_relayed", d.forwarder.plis_relayed);
    w.Field("max_queue_bytes", d.forwarder.max_queue_bytes);
    w.Field("max_queue_delay_ms", d.forwarder.max_queue_delay_ms);
    // Layered forwarding only: the rung fields are absent for single-layer
    // calls, keeping seed-era fixtures byte-identical.
    if (stats.simulcast_rungs > 1) {
      w.Field("selected_rung", static_cast<int64_t>(d.selected_rung));
      w.Field("layer_switches", d.forwarder.layer_switches);
      w.Field("layer_packets_filtered", d.forwarder.layer_packets_filtered);
      w.Field("padding_packets", d.forwarder.padding_packets);
    }
    w.CloseObject();
  }
  w.CloseArray();

  // Competing cross-traffic flows (empty array when no PathSpec carries
  // any), in construction order.
  w.OpenArray("cross_traffic");
  for (const ConferenceStats::CrossFlow& f : stats.cross_traffic) {
    w.OpenObjectInArray();
    w.Field("from", static_cast<int64_t>(f.from));
    w.Field("to", static_cast<int64_t>(f.to));
    w.Field("path", static_cast<int64_t>(f.path));
    w.Field("name", f.name);
    w.Field("kind", f.kind);
    w.Field("packets_sent", f.packets_sent);
    w.Field("packets_delivered", f.packets_delivered);
    w.Field("packets_dropped", f.packets_dropped);
    w.Field("loss_events", f.loss_events);
    w.Field("throughput_mbps", f.throughput_mbps);
    w.Field("final_cwnd", f.final_cwnd);
    w.CloseObject();
  }
  w.CloseArray();

  // Layer shape, layered calls only (absent otherwise, like num_hubs).
  if (stats.simulcast_rungs > 1 || stats.temporal_layers > 1) {
    w.Field("simulcast_rungs", static_cast<int64_t>(stats.simulcast_rungs));
    w.Field("temporal_layers", static_cast<int64_t>(stats.temporal_layers));
  }

  // Cascaded-fabric state, multi-hub only: the keys are absent entirely for
  // single-hub conferences (fixture byte-identity), not emitted empty.
  if (stats.num_hubs > 1) {
    w.Field("num_hubs", static_cast<int64_t>(stats.num_hubs));

    w.OpenArray("hubs");
    for (const ConferenceStats::Hub& h : stats.hubs) {
      w.OpenObjectInArray();
      w.Field("hub", static_cast<int64_t>(h.hub));
      w.Field("alive", static_cast<int64_t>(h.alive ? 1 : 0));
      w.Field("failures", h.failures);
      w.Field("rehomed_away", h.rehomed_away);
      w.Field("rehomed_onto", h.rehomed_onto);
      w.Field("home_participants", static_cast<int64_t>(h.home_participants));
      w.CloseObject();
    }
    w.CloseArray();

    w.OpenArray("trunks");
    for (const ConferenceStats::Trunk& t : stats.trunks) {
      w.OpenObjectInArray();
      w.Field("from_hub", static_cast<int64_t>(t.from_hub));
      w.Field("to_hub", static_cast<int64_t>(t.to_hub));
      w.Field("path", static_cast<int64_t>(t.path));
      w.Field("live", static_cast<int64_t>(t.live ? 1 : 0));
      w.Field("target_kbps", t.target_kbps);
      w.Field("srtt_ms", t.srtt_ms);
      w.Field("loss", t.loss);
      w.Field("feedback_batches", t.feedback_batches);
      w.Field("packets_registered", t.packets_registered);
      w.Field("packets_forwarded", t.forwarder.packets_forwarded);
      w.Field("bytes_forwarded", t.forwarder.bytes_forwarded);
      w.Field("frames_thinned", t.forwarder.frames_thinned);
      w.Field("frames_evicted", t.forwarder.frames_evicted);
      w.Field("packets_dropped", t.forwarder.packets_dropped);
      w.Field("rtx_answered", t.forwarder.rtx_answered);
      w.Field("plis_relayed", t.forwarder.plis_relayed);
      w.Field("max_queue_bytes", t.forwarder.max_queue_bytes);
      w.Field("max_queue_delay_ms", t.forwarder.max_queue_delay_ms);
      w.CloseObject();
    }
    w.CloseArray();
  }

  w.CloseObject();
  return w.str();
}

}  // namespace converge
