// Top-level conference call: builds the network, the sender and receiver
// endpoints, the chosen scheduler variant and FEC controller from one
// declarative CallConfig, runs the simulation, and returns the QoE results
// the paper's tables and figures report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/video_aware_scheduler.h"
#include "fec/converge_fec_controller.h"
#include "fec/fec_controller.h"
#include "net/network.h"
#include "schedulers/scheduler.h"
#include "session/metrics.h"
#include "session/receiver_endpoint.h"
#include "session/sender.h"
#include "util/trace_recorder.h"

namespace converge {

// The systems evaluated in §6.
enum class Variant {
  kWebRtcPath0,       // single-path WebRTC on the first path
  kWebRtcPath1,       // single-path WebRTC on the second path
  kWebRtcCm,          // single path + connection migration
  kSrtt,              // minRTT multipath (MPTCP/MPQUIC default)
  kEcf,               // Earliest Completion First (heterogeneity-aware)
  kMtput,             // Musher throughput scheduler
  kMrtp,              // MPRTP
  kConverge,          // full system
  kConvergeNoFeedback,  // ablation: video-aware scheduler, no QoE feedback
  kConvergeWebRtcFec,   // ablation: Converge scheduler + table-based FEC
};

std::string ToString(Variant v);
bool IsMultipath(Variant v);

struct CallConfig {
  Variant variant = Variant::kConverge;
  std::vector<PathSpec> paths;
  int num_streams = 1;
  DataRate max_rate_per_stream = DataRate::MegabitsPerSec(10);
  double fps = 30.0;
  int width = 1280;
  int height = 720;
  Duration duration = Duration::Seconds(180);
  uint64_t seed = 1;
  bool enable_fec = true;
  // Receiver buffer sizing (§2.1 "small, fixed-size buffers").
  size_t packet_buffer_capacity = 512;
  size_t frame_buffer_capacity = 16;
  // Tunables for the Converge variants (design-choice ablations).
  VideoAwareScheduler::Config video_scheduler;
  ConvergeFecController::Config converge_fec;
  // Flight-recorder capacity in events; 0 (the default) disables tracing.
  // When set, the call owns a TraceRecorder that is installed for the
  // duration of Run() — probes are read-only, so results are identical
  // with tracing on or off.
  size_t trace_capacity = 0;
};

// Aggregated results of one call.
struct CallStats {
  std::vector<StreamQoe> streams;
  std::vector<SecondSample> time_series;

  // Sender-side counters.
  int64_t media_packets_sent = 0;
  int64_t fec_packets_sent = 0;
  int64_t rtx_packets_sent = 0;
  int64_t frames_encoded = 0;

  // FEC economics (§6): overhead = FEC/media packets sent; utilization =
  // parity packets that actually repaired a loss / parity received.
  double fec_overhead = 0.0;
  double fec_utilization = 0.0;
  int64_t fec_recovered_packets = 0;

  // Receiver totals.
  int64_t total_frame_drops = 0;
  int64_t total_keyframe_requests = 0;

  // Convenience aggregates over streams.
  double AvgFps() const;
  double AvgFreezeMs() const;
  double AvgE2eMs() const;
  double TotalTputMbps() const;
  double AvgQp() const;
  double AvgPsnrDb() const;
};

class Call {
 public:
  explicit Call(const CallConfig& config);
  ~Call();

  // Runs the whole call; returns aggregated stats. PSNR/E2E sample sets stay
  // accessible through metrics() afterwards.
  CallStats Run();

  EventLoop& loop() { return loop_; }
  // The call's flight recorder (nullptr unless trace_capacity > 0).
  TraceRecorder* trace() { return trace_.get(); }
  const MetricsCollector& metrics() const { return *metrics_; }
  const Sender& sender() const { return *sender_; }
  const ReceiverEndpoint& receiver() const { return *receiver_; }
  Scheduler& scheduler() { return *scheduler_; }
  const Network& network() const { return *network_; }

 private:
  void TransmitRtp(PathId path, RtpPacket packet);
  void TransmitRtcpForward(PathId path, const RtcpPacket& packet);
  void TransmitRtcpBackward(PathId path, const RtcpPacket& packet);

  CallConfig config_;
  EventLoop loop_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<FecController> fec_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::unique_ptr<Sender> sender_;
  std::unique_ptr<ReceiverEndpoint> receiver_;
};

// Runs one independent Call per config, fanned out across cores (each call
// has its own EventLoop and seeded Random, so runs are embarrassingly
// parallel), and returns results in input order — aggregation over the
// returned vector is bit-identical however many workers ran. `jobs` <= 0
// uses DefaultJobs() (CONVERGE_BENCH_JOBS / hardware_concurrency); 1 forces
// the serial fallback.
std::vector<CallStats> RunCalls(const std::vector<CallConfig>& configs,
                                int jobs = 0);

// Runs `seeds` repetitions of the same config (varying the seed) and returns
// one CallStats per run — used by the table benches for mean ± stddev.
// Seeds run in parallel (see RunCalls); results are in seed order.
std::vector<CallStats> RunSeeds(CallConfig config,
                                const std::vector<uint64_t>& seeds,
                                int jobs = 0);

}  // namespace converge
