// Point-to-point call: a thin 2-party adapter over the Conference runtime
// (session/conference.h). A Call is exactly a 2-participant mesh with one
// directed leg — participant 0 sends, participant 1 receives — built in the
// historical construction order, so results are byte-identical with the
// pre-conference implementation (pinned by the tests/data fixtures). All
// benches and tests keep this API; N-party topologies use Conference
// directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "session/conference.h"

namespace converge {

struct CallConfig {
  Variant variant = Variant::kConverge;
  std::vector<PathSpec> paths;
  int num_streams = 1;
  DataRate max_rate_per_stream = DataRate::MegabitsPerSec(10);
  double fps = 30.0;
  int width = 1280;
  int height = 720;
  Duration duration = Duration::Seconds(180);
  uint64_t seed = 1;
  bool enable_fec = true;
  // Receiver buffer sizing (§2.1 "small, fixed-size buffers").
  size_t packet_buffer_capacity = 512;
  size_t frame_buffer_capacity = 16;
  // Tunables for the Converge variants (design-choice ablations).
  VideoAwareScheduler::Config video_scheduler;
  ConvergeFecController::Config converge_fec;
  // Per-path congestion-control algorithm and multipath coupling strategy
  // (see cc/cc_controller.h). Defaults keep the historical uncoupled GCC.
  CcAlgorithm cc_algorithm = CcAlgorithm::kGcc;
  CcCoupling cc_coupling = CcCoupling::kUncoupled;
  // Flight-recorder capacity in events; 0 (the default) disables tracing.
  // When set, the call owns a TraceRecorder that is installed for the
  // duration of Run() — probes are read-only, so results are identical
  // with tracing on or off.
  size_t trace_capacity = 0;
};

// Expands a CallConfig into the equivalent 2-participant mesh
// ConferenceConfig (participant 0 send-only, participant 1 receive-only).
// Exposed so tests can drive the same run through Conference directly.
ConferenceConfig ToConferenceConfig(const CallConfig& config);

class Call {
 public:
  explicit Call(const CallConfig& config);
  ~Call();

  // Runs the whole call; returns aggregated stats. PSNR/E2E sample sets stay
  // accessible through metrics() afterwards.
  CallStats Run();

  EventLoop& loop() { return conference_->loop(); }
  // The call's flight recorder (nullptr unless trace_capacity > 0).
  TraceRecorder* trace() { return conference_->trace(); }
  const MetricsCollector& metrics() const {
    return conference_->leg_metrics(0);
  }
  const Sender& sender() const { return conference_->leg_sender(0); }
  const ReceiverEndpoint& receiver() const {
    return conference_->leg_receiver(0);
  }
  Scheduler& scheduler() { return conference_->leg_scheduler(0); }
  const Network& network() const { return conference_->leg_network(0); }

 private:
  std::unique_ptr<Conference> conference_;
};

// Runs one independent Call per config, fanned out across cores (each call
// has its own EventLoop and seeded Random, so runs are embarrassingly
// parallel), and returns results in input order — aggregation over the
// returned vector is bit-identical however many workers ran. `jobs` <= 0
// uses DefaultJobs() (CONVERGE_BENCH_JOBS / hardware_concurrency); 1 forces
// the serial fallback.
std::vector<CallStats> RunCalls(const std::vector<CallConfig>& configs,
                                int jobs = 0);

// Runs `seeds` repetitions of the same config (varying the seed) and returns
// one CallStats per run — used by the table benches for mean ± stddev.
// Seeds run in parallel (see RunCalls); results are in seed order.
std::vector<CallStats> RunSeeds(CallConfig config,
                                const std::vector<uint64_t>& seeds,
                                int jobs = 0);

}  // namespace converge
