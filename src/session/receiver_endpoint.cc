#include "session/receiver_endpoint.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace converge {

ReceiverEndpoint::ReceiverEndpoint(EventLoop* loop, Config config,
                                   MetricsCollector* metrics,
                                   TransmitRtcpFn transmit_rtcp)
    : loop_(loop),
      config_(std::move(config)),
      metrics_(metrics),
      transmit_rtcp_(std::move(transmit_rtcp)),
      arena_(config_.arena != nullptr ? config_.arena : &own_arena_),
      path_state_(arena_) {
  for (size_t i = 0; i < config_.ssrcs.size(); ++i) {
    VideoReceiveStream::Config sc = config_.stream_template;
    sc.ssrc = config_.ssrcs[i];
    sc.stream_id = static_cast<int>(i);
    if (sc.arena == nullptr) sc.arena = arena_;

    VideoReceiveStream::Callbacks callbacks;
    callbacks.send_keyframe_request = [this](uint32_t ssrc) {
      RtcpPacket rtcp;
      KeyframeRequest req;
      req.ssrc = ssrc;
      rtcp.payload = req;
      SendImmediate(rtcp);
    };
    callbacks.send_qoe_feedback = [this](const QoeFeedback& fb) {
      RtcpPacket rtcp;
      rtcp.path_id = fb.path_id;
      rtcp.payload = fb;
      SendImmediate(rtcp);
    };
    callbacks.on_decoded = [this](const DecodedFrame& frame) {
      if (metrics_ != nullptr) metrics_->OnDecodedFrame(frame);
    };
    streams_.push_back(
        std::make_unique<VideoReceiveStream>(loop_, sc, callbacks));
  }

  // Loss detection (see Config::per_path_nack). In per-path mode NACKs
  // carry (path, mp_seqs); in legacy mode they carry (ssrc, media seqs).
  NackGenerator::Config nack_config = config_.nack;
  if (nack_config.arena == nullptr) nack_config.arena = arena_;
  nack_ = std::make_unique<NackGenerator>(
      loop_, nack_config,
      [this](int64_t flow, const std::vector<uint16_t>& seqs) {
        RtcpPacket rtcp;
        Nack nack;
        nack.seqs = seqs;
        if (config_.per_path_nack) {
          rtcp.path_id = static_cast<PathId>(flow);
        } else {
          nack.ssrc = static_cast<uint32_t>(flow);
        }
        rtcp.payload = nack;
        SendImmediate(rtcp);
      });
}

ReceiverEndpoint::~ReceiverEndpoint() = default;

void ReceiverEndpoint::Start() {
  feedback_task_ = std::make_unique<RepeatingTask>(
      loop_, config_.feedback_interval, [this] { SendFeedback(); });
}

void ReceiverEndpoint::Stop() { feedback_task_.reset(); }

int ReceiverEndpoint::StreamIndexOf(uint32_t ssrc) const {
  for (size_t i = 0; i < config_.ssrcs.size(); ++i) {
    if (config_.ssrcs[i] == ssrc) return static_cast<int>(i);
  }
  return -1;
}

void ReceiverEndpoint::OnRtpPacket(RtpPacket packet, Timestamp arrival,
                                   PathId path) {
  ++stats_.rtp_received;
  PathReceiveState& ps = path_state_.try_emplace(path, arena_).first->second;
  ps.last_activity = arrival;

  if (config_.per_path_nack) {
    // Gap in the path's FIFO sequence space == loss.
    nack_->OnPacket(path, packet.mp_seq);
    if (packet.via_rtx && packet.rtx_for_path != kInvalidPathId) {
      nack_->OnRecovered(packet.rtx_for_path, packet.rtx_for_mp_seq);
    }
  } else if (packet.kind != PayloadKind::kFec &&
             !packet.is_probe_duplicate) {
    // Legacy: per-SSRC media sequence gaps. An RTX naturally carries the
    // original (ssrc, seq), so its arrival clears the chase by itself —
    // and packets merely in flight on another path trigger spurious NACKs.
    nack_->OnPacket(static_cast<int64_t>(packet.ssrc), packet.seq);
  }

  // Transport-wide accounting (all packet kinds).
  const int64_t tseq = ps.transport_unwrapper.Unwrap(packet.mp_transport_seq);
  ps.pending_arrivals[tseq] = arrival;

  // Per-path sequence accounting for the receiver report.
  const int64_t mpseq = ps.mp_unwrapper.Unwrap(packet.mp_seq);
  if (ps.expected_base < 0) ps.expected_base = mpseq;
  ps.highest_mp_seq = std::max(ps.highest_mp_seq, mpseq);
  ++ps.received_in_interval;

  // Jitter on send/arrival deltas (RFC 3550 flavor).
  if (ps.prev_arrival.IsFinite()) {
    const double d = std::fabs((arrival - ps.prev_arrival).ms() -
                               (packet.send_time - ps.prev_send).ms());
    ps.jitter_ms += (d - ps.jitter_ms) / 16.0;
  }
  ps.prev_arrival = arrival;
  ps.prev_send = packet.send_time;

  if (packet.kind == PayloadKind::kFec) {
    stats_.fec_bytes += packet.wire_size();
  } else if (!packet.is_probe_duplicate) {
    stats_.media_bytes += packet.wire_size();
    if (metrics_ != nullptr) {
      metrics_->OnMediaBytesReceived(packet.stream_id, packet.wire_size());
    }
  }

  // Probe duplicates only refresh path statistics (§4.2).
  if (packet.is_probe_duplicate) return;

  const int idx = StreamIndexOf(packet.ssrc);
  if (idx < 0) return;
  const bool last_in_frame = packet.last_in_frame;
  streams_[static_cast<size_t>(idx)]->OnRtpPacket(std::move(packet), arrival,
                                                  path);

  if (metrics_ != nullptr && last_in_frame) {
    const auto& stream = *streams_[static_cast<size_t>(idx)];
    metrics_->OnFrameGatheredDelays(stream.qoe().last_fcd(),
                                    stream.frame_buffer().last_ifd());
  }
}

void ReceiverEndpoint::OnRtcpPacket(const RtcpPacket& packet,
                                    Timestamp arrival, PathId path) {
  if (const auto* sr = std::get_if<SenderReport>(&packet.payload)) {
    PathReceiveState& ps =
        path_state_.try_emplace(path, arena_).first->second;
    ps.last_sr_time = sr->send_time;
    ps.last_sr_arrival = arrival;
  } else if (const auto* sdes = std::get_if<SdesFrameRate>(&packet.payload)) {
    const int idx = StreamIndexOf(sdes->ssrc);
    if (idx >= 0) {
      streams_[static_cast<size_t>(idx)]->OnSdesFrameRate(sdes->fps);
    }
  }
}

void ReceiverEndpoint::SendFeedback() {
  const Timestamp now = loop_->now();
  for (auto& [path, ps] : path_state_) {
    if (!ps.last_activity.IsFinite()) continue;

    // Transport feedback: every transport seq in (highest_reported,
    // max_pending], received or not.
    if (!ps.pending_arrivals.empty()) {
      TransportFeedback fb;
      const int64_t hi = ps.pending_arrivals.rbegin()->first;
      const int64_t lo =
          ps.highest_reported >= 0 ? ps.highest_reported + 1
                                   : ps.pending_arrivals.begin()->first;
      for (int64_t s = lo; s <= hi; ++s) {
        TransportFeedback::Arrival a;
        a.mp_transport_seq = s;
        auto it = ps.pending_arrivals.find(s);
        a.recv_time =
            it != ps.pending_arrivals.end() ? it->second
                                            : Timestamp::MinusInfinity();
        fb.arrivals.push_back(a);
      }
      ps.highest_reported = hi;
      ps.pending_arrivals.clear();

      RtcpPacket rtcp;
      rtcp.path_id = path;
      rtcp.payload = std::move(fb);
      ++stats_.rtcp_sent;
      transmit_rtcp_(path, rtcp);
    }

    // Receiver report with per-path loss (Figure 19 extension).
    ReceiverReport rr;
    rr.ssrc = config_.ssrcs.empty() ? 0 : config_.ssrcs.front();
    const int64_t expected = ps.highest_mp_seq - ps.expected_base + 1;
    if (expected > 0) {
      const int64_t lost =
          std::max<int64_t>(0, expected - ps.received_in_interval);
      rr.fraction_lost = static_cast<double>(lost) /
                         static_cast<double>(std::max<int64_t>(1, expected));
      ps.cumulative_lost += lost;
      rr.cumulative_lost = ps.cumulative_lost;
    }
    ps.expected_base = ps.highest_mp_seq + 1;
    ps.received_in_interval = 0;
    rr.ext_high_mp_seq = static_cast<uint16_t>(ps.highest_mp_seq & 0xFFFF);
    rr.jitter = Duration::Micros(static_cast<int64_t>(ps.jitter_ms * 1000.0));
    rr.last_sr_time = ps.last_sr_time;
    rr.delay_since_last_sr = ps.last_sr_arrival.IsFinite()
                                 ? now - ps.last_sr_arrival
                                 : Duration::Zero();
    RtcpPacket rtcp;
    rtcp.path_id = path;
    rtcp.payload = rr;
    ++stats_.rtcp_sent;
    transmit_rtcp_(path, rtcp);
  }
}

void ReceiverEndpoint::SendImmediate(const RtcpPacket& packet) {
  // Critical feedback (NACK / PLI / QoE) is duplicated on every path that has
  // shown recent activity, so it survives a failing path; the sender
  // de-duplicates.
  const Timestamp now = loop_->now();
  bool sent = false;
  for (const auto& [path, ps] : path_state_) {
    if (ps.last_activity.IsFinite() &&
        now - ps.last_activity < Duration::Seconds(2.0)) {
      ++stats_.rtcp_sent;
      transmit_rtcp_(path, packet);
      sent = true;
    }
  }
  if (!sent && !path_state_.empty()) {
    ++stats_.rtcp_sent;
    transmit_rtcp_(path_state_.begin()->first, packet);
  }
}

}  // namespace converge
