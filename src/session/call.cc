#include "session/call.h"

#include <utility>

#include "util/parallel.h"

namespace converge {

ConferenceConfig ToConferenceConfig(const CallConfig& config) {
  ConferenceConfig conf;
  conf.variant = config.variant;
  conf.topology = Topology::kMesh;
  // The historical point-to-point call: participant 0 publishes
  // num_streams cameras, participant 1 watches. One directed leg.
  ParticipantSpec caller;
  caller.sends = true;
  caller.receives = false;
  caller.num_streams = config.num_streams;
  ParticipantSpec callee;
  callee.sends = false;
  callee.receives = true;
  conf.participants = {caller, callee};
  conf.paths = config.paths;
  conf.max_rate_per_stream = config.max_rate_per_stream;
  conf.fps = config.fps;
  conf.width = config.width;
  conf.height = config.height;
  conf.duration = config.duration;
  conf.seed = config.seed;
  conf.enable_fec = config.enable_fec;
  conf.packet_buffer_capacity = config.packet_buffer_capacity;
  conf.frame_buffer_capacity = config.frame_buffer_capacity;
  conf.video_scheduler = config.video_scheduler;
  conf.converge_fec = config.converge_fec;
  conf.cc_algorithm = config.cc_algorithm;
  conf.cc_coupling = config.cc_coupling;
  conf.trace_capacity = config.trace_capacity;
  return conf;
}

Call::Call(const CallConfig& config)
    : conference_(std::make_unique<Conference>(ToConferenceConfig(config))) {}

Call::~Call() = default;

CallStats Call::Run() {
  ConferenceStats stats = conference_->Run();
  return std::move(stats.legs.front().stats);
}

std::vector<CallStats> RunCalls(const std::vector<CallConfig>& configs,
                                int jobs) {
  std::vector<CallStats> out(configs.size());
  ParallelFor(
      static_cast<int64_t>(configs.size()),
      [&](int64_t i) {
        // Each worker gets a private copy of the config: nothing a Call
        // mutates can alias another worker's state.
        CallConfig config = configs[static_cast<size_t>(i)];
        Call call(config);
        out[static_cast<size_t>(i)] = call.Run();
      },
      jobs);
  return out;
}

std::vector<CallStats> RunSeeds(CallConfig config,
                                const std::vector<uint64_t>& seeds,
                                int jobs) {
  std::vector<CallConfig> configs;
  configs.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    config.seed = seed;
    configs.push_back(config);
  }
  return RunCalls(configs, jobs);
}

}  // namespace converge
