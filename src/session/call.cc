#include "session/call.h"

#include <numeric>
#include <string>
#include <utility>

#include "util/invariants.h"
#include "util/parallel.h"

#include "core/video_aware_scheduler.h"
#include "fec/converge_fec_controller.h"
#include "fec/webrtc_fec_controller.h"
#include "schedulers/connection_migration.h"
#include "schedulers/ecf_scheduler.h"
#include "schedulers/mprtp_scheduler.h"
#include "schedulers/mtput_scheduler.h"
#include "schedulers/single_path.h"
#include "schedulers/srtt_scheduler.h"

namespace converge {

std::string ToString(Variant v) {
  switch (v) {
    case Variant::kWebRtcPath0:
      return "WebRTC(p0)";
    case Variant::kWebRtcPath1:
      return "WebRTC(p1)";
    case Variant::kWebRtcCm:
      return "WebRTC-CM";
    case Variant::kSrtt:
      return "SRTT";
    case Variant::kEcf:
      return "ECF";
    case Variant::kMtput:
      return "M-TPUT";
    case Variant::kMrtp:
      return "M-RTP";
    case Variant::kConverge:
      return "Converge";
    case Variant::kConvergeNoFeedback:
      return "Converge-NoFB";
    case Variant::kConvergeWebRtcFec:
      return "Converge-TblFEC";
  }
  return "?";
}

bool IsMultipath(Variant v) {
  switch (v) {
    case Variant::kWebRtcPath0:
    case Variant::kWebRtcPath1:
    case Variant::kWebRtcCm:
      return false;
    default:
      return true;
  }
}

namespace {

std::unique_ptr<Scheduler> MakeScheduler(const CallConfig& config) {
  const Variant v = config.variant;
  switch (v) {
    case Variant::kWebRtcPath0:
      return std::make_unique<SinglePathScheduler>(0);
    case Variant::kWebRtcPath1:
      return std::make_unique<SinglePathScheduler>(1);
    case Variant::kWebRtcCm:
      return std::make_unique<ConnectionMigrationScheduler>();
    case Variant::kSrtt:
      return std::make_unique<SrttScheduler>();
    case Variant::kEcf:
      return std::make_unique<EcfScheduler>();
    case Variant::kMtput:
      return std::make_unique<MtputScheduler>();
    case Variant::kMrtp:
      return std::make_unique<MprtpScheduler>();
    case Variant::kConverge:
    case Variant::kConvergeNoFeedback:
    case Variant::kConvergeWebRtcFec:
      return std::make_unique<VideoAwareScheduler>(config.video_scheduler);
  }
  return std::make_unique<SinglePathScheduler>(0);
}

std::unique_ptr<FecController> MakeFec(const CallConfig& config) {
  switch (config.variant) {
    case Variant::kConverge:
    case Variant::kConvergeNoFeedback:
      return std::make_unique<ConvergeFecController>(config.converge_fec);
    default:
      // Baselines and the table-FEC ablation use stock WebRTC protection.
      return std::make_unique<WebRtcFecController>();
  }
}

bool QoeFeedbackEnabled(Variant v) {
  return v == Variant::kConverge || v == Variant::kConvergeWebRtcFec;
}

// The per-path sequence spaces (Appendix B RTP extension) exist only on
// Converge endpoints; everything else runs standard SSRC-sequence NACK.
bool HasMultipathRtpExtension(Variant v) {
  return v == Variant::kConverge || v == Variant::kConvergeNoFeedback ||
         v == Variant::kConvergeWebRtcFec;
}

}  // namespace

Call::Call(const CallConfig& config) : config_(config) {
  if (config.trace_capacity > 0) {
    trace_ = std::make_unique<TraceRecorder>(config.trace_capacity);
  }
  Random rng(config.seed);
  network_ = std::make_unique<Network>(&loop_, config.paths, rng.Fork());
  scheduler_ = MakeScheduler(config);
  fec_ = MakeFec(config);

  MetricsCollector::Config mconf;
  mconf.num_streams = config.num_streams;
  mconf.expected_frame_interval = Duration::Seconds(1.0 / config.fps);
  metrics_ = std::make_unique<MetricsCollector>(&loop_, mconf);

  // Sender.
  Sender::Config sconf;
  for (int i = 0; i < config.num_streams; ++i) {
    Sender::StreamConfig sc;
    sc.ssrc = 0x1000 + static_cast<uint32_t>(i);
    sc.camera.stream_id = i;
    sc.camera.fps = config.fps;
    sc.camera.width = config.width;
    sc.camera.height = config.height;
    sc.encoder.max_rate = config.max_rate_per_stream;
    sconf.streams.push_back(sc);
  }
  sconf.max_total_rate =
      config.max_rate_per_stream * static_cast<int64_t>(config.num_streams);
  sconf.gcc.max_rate = sconf.max_total_rate * 2;
  sconf.enable_fec = config.enable_fec;
  sender_ = std::make_unique<Sender>(
      &loop_, sconf, scheduler_.get(), fec_.get(), network_->path_ids(),
      rng.Fork(),
      [this](PathId path, RtpPacket packet) {
        TransmitRtp(path, std::move(packet));
      },
      [this](PathId path, const RtcpPacket& packet) {
        TransmitRtcpForward(path, packet);
      });

  // Receiver.
  ReceiverEndpoint::Config rconf;
  for (int i = 0; i < config.num_streams; ++i) {
    rconf.ssrcs.push_back(0x1000 + static_cast<uint32_t>(i));
  }
  rconf.stream_template.packet_buffer.capacity_packets =
      config.packet_buffer_capacity;
  rconf.stream_template.frame_buffer.capacity_frames =
      config.frame_buffer_capacity;
  rconf.stream_template.enable_qoe_feedback =
      QoeFeedbackEnabled(config.variant);
  rconf.per_path_nack = HasMultipathRtpExtension(config.variant);
  receiver_ = std::make_unique<ReceiverEndpoint>(
      &loop_, rconf, metrics_.get(),
      [this](PathId path, const RtcpPacket& packet) {
        TransmitRtcpBackward(path, packet);
      });
}

Call::~Call() = default;

void Call::TransmitRtp(PathId path, RtpPacket packet) {
  const int64_t wire_bytes = packet.wire_size();
  Link& link = network_->path(path).forward();
  // Duplication faults clone the payload here: the link only sees bytes and
  // an opaque move-only continuation, so it cannot copy a packet itself.
  for (int copy = link.SendCopies(); copy > 1; --copy) {
    link.Send(wire_bytes,
              [this, packet, path](Timestamp arrival) mutable {
                receiver_->OnRtpPacket(std::move(packet), arrival, path);
              });
  }
  // The in-flight packet rides inside the link's inline delivery callback —
  // no heap allocation per transmitted packet.
  link.Send(
      wire_bytes,
      [this, packet = std::move(packet), path](Timestamp arrival) mutable {
        receiver_->OnRtpPacket(std::move(packet), arrival, path);
      });
}

void Call::TransmitRtcpForward(PathId path, const RtcpPacket& packet) {
  network_->path(path).forward().Send(
      packet.wire_size(),
      [this, packet, path](Timestamp arrival) {
        receiver_->OnRtcpPacket(packet, arrival, path);
      });
}

void Call::TransmitRtcpBackward(PathId path, const RtcpPacket& packet) {
  network_->path(path).backward().Send(
      packet.wire_size(),
      [this, packet](Timestamp arrival) {
        sender_->HandleRtcp(packet, arrival);
      });
}

CallStats Call::Run() {
  // Label invariant violations with the run that produced them — essential
  // when a parallel multi-seed chaos sweep trips one check in one run.
  if (InvariantRegistry::enabled()) {
    InvariantRegistry::SetContext(ToString(config_.variant) +
                                  " seed=" + std::to_string(config_.seed));
  }
  // Calls run single-threaded (one per worker in parallel sweeps), so the
  // thread-local recorder covers exactly this call's components.
  TraceScope trace_scope(trace_.get());
  receiver_->Start();
  sender_->Start();
  loop_.RunUntil(Timestamp::Zero() + config_.duration);

  CallStats out;
  for (int i = 0; i < config_.num_streams; ++i) {
    const auto rx_stats = receiver_->stream(i).GetStats();
    metrics_->SetReceiverCounters(i, rx_stats.FrameDrops(),
                                  rx_stats.keyframe_requests);
    out.total_frame_drops += rx_stats.FrameDrops();
    out.total_keyframe_requests += rx_stats.keyframe_requests;
  }
  out.streams = metrics_->AllStreams(config_.duration);
  out.time_series = metrics_->time_series();

  const auto& tx = sender_->stats();
  out.media_packets_sent = tx.media_packets_sent;
  out.fec_packets_sent = tx.fec_packets_sent;
  out.rtx_packets_sent = tx.rtx_packets_sent;
  out.frames_encoded = tx.frames_encoded;
  out.fec_overhead =
      tx.media_packets_sent > 0
          ? static_cast<double>(tx.fec_packets_sent) /
                static_cast<double>(tx.media_packets_sent)
          : 0.0;

  int64_t fec_received = 0;
  int64_t fec_used = 0;
  for (int i = 0; i < config_.num_streams; ++i) {
    fec_received += receiver_->stream(i).fec().stats().fec_received;
    fec_used += receiver_->stream(i).fec().stats().fec_used;
    out.fec_recovered_packets +=
        receiver_->stream(i).fec().stats().packets_recovered;
  }
  out.fec_utilization =
      fec_received > 0
          ? static_cast<double>(fec_used) / static_cast<double>(fec_received)
          : 0.0;
  return out;
}

double CallStats::AvgFps() const {
  if (streams.empty()) return 0.0;
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.avg_fps;
  return acc / static_cast<double>(streams.size());
}

double CallStats::AvgFreezeMs() const {
  if (streams.empty()) return 0.0;
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.freeze_total_ms;
  return acc / static_cast<double>(streams.size());
}

double CallStats::AvgE2eMs() const {
  if (streams.empty()) return 0.0;
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.e2e_mean_ms;
  return acc / static_cast<double>(streams.size());
}

double CallStats::TotalTputMbps() const {
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.tput_mbps;
  return acc;
}

double CallStats::AvgQp() const {
  if (streams.empty()) return 0.0;
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.qp_mean;
  return acc / static_cast<double>(streams.size());
}

double CallStats::AvgPsnrDb() const {
  if (streams.empty()) return 0.0;
  double acc = 0.0;
  for (const StreamQoe& s : streams) acc += s.psnr_mean_db;
  return acc / static_cast<double>(streams.size());
}

std::vector<CallStats> RunCalls(const std::vector<CallConfig>& configs,
                                int jobs) {
  std::vector<CallStats> out(configs.size());
  ParallelFor(
      static_cast<int64_t>(configs.size()),
      [&](int64_t i) {
        // Each worker gets a private copy of the config: nothing a Call
        // mutates can alias another worker's state.
        CallConfig config = configs[static_cast<size_t>(i)];
        Call call(config);
        out[static_cast<size_t>(i)] = call.Run();
      },
      jobs);
  return out;
}

std::vector<CallStats> RunSeeds(CallConfig config,
                                const std::vector<uint64_t>& seeds,
                                int jobs) {
  std::vector<CallConfig> configs;
  configs.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    config.seed = seed;
    configs.push_back(config);
  }
  return RunCalls(configs, jobs);
}

}  // namespace converge
