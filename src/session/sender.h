// The sending endpoint: N camera streams feeding encoders and packetizers,
// per-path congestion control (uncoupled GCC, §4.1), the pluggable multipath
// scheduler, the pluggable FEC controller, per-path pacers, RTX handling,
// probing of disabled paths, and all sender-side RTCP (SR, SDES frame rate)
// plus reaction to receiver RTCP (RR, transport feedback, NACK, PLI, QoE
// feedback).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "cc/cc_controller.h"
#include "cc/coupling.h"
#include "cc/pacer.h"
#include "fec/fec_controller.h"
#include "fec/xor_fec.h"
#include "net/network.h"
#include "rtp/rtcp.h"
#include "schedulers/scheduler.h"
#include "sim/event_loop.h"
#include "video/camera.h"
#include "video/encoder.h"
#include "video/packetizer.h"

namespace converge {

class Sender {
 public:
  struct StreamConfig {
    uint32_t ssrc = 0x1000;
    Camera::Config camera;
    Encoder::Config encoder;
    Packetizer::Config packetizer;
  };

  struct Config {
    std::vector<StreamConfig> streams;
    DataRate max_total_rate = DataRate::MegabitsPerSec(10);
    // Per-path congestion controller (one instance per path, built through
    // MakeCcController) and the coupling strategy combining their targets.
    CcConfig cc;
    CcCoupling cc_coupling = CcCoupling::kUncoupled;
    Pacer::Config pacer;
    Duration tick_interval = Duration::Millis(50);
    Duration sr_interval = Duration::Millis(100);
    Duration sdes_interval = Duration::Seconds(1.0);
    bool enable_fec = true;
    size_t rtx_history = 4096;  // packets kept for retransmission
  };

  struct Stats {
    int64_t media_packets_sent = 0;
    int64_t fec_packets_sent = 0;
    int64_t rtx_packets_sent = 0;
    int64_t probe_packets_sent = 0;
    int64_t media_bytes_sent = 0;
    int64_t fec_bytes_sent = 0;
    int64_t frames_encoded = 0;
    int64_t keyframes_encoded = 0;
  };

  // Delivery of an RTP packet into the network. The Call wires this to the
  // path's forward link. By value: the sender moves its last reference in.
  using TransmitRtpFn = std::function<void(PathId path, RtpPacket packet)>;
  // Sender-originated RTCP (SR / SDES) toward the receiver.
  using TransmitRtcpFn =
      std::function<void(PathId path, const RtcpPacket& packet)>;

  Sender(EventLoop* loop, Config config, Scheduler* scheduler,
         FecController* fec, std::vector<PathId> path_ids, Random rng,
         TransmitRtpFn transmit_rtp, TransmitRtcpFn transmit_rtcp);
  ~Sender();

  void Start();
  // Quiesces the endpoint when its participant leaves mid-call: cameras stop
  // producing frames and the tick/SR/SDES timers are cancelled, so no new
  // media or RTCP enters the network. Packets already in flight (and the
  // idle per-path pacers) are unaffected; stats remain queryable.
  void Stop();

  // Receiver RTCP arriving at the sender.
  void HandleRtcp(const RtcpPacket& packet, Timestamp arrival);

  const Stats& stats() const { return stats_; }
  DataRate current_encoder_target() const { return encoder_target_; }
  DataRate path_rate(PathId path) const;
  Duration path_srtt(PathId path) const;
  double path_loss(PathId path) const;

 private:
  // One sent-packet record for transport feedback matching.
  struct SentRecord {
    int64_t seq = -1;  // unwrapped transport seq; -1 = empty slot
    Timestamp send_time;
    int64_t bytes = 0;
  };

  struct PathState {
    std::unique_ptr<CcController> cc;
    std::unique_ptr<Pacer> pacer;
    uint16_t next_mp_seq = 0;
    uint16_t next_mp_transport_seq = 0;
    // Sent history for transport feedback matching. Transport seqs are
    // assigned monotonically (+1 per packet) by DispatchPacket, so the
    // history is always the contiguous window of the last kSentWindow seqs
    // — a power-of-two ring indexed by `seq & (capacity - 1)` holds exactly
    // the same membership as the capped ordered map it replaces, without a
    // red-black-tree insert + evict on every dispatched packet. The ring
    // starts small and doubles up to kSentWindow only when a path has that
    // many packets genuinely outstanding, so short calls stay compact.
    static constexpr size_t kSentWindow = 8192;
    std::vector<SentRecord> sent;
    int64_t last_sent_seq = -1;  // newest unwrapped seq (unwrap anchor)

    void RecordSent(int64_t seq, Timestamp at, int64_t bytes) {
      if (sent.empty()) sent.resize(256);
      // Grow while the slot still holds a record inside the retention
      // window (only possible when capacity < kSentWindow).
      while (sent.size() < kSentWindow) {
        const SentRecord& victim = sent[seq & (sent.size() - 1)];
        if (victim.seq < 0 ||
            victim.seq <= seq - static_cast<int64_t>(kSentWindow)) {
          break;
        }
        std::vector<SentRecord> grown(sent.size() * 2);
        for (const SentRecord& r : sent) {
          if (r.seq >= 0) grown[r.seq & (grown.size() - 1)] = r;
        }
        sent = std::move(grown);
      }
      sent[seq & (sent.size() - 1)] = SentRecord{seq, at, bytes};
      last_sent_seq = seq;
    }

    const SentRecord* FindSent(int64_t seq) const {
      if (sent.empty()) return nullptr;
      const SentRecord& r = sent[seq & (sent.size() - 1)];
      return r.seq == seq ? &r : nullptr;
    }
    // Retransmission history: per-path mp_seq (wire 16-bit) -> sent packet.
    // NACKs name (path, mp_seq); the entry is overwritten on wrap.
    std::map<uint16_t, RtpPacket> mp_sent;
    int64_t last_fed_back_seq = -1;
    Timestamp last_sr_sent = Timestamp::MinusInfinity();
  };

  struct StreamState {
    std::unique_ptr<Camera> camera;
    std::unique_ptr<Encoder> encoder;
    std::unique_ptr<Packetizer> packetizer;
    uint16_t next_fec_seq = 0;  // separate sequence space for parity
    // PLI debounce: a keyframe already in flight satisfies new requests.
    Timestamp last_keyframe_encoded = Timestamp::MinusInfinity();
  };

  void OnCameraFrame(size_t stream_index, const RawFrame& raw);
  // Packetizes, schedules, paces, and FEC-protects one encoded frame (one
  // simulcast rung of a capture; called once per capture when unlayered).
  void SendEncodedFrame(StreamState& stream, const EncodedFrame& frame);
  // Stamps multipath headers and hands the packet to the path's pacer.
  void DispatchToPacer(PathId path, const RtpPacket& packet);
  // Pacer output: bookkeeping + transmission into the network.
  void DispatchPacket(PathId path, RtpPacket packet);
  void Tick();
  void SendSenderReports();
  void SendSdes();
  std::vector<PathInfo> BuildPathInfos() const;
  // Per-path rates after the coupling strategy (path_ids_ order). Under
  // kUncoupled this is exactly each controller's own target.
  std::vector<DataRate> AllocatedRates() const;
  double AggregateLoss() const;
  void HandleNack(const Nack& nack, PathId report_path);
  void HandleTransportFeedback(const TransportFeedback& feedback,
                               PathId path_id, Timestamp now);

  EventLoop* loop_;
  Config config_;
  Scheduler* scheduler_;
  FecController* fec_;
  Random rng_;
  TransmitRtpFn transmit_rtp_;
  TransmitRtcpFn transmit_rtcp_;

  std::vector<PathId> path_ids_;
  std::map<PathId, PathState> paths_;
  std::vector<StreamState> streams_;
  // Recently retransmitted (flow, seq): the receiver duplicates NACKs
  // across paths, so the sender de-duplicates. flow = path id for per-path
  // NACKs, ssrc for legacy NACKs (disjoint value ranges).
  std::map<std::pair<int64_t, uint16_t>, Timestamp> recent_rtx_;
  // Legacy NACK lookup: (ssrc, media seq) -> (packet, original path).
  std::map<std::pair<uint32_t, uint16_t>, std::pair<RtpPacket, PathId>>
      ssrc_sent_;
  // Sliding FEC windows: media of (path, stream, rung) awaiting parity
  // coverage. Windowing per rung keeps every parity packet's covered set
  // inside one rung, so a hub forwarding a single rung never strands
  // parity across filtered packets.
  static constexpr size_t kFecWindowPackets = 48;
  std::map<std::tuple<PathId, int, int>, std::deque<RtpPacket>> fec_window_;
  std::optional<RtpPacket> last_fast_packet_;  // probe duplication source

  DataRate encoder_target_ = DataRate::KilobitsPerSec(300);
  Stats stats_;
  std::unique_ptr<RepeatingTask> tick_task_;
  std::unique_ptr<RepeatingTask> sr_task_;
  std::unique_ptr<RepeatingTask> sdes_task_;
  int64_t next_fec_block_ = 0;
};

}  // namespace converge
