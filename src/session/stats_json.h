// JSON export of call/conference results — the simulator's analogue of
// WebRTC's getStats(): lets downstream tooling (dashboards, notebook plots)
// consume outcomes without linking against the library.
#pragma once

#include <string>

#include "session/call.h"
#include "session/conference.h"

namespace converge {

// Serializes the aggregate stats, per-stream QoE and per-second time series.
std::string CallStatsToJson(const CallStats& stats, int indent = 2);

// Serializes a conference: per-participant receive QoE plus every directed
// leg's full CallStats (nested in the exact CallStatsToJson layout).
std::string ConferenceStatsToJson(const ConferenceStats& stats,
                                  int indent = 2);

}  // namespace converge
