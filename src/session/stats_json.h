// JSON export of call results — the simulator's analogue of WebRTC's
// getStats(): lets downstream tooling (dashboards, notebook plots) consume
// call outcomes without linking against the library.
#pragma once

#include <string>

#include "session/call.h"

namespace converge {

// Serializes the aggregate stats, per-stream QoE and per-second time series.
std::string CallStatsToJson(const CallStats& stats, int indent = 2);

}  // namespace converge
