#include "session/hub_forwarder.h"

#include <algorithm>
#include <string>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {
namespace {

constexpr size_t kDecisionWindow = 64;
constexpr size_t kRtxDedupCap = 4096;

// Flight-recorder category for the rung-selection engine: switches,
// selection counters, and the keyframe requests that commit them live
// apart from the queue probes in `config.trace_category`.
constexpr char kLayerTraceCategory[] = "hub_layer";

bool MediaLike(const RtpPacket& p) {
  return p.kind == PayloadKind::kMedia || p.kind == PayloadKind::kPps ||
         p.kind == PayloadKind::kSps;
}

// Rebuilds the scheduler priority of a packet whose RTX provenance the hub
// strips (the origin tagged the retransmitted copy kRetransmit).
Priority RestorePriority(const RtpPacket& p) {
  switch (p.kind) {
    case PayloadKind::kPps:
      return Priority::kPps;
    case PayloadKind::kSps:
      return Priority::kSps;
    case PayloadKind::kFec:
      return Priority::kFec;
    default:
      return p.frame_kind == FrameKind::kKey ? Priority::kKeyframe
                                             : Priority::kNone;
  }
}

// De-duplication flow ids: per-path NACKs and legacy NACKs live in
// disjoint key spaces (bit 32 is the mode flag, the leg sits above it).
int64_t MpFlow(int leg, PathId path) {
  return (static_cast<int64_t>(leg) << 33) | (int64_t{1} << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(path));
}
int64_t LegacyFlow(int leg, uint32_t ssrc) {
  return (static_cast<int64_t>(leg) << 33) | static_cast<int64_t>(ssrc);
}

}  // namespace

HubForwarder::HubForwarder(EventLoop* loop, Config config,
                           const std::vector<PathId>& paths,
                           TransmitFn transmit, PliFn relay_pli)
    : loop_(loop),
      config_(config),
      transmit_(std::move(transmit)),
      relay_pli_(std::move(relay_pli)),
      last_process_(loop->now()),
      last_layer_eval_(loop->now()) {
  for (PathId path : paths) {
    DownlinkCc::Config cc = config_.cc;
    cc.controller.trace_path = static_cast<int>(path);
    paths_.emplace(path, std::make_unique<PathState>(cc));
  }
  task_ = std::make_unique<RepeatingTask>(loop_, config_.process_interval,
                                          [this] { Process(); });
}

HubForwarder::~HubForwarder() = default;

void HubForwarder::Stop() { task_.reset(); }

void HubForwarder::ResetOrigin(int leg) {
  for (auto& [path, ps] : paths_) {
    for (std::deque<Queued>* q : {&ps->queue, &ps->rtx_queue}) {
      std::deque<Queued> kept;
      for (Queued& entry : *q) {
        if (entry.leg == leg) {
          ps->queued_bytes -= entry.packet.wire_size();
          ++ps->stats.packets_dropped;
        } else {
          kept.push_back(std::move(entry));
        }
      }
      *q = std::move(kept);
    }
    ps->egress.erase(leg);
  }
  for (auto it = gates_.begin(); it != gates_.end();) {
    it = it->first.first == leg ? gates_.erase(it) : std::next(it);
  }
  for (auto it = legacy_sent_.begin(); it != legacy_sent_.end();) {
    it = it->first.first.first == leg ? legacy_sent_.erase(it)
                                     : std::next(it);
  }
}

HubForwarder::PathState& HubForwarder::Path(PathId path) {
  return *paths_.at(path);
}
const HubForwarder::PathState& HubForwarder::Path(PathId path) const {
  return *paths_.at(path);
}

Duration HubForwarder::ProjectedDelay(const PathState& ps) const {
  if (ps.queued_bytes == 0) return Duration::Zero();
  if (ps.pacing_rate.IsZero()) {
    // Before the first Process() tick the pacing rate is unset; project
    // with the controller's current target instead of reporting infinity.
    return (ps.cc.target_rate() * config_.pacing_factor)
        .TransmitTime(ps.queued_bytes);
  }
  return ps.pacing_rate.TransmitTime(ps.queued_bytes);
}

Duration HubForwarder::WorstQueueDelay() const {
  Duration worst = Duration::Zero();
  for (const auto& [path, ps] : paths_) {
    worst = std::max(worst, ProjectedDelay(*ps));
  }
  return worst;
}

double HubForwarder::WorstSmoothedDelayMs() const {
  double worst = 0.0;
  for (const auto& [path, ps] : paths_) {
    worst = std::max(worst, ps->smoothed_delay_ms);
  }
  return worst;
}

void HubForwarder::CloseGate(StreamGate& gate, int leg, int stream_id,
                             PathId culprit, Timestamp now) {
  gate.open = false;
  gate.culprit = culprit;
  if (gate.last_pli.IsFinite() &&
      now - gate.last_pli < config_.pli_min_interval) {
    return;
  }
  gate.last_pli = now;
  auto it = paths_.find(culprit);
  if (it != paths_.end()) ++it->second->stats.plis_relayed;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant(config_.trace_category, "pli_relay", now, static_cast<double>(leg),
                   static_cast<int32_t>(culprit), stream_id);
  }
  relay_pli_(leg, gate.ssrc, culprit);
}

bool HubForwarder::AdmitMedia(int leg, PathId path, const RtpPacket& packet,
                              Timestamp now) {
  StreamGate& g = gates_[{leg, packet.stream_id}];
  if (packet.ssrc != 0) g.ssrc = packet.ssrc;
  if (config_.layers.enabled && packet.num_spatial > 1) {
    return AdmitLayered(g, leg, path, packet, now);
  }
  if (packet.frame_kind == FrameKind::kKey) {
    // Keyframes are always admitted; they repair the dependency chain.
    g.open = true;
    g.decisions[packet.frame_id] = 0;
  } else {
    auto it = g.decisions.find(packet.frame_id);
    if (it == g.decisions.end()) {
      // First packet of a new delta frame: the whole-frame thinning
      // decision. The frame is decodable only if every path carries its
      // share, so thin against the *worst* downlink path backlog.
      bool admit = g.open;
      PathId culprit = g.culprit == kInvalidPathId ? path : g.culprit;
      if (admit) {
        Duration worst = Duration::Zero();
        for (const auto& [id, ps] : paths_) {
          const Duration d = ProjectedDelay(*ps);
          if (d > worst) {
            worst = d;
            culprit = id;
          }
        }
        admit = worst <= config_.thin_queue_delay;
      }
      it = g.decisions.emplace(packet.frame_id, admit ? 0 : -1).first;
      if (!admit) {
        auto pit = paths_.find(culprit);
        PathState& cp =
            pit != paths_.end() ? *pit->second : *paths_.begin()->second;
        ++cp.stats.frames_thinned;
        if (TraceRecorder* trace = TraceRecorder::Current()) {
          trace->Instant(config_.trace_category, "frame_thinned", now,
                         static_cast<double>(packet.frame_id),
                         static_cast<int32_t>(culprit), packet.stream_id);
        }
        // Dropping a delta breaks the chain until the next keyframe.
        CloseGate(g, leg, packet.stream_id, culprit, now);
      }
    }
    if (it->second < 0) {
      auto pit = paths_.find(g.culprit);
      PathState& cp =
          pit != paths_.end() ? *pit->second : *paths_.begin()->second;
      ++cp.stats.packets_dropped;
      return false;
    }
  }
  while (g.decisions.size() > kDecisionWindow) {
    g.decisions.erase(g.decisions.begin());
  }
  return true;
}

bool HubForwarder::AdmitLayered(StreamGate& g, int leg, PathId path,
                                const RtpPacket& packet, Timestamp now) {
  g.num_rungs = std::min<int>(packet.num_spatial, kMaxRungs);
  // Every rung's ingress bytes feed the rate estimates — including rungs
  // the receiver is not subscribed to; those estimates are exactly what an
  // upswitch decision needs.
  if (packet.spatial_id < kMaxRungs) {
    g.rung_window_bytes[packet.spatial_id] += packet.wire_size();
  }

  auto it = g.decisions.find(packet.frame_id);
  if (it == g.decisions.end()) {
    // First packet of this frame_id (any rung, any path): decide which
    // rung of the frame goes downstream. Exactly one rung per frame_id
    // keeps the subscriber's frame continuity — full fps at every rung.
    int rung;
    if (packet.frame_kind == FrameKind::kKey) {
      if (g.pending >= 0 && g.pending != g.current) {
        // The keyframe all rungs share is the decodable switch boundary.
        g.current = std::min(g.pending, g.num_rungs - 1);
        g.last_switch = now;
        PathState& cp = *paths_.begin()->second;
        ++cp.stats.layer_switches;
        if (TraceRecorder* trace = TraceRecorder::Current()) {
          trace->Instant(kLayerTraceCategory, "layer_switch", now,
                         static_cast<double>(g.current),
                         static_cast<int32_t>(leg), packet.stream_id);
        }
      }
      g.pending = -1;
      g.open = true;
      rung = std::min(g.current, g.num_rungs - 1);
    } else if (!g.open) {
      rung = -1;  // chain already broken; wait for the next keyframe
    } else {
      rung = std::min(g.current, g.num_rungs - 1);
      // Overload backstop below the lowest rung: if even the selected rung
      // overruns the worst path's queue, fall back to whole-frame thinning
      // exactly like the single-layer hub.
      Duration worst = Duration::Zero();
      PathId culprit = path;
      for (const auto& [id, ps] : paths_) {
        const Duration d = ProjectedDelay(*ps);
        if (d > worst) {
          worst = d;
          culprit = id;
        }
      }
      if (worst > config_.thin_queue_delay) {
        rung = -1;
        auto pit = paths_.find(culprit);
        PathState& cp =
            pit != paths_.end() ? *pit->second : *paths_.begin()->second;
        ++cp.stats.frames_thinned;
        if (TraceRecorder* trace = TraceRecorder::Current()) {
          trace->Instant(config_.trace_category, "frame_thinned", now,
                         static_cast<double>(packet.frame_id),
                         static_cast<int32_t>(culprit), packet.stream_id);
        }
        CloseGate(g, leg, packet.stream_id, culprit, now);
      }
    }
    it = g.decisions.emplace(packet.frame_id, rung).first;
  }
  while (g.decisions.size() > kDecisionWindow) {
    g.decisions.erase(g.decisions.begin());
  }

  const int rung = it->second;
  if (rung < 0) {
    auto pit = paths_.find(g.culprit);
    PathState& cp =
        pit != paths_.end() ? *pit->second : *paths_.begin()->second;
    ++cp.stats.packets_dropped;
    return false;
  }
  if (packet.spatial_id != rung) {
    // Deliberate rung filtering, not loss: hub-stamped egress sequence
    // spaces mean the receiver never sees a gap to chase.
    ++Path(path).stats.layer_packets_filtered;
    return false;
  }
  return true;
}

void HubForwarder::RequestSwitchKeyframe(StreamGate& gate, int leg,
                                         int stream_id, Timestamp now) {
  if (gate.last_pli.IsFinite() &&
      now - gate.last_pli < config_.pli_min_interval) {
    return;
  }
  gate.last_pli = now;
  // Attribute the request to the constraining downlink path (the lowest
  // CC target) — the one the switch is for.
  PathId culprit = paths_.begin()->first;
  DataRate lowest = DataRate::Infinity();
  for (const auto& [id, ps] : paths_) {
    if (ps->cc.target_rate() < lowest) {
      lowest = ps->cc.target_rate();
      culprit = id;
    }
  }
  ++paths_.at(culprit)->stats.plis_relayed;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant(kLayerTraceCategory, "switch_pli", now,
                   static_cast<double>(gate.pending),
                   static_cast<int32_t>(leg), stream_id);
  }
  relay_pli_(leg, gate.ssrc, culprit);
}

void HubForwarder::EvaluateLayerSelection(Timestamp now) {
  if (!config_.layers.enabled) return;
  const Duration window = now - last_layer_eval_;
  if (window < config_.layers.eval_interval) return;
  last_layer_eval_ = now;
  const double window_s = window.seconds();
  if (window_s <= 0.0) return;

  double total_target_bps = 0.0;
  for (const auto& [id, ps] : paths_) {
    total_target_bps += static_cast<double>(ps->cc.target_rate().bps());
  }
  if (total_target_bps >= peak_total_target_bps_) {
    peak_total_target_bps_ = total_target_bps;
  } else {
    peak_total_target_bps_ += std::min(1.0, window_s / 4.0) *
                              (total_target_bps - peak_total_target_bps_);
  }
  int layered_streams = 0;
  for (const auto& [key, g] : gates_) {
    if (g.num_rungs > 1) ++layered_streams;
  }
  if (layered_streams == 0) return;
  // Every layered stream this receiver subscribes to shares the aggregate
  // downlink budget equally. Selection (which rung SHOULD fit) runs on
  // the slow-decaying capacity belief; the upswitch margin additionally
  // checks the instantaneous target so a stale peak cannot drive a climb.
  const double budget_bps = peak_total_target_bps_ * config_.layers.headroom /
                            static_cast<double>(layered_streams);
  const double cur_budget_bps = total_target_bps * config_.layers.headroom /
                                static_cast<double>(layered_streams);

  for (auto& [key, g] : gates_) {
    if (g.num_rungs <= 1) continue;
    const int leg = key.first;
    const int stream_id = key.second;
    // Fold the window's ingress bytes into the per-rung rate estimates.
    for (int k = 0; k < g.num_rungs; ++k) {
      const double inst =
          static_cast<double>(g.rung_window_bytes[k]) * 8.0 / window_s;
      g.rung_window_bytes[k] = 0;
      const double alpha = inst > g.rung_rate_bps[k]
                               ? config_.layers.rate_alpha_up
                               : config_.layers.rate_alpha;
      g.rung_rate_bps[k] =
          g.rung_rate_bps[k] <= 0.0
              ? inst
              : g.rung_rate_bps[k] + alpha * (inst - g.rung_rate_bps[k]);
    }
    // Highest-quality rung whose measured rate fits the budget; when even
    // the lowest rung overruns, subscribe to the lowest anyway — the
    // thinning backstop handles what remains.
    int desired = g.num_rungs - 1;
    for (int k = 0; k < g.num_rungs; ++k) {
      if (g.rung_rate_bps[k] > 0.0 && g.rung_rate_bps[k] <= budget_bps) {
        desired = k;
        break;
      }
    }
    // A sustained backlog means the pacer cannot drain the current rung
    // no matter what the budget arithmetic believes (the capacity belief
    // lags real losses by design) — degrade one rung now.
    const bool emergency =
        WorstSmoothedDelayMs() > config_.layers.emergency_queue_delay.ms();
    if (emergency && desired <= g.current && g.current < g.num_rungs - 1) {
      desired = g.current + 1;
    }
    if (desired == g.current) {
      g.pending = -1;  // converged; cancel any stale switch request
      g.deficit_evals = 0;
    } else if (desired > g.current) {
      // Downswitch: a deficit against the peak-tracked budget is a
      // genuine capacity shortfall (probe dips do not dent the peak), so
      // confirmation is only about riding out one keyframe-inflated
      // window; an emergency bypasses even that. Commits at the next
      // keyframe.
      ++g.deficit_evals;
      const bool confirmed =
          g.deficit_evals >= config_.layers.downswitch_confirm_evals;
      if (emergency || confirmed) {
        if (g.pending != desired) g.pending = desired;
        RequestSwitchKeyframe(g, leg, stream_id, now);
      }
    } else {
      g.deficit_evals = 0;
      // Upswitch: hysteretic — the better rung must fit a tighter budget
      // and the current selection must have dwelled.
      const bool fits_margin =
          g.rung_rate_bps[desired] <=
          cur_budget_bps * config_.layers.upswitch_margin;
      const bool dwelled =
          !g.last_switch.IsFinite() ||
          now - g.last_switch >= config_.layers.min_dwell;
      if (fits_margin && dwelled) {
        if (g.pending != desired) g.pending = desired;
        RequestSwitchKeyframe(g, leg, stream_id, now);
      } else {
        g.pending = -1;
      }
    }
    if (TraceRecorder* trace = TraceRecorder::Current()) {
      trace->Counter(kLayerTraceCategory, "selected_rung", now,
                     static_cast<double>(g.current),
                     static_cast<int32_t>(leg), stream_id);
      trace->Counter(kLayerTraceCategory, "rung_budget_kbps", now,
                     budget_bps / 1000.0, static_cast<int32_t>(leg),
                     stream_id);
    }
  }
}

void HubForwarder::OnMediaFromUplink(int leg, PathId path,
                                     RtpPacket packet) {
  const Timestamp now = loop_->now();
  auto pit = paths_.find(path);
  if (pit == paths_.end()) return;
  PathState& ps = *pit->second;

  // Uplink RTX provenance ends at the hub: the receiver never saw a gap
  // (egress sequence spaces are hub-stamped), so a packet the hub chased
  // and recovered from the origin goes downstream as a first transmission.
  if (packet.via_rtx) {
    packet.via_rtx = false;
    packet.rtx_for_path = kInvalidPathId;
    packet.rtx_for_mp_seq = 0;
    packet.priority = RestorePriority(packet);
  }

  if (MediaLike(packet)) {
    if (!AdmitMedia(leg, path, packet, now)) return;
  } else if (packet.kind == PayloadKind::kFec) {
    // Parity covering a gated stream is dead weight on a congested link.
    auto git = gates_.find({leg, packet.stream_id});
    if (git != gates_.end() && !git->second.open) {
      auto cit = paths_.find(git->second.culprit);
      PathState& cp =
          cit != paths_.end() ? *cit->second : ps;
      ++cp.stats.packets_dropped;
      return;
    }
    // Layered: parity protects exactly one rung (the sender windows FEC
    // per rung), so forward only the subscribed rung's parity.
    if (config_.layers.enabled && packet.num_spatial > 1 &&
        git != gates_.end() &&
        packet.spatial_id != git->second.current) {
      ++ps.stats.layer_packets_filtered;
      return;
    }
  }

  ps.queued_bytes += packet.wire_size();
  ps.stats.max_queue_bytes =
      std::max(ps.stats.max_queue_bytes, ps.queued_bytes);
  ps.queue.push_back({std::move(packet), now, leg});
}

void HubForwarder::EvictFrame(PathId path, PathState& ps, int leg,
                              int stream_id, int64_t frame_id,
                              Timestamp now) {
  StreamGate& g = gates_[{leg, stream_id}];
  // Evict the target frame and every queued delta that depends on it
  // (later deltas of the stream cannot decode once the chain is cut).
  std::deque<Queued> kept;
  int64_t frames_gone = 0;
  int64_t last_gone = -1;
  for (Queued& q : ps.queue) {
    const RtpPacket& p = q.packet;
    const bool same_stream =
        q.leg == leg && p.stream_id == stream_id && MediaLike(p);
    const bool doomed =
        same_stream && (p.frame_id == frame_id ||
                        (p.frame_id > frame_id &&
                         p.frame_kind == FrameKind::kDelta));
    if (!doomed) {
      kept.push_back(std::move(q));
      continue;
    }
    if (p.frame_id != last_gone) {
      last_gone = p.frame_id;
      ++frames_gone;
      g.decisions[p.frame_id] = -1;
    }
    ps.queued_bytes -= p.wire_size();
    ++ps.stats.packets_dropped;
  }
  ps.queue = std::move(kept);
  ps.stats.frames_evicted += frames_gone;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant(config_.trace_category, "frame_evicted", now,
                   static_cast<double>(frame_id),
                   static_cast<int32_t>(path), stream_id);
  }
  CloseGate(g, leg, stream_id, path, now);
}

void HubForwarder::EvictForSpace(PathId path, PathState& ps,
                                 Timestamp now) {
  while (!ps.queue.empty() &&
         ProjectedDelay(ps) > config_.drop_queue_delay) {
    // Oldest-frame-first, keyframe-protected: scan for the first entry
    // that is not part of a keyframe.
    auto victim = ps.queue.end();
    for (auto it = ps.queue.begin(); it != ps.queue.end(); ++it) {
      const RtpPacket& p = it->packet;
      if (MediaLike(p) && p.frame_kind == FrameKind::kKey) continue;
      victim = it;
      break;
    }
    if (victim == ps.queue.end()) {
      // Only keyframes left; shed them only beyond the hard bound.
      if (ProjectedDelay(ps) <= config_.drop_queue_delay * 2.0) break;
      victim = ps.queue.begin();
    }
    const RtpPacket& p = victim->packet;
    if (MediaLike(p)) {
      EvictFrame(path, ps, victim->leg, p.stream_id, p.frame_id, now);
    } else {
      ps.queued_bytes -= p.wire_size();
      ++ps.stats.packets_dropped;
      ps.queue.erase(victim);
    }
  }
}

void HubForwarder::Emit(PathId path, PathState& ps, Queued q,
                        Timestamp now, bool padding) {
  RtpPacket& packet = q.packet;
  EgressLeg& el = ps.egress[q.leg];
  packet.path_id = path;
  packet.send_time = now;
  // Hub-owned sequence spaces, stamped at queue output so the per-path
  // wire order stays strictly sequential even when retransmissions jump
  // the backlog (mirrors Sender::DispatchPacket).
  packet.mp_seq = el.next_mp_seq++;
  packet.mp_transport_seq =
      static_cast<uint16_t>(el.transport_count & 0xFFFF);
  ps.cc.OnPacketSent(q.leg, el.transport_count, now, packet.wire_size());
  ++el.transport_count;
  ps.pad_budget_bytes -= static_cast<double>(packet.wire_size());

  if (MediaLike(packet)) {
    el.mp_sent[packet.mp_seq] = packet;
    if (!packet.via_rtx) {
      legacy_sent_[{{q.leg, packet.ssrc}, packet.seq}] = {path, packet};
      while (legacy_sent_.size() > config_.legacy_rtx_history) {
        legacy_sent_.erase(legacy_sent_.begin());
      }
    }
    if (config_.layers.enabled && !packet.via_rtx) {
      ps.last_media = q;
      if (!ps.has_last_media) ps.first_media_at = now;
      ps.has_last_media = true;
    }
  } else {
    el.mp_sent.erase(packet.mp_seq);  // stale wrap-around entry
  }

  if (padding) {
    ++ps.stats.padding_packets;
  } else {
    ++ps.stats.packets_forwarded;
    ps.stats.bytes_forwarded += packet.wire_size();
  }
  transmit_(q.leg, path, std::move(packet));
}

void HubForwarder::ProcessPath(PathId path, PathState& ps, Timestamp now) {
  const Duration elapsed = now - last_process_;
  ps.pacing_rate = ps.cc.target_rate() * config_.pacing_factor;
  ps.budget_bytes += static_cast<double>(ps.pacing_rate.BytesIn(elapsed));
  ps.budget_bytes = std::min(
      ps.budget_bytes, static_cast<double>(config_.max_burst_bytes));
  if (config_.layers.enabled && config_.layers.alr_padding) {
    ps.pad_budget_bytes += static_cast<double>(
        (ps.cc.target_rate() * config_.layers.padding_target_factor)
            .BytesIn(elapsed));
    ps.pad_budget_bytes = std::min(
        ps.pad_budget_bytes, static_cast<double>(config_.max_burst_bytes));
  }

  const Duration backlog = ProjectedDelay(ps);
  ps.stats.max_queue_delay_ms =
      std::max(ps.stats.max_queue_delay_ms, backlog.seconds() * 1000.0);
  ps.stats.max_queue_bytes =
      std::max(ps.stats.max_queue_bytes, ps.queued_bytes);
  if (config_.layers.enabled) {
    const double backlog_ms =
        backlog.IsInfinite() ? 1000.0 : backlog.ms();
    ps.smoothed_delay_ms += std::min(1.0, elapsed.ms() / 250.0) *
                            (backlog_ms - ps.smoothed_delay_ms);
  }

  EvictForSpace(path, ps, now);

  while (true) {
    std::deque<Queued>* source =
        !ps.rtx_queue.empty() ? &ps.rtx_queue : &ps.queue;
    if (source->empty()) break;
    const int64_t size = source->front().packet.wire_size();
    if (ps.budget_bytes < static_cast<double>(size)) break;
    Queued q = std::move(source->front());
    source->pop_front();
    ps.queued_bytes -= size;
    ps.budget_bytes -= static_cast<double>(size);
    Emit(path, ps, std::move(q), now);
  }
  if (ps.queue.empty() && ps.rtx_queue.empty() && ps.budget_bytes > 0.0) {
    // Application-limited: pad up to the CC target with probe duplicates
    // of the last forwarded media packet so the estimator keeps seeing —
    // and probing above — a target-rate ack stream (see Layers docs).
    const Duration srtt = ps.cc.smoothed_rtt();
    if (!srtt.IsInfinite() && srtt < ps.min_srtt) ps.min_srtt = srtt;
    const bool gates_clean =
        (srtt.IsInfinite() || ps.min_srtt.IsInfinite() ||
         srtt - ps.min_srtt <= config_.layers.padding_delay_gate) &&
        ps.cc.loss_estimate() <= config_.layers.padding_loss_gate;
    if (!gates_clean) {
      ps.pad_clean_since = now;
      if (now >= ps.pad_resume) {
        // A probe just found the ceiling; re-probing immediately would
        // only rebuild the queue. Back off (exponentially per episode).
        ps.pad_backoff =
            ps.pad_backoff.IsZero()
                ? config_.layers.padding_backoff
                : std::min(ps.pad_backoff * 2,
                           config_.layers.padding_backoff_max);
        ps.pad_resume = now + ps.pad_backoff;
      }
    } else if (now < ps.pad_resume) {
      ps.pad_clean_since = now;  // still waiting out the backoff
    } else if (ps.pad_clean_since.IsFinite() && !ps.pad_backoff.IsZero() &&
               now - ps.pad_clean_since >= Duration::Seconds(3)) {
      ps.pad_backoff = Duration::Zero();  // sustained clean probe: reset
    }
    const bool warmed_up =
        ps.has_last_media &&
        now - ps.first_media_at >= config_.layers.padding_warmup;
    if (config_.layers.enabled && config_.layers.alr_padding && warmed_up &&
        gates_clean && now >= ps.pad_resume) {
      while (true) {
        const int64_t size = ps.last_media.packet.wire_size();
        if (ps.pad_budget_bytes < static_cast<double>(size) ||
            ps.budget_bytes < static_cast<double>(size)) {
          break;
        }
        Queued pad = ps.last_media;
        pad.packet.kind = PayloadKind::kProbe;
        pad.packet.is_probe_duplicate = true;
        pad.packet.priority = Priority::kNone;
        pad.packet.via_rtx = false;
        pad.enqueued = now;
        ps.budget_bytes -= static_cast<double>(size);
        Emit(path, ps, std::move(pad), now, /*padding=*/true);
      }
    }
    // Do not accumulate idle budget beyond one burst.
    ps.budget_bytes = std::min(ps.budget_bytes, 3000.0);
  }
  if (ps.pad_budget_bytes < 0.0) ps.pad_budget_bytes = 0.0;

  if (TraceRecorder* trace = TraceRecorder::Current()) {
    const int32_t tp = static_cast<int32_t>(path);
    trace->Counter(config_.trace_category, "queue_pkts", now,
                   static_cast<double>(ps.queue.size() +
                                       ps.rtx_queue.size()),
                   tp);
    trace->Counter(config_.trace_category, "queue_bytes", now,
                   static_cast<double>(ps.queued_bytes), tp);
    const Duration delay = ProjectedDelay(ps);
    trace->Counter(config_.trace_category, "queue_delay_ms", now,
                   delay.IsInfinite() ? -1.0 : delay.seconds() * 1000.0,
                   tp);
    trace->Counter(config_.trace_category, "target_kbps", now,
                   static_cast<double>(ps.cc.target_rate().bps()) / 1000.0,
                   tp);
  }

  CONVERGE_INVARIANT("HubForwarder", now, ps.queued_bytes >= 0,
                     "queued_bytes=" + std::to_string(ps.queued_bytes));
  CONVERGE_INVARIANT(
      "HubForwarder", now,
      !(ps.queue.empty() && ps.rtx_queue.empty()) || ps.queued_bytes == 0,
      "empty queues but queued_bytes=" + std::to_string(ps.queued_bytes));
  CONVERGE_INVARIANT(
      "HubForwarder", now,
      ps.budget_bytes <= static_cast<double>(config_.max_burst_bytes),
      "budget=" + std::to_string(ps.budget_bytes));
}

void HubForwarder::Process() {
  const Timestamp now = loop_->now();
  EvaluateLayerSelection(now);
  for (auto& [path, ps] : paths_) {
    ProcessPath(path, *ps, now);
  }
  last_process_ = now;
}

void HubForwarder::HandleNack(int leg, PathId report_path, const Nack& nack,
                              Timestamp now) {
  auto answer = [&](const RtpPacket& original, PathId target, int64_t flow,
                    uint16_t seq, bool tag_mp_hole) {
    const auto key = std::make_pair(flow, seq);
    auto rit = recent_rtx_.find(key);
    if (rit != recent_rtx_.end() &&
        now - rit->second < config_.rtx_dedup_window) {
      return;
    }
    auto tit = paths_.find(target);
    if (tit == paths_.end()) return;
    recent_rtx_[key] = now;
    while (recent_rtx_.size() > kRtxDedupCap) {
      recent_rtx_.erase(recent_rtx_.begin());
    }
    RtpPacket rtx = original;
    rtx.via_rtx = true;
    rtx.priority = Priority::kRetransmit;
    if (tag_mp_hole) {
      rtx.rtx_for_path = target;
      rtx.rtx_for_mp_seq = seq;
    } else {
      rtx.rtx_for_path = kInvalidPathId;
      rtx.rtx_for_mp_seq = 0;
    }
    PathState& tp = *tit->second;
    tp.queued_bytes += rtx.wire_size();
    ++tp.stats.rtx_answered;
    if (TraceRecorder* trace = TraceRecorder::Current()) {
      trace->Instant(config_.trace_category, "rtx_answered", now, static_cast<double>(seq),
                     static_cast<int32_t>(target), rtx.stream_id);
    }
    tp.rtx_queue.push_back({std::move(rtx), now, leg});
  };

  if (nack.ssrc != 0) {
    // Legacy NACK: (ssrc, media seq), answered on the path the packet
    // originally left on.
    for (uint16_t seq : nack.seqs) {
      auto it = legacy_sent_.find({{leg, nack.ssrc}, seq});
      if (it == legacy_sent_.end()) continue;
      answer(it->second.second, it->second.first,
             LegacyFlow(leg, nack.ssrc), seq, /*tag_mp_hole=*/false);
    }
  } else {
    // Converge NACK: (path, hub-stamped mp_seq) within this leg's space.
    auto pit = paths_.find(report_path);
    if (pit == paths_.end()) return;
    auto lit = pit->second->egress.find(leg);
    if (lit == pit->second->egress.end()) return;
    for (uint16_t seq : nack.seqs) {
      auto it = lit->second.mp_sent.find(seq);
      if (it == lit->second.mp_sent.end()) continue;  // hub drop or evicted
      answer(it->second, report_path, MpFlow(leg, report_path), seq,
             /*tag_mp_hole=*/true);
    }
  }
}

bool HubForwarder::OnReceiverRtcp(int leg, PathId path,
                                  const RtcpPacket& packet) {
  const Timestamp now = loop_->now();
  if (const auto* fb = std::get_if<TransportFeedback>(&packet.payload)) {
    auto pit = paths_.find(packet.path_id);
    if (pit != paths_.end()) {
      pit->second->cc.OnTransportFeedback(leg, *fb, now);
    }
    return true;
  }
  if (std::get_if<ReceiverReport>(&packet.payload) != nullptr) {
    // Consumed: the downlink loss branch is driven from transport
    // feedback (the RR's SR echo measures the origin's round trip, not
    // the hub's), and the origin hears about its uplink from the hub's
    // own feedback endpoint instead.
    return true;
  }
  if (const auto* nack = std::get_if<Nack>(&packet.payload)) {
    const PathId report_path =
        packet.path_id != kInvalidPathId ? packet.path_id : path;
    HandleNack(leg, report_path, *nack, now);
    return true;
  }
  return false;
}

std::vector<PathId> HubForwarder::path_ids() const {
  std::vector<PathId> ids;
  ids.reserve(paths_.size());
  for (const auto& [path, ps] : paths_) ids.push_back(path);
  return ids;
}

DataRate HubForwarder::downlink_target(PathId path) const {
  return Path(path).cc.target_rate();
}
Duration HubForwarder::downlink_srtt(PathId path) const {
  return Path(path).cc.smoothed_rtt();
}
double HubForwarder::downlink_loss(PathId path) const {
  return Path(path).cc.loss_estimate();
}
Duration HubForwarder::queue_delay(PathId path) const {
  return ProjectedDelay(Path(path));
}
int64_t HubForwarder::queued_bytes(PathId path) const {
  return Path(path).queued_bytes;
}
const HubForwarder::DownlinkStats& HubForwarder::stats(PathId path) const {
  return Path(path).stats;
}
const DownlinkCc& HubForwarder::cc(PathId path) const {
  return Path(path).cc;
}

int HubForwarder::selected_rung(int leg, int stream_id) const {
  auto it = gates_.find({leg, stream_id});
  return it == gates_.end() ? 0 : it->second.current;
}

int HubForwarder::max_selected_rung() const {
  int deepest = 0;
  for (const auto& [key, g] : gates_) {
    if (g.num_rungs > 1) deepest = std::max(deepest, g.current);
  }
  return deepest;
}

}  // namespace converge
