#include "session/sender.h"

#include <algorithm>
#include <string>
#include <utility>

#include "schedulers/path_stats.h"
#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {

Sender::Sender(EventLoop* loop, Config config, Scheduler* scheduler,
               FecController* fec, std::vector<PathId> path_ids, Random rng,
               TransmitRtpFn transmit_rtp, TransmitRtcpFn transmit_rtcp)
    : loop_(loop),
      config_(std::move(config)),
      scheduler_(scheduler),
      fec_(fec),
      rng_(rng),
      transmit_rtp_(std::move(transmit_rtp)),
      transmit_rtcp_(std::move(transmit_rtcp)),
      path_ids_(std::move(path_ids)) {
  for (PathId id : path_ids_) {
    PathState& st = paths_[id];
    CcConfig cc_config = config_.cc;
    cc_config.trace_path = static_cast<int>(id);
    st.cc = MakeCcController(cc_config);
    Pacer::Config pacer_config = config_.pacer;
    pacer_config.trace_path = static_cast<int>(id);
    st.pacer = std::make_unique<Pacer>(
        loop_, pacer_config,
        [this, id](RtpPacket&& packet) { DispatchPacket(id, std::move(packet)); });
    st.pacer->SetRate(config_.cc.start_rate);
  }
  for (size_t i = 0; i < config_.streams.size(); ++i) {
    const StreamConfig& sc = config_.streams[i];
    StreamState stream;
    stream.encoder =
        std::make_unique<Encoder>(sc.encoder, rng_.Fork());
    Packetizer::Config pconf = sc.packetizer;
    pconf.ssrc = sc.ssrc;
    stream.packetizer = std::make_unique<Packetizer>(pconf);
    Camera::Config cconf = sc.camera;
    cconf.stream_id = static_cast<int>(i);
    stream.camera = std::make_unique<Camera>(
        loop_, cconf, rng_.Fork(),
        [this, i](const RawFrame& raw) { OnCameraFrame(i, raw); });
    streams_.push_back(std::move(stream));
  }
}

Sender::~Sender() = default;

void Sender::Start() {
  for (StreamState& s : streams_) s.camera->Start();
  tick_task_ = std::make_unique<RepeatingTask>(loop_, config_.tick_interval,
                                               [this] { Tick(); });
  sr_task_ = std::make_unique<RepeatingTask>(
      loop_, config_.sr_interval, [this] { SendSenderReports(); });
  sdes_task_ = std::make_unique<RepeatingTask>(loop_, config_.sdes_interval,
                                               [this] { SendSdes(); });
  SendSdes();
}

void Sender::Stop() {
  for (StreamState& s : streams_) s.camera->Stop();
  tick_task_.reset();
  sr_task_.reset();
  sdes_task_.reset();
}

std::vector<DataRate> Sender::AllocatedRates() const {
  std::vector<PathCcSnapshot> snapshots;
  snapshots.reserve(path_ids_.size());
  for (PathId id : path_ids_) {
    const PathState& st = paths_.at(id);
    PathCcSnapshot snap;
    snap.target = st.cc->target_rate();
    snap.goodput = st.cc->goodput();
    snap.srtt = st.cc->smoothed_rtt();
    snap.loss = st.cc->loss_estimate();
    snapshots.push_back(snap);
  }
  return CoupleRates(config_.cc_coupling, snapshots, config_.cc.min_rate);
}

std::vector<PathInfo> Sender::BuildPathInfos() const {
  const std::vector<DataRate> allocated = AllocatedRates();
  std::vector<PathInfo> infos;
  infos.reserve(path_ids_.size());
  for (size_t i = 0; i < path_ids_.size(); ++i) {
    const PathId id = path_ids_[i];
    const PathState& st = paths_.at(id);
    PathInfo info;
    info.id = id;
    info.allocated_rate = allocated[i];
    info.srtt = st.cc->smoothed_rtt();
    info.loss = st.cc->loss_estimate();
    info.goodput = st.cc->goodput();
    info.pacer_queue_bytes = st.pacer->queue_bytes();
    info.pacer_queue_delay = st.pacer->QueueDelay();
    infos.push_back(info);
  }
  return infos;
}

double Sender::AggregateLoss() const {
  // Rate-weighted loss across paths: what application-level (WebRTC-style)
  // FEC keys on (§3.3).
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& [id, st] : paths_) {
    const double rate = static_cast<double>(st.cc->target_rate().bps());
    weighted += st.cc->loss_estimate() * rate;
    total += rate;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

void Sender::OnCameraFrame(size_t stream_index, const RawFrame& raw) {
  StreamState& stream = streams_[stream_index];
  // One EncodedFrame per simulcast rung (exactly one for the historical
  // single-layer config), all sharing the capture's frame_id. Each rung is
  // packetized, scheduled, and FEC-protected independently so a hub can
  // forward any one of them without touching the others.
  const std::vector<EncodedFrame> rungs = stream.encoder->EncodeLayered(raw);
  ++stats_.frames_encoded;
  if (!rungs.empty() && rungs.front().kind == FrameKind::kKey) {
    ++stats_.keyframes_encoded;
    stream.last_keyframe_encoded = loop_->now();
  }
  for (const EncodedFrame& frame : rungs) SendEncodedFrame(stream, frame);
}

void Sender::SendEncodedFrame(StreamState& stream,
                              const EncodedFrame& frame) {
  std::vector<RtpPacket> packets = stream.packetizer->Packetize(frame);
  for (RtpPacket& p : packets) p.qp = frame.qp;

  const std::vector<PathInfo> infos = BuildPathInfos();
  const std::vector<PathId> assignment =
      scheduler_->AssignFrame(packets, infos);

  CONVERGE_INVARIANT("Scheduler", loop_->now(),
                     assignment.size() == packets.size(),
                     scheduler_->name() + " assigned " +
                         std::to_string(assignment.size()) + " of " +
                         std::to_string(packets.size()));
  if (InvariantRegistry::enabled()) {
    for (PathId id : assignment) {
      if (id == kInvalidPathId) continue;  // explicit blackout is legal
      // A scheduler must never place media on a path it itself flags dead.
      CONVERGE_INVARIANT("Scheduler", loop_->now(),
                         paths_.count(id) > 0 && scheduler_->IsPathActive(id),
                         scheduler_->name() + " picked path " +
                             std::to_string(id));
    }
  }

  // Group media by destination path for per-path FEC (§4.3).
  std::map<PathId, std::vector<const RtpPacket*>> per_path;
  for (size_t i = 0; i < packets.size(); ++i) {
    const PathId path = assignment[i];
    if (path == kInvalidPathId) continue;  // blackout (CM) — not sent
    per_path[path].push_back(&packets[i]);
  }

  if (TraceRecorder* trace = TraceRecorder::Current()) {
    // The per-frame split decision: one counter per destination path (paths
    // assigned nothing this frame report zero so their series stays dense),
    // plus one instant carrying the frame's packet count and kind.
    for (PathId id : path_ids_) {
      auto it = per_path.find(id);
      const double share =
          it != per_path.end() ? static_cast<double>(it->second.size()) : 0.0;
      trace->Counter("scheduler", "split_pkts", loop_->now(), share,
                     static_cast<int32_t>(id));
    }
    trace->Instant("scheduler", "frame_assigned", loop_->now(),
                   static_cast<double>(packets.size()), -1,
                   static_cast<int32_t>(frame.stream_id),
                   frame.kind == FrameKind::kKey ? 1.0 : 0.0);
  }

  // Send media packets.
  for (size_t i = 0; i < packets.size(); ++i) {
    const PathId path = assignment[i];
    if (path == kInvalidPathId) continue;
    ++stats_.media_packets_sent;
    stats_.media_bytes_sent += packets[i].wire_size();
    DispatchToPacer(path, packets[i]);
  }

  // Per-path FEC generation (§4.3). Parity covers a sliding window of the
  // path's recent media for this stream: at low loss the controller emits a
  // parity packet only every few frames, and covering the whole interval
  // keeps FEC utilization high (one parity packet guards ~1/l_i packets).
  if (config_.enable_fec && fec_ != nullptr) {
    const double aggregate = AggregateLoss();
    for (auto& [path, media] : per_path) {
      auto pit = paths_.find(path);
      const double path_loss =
          pit != paths_.end() ? pit->second.cc->loss_estimate() : 0.0;
      const int n_fec = fec_->NumFecPackets(
          static_cast<int>(media.size()), frame.kind, path, path_loss,
          aggregate);
      // Every controller caps parity at the media count it protects; more
      // would mean FEC overhead above 100% of the frame's share.
      CONVERGE_INVARIANT("FecController", loop_->now(),
                         n_fec >= 0 && n_fec <= static_cast<int>(media.size()),
                         "n_fec=" + std::to_string(n_fec) +
                             " media=" + std::to_string(media.size()) +
                             " path=" + std::to_string(path));

      auto& window = fec_window_[{path, frame.stream_id, frame.spatial_id}];
      for (const RtpPacket* p : media) window.push_back(*p);
      while (window.size() > kFecWindowPackets) window.pop_front();

      if (n_fec > 0) {
        std::vector<const RtpPacket*> covered;
        covered.reserve(window.size());
        for (const RtpPacket& p : window) covered.push_back(&p);
        std::vector<RtpPacket> parity =
            XorFecEncoder::Generate(covered, n_fec, next_fec_block_++);
        for (RtpPacket& fp : parity) {
          fp.seq = stream.next_fec_seq++;
          fp.qp = frame.qp;
          const PathId target = scheduler_->ChooseFecPath(fp, path, infos);
          if (target == kInvalidPathId) continue;
          ++stats_.fec_packets_sent;
          stats_.fec_bytes_sent += fp.wire_size();
          DispatchToPacer(target, fp);
        }
        window.clear();
      }
      fec_->OnFrameSent(path, static_cast<int>(media.size()), n_fec);
    }
  }
}

void Sender::DispatchToPacer(PathId path, const RtpPacket& packet) {
  auto it = paths_.find(path);
  if (it == paths_.end()) return;
  RtpPacket copy = packet;
  copy.path_id = path;
  it->second.pacer->Enqueue(std::move(copy));
}

void Sender::DispatchPacket(PathId path, RtpPacket packet) {
  PathState& st = paths_.at(path);
  packet.send_time = loop_->now();
  // Multipath sequence numbers are stamped at pacer *output* so the on-wire
  // order per path is strictly sequential even when retransmissions jump
  // the pacer queue (otherwise the receiver would read reordering as loss).
  packet.mp_seq = st.next_mp_seq++;
  packet.mp_transport_seq = st.next_mp_transport_seq++;

  // Transport feedback bookkeeping. Transport seqs are assigned
  // monotonically per path, so unwrapping against the newest entry is exact.
  int64_t unwrapped = packet.mp_transport_seq;
  if (st.last_sent_seq >= 0) {
    const int64_t last = st.last_sent_seq;
    unwrapped = last + static_cast<int16_t>(static_cast<uint16_t>(
                           packet.mp_transport_seq -
                           static_cast<uint16_t>(last & 0xFFFF)));
  }
  st.RecordSent(unwrapped, packet.send_time, packet.wire_size());

  // Retransmission history, keyed by the per-path sequence NACKs reference.
  // Only media-like packets are retransmittable (FEC and probes are not
  // worth recovering); the 16-bit key bounds the map, wrap overwrites.
  const bool media_like = packet.kind == PayloadKind::kMedia ||
                          packet.kind == PayloadKind::kPps ||
                          packet.kind == PayloadKind::kSps;
  if (media_like) {
    st.mp_sent[packet.mp_seq] = packet;
    if (!packet.via_rtx) {
      ssrc_sent_[{packet.ssrc, packet.seq}] = {packet, path};
      while (ssrc_sent_.size() > config_.rtx_history) {
        ssrc_sent_.erase(ssrc_sent_.begin());
      }
    }
  } else {
    st.mp_sent.erase(packet.mp_seq);  // stale wrap-around entry
  }

  if (media_like) {
    // Min-srtt path computed directly (strict less, first wins, in
    // path_ids_ order — exactly MinSrttPath over BuildPathInfos()) so the
    // per-packet hot path does not materialize a PathInfo vector just for
    // this lookup.
    PathId fast = kInvalidPathId;
    Duration best_srtt = Duration::Zero();
    for (PathId id : path_ids_) {
      const Duration srtt = paths_.at(id).cc->smoothed_rtt();
      if (fast == kInvalidPathId || srtt < best_srtt) {
        fast = id;
        best_srtt = srtt;
      }
    }
    if (path == fast) last_fast_packet_ = packet;
  }

  transmit_rtp_(path, std::move(packet));
}

void Sender::Tick() {
  const Timestamp now = loop_->now();
  std::vector<PathInfo> infos = BuildPathInfos();
  scheduler_->OnTick(infos, now);

  // Per-path pacing rates and the aggregate encoder target (§4.1): the
  // encoder runs at min(sum of active path rates, application max). Rates
  // go through the coupling strategy first; under kUncoupled they are
  // exactly each controller's own target.
  const std::vector<DataRate> allocated = AllocatedRates();
  DataRate total = DataRate::Zero();
  for (size_t i = 0; i < path_ids_.size(); ++i) {
    const PathId id = path_ids_[i];
    PathState& st = paths_.at(id);
    const DataRate rate = allocated[i];
    st.pacer->SetRate(std::max(rate, DataRate::KilobitsPerSec(100)));
    if (scheduler_->IsPathActive(id)) total += rate;
  }
  encoder_target_ = std::min(total, config_.max_total_rate);

  // Encoder pushback: if any active path's pacer backlog grows, throttle
  // the encoder below the nominal aggregate until the queue drains (WebRTC's
  // pacer-queue signal into the bitrate allocator).
  Duration worst_queue = Duration::Zero();
  for (PathId id : path_ids_) {
    if (!scheduler_->IsPathActive(id)) continue;
    worst_queue = std::max(worst_queue, paths_.at(id).pacer->QueueDelay());
  }
  if (worst_queue > Duration::Millis(100) && !worst_queue.IsInfinite()) {
    const double factor = std::clamp(100.0 / worst_queue.ms(), 0.3, 1.0);
    encoder_target_ = encoder_target_ * factor;
  }

  const DataRate per_stream =
      encoder_target_ / static_cast<int64_t>(std::max<size_t>(1, streams_.size()));
  for (StreamState& s : streams_) s.encoder->SetTargetRate(per_stream);

  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Counter("sender", "encoder_target_kbps", now,
                   static_cast<double>(encoder_target_.bps()) / 1000.0);
  }

  // Probe disabled paths with duplicated fast-path packets (§4.2).
  for (PathId path : scheduler_->PathsNeedingProbe(now)) {
    if (!last_fast_packet_.has_value()) break;
    RtpPacket probe = *last_fast_packet_;
    probe.is_probe_duplicate = true;
    probe.kind = PayloadKind::kProbe;
    probe.priority = Priority::kNone;
    ++stats_.probe_packets_sent;
    DispatchToPacer(path, probe);
  }
}

void Sender::SendSenderReports() {
  for (PathId id : path_ids_) {
    PathState& st = paths_.at(id);
    st.last_sr_sent = loop_->now();
    RtcpPacket rtcp;
    rtcp.path_id = id;
    SenderReport sr;
    sr.ssrc = streams_.empty() ? 0 : config_.streams.front().ssrc;
    sr.send_time = loop_->now();
    sr.packet_count = static_cast<uint32_t>(stats_.media_packets_sent);
    rtcp.payload = sr;
    transmit_rtcp_(id, rtcp);
  }
}

void Sender::SendSdes() {
  // Announce the expected frame rate so the receiver can derive IFD_exp.
  const std::vector<PathInfo> infos = BuildPathInfos();
  const PathId fast = MinSrttPath(infos);
  if (fast == kInvalidPathId) return;
  for (size_t i = 0; i < streams_.size(); ++i) {
    RtcpPacket rtcp;
    rtcp.path_id = fast;
    SdesFrameRate sdes;
    sdes.ssrc = config_.streams[i].ssrc;
    sdes.fps = streams_[i].camera->fps();
    rtcp.payload = sdes;
    transmit_rtcp_(fast, rtcp);
  }
}

void Sender::HandleRtcp(const RtcpPacket& packet, Timestamp arrival) {
  const PathId path_id = packet.path_id;
  auto pit = paths_.find(path_id);

  if (const auto* rr = std::get_if<ReceiverReport>(&packet.payload)) {
    if (pit == paths_.end()) return;
    Duration rtt = Duration::Zero();
    if (rr->last_sr_time.IsFinite()) {
      rtt = arrival - rr->last_sr_time - rr->delay_since_last_sr;
      if (rtt < Duration::Zero()) rtt = Duration::Zero();
    }
    pit->second.cc->OnReceiverReport(rr->fraction_lost, rtt, arrival);
  } else if (const auto* fb =
                 std::get_if<TransportFeedback>(&packet.payload)) {
    HandleTransportFeedback(*fb, path_id, arrival);
  } else if (const auto* nack = std::get_if<Nack>(&packet.payload)) {
    HandleNack(*nack, path_id);
  } else if (const auto* pli =
                 std::get_if<KeyframeRequest>(&packet.payload)) {
    for (size_t i = 0; i < config_.streams.size(); ++i) {
      if (config_.streams[i].ssrc != pli->ssrc) continue;
      // Debounce: a keyframe encoded moments ago is likely still in
      // flight; re-keying would only burn bandwidth.
      if (streams_[i].last_keyframe_encoded.IsFinite() &&
          arrival - streams_[i].last_keyframe_encoded <
              Duration::Millis(500)) {
        continue;
      }
      streams_[i].encoder->RequestKeyframe();
    }
  } else if (const auto* qoe = std::get_if<QoeFeedback>(&packet.payload)) {
    scheduler_->OnQoeFeedback(*qoe);
  }
}

void Sender::HandleTransportFeedback(const TransportFeedback& feedback,
                                     PathId path_id, Timestamp now) {
  auto pit = paths_.find(path_id);
  if (pit == paths_.end()) return;
  PathState& st = pit->second;

  std::vector<PacketResult> results;
  results.reserve(feedback.arrivals.size());
  for (const TransportFeedback::Arrival& a : feedback.arrivals) {
    const SentRecord* rec = st.FindSent(a.mp_transport_seq);
    if (rec == nullptr) continue;
    PacketResult r;
    r.transport_seq = a.mp_transport_seq;
    r.send_time = rec->send_time;
    r.bytes = rec->bytes;
    r.received = a.recv_time.IsFinite();
    r.recv_time = a.recv_time;
    results.push_back(r);
  }
  st.cc->OnTransportFeedback(results, now);
}

void Sender::HandleNack(const Nack& nack, PathId report_path) {
  const std::vector<PathInfo> infos = BuildPathInfos();
  std::map<PathId, int> losses_per_path;

  auto retransmit = [&](const RtpPacket& original, PathId origin,
                        int64_t dedup_flow, uint16_t dedup_seq,
                        bool tag_mp_hole) {
    const auto key = std::make_pair(dedup_flow, dedup_seq);
    // De-duplicate: the receiver sends NACKs on every live path.
    auto rit = recent_rtx_.find(key);
    if (rit != recent_rtx_.end() &&
        loop_->now() - rit->second < Duration::Millis(40)) {
      return;
    }
    RtpPacket rtx = original;
    rtx.via_rtx = true;
    rtx.priority = Priority::kRetransmit;
    if (tag_mp_hole) {
      rtx.rtx_for_path = static_cast<PathId>(dedup_flow);
      rtx.rtx_for_mp_seq = dedup_seq;
    }
    const PathId target = scheduler_->ChooseRtxPath(rtx, infos);
    if (target == kInvalidPathId) return;
    ++stats_.rtx_packets_sent;
    recent_rtx_[key] = loop_->now();
    if (recent_rtx_.size() > 4096) recent_rtx_.erase(recent_rtx_.begin());
    ++losses_per_path[origin];
    DispatchToPacer(target, rtx);
  };

  if (nack.ssrc != 0) {
    // Legacy NACK: (ssrc, media seq). Reordering across paths produces
    // spurious entries here — the retransmissions are simply wasted.
    for (uint16_t seq : nack.seqs) {
      auto it = ssrc_sent_.find({nack.ssrc, seq});
      if (it == ssrc_sent_.end()) continue;
      retransmit(it->second.first, it->second.second,
                 static_cast<int64_t>(nack.ssrc), seq, /*tag_mp_hole=*/false);
    }
  } else {
    // Converge NACK: (path, mp_seq); the reported path is where the
    // per-path FIFO sequence space had a gap.
    auto pit = paths_.find(report_path);
    if (pit == paths_.end()) return;
    PathState& st = pit->second;
    for (uint16_t mp_seq : nack.seqs) {
      auto it = st.mp_sent.find(mp_seq);
      if (it == st.mp_sent.end()) continue;  // FEC/probe or history evicted
      retransmit(it->second, report_path, report_path, mp_seq,
                 /*tag_mp_hole=*/true);
    }
  }
  if (fec_ != nullptr) {
    for (const auto& [path, count] : losses_per_path) {
      fec_->OnNack(path, count);
    }
  }
}

DataRate Sender::path_rate(PathId path) const {
  auto it = paths_.find(path);
  return it == paths_.end() ? DataRate::Zero() : it->second.cc->target_rate();
}

Duration Sender::path_srtt(PathId path) const {
  auto it = paths_.find(path);
  return it == paths_.end() ? Duration::Zero() : it->second.cc->smoothed_rtt();
}

double Sender::path_loss(PathId path) const {
  auto it = paths_.find(path);
  return it == paths_.end() ? 0.0 : it->second.cc->loss_estimate();
}

}  // namespace converge
