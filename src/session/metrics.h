// QoE metrics (§2.1, §6): frame rate, freeze duration, E2E latency, media
// throughput, QP/PSNR, plus the FEC overhead/utilization and frame-drop /
// keyframe-request counters the paper's tables report. Also records
// per-second time series for the figure benches.
#pragma once

#include <map>
#include <vector>

#include "sim/event_loop.h"
#include "util/stats.h"
#include "video/frame.h"

namespace converge {

// One row of the per-second time series (Figures 9/11/16).
struct SecondSample {
  double t_s = 0.0;
  double tput_mbps = 0.0;   // received media rate
  double fps = 0.0;         // rendered frames in the second
  double e2e_ms = 0.0;      // mean E2E latency of the second's frames
  double ifd_ms = 0.0;      // mean inter-frame delay
  double fcd_ms = 0.0;      // mean frame construction delay
};

// Aggregated QoE for one camera stream.
struct StreamQoe {
  double avg_fps = 0.0;
  double freeze_total_ms = 0.0;
  // Frozen fraction of the stream's *active* interval: a late joiner's 500ms
  // freeze over a 4s membership is 0.125, not 500ms over the full call.
  double freeze_ratio = 0.0;
  int64_t freeze_count = 0;
  double e2e_mean_ms = 0.0;
  double e2e_p95_ms = 0.0;
  double e2e_std_ms = 0.0;
  // Decoded-video goodput: bytes of frames that actually rendered. Raw
  // received media that never became a frame (the multipath variants'
  // failure mode, §2.3) does not count.
  double tput_mbps = 0.0;
  double received_mbps = 0.0;  // raw media arrival rate, for reference
  double qp_mean = 0.0;
  double psnr_mean_db = 0.0;
  int64_t frames_decoded = 0;
  int64_t frame_drops = 0;
  int64_t keyframe_requests = 0;
};

// Shared accumulators behind every mean/total-over-streams convenience
// aggregate (CallStats::Avg*, per-participant QoE in ConferenceStats) — one
// definition instead of a copy-pasted loop per field. Accumulation order is
// the stream order, so the doubles stay bit-identical with the historical
// per-field loops.
double MeanOverStreams(const std::vector<StreamQoe>& streams,
                       double StreamQoe::*field);
double SumOverStreams(const std::vector<StreamQoe>& streams,
                      double StreamQoe::*field);
// Pointer-vector forms for aggregations that gather streams across legs
// without copying (ConferenceStats).
double MeanOverStreams(const std::vector<const StreamQoe*>& streams,
                       double StreamQoe::*field);
double SumOverStreams(const std::vector<const StreamQoe*>& streams,
                      double StreamQoe::*field);

class MetricsCollector {
 public:
  struct Config {
    Duration freeze_threshold = Duration::Millis(200);
    Duration expected_frame_interval = Duration::Millis(33);
    int num_streams = 1;
  };

  MetricsCollector(EventLoop* loop, Config config);

  // --- event inputs ---
  void OnDecodedFrame(const DecodedFrame& frame);
  void OnMediaBytesReceived(int stream_id, int64_t bytes);
  void OnFrameGatheredDelays(Duration fcd, Duration ifd);

  // Call once at the end of the run; sets drop/request counters measured by
  // the receiver pipeline.
  void SetReceiverCounters(int stream_id, int64_t frame_drops,
                           int64_t keyframe_requests);

  // Cancels the per-second / display-rate sampling tasks; called when the
  // observed participant leaves the call mid-run. Results remain queryable.
  void Stop();

  // --- outputs ---
  // Interval-aware results: rates (fps, tput), the freeze ratio, and the
  // tail-freeze close-out are normalized over [start, end) — the observed
  // leg's actual membership window — rather than the whole call. The
  // Duration overloads are the historical whole-call forms and delegate with
  // [Zero, Zero + call_length), bit-identically.
  StreamQoe StreamResult(int stream_id, Timestamp start, Timestamp end) const;
  StreamQoe StreamResult(int stream_id, Duration call_length) const {
    return StreamResult(stream_id, Timestamp::Zero(),
                        Timestamp::Zero() + call_length);
  }
  std::vector<StreamQoe> AllStreams(Timestamp start, Timestamp end) const;
  std::vector<StreamQoe> AllStreams(Duration call_length) const {
    return AllStreams(Timestamp::Zero(), Timestamp::Zero() + call_length);
  }
  const std::vector<SecondSample>& time_series() const { return series_; }
  const SampleSet& e2e_samples(int stream_id) const;
  // Display-rate PSNR samples (stale frames degrade, §6 Fig 15 CDF).
  const SampleSet& psnr_samples(int stream_id) const;

 private:
  struct StreamState {
    SampleSet e2e_ms;
    SampleSet psnr_db;
    RunningStat qp;
    int64_t frames = 0;
    int64_t media_bytes = 0;
    int64_t decoded_bytes = 0;
    double freeze_total_ms = 0.0;
    int64_t freeze_count = 0;
    Timestamp last_render = Timestamp::MinusInfinity();
    double last_psnr = 0.0;
    int64_t stale_ticks = 0;
  };

  void SecondTick();
  void DisplayTick();

  EventLoop* loop_;
  Config config_;
  std::map<int, StreamState> streams_;
  std::map<int, std::pair<int64_t, int64_t>> receiver_counters_;

  // Per-second accumulation.
  std::vector<SecondSample> series_;
  int64_t sec_bytes_ = 0;
  int64_t sec_frames_ = 0;
  RunningStat sec_e2e_;
  RunningStat sec_ifd_;
  RunningStat sec_fcd_;

  std::unique_ptr<RepeatingTask> second_task_;
  std::unique_ptr<RepeatingTask> display_task_;
};

}  // namespace converge
