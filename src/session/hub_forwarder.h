// Per-receiver forwarding engine for the star (SFU) hub.
//
// PR 4's hub forwarded every uplink packet straight onto the matching
// downlink path, so downlinks had to be provisioned for the aggregate
// sender rate. This class closes that gap: the hub runs one congestion
// loop (DownlinkCc) and one frame-aware paced queue per (receiver, path)
// downlink, thins whole frames deterministically when a downlink cannot
// carry the aggregate, answers downlink NACKs from local history, and
// relays a PLI upstream whenever a drop breaks a stream's dependency
// chain. Forwarded rate therefore converges to
// min(uplink inflow, downlink estimate) per receiver.
//
// Sequence-space ownership: the hub re-stamps mp_seq and mp_transport_seq
// per (origin leg, path) at queue *output* (mirroring Pacer/Sender), so
// each downlink sees a gap-free per-path sequence space even when the hub
// deliberately drops frames — receivers never NACK-chase hub drops, and
// per-leg transport feedback never misreads another leg's packets as
// losses. The per-SSRC media `seq` is left untouched, which keeps FEC
// recovery metadata valid end-to-end.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cc/downlink_cc.h"
#include "rtp/rtcp.h"
#include "rtp/rtp_packet.h"
#include "sim/event_loop.h"
#include "util/time.h"

namespace converge {

class HubForwarder {
 public:
  struct Config {
    Duration process_interval = Duration::Millis(5);
    double pacing_factor = 1.25;
    int64_t max_burst_bytes = 20'000;
    // Ingress layer selection: while the worst downlink path's projected
    // queue delay exceeds this, newly arriving delta frames are dropped
    // whole (the stream's dependency chain is then gated until the next
    // keyframe). Thinning breaks the GOP and costs a PLI round trip
    // (debounced by pli_min_interval below), so this sits well above the
    // GCC's delay-based operating point: on a persistently constrained
    // downlink each admitted burst must be large enough to amortise the
    // gate-closed dead time, or goodput degenerates to keyframe-rate.
    Duration thin_queue_delay = Duration::Millis(350);
    // Egress drop policy: above this the oldest queued non-key frame is
    // evicted whole; keyframes are only shed beyond twice this bound.
    Duration drop_queue_delay = Duration::Millis(600);
    // Debounce for upstream PLI relays, per (leg, stream).
    Duration pli_min_interval = Duration::Millis(500);
    // De-duplicates NACK answers (receivers duplicate critical feedback
    // on every live path).
    Duration rtx_dedup_window = Duration::Millis(40);
    size_t legacy_rtx_history = 4096;
    // Template for each path's congestion loop; trace_path is overridden
    // per path.
    DownlinkCc::Config cc;
    // Flight-recorder category for this engine's queue/thinning probes.
    // Receiver-facing downlink forwarders keep the historical "hub";
    // inter-hub trunk engines run under "hub_trunk" so a trace separates
    // the two hops of a cascaded forward. Must outlive the forwarder
    // (string literals only).
    const char* trace_category = "hub";
    // Per-subscriber simulcast-rung selection (the production-SFU behaviour
    // the Zoom/Webex/Meet measurement study documents). When enabled and
    // the origin publishes layered media, the hub subscribes each (origin
    // leg, stream) to exactly one rung sized to the aggregate downlink CC
    // budget instead of thinning whole frames: every frame_id still goes
    // downstream (at a lower rung), so a constrained receiver keeps full
    // fps. Selections are hysteretic (upswitches need sustained headroom)
    // and keyframe-gated (a switch commits on the next keyframe, which the
    // hub requests via a debounced PLI relay). Whole-frame thinning remains
    // as the overload backstop below the lowest rung. Receiver-facing
    // engines only; trunk engines forward all rungs for downstream hubs.
    struct Layers {
      bool enabled = false;
      // Selected rung must fit inside headroom * aggregate target.
      double headroom = 0.85;
      // Upswitch hysteresis: the higher rung must also fit inside
      // headroom * upswitch_margin, and the current selection must have
      // dwelled at least min_dwell.
      double upswitch_margin = 0.8;
      Duration min_dwell = Duration::Seconds(2);
      // Cadence of selection re-evaluation and per-rung rate estimation.
      Duration eval_interval = Duration::Millis(250);
      // Blend of the newest windowed rate into the per-rung estimate.
      // Asymmetric: growth is tracked almost instantly (a rung outgrowing
      // the budget must trigger the downswitch before the path chokes),
      // decay uses the slower `rate_alpha` (upswitches stay hysteretic).
      double rate_alpha = 0.5;
      double rate_alpha_up = 0.9;
      // A deficit against the capacity belief must persist this many
      // consecutive evals before a downswitch fires (one keyframe can
      // inflate a single window's rung estimate); a sustained smoothed
      // backlog beyond emergency_queue_delay overrides the confirmation
      // and switches immediately.
      int downswitch_confirm_evals = 2;
      Duration emergency_queue_delay = Duration::Millis(30);
      // Application-limited padding. Forwarding only the selected rung
      // leaves the downlink CC blind above the forwarded rate (its
      // acked-rate ceiling pins the target just above what was sent), so
      // after a downswitch the budget could never grow back to admit the
      // higher rung. When the paced queue drains with budget to spare,
      // the hub pads the path with probe duplicates up to the CC target —
      // the receiver acks them in transport feedback but drops them
      // before frame assembly — letting the estimator keep probing for
      // real headroom exactly like WebRTC ALR padding.
      bool alr_padding = true;
      // Padding fills to this fraction of the target, not all of it: the
      // CC equilibrium then puts the actual send rate at the link's edge
      // instead of past it, so capacity discovery costs far fewer
      // overuse/backoff cycles on a saturated path.
      double padding_target_factor = 0.9;
      // Padding is expendable: it pauses while the path's loss estimate
      // sits above this gate, so probing a constrained link to its knee
      // costs padding packets first and media only briefly. Without the
      // gate a droptail bottleneck is held at GCC's loss plateau and the
      // media stream eats a continuous slice of that loss.
      double padding_loss_gate = 0.02;
      // Same idea on the delay axis, and earlier: padding also pauses
      // while the path's smoothed RTT sits more than this above the
      // minimum it has observed (a building bottleneck queue inflates
      // RTT long before a droptail queue starts dropping).
      Duration padding_delay_gate = Duration::Millis(25);
      // A gate trip means the last probe found the path's ceiling, so
      // re-probing immediately would just rebuild the same queue. Probing
      // episodes back off exponentially between padding_backoff and
      // padding_backoff_max; a probe that stays clean for a few seconds
      // resets the backoff (genuinely uncongested paths pad continuously
      // and never enter this ladder).
      Duration padding_backoff = Duration::Seconds(1);
      Duration padding_backoff_max = Duration::Seconds(8);
      // No padding until the path has carried media this long. At call
      // start the CC target is an optimistic guess, min_srtt is unknown
      // (so the delay gate cannot trip), and the encoder is still
      // ramping — padding straight to the guessed target floods a
      // constrained downlink and freezes first-second media behind the
      // probe queue. By the end of the warm-up the estimator has real
      // feedback and the gates are armed.
      Duration padding_warmup = Duration::Seconds(2);
    };
    Layers layers;
  };

  // Highest rung index the selection engine tracks (wire field is 4 bits;
  // practical simulcast ladders stop at 4 rungs).
  static constexpr int kMaxRungs = 4;

  // Cumulative per-(receiver, path) accounting, surfaced via
  // ConferenceStats::Downlink.
  struct DownlinkStats {
    int64_t packets_forwarded = 0;
    int64_t bytes_forwarded = 0;
    int64_t frames_thinned = 0;  // whole frames dropped at ingress
    int64_t frames_evicted = 0;  // whole frames evicted from the queue
    int64_t packets_dropped = 0; // packets inside thinned/evicted frames
    int64_t rtx_answered = 0;
    int64_t plis_relayed = 0;
    int64_t max_queue_bytes = 0;
    double max_queue_delay_ms = 0.0;
    // Layered forwarding: rung switches committed at a keyframe, and
    // packets of unsubscribed rungs filtered at ingress (deliberate
    // selection, not loss — disjoint from packets_dropped).
    int64_t layer_switches = 0;
    int64_t layer_packets_filtered = 0;
    int64_t padding_packets = 0;  // ALR probe duplicates (layered only)
  };

  // Delivers a stamped packet onto the downlink: (origin leg, path, packet).
  using TransmitFn = std::function<void(int, PathId, RtpPacket)>;
  // Relays a keyframe request upstream to `leg`'s origin for `ssrc`,
  // describing downlink path `path`.
  using PliFn = std::function<void(int, uint32_t, PathId)>;

  HubForwarder(EventLoop* loop, Config config,
               const std::vector<PathId>& paths, TransmitFn transmit,
               PliFn relay_pli);
  ~HubForwarder();
  HubForwarder(const HubForwarder&) = delete;
  HubForwarder& operator=(const HubForwarder&) = delete;

  // Media from `leg`'s uplink, already consumed by the hub's uplink
  // feedback endpoint. Uplink RTX provenance is cleared here: a packet the
  // hub recovered from the origin is a *first* transmission downstream.
  void OnMediaFromUplink(int leg, PathId path, RtpPacket packet);

  // Feedback from this receiver for downlink `path`. Returns true when the
  // packet was consumed at the hub (transport feedback and receiver
  // reports feed the downlink controller, NACKs are answered from local
  // history); false for end-to-end signals the conference must still relay
  // upstream (keyframe requests, QoE feedback).
  bool OnReceiverRtcp(int leg, PathId path, const RtcpPacket& packet);

  // Origin `leg`'s sender left the conference. Drops its queued media and
  // forgets its egress sequence spaces, dependency gates, and RTX history,
  // so a rejoin (which arrives under a fresh incarnation with brand-new
  // SSRCs) starts from clean hub state instead of inheriting stamp counters
  // and half-open gates from the previous life.
  void ResetOrigin(int leg);
  // Quiesces the pacing timer when this forwarder's receiver leaves the
  // call; the retired forwarder stays alive (in-flight deliveries may still
  // reference it) but emits nothing further.
  void Stop();

  // Paths this engine paces over, in ascending PathId order (stable across
  // the forwarder's lifetime; stats collection for retired engines reads
  // them here once the owning Network has been retired separately).
  std::vector<PathId> path_ids() const;

  DataRate downlink_target(PathId path) const;
  Duration downlink_srtt(PathId path) const;
  double downlink_loss(PathId path) const;
  Duration queue_delay(PathId path) const;
  int64_t queued_bytes(PathId path) const;
  const DownlinkStats& stats(PathId path) const;
  const DownlinkCc& cc(PathId path) const;

  // Layered forwarding introspection. selected_rung: the rung (origin leg,
  // stream) is currently subscribed to (0 when the stream is unknown or
  // single-layer). max_selected_rung: the deepest downswitch across every
  // layered stream this receiver subscribes to — 0 means every stream runs
  // at the top rung.
  int selected_rung(int leg, int stream_id) const;
  int max_selected_rung() const;

 private:
  struct Queued {
    RtpPacket packet;
    Timestamp enqueued;
    int leg = 0;
  };
  // Hub-owned egress sequence spaces for one (origin leg, path).
  struct EgressLeg {
    uint16_t next_mp_seq = 0;
    int64_t transport_count = 0;  // unwrapped; low 16 bits go on the wire
    // Retransmission history keyed by the hub-stamped per-path sequence
    // the receiver's NACKs reference; 16-bit key bounds the map.
    std::map<uint16_t, RtpPacket> mp_sent;
  };
  struct PathState {
    explicit PathState(const DownlinkCc::Config& cc_config)
        : cc(cc_config) {}
    DownlinkCc cc;
    std::deque<Queued> queue;
    std::deque<Queued> rtx_queue;  // hub NACK answers jump the backlog
    int64_t queued_bytes = 0;
    double budget_bytes = 0.0;
    // ALR padding accrues at the CC target (not the pacing rate) and is
    // drained by every emitted byte, so media + padding together track
    // the target and padding never displaces media.
    double pad_budget_bytes = 0.0;
    DataRate pacing_rate = DataRate::Zero();
    // Template for ALR probe duplicates: the last media packet emitted on
    // this path (Emit re-stamps the egress sequence fields per copy).
    bool has_last_media = false;
    Queued last_media;
    // First media emit on this path, anchor for Layers::padding_warmup.
    Timestamp first_media_at = Timestamp::PlusInfinity();
    // EWMA of the projected queue delay (~250 ms time constant), the
    // backlog signal layer selection runs on: a keyframe burst drains in
    // one spike the average barely registers, while genuine overload
    // holds the average up. Thinning keeps using the instantaneous value.
    double smoothed_delay_ms = 0.0;
    // Baseline RTT for the padding delay gate.
    Duration min_srtt = Duration::Infinity();
    // Probe-episode backoff state (see Layers::padding_backoff).
    Timestamp pad_resume = Timestamp::MinusInfinity();
    Timestamp pad_clean_since = Timestamp::MinusInfinity();
    Duration pad_backoff = Duration::Zero();  // set on first gate trip
    DownlinkStats stats;
    std::map<int, EgressLeg> egress;
  };
  // Dependency gate for one (leg, stream): closed after the hub drops any
  // frame of the stream, reopened by the next keyframe. For layered
  // streams it also holds the rung subscription and per-rung rate
  // estimates the selection engine runs on.
  struct StreamGate {
    bool open = true;
    PathId culprit = kInvalidPathId;  // path whose backlog closed the gate
    uint32_t ssrc = 0;
    Timestamp last_pli = Timestamp::MinusInfinity();
    // Admission verdicts for recent frame ids (packets of one frame arrive
    // interleaved across paths); pruned to the newest kDecisionWindow.
    // Value: admitted rung (0 for single-layer streams), -1 = dropped.
    std::map<int64_t, int> decisions;
    // ---- layered state (meaningful when num_rungs > 1) ----
    int num_rungs = 1;
    int current = 0;   // subscribed rung, 0 = highest quality
    int pending = -1;  // rung awaiting a keyframe to take effect
    int deficit_evals = 0;  // consecutive evals wanting a downswitch
    Timestamp last_switch = Timestamp::MinusInfinity();
    // Per-rung ingress byte counts for the current estimation window and
    // the blended rate estimate they feed.
    int64_t rung_window_bytes[kMaxRungs] = {0, 0, 0, 0};
    double rung_rate_bps[kMaxRungs] = {0.0, 0.0, 0.0, 0.0};
  };

  void Process();
  void ProcessPath(PathId path, PathState& ps, Timestamp now);
  void EvictForSpace(PathId path, PathState& ps, Timestamp now);
  // Removes every queued packet of (leg, stream, frame) from ps.queue.
  void EvictFrame(PathId path, PathState& ps, int leg, int stream_id,
                  int64_t frame_id, Timestamp now);
  void Emit(PathId path, PathState& ps, Queued entry, Timestamp now,
            bool padding = false);
  bool AdmitMedia(int leg, PathId path, const RtpPacket& packet,
                  Timestamp now);
  // Layered admission: one rung per frame_id, keyframe-gated switches.
  bool AdmitLayered(StreamGate& g, int leg, PathId path,
                    const RtpPacket& packet, Timestamp now);
  // Re-evaluates every layered stream's rung against the aggregate
  // downlink budget (runs at layers.eval_interval inside Process()).
  void EvaluateLayerSelection(Timestamp now);
  // Debounced PLI toward the origin asking for the keyframe that commits
  // a pending rung switch (the gate stays open — unlike CloseGate, the
  // current rung keeps flowing until the key arrives).
  void RequestSwitchKeyframe(StreamGate& gate, int leg, int stream_id,
                             Timestamp now);
  void CloseGate(StreamGate& gate, int leg, int stream_id, PathId culprit,
                 Timestamp now);
  void HandleNack(int leg, PathId report_path, const Nack& nack,
                  Timestamp now);
  Duration ProjectedDelay(const PathState& ps) const;
  Duration WorstQueueDelay() const;
  // Worst smoothed (EWMA) queue delay across paths, in milliseconds.
  double WorstSmoothedDelayMs() const;
  PathState& Path(PathId path);
  const PathState& Path(PathId path) const;

  EventLoop* loop_;
  Config config_;
  TransmitFn transmit_;
  PliFn relay_pli_;
  std::map<PathId, std::unique_ptr<PathState>> paths_;
  std::map<std::pair<int, int>, StreamGate> gates_;  // (leg, stream_id)
  // Legacy-NACK retransmission history: (leg, ssrc, seq) -> (path, packet).
  std::map<std::pair<std::pair<int, uint32_t>, uint16_t>,
           std::pair<PathId, RtpPacket>>
      legacy_sent_;
  std::map<std::pair<int64_t, uint16_t>, Timestamp> recent_rtx_;
  Timestamp last_process_;
  Timestamp last_layer_eval_;
  // Capacity belief the selection budget runs on: tracks the aggregate CC
  // target upward instantly but decays toward it slowly (~4 s), so a
  // probing episode's multiplicative backoff — which the next probe will
  // recover — does not read as a capacity loss and force a downswitch.
  double peak_total_target_bps_ = 0.0;
  std::unique_ptr<RepeatingTask> task_;
};

}  // namespace converge
