// Per-receiver forwarding engine for the star (SFU) hub.
//
// PR 4's hub forwarded every uplink packet straight onto the matching
// downlink path, so downlinks had to be provisioned for the aggregate
// sender rate. This class closes that gap: the hub runs one congestion
// loop (DownlinkCc) and one frame-aware paced queue per (receiver, path)
// downlink, thins whole frames deterministically when a downlink cannot
// carry the aggregate, answers downlink NACKs from local history, and
// relays a PLI upstream whenever a drop breaks a stream's dependency
// chain. Forwarded rate therefore converges to
// min(uplink inflow, downlink estimate) per receiver.
//
// Sequence-space ownership: the hub re-stamps mp_seq and mp_transport_seq
// per (origin leg, path) at queue *output* (mirroring Pacer/Sender), so
// each downlink sees a gap-free per-path sequence space even when the hub
// deliberately drops frames — receivers never NACK-chase hub drops, and
// per-leg transport feedback never misreads another leg's packets as
// losses. The per-SSRC media `seq` is left untouched, which keeps FEC
// recovery metadata valid end-to-end.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cc/downlink_cc.h"
#include "rtp/rtcp.h"
#include "rtp/rtp_packet.h"
#include "sim/event_loop.h"
#include "util/time.h"

namespace converge {

class HubForwarder {
 public:
  struct Config {
    Duration process_interval = Duration::Millis(5);
    double pacing_factor = 1.25;
    int64_t max_burst_bytes = 20'000;
    // Ingress layer selection: while the worst downlink path's projected
    // queue delay exceeds this, newly arriving delta frames are dropped
    // whole (the stream's dependency chain is then gated until the next
    // keyframe). Thinning breaks the GOP and costs a PLI round trip
    // (debounced by pli_min_interval below), so this sits well above the
    // GCC's delay-based operating point: on a persistently constrained
    // downlink each admitted burst must be large enough to amortise the
    // gate-closed dead time, or goodput degenerates to keyframe-rate.
    Duration thin_queue_delay = Duration::Millis(350);
    // Egress drop policy: above this the oldest queued non-key frame is
    // evicted whole; keyframes are only shed beyond twice this bound.
    Duration drop_queue_delay = Duration::Millis(600);
    // Debounce for upstream PLI relays, per (leg, stream).
    Duration pli_min_interval = Duration::Millis(500);
    // De-duplicates NACK answers (receivers duplicate critical feedback
    // on every live path).
    Duration rtx_dedup_window = Duration::Millis(40);
    size_t legacy_rtx_history = 4096;
    // Template for each path's congestion loop; trace_path is overridden
    // per path.
    DownlinkCc::Config cc;
    // Flight-recorder category for this engine's queue/thinning probes.
    // Receiver-facing downlink forwarders keep the historical "hub";
    // inter-hub trunk engines run under "hub_trunk" so a trace separates
    // the two hops of a cascaded forward. Must outlive the forwarder
    // (string literals only).
    const char* trace_category = "hub";
  };

  // Cumulative per-(receiver, path) accounting, surfaced via
  // ConferenceStats::Downlink.
  struct DownlinkStats {
    int64_t packets_forwarded = 0;
    int64_t bytes_forwarded = 0;
    int64_t frames_thinned = 0;  // whole frames dropped at ingress
    int64_t frames_evicted = 0;  // whole frames evicted from the queue
    int64_t packets_dropped = 0; // packets inside thinned/evicted frames
    int64_t rtx_answered = 0;
    int64_t plis_relayed = 0;
    int64_t max_queue_bytes = 0;
    double max_queue_delay_ms = 0.0;
  };

  // Delivers a stamped packet onto the downlink: (origin leg, path, packet).
  using TransmitFn = std::function<void(int, PathId, RtpPacket)>;
  // Relays a keyframe request upstream to `leg`'s origin for `ssrc`,
  // describing downlink path `path`.
  using PliFn = std::function<void(int, uint32_t, PathId)>;

  HubForwarder(EventLoop* loop, Config config,
               const std::vector<PathId>& paths, TransmitFn transmit,
               PliFn relay_pli);
  ~HubForwarder();
  HubForwarder(const HubForwarder&) = delete;
  HubForwarder& operator=(const HubForwarder&) = delete;

  // Media from `leg`'s uplink, already consumed by the hub's uplink
  // feedback endpoint. Uplink RTX provenance is cleared here: a packet the
  // hub recovered from the origin is a *first* transmission downstream.
  void OnMediaFromUplink(int leg, PathId path, RtpPacket packet);

  // Feedback from this receiver for downlink `path`. Returns true when the
  // packet was consumed at the hub (transport feedback and receiver
  // reports feed the downlink controller, NACKs are answered from local
  // history); false for end-to-end signals the conference must still relay
  // upstream (keyframe requests, QoE feedback).
  bool OnReceiverRtcp(int leg, PathId path, const RtcpPacket& packet);

  // Origin `leg`'s sender left the conference. Drops its queued media and
  // forgets its egress sequence spaces, dependency gates, and RTX history,
  // so a rejoin (which arrives under a fresh incarnation with brand-new
  // SSRCs) starts from clean hub state instead of inheriting stamp counters
  // and half-open gates from the previous life.
  void ResetOrigin(int leg);
  // Quiesces the pacing timer when this forwarder's receiver leaves the
  // call; the retired forwarder stays alive (in-flight deliveries may still
  // reference it) but emits nothing further.
  void Stop();

  // Paths this engine paces over, in ascending PathId order (stable across
  // the forwarder's lifetime; stats collection for retired engines reads
  // them here once the owning Network has been retired separately).
  std::vector<PathId> path_ids() const;

  DataRate downlink_target(PathId path) const;
  Duration downlink_srtt(PathId path) const;
  double downlink_loss(PathId path) const;
  Duration queue_delay(PathId path) const;
  int64_t queued_bytes(PathId path) const;
  const DownlinkStats& stats(PathId path) const;
  const DownlinkCc& cc(PathId path) const;

 private:
  struct Queued {
    RtpPacket packet;
    Timestamp enqueued;
    int leg = 0;
  };
  // Hub-owned egress sequence spaces for one (origin leg, path).
  struct EgressLeg {
    uint16_t next_mp_seq = 0;
    int64_t transport_count = 0;  // unwrapped; low 16 bits go on the wire
    // Retransmission history keyed by the hub-stamped per-path sequence
    // the receiver's NACKs reference; 16-bit key bounds the map.
    std::map<uint16_t, RtpPacket> mp_sent;
  };
  struct PathState {
    explicit PathState(const DownlinkCc::Config& cc_config)
        : cc(cc_config) {}
    DownlinkCc cc;
    std::deque<Queued> queue;
    std::deque<Queued> rtx_queue;  // hub NACK answers jump the backlog
    int64_t queued_bytes = 0;
    double budget_bytes = 0.0;
    DataRate pacing_rate = DataRate::Zero();
    DownlinkStats stats;
    std::map<int, EgressLeg> egress;
  };
  // Dependency gate for one (leg, stream): closed after the hub drops any
  // frame of the stream, reopened by the next keyframe.
  struct StreamGate {
    bool open = true;
    PathId culprit = kInvalidPathId;  // path whose backlog closed the gate
    uint32_t ssrc = 0;
    Timestamp last_pli = Timestamp::MinusInfinity();
    // Admission verdicts for recent frame ids (packets of one frame arrive
    // interleaved across paths); pruned to the newest kDecisionWindow.
    std::map<int64_t, bool> decisions;
  };

  void Process();
  void ProcessPath(PathId path, PathState& ps, Timestamp now);
  void EvictForSpace(PathId path, PathState& ps, Timestamp now);
  // Removes every queued packet of (leg, stream, frame) from ps.queue.
  void EvictFrame(PathId path, PathState& ps, int leg, int stream_id,
                  int64_t frame_id, Timestamp now);
  void Emit(PathId path, PathState& ps, Queued entry, Timestamp now);
  bool AdmitMedia(int leg, PathId path, const RtpPacket& packet,
                  Timestamp now);
  void CloseGate(StreamGate& gate, int leg, int stream_id, PathId culprit,
                 Timestamp now);
  void HandleNack(int leg, PathId report_path, const Nack& nack,
                  Timestamp now);
  Duration ProjectedDelay(const PathState& ps) const;
  Duration WorstQueueDelay() const;
  PathState& Path(PathId path);
  const PathState& Path(PathId path) const;

  EventLoop* loop_;
  Config config_;
  TransmitFn transmit_;
  PliFn relay_pli_;
  std::map<PathId, std::unique_ptr<PathState>> paths_;
  std::map<std::pair<int, int>, StreamGate> gates_;  // (leg, stream_id)
  // Legacy-NACK retransmission history: (leg, ssrc, seq) -> (path, packet).
  std::map<std::pair<std::pair<int, uint32_t>, uint16_t>,
           std::pair<PathId, RtpPacket>>
      legacy_sent_;
  std::map<std::pair<int64_t, uint16_t>, Timestamp> recent_rtx_;
  Timestamp last_process_;
  std::unique_ptr<RepeatingTask> task_;
};

}  // namespace converge
