// Conference runtime: the N-party, topology-driven session layer.
//
// A Conference instantiates N participants on ONE shared EventLoop and wires
// directed media legs between them according to a declarative topology:
//
//   kMesh — full-mesh P2P. Every ordered pair (sender, receiver) gets its
//     own Network plus a complete pipeline (scheduler, FEC controller,
//     Sender, ReceiverEndpoint, MetricsCollector). Modelling a mesh as
//     independent directed legs matches real mesh conferencing, where each
//     peer runs a separate encode + congestion-control loop per remote.
//
//   kStar — SFU-style forwarder hop. Each sending participant runs ONE
//     uplink (Sender + Network to the hub); the hub terminates the uplink
//     congestion-control loop with a feedback-only ReceiverEndpoint (RR,
//     transport feedback, NACK — exactly what a real SFU answers on behalf
//     of receivers) and fans every uplink packet out through one
//     HubForwarder per receiving participant: a congestion-controlled,
//     frame-aware paced queue per (receiver, path) downlink that thins
//     whole frames when a downlink cannot carry the aggregate, answers
//     downlink NACKs from hub history, and relays PLI upstream when a drop
//     breaks a dependency chain (see session/hub_forwarder.h and DESIGN §7).
//     Keyframe requests and Converge QoE feedback remain end-to-end; all
//     other downlink feedback is consumed by the hub. The hub forwards
//     uplink path p onto downlink path p, so all edges of a star must
//     expose the same number of paths.
//
//   A star may additionally be sharded over N regional hubs — a cascaded
//   SFU fabric (DESIGN §10): ConferenceConfig::num_hubs pins every
//   participant to a home hub, directed inter-hub trunks (each a full
//   HubForwarder engine with its own congestion loop and paced queues,
//   traced under "hub_trunk") carry a publisher's media at most once per
//   remote hub, and per-hub fault plans drive mid-call hub failure with
//   deterministic re-homing of the affected participants. num_hubs == 1 is
//   the historical single-star path, bit-for-bit.
//
// Call/CallConfig (session/call.h) are now a thin 2-party adapter over this
// runtime: a 2-participant mesh with one directed leg, constructed in
// exactly the order the historical point-to-point Call used, which keeps its
// results byte-identical (pinned by tests/data fixtures).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/video_aware_scheduler.h"
#include "fec/converge_fec_controller.h"
#include "fec/fec_controller.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "schedulers/scheduler.h"
#include "session/hub_forwarder.h"
#include "session/metrics.h"
#include "session/receiver_endpoint.h"
#include "session/sender.h"
#include "signaling/negotiation.h"
#include "util/arena.h"
#include "util/trace_recorder.h"

namespace converge {

// The systems evaluated in §6.
enum class Variant {
  kWebRtcPath0,       // single-path WebRTC on the first path
  kWebRtcPath1,       // single-path WebRTC on the second path
  kWebRtcCm,          // single path + connection migration
  kSrtt,              // minRTT multipath (MPTCP/MPQUIC default)
  kEcf,               // Earliest Completion First (heterogeneity-aware)
  kMtput,             // Musher throughput scheduler
  kMrtp,              // MPRTP
  kConverge,          // full system
  kConvergeNoFeedback,  // ablation: video-aware scheduler, no QoE feedback
  kConvergeWebRtcFec,   // ablation: Converge scheduler + table-based FEC
};

std::string ToString(Variant v);
bool IsMultipath(Variant v);

enum class Topology {
  kMesh,  // full-mesh P2P: one directed leg per ordered participant pair
  kStar,  // SFU-style: per-sender uplink to a forwarder, fan-out downlinks
};

std::string ToString(Topology t);

// Edge id of the star forwarder for ConferenceConfig::paths_for_edge.
inline constexpr int kHubId = -1;

struct ParticipantSpec {
  bool sends = true;
  bool receives = true;
  // Camera streams this participant publishes when it sends.
  int num_streams = 1;
};

struct ConferenceConfig {
  Variant variant = Variant::kConverge;
  Topology topology = Topology::kMesh;
  // N >= 2 participants; when left empty, two duplex participants.
  std::vector<ParticipantSpec> participants;

  // Mid-call membership churn: scheduled join/leave events (sorted by time;
  // signaling/negotiation.h defines the type and ValidateMembership the
  // rules). A participant whose FIRST event is a join is absent at t=0 (a
  // late joiner); everyone else is in the call from the start. A leave tears
  // the participant's legs down (mesh pairs, or star downlink + hub state);
  // a rejoin builds fresh ones under a new SSRC incarnation. Empty = the
  // historical fixed-membership call, byte-identical to before this field
  // existed.
  std::vector<MembershipEvent> membership;

  // Path template instantiated independently for every directed network
  // edge (mesh: sender->receiver pair; star: participant->hub uplink and
  // hub->participant downlink).
  std::vector<PathSpec> paths;
  // Optional per-edge override; `to == kHubId` names an uplink into the
  // forwarder and `from == kHubId` a downlink out of it. Must return the
  // same number of paths for every edge (the hub forwards path p to path p).
  std::function<std::vector<PathSpec>(int from, int to)> paths_for_edge;

  // Per-stream media knobs (identical semantics to the historical
  // CallConfig).
  DataRate max_rate_per_stream = DataRate::MegabitsPerSec(10);
  double fps = 30.0;
  int width = 1280;
  int height = 720;
  Duration duration = Duration::Seconds(180);
  uint64_t seed = 1;
  bool enable_fec = true;
  // Receiver buffer sizing (§2.1 "small, fixed-size buffers").
  size_t packet_buffer_capacity = 512;
  size_t frame_buffer_capacity = 16;
  // Tunables for the Converge variants (design-choice ablations).
  VideoAwareScheduler::Config video_scheduler;
  ConvergeFecController::Config converge_fec;
  // Per-path congestion-control algorithm (every sender path AND every hub
  // downlink run one instance of it) and the strategy coupling a sender's
  // per-path targets into allocated rates. Defaults preserve the historical
  // uncoupled-GCC behavior byte-for-byte.
  CcAlgorithm cc_algorithm = CcAlgorithm::kGcc;
  CcCoupling cc_coupling = CcCoupling::kUncoupled;
  // Star only: per-downlink forwarding at the hub. The congestion
  // controller's algorithm, start and max rates in hub.cc.controller are
  // overridden at build time: the algorithm follows cc_algorithm and the
  // rates derive from the aggregate publisher rate (an SFU starts
  // optimistic and lets delay/loss signals pull a slow downlink back).
  HubForwarder::Config hub;

  // --- Layered media (simulcast + temporal SVC metadata) -----------------
  // simulcast_rungs > 1 makes every publisher encode that many rungs per
  // capture (video/encoder.h: rung k halves the linear resolution k times)
  // and switches the hub's per-receiver forwarders from whole-frame
  // thinning to per-(origin, stream) rung selection (hub.layers tunables
  // apply; layers.enabled itself is derived from this field at build time).
  // Requires the star topology AND a Converge-family variant (rung
  // filtering leaves per-SSRC seq gaps that only mp_seq-based per-path
  // NACK tolerates; a mesh receiver would see every rung and mis-assemble);
  // invalid combinations are rejected through the invariant registry and
  // degraded back to single-layer. temporal_layers > 1 stamps dyadic
  // temporal ids on frames (metadata only; no frames are withheld).
  // Defaults (1/1) keep every pipeline byte-identical to the unlayered
  // build. Negotiated over SDP as `a=x-converge-layers:SxT`
  // (signaling/sdp.h); legacy peers fall back to 1x1.
  int simulcast_rungs = 1;
  int temporal_layers = 1;

  // --- Cascaded SFU fabric (star only; DESIGN §10) -----------------------
  // Number of regional hubs the forwarding fabric is sharded over. 1 (the
  // default) is the degenerate single-star case and leaves the historical
  // path untouched bit-for-bit. With k > 1 every participant is pinned to
  // a home hub: its uplink terminates there, media for receivers homed at
  // that hub fans out locally, and media for every other hub crosses
  // exactly one inter-hub trunk before fanning out on the remote hub's
  // downlinks.
  int num_hubs = 1;
  // Per-participant home hub in [0, num_hubs). Empty assigns participant p
  // to hub p % num_hubs (round-robin). Out-of-range pins are rejected via
  // the invariant registry and fall back to round-robin.
  std::vector<int> home_hub;
  // Trunk path template, instantiated for every ordered pair of distinct
  // hubs. Trunks must expose the same number of paths as the star's edges
  // (uplink path p crosses trunk path p onto downlink path p). Empty falls
  // back to `paths`.
  std::vector<PathSpec> trunk_paths;
  // Optional per-trunk override, mirroring paths_for_edge.
  std::function<std::vector<PathSpec>(int from_hub, int to_hub)>
      paths_for_trunk;
  // Per-hub fault plans, indexed by hub id (shorter vectors leave the tail
  // hubs fault-free). Each kOutage window marks the hub DEAD for its
  // duration: its trunks retire and every participant homed there is
  // re-homed to the next alive hub in ring order under a fresh SSRC
  // incarnation (PR 7's detach-don't-destroy machinery). At the window's
  // end the hub rejoins the fabric — trunks are rebuilt so it can serve
  // future re-homings — but participants do not move back.
  std::vector<FaultPlan> hub_fault_plans;
  // Trunk forwarding-engine knobs. Like `hub`, the congestion controller's
  // algorithm and rates are overridden at build time; trunk CC and queue
  // probes trace under "hub_trunk".
  HubForwarder::Config trunk;

  // Flight-recorder capacity in events; 0 (the default) disables tracing.
  size_t trace_capacity = 0;
};

// Aggregated results of one directed media flow: a whole point-to-point
// Call, or one leg of a Conference.
struct CallStats {
  std::vector<StreamQoe> streams;
  std::vector<SecondSample> time_series;

  // Sender-side counters.
  int64_t media_packets_sent = 0;
  int64_t fec_packets_sent = 0;
  int64_t rtx_packets_sent = 0;
  int64_t frames_encoded = 0;

  // FEC economics (§6): overhead = FEC/media packets sent; utilization =
  // parity packets that actually repaired a loss / parity received.
  double fec_overhead = 0.0;
  double fec_utilization = 0.0;
  int64_t fec_recovered_packets = 0;

  // Receiver totals.
  int64_t total_frame_drops = 0;
  int64_t total_keyframe_requests = 0;

  // Convenience aggregates over streams.
  double AvgFps() const;
  double AvgFreezeMs() const;
  double AvgE2eMs() const;
  double TotalTputMbps() const;
  double AvgQp() const;
  double AvgPsnrDb() const;
};

struct ConferenceStats {
  // One entry per directed leg, in construction order (mesh: from-major over
  // ordered pairs; star: same order, legs of one uplink grouped together;
  // churn-created legs follow in join order). Legs retired by a mid-call
  // leave still report, with their stats normalized over [joined_s, left_s).
  struct Leg {
    int from = 0;
    int to = 0;
    // Sender incarnation this leg carried (0 unless `from` rejoined).
    int incarnation = 0;
    // Observation window within the call, seconds. Whole-call legs report
    // [0, duration).
    double joined_s = 0.0;
    double left_s = 0.0;
    CallStats stats;
  };

  // Receive-side QoE aggregated per participant over all inbound legs.
  struct ParticipantQoe {
    int participant = 0;
    int inbound_streams = 0;
    // Seconds this participant was actually in the call (= duration unless
    // it churned). Per-stream rates below are already normalized by each
    // leg's own membership window, so a late joiner's fps is comparable to
    // a full-call participant's.
    double active_s = 0.0;
    double avg_fps = 0.0;
    double avg_freeze_ms = 0.0;
    // Mean frozen fraction of the inbound streams' active windows — the
    // lifetime-fair form of avg_freeze_ms.
    double avg_freeze_ratio = 0.0;
    double avg_e2e_ms = 0.0;
    double total_tput_mbps = 0.0;
    double avg_qp = 0.0;
    double avg_psnr_db = 0.0;
    int64_t frame_drops = 0;
    int64_t keyframe_requests = 0;
  };

  // Star only: final state of one (hub, receiver, path) downlink, keyed by
  // serving hub so the rows stay unambiguous when two hubs served the same
  // receiver across a re-homing. Live forwarders report first in
  // (receiver, path) order (single-hub order unchanged), then forwarders
  // retired by a re-homing in retirement order, tagged with the hub that
  // ran them. Empty for mesh conferences.
  struct Downlink {
    int hub = 0;
    int receiver = 0;
    PathId path = 0;
    double target_kbps = 0.0;
    double srtt_ms = 0.0;
    double loss = 0.0;
    // Layered forwarding only: the deepest rung any of this receiver's
    // subscriptions sits at when the call ends (0 = every stream at the
    // top rung). Stays 0 — and unexported — for single-layer calls.
    int selected_rung = 0;
    HubForwarder::DownlinkStats forwarder;
  };

  // Multi-hub only: final state of one inter-hub trunk path, in trunk
  // construction order. A trunk retired by a hub failure still reports,
  // with live = false.
  struct Trunk {
    int from_hub = 0;
    int to_hub = 0;
    PathId path = 0;
    bool live = true;
    double target_kbps = 0.0;
    double srtt_ms = 0.0;
    double loss = 0.0;
    int64_t feedback_batches = 0;
    int64_t packets_registered = 0;
    HubForwarder::DownlinkStats forwarder;
  };

  // Multi-hub only: per-hub membership and failover accounting.
  struct Hub {
    int hub = 0;
    bool alive = true;
    int64_t failures = 0;
    // Participants re-homed away from / onto this hub over the call.
    int64_t rehomed_away = 0;
    int64_t rehomed_onto = 0;
    // Present participants homed here at call end.
    int home_participants = 0;
  };

  // One competing cross-traffic flow (net/cross_traffic.h) and its final
  // AIMD state, in construction order. `from`/`to` name the edge whose
  // forward link the flow shared (kHubId = the star hub side).
  struct CrossFlow {
    int from = 0;
    int to = 0;
    PathId path = 0;
    std::string name;
    std::string kind;  // "tcp" | "quic"
    int64_t packets_sent = 0;
    int64_t packets_delivered = 0;
    int64_t packets_dropped = 0;
    int64_t loss_events = 0;
    double throughput_mbps = 0.0;
    double final_cwnd = 0.0;
  };

  std::vector<Leg> legs;
  std::vector<ParticipantQoe> participants;
  std::vector<Downlink> downlinks;
  std::vector<CrossFlow> cross_traffic;
  // Hub-graph shape and state; trunks/hubs stay empty (and unexported) for
  // single-hub conferences, which keeps their stats JSON byte-identical.
  int num_hubs = 1;
  std::vector<Trunk> trunks;
  std::vector<Hub> hubs;
  // Effective layer shape after topology/variant gating (1/1 for
  // single-layer calls, whose stats JSON omits every layer field).
  int simulcast_rungs = 1;
  int temporal_layers = 1;
};

class Conference {
 public:
  explicit Conference(const ConferenceConfig& config);
  ~Conference();

  // Runs the whole conference; returns per-leg stats plus per-participant
  // QoE aggregates. Equivalent to Start() + AdvanceTo(end) + Collect().
  ConferenceStats Run();

  // Incremental interface for drivers that interleave many conferences on
  // one thread (sim/fleet.h). Start() arms every endpoint; AdvanceTo() runs
  // this conference's loop up to `t` (monotonic across calls — RunUntil(t1)
  // then RunUntil(t2) executes exactly the events RunUntil(t2) would, which
  // is the determinism contract fleet sharding relies on); Collect() gathers
  // the stats once the final AdvanceTo has run.
  void Start();
  void AdvanceTo(Timestamp t);
  ConferenceStats Collect();

  EventLoop& loop() { return loop_; }
  // The conference's flight recorder (nullptr unless trace_capacity > 0).
  TraceRecorder* trace() { return trace_.get(); }

  // Leg introspection, for tests and the 2-party Call adapter. Legs are
  // indexed in construction order (matching ConferenceStats::legs).
  size_t num_legs() const { return legs_.size(); }
  int leg_from(size_t leg) const;
  int leg_to(size_t leg) const;
  const MetricsCollector& leg_metrics(size_t leg) const;
  const Sender& leg_sender(size_t leg) const;
  const ReceiverEndpoint& leg_receiver(size_t leg) const;
  Scheduler& leg_scheduler(size_t leg);
  // Mesh: the pair's network. Star: the origin sender's uplink network.
  const Network& leg_network(size_t leg) const;
  // Star only: the hub's per-receiver forwarding engine (nullptr for mesh
  // or non-receiving participants).
  const HubForwarder* hub_forwarder(int participant) const;
  // Cascade introspection for tests: the participant's current home hub
  // (0 for single-hub stars and meshes) and the live trunk engine between
  // two hubs (nullptr when no live trunk connects them).
  int home_hub(int participant) const;
  const HubForwarder* trunk_engine(int from_hub, int to_hub) const;

 private:
  struct Leg;

  // One sending pipeline. Mesh: paired 1:1 with a leg. Star: one per
  // sending participant, fanned out to every receiving leg by the hub.
  //
  // Churn lifetime rule — detach, don't destroy: in-flight link delivery
  // continuations capture raw Uplink*/Leg* pointers and the EventLoop has
  // no event cancellation, so an object built for a participant that later
  // leaves is never destroyed mid-run. It is *retired*: its timers stop,
  // `live` flips false, and every routing hop checks the flag before
  // touching hub state that may have been replaced by a rejoin. Retired
  // objects die with the Conference.
  struct Uplink {
    int from = 0;
    // Mesh: the receiving peer. Star: kHubId.
    int to = 0;
    // SSRC incarnation this uplink publishes under (> 0 after a rejoin or
    // a re-homing).
    int incarnation = 0;
    // Star: the hub this uplink terminates at (the origin's home hub when
    // the uplink was built; a re-homing retires it and builds a fresh one).
    int hub = 0;
    bool live = true;
    std::unique_ptr<Network> network;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<FecController> fec;
    std::unique_ptr<Sender> sender;
    // Star only: the hub-side endpoint that terminates the uplink
    // congestion-control loop (RR + transport feedback + NACK).
    std::unique_ptr<ReceiverEndpoint> hub_feedback;
    // Star only: receiving legs fed by this uplink. Retired legs stay
    // listed (in-flight hub deliveries still walk the list) and are
    // skipped via leg->live.
    std::vector<Leg*> fanout;
  };

  // One directed media flow into a receiving participant.
  struct Leg {
    int from = 0;
    int to = 0;
    int incarnation = 0;
    // Star: the hub serving this leg's receiver when the leg was built.
    // Media reaches it locally when it matches the origin uplink's hub,
    // otherwise across the (uplink->hub -> leg->hub) trunk.
    int hub = 0;
    bool live = true;
    // Membership window: [joined, left). Whole-call legs keep the defaults.
    Timestamp joined = Timestamp::Zero();
    Timestamp left = Timestamp::PlusInfinity();
    Uplink* uplink = nullptr;
    // Star only: the hub->receiver network this leg's media rides on.
    Network* downlink = nullptr;
    std::unique_ptr<MetricsCollector> metrics;
    std::unique_ptr<ReceiverEndpoint> receiver;
  };

  // One directed inter-hub trunk (from_hub -> to_hub). The near hub runs a
  // full HubForwarder as the trunk engine — per-path congestion loop
  // (DownlinkCc under trace component "hub_trunk"), paced queues,
  // whole-frame thinning, NACK answering from trunk history — with one
  // egress sequence space per origin participant crossing it. The far hub
  // terminates the trunk's congestion loop with one feedback-only
  // ReceiverEndpoint per origin (mirroring the uplink's hub_feedback
  // endpoint), so trunk losses are chased hub-to-hub and trunk feedback
  // never reaches publisher uplink CC or the remote hub's downlink CC.
  // Media arriving at the far hub re-enters the per-receiver forwarders,
  // which stamp their own hub-owned downlink sequence spaces.
  struct Trunk {
    int from_hub = 0;
    int to_hub = 0;
    bool live = true;
    std::unique_ptr<Network> network;
    std::unique_ptr<HubForwarder> engine;
    // Far-end feedback agents keyed by origin participant. Retired with
    // the origin's uplink (into retired_trunk_agents_) or with the trunk.
    std::map<int, std::unique_ptr<ReceiverEndpoint>> agents;
  };

  std::vector<PathSpec> EdgePaths(int from, int to) const;
  void BuildMesh(Random& rng);
  void BuildStar(Random& rng);
  void SetInvariantContext();

  // --- cascaded hub fabric ---
  bool multi_hub() const { return config_.num_hubs > 1; }
  std::vector<PathSpec> TrunkPaths(int from_hub, int to_hub) const;
  Trunk* LiveTrunk(int from_hub, int to_hub);
  Trunk* BuildTrunk(int from_hub, int to_hub, Random& rng);
  // Far-end feedback agent for `up`'s media on trunk `t` (t->from_hub must
  // be up->hub). Started immediately when the call is already running.
  void BuildTrunkAgent(Trunk* t, Uplink* up);
  void RetireTrunk(Trunk* t);
  // Puts one trunk-stamped packet from the trunk engine onto the wire.
  void TrunkTransmitRtp(Trunk* t, int origin, PathId path, RtpPacket packet);
  // Far-hub arrival: feeds the origin's trunk feedback agent, then fans
  // out to the origin's live legs homed at the far hub.
  void TrunkDeliverRtp(Trunk* t, int origin, PathId path, RtpPacket packet,
                       Timestamp arrival);
  // Multi-hub fan-out for one uplink arrival: local legs directly, one
  // trunk copy per remote hub with a live subscribed leg.
  void CascadeFanOut(Uplink* uplink, PathId path, RtpPacket packet);
  int NextAliveHub(int hub) const;
  // Hub outage handling, scheduled from hub_fault_plans: FailHub retires
  // the hub's trunks and re-homes every participant homed there to the
  // next alive hub (teardown-all then rebuild-all, so rebuilt legs never
  // reference forwarders about to retire); RecoverHub rebuilds the trunks
  // so the hub can serve future re-homings.
  void FailHub(int hub);
  void RecoverHub(int hub);

  // --- membership churn ---
  void ApplyMembershipEvent(const MembershipEvent& ev);
  void JoinParticipant(int p);
  void LeaveParticipant(int p);
  // Shared teardown for leaves and re-homings: retires p's legs, uplink,
  // forwarder/downlink slot, trunk feedback agents, and clears the other
  // forwarders' per-origin state. `rehomed` tags the retired forwarder so
  // stats still report its (hub, receiver, path) rows.
  void DetachParticipantPipelines(int p, bool rehomed);
  // Builds one mesh pipeline (from -> to) in exactly the constructor's
  // component order; used by both the initial build and mid-call joins.
  Leg* BuildMeshLeg(int from, int to, int incarnation, Random& rng);
  // Star builders, mirroring the constructor's phases for one participant.
  void BuildStarDownlink(int to, Random& rng);
  Uplink* BuildStarUplink(int from, int incarnation, Random& rng);
  Leg* BuildStarLeg(Uplink* up, int to);
  void BuildStarForwarder(int to);
  // The (unique) live uplink publishing as participant p, if any.
  Uplink* LiveUplinkOf(int p);
  void RetireLeg(Leg* leg, Timestamp now);
  void RetireUplink(Uplink* up);

  // Mesh routing: the three historical Call transmit hops, per leg.
  void MeshTransmitRtp(Leg* leg, PathId path, RtpPacket packet);
  void MeshTransmitRtcpForward(Leg* leg, PathId path,
                               const RtcpPacket& packet);
  void MeshTransmitRtcpBackward(Leg* leg, PathId path,
                                const RtcpPacket& packet);

  // Star routing: uplink into the hub, per-receiver forwarding engines,
  // then fan-out; feedback either terminates at the hub or is forwarded
  // upstream.
  void StarTransmitRtp(Uplink* uplink, PathId path, RtpPacket packet);
  void StarHubDeliverRtp(Uplink* uplink, PathId path, RtpPacket packet,
                         Timestamp arrival);
  // Puts one hub-stamped packet onto the leg's downlink wire.
  void StarDeliverDownlink(Leg* leg, PathId path, RtpPacket packet);
  // Sends a hub-originated keyframe request up `uplink` describing `path`.
  void StarRelayPli(Uplink* uplink, uint32_t ssrc, PathId path);
  void StarTransmitRtcpForward(Uplink* uplink, PathId path,
                               const RtcpPacket& packet);
  void StarTransmitRtcpBackward(Leg* leg, PathId path,
                                const RtcpPacket& packet);

  ConferenceConfig config_;
  EventLoop loop_;
  std::unique_ptr<TraceRecorder> trace_;
  // Per-conference node arena shared by every receive pipeline below (all on
  // this one loop/thread). Declared before uplinks_/legs_ so it outlives the
  // containers handing nodes back on destruction.
  PoolArena arena_;
  // Star only: downlink networks indexed by receiving participant (null for
  // non-receiving or currently-absent entries); empty for mesh.
  std::vector<std::unique_ptr<Network>> downlinks_;
  // Star only: per-receiver forwarding engines, indexed like downlinks_.
  std::vector<std::unique_ptr<HubForwarder>> forwarders_;
  // Star only: legs indexed [receiver][origin] for the forwarders'
  // transmit callbacks (null where no such leg exists; rejoin overwrites
  // the slot with the fresh leg).
  std::vector<std::vector<Leg*>> star_leg_lookup_;
  // Owned behind unique_ptr so routing callbacks capture pointers that stay
  // stable while churn appends new entries mid-call. Retired entries are
  // kept (never erased): in-flight deliveries may still reference them.
  std::vector<std::unique_ptr<Uplink>> uplinks_;
  std::vector<std::unique_ptr<Leg>> legs_;
  // Star churn: downlink networks / forwarders of participants that left,
  // kept alive for in-flight continuations (paired with the participant so
  // their cross-traffic flows still report).
  std::vector<std::pair<int, std::unique_ptr<Network>>> retired_downlinks_;
  struct RetiredForwarder {
    int hub = 0;
    int receiver = 0;
    // True when retired by a hub-failure re-homing (reported in stats);
    // false for churn leaves (unreported, matching the historical JSON).
    bool rehomed = false;
    std::unique_ptr<HubForwarder> forwarder;
  };
  std::vector<RetiredForwarder> retired_forwarders_;
  // --- cascaded hub fabric state (empty / degenerate when num_hubs == 1;
  // trunks_ only ever populated for multi-hub stars) ---
  std::vector<std::unique_ptr<Trunk>> trunks_;
  // Trunk feedback agents detached by an uplink retirement or a trunk
  // retirement; kept alive for in-flight continuations.
  std::vector<std::unique_ptr<ReceiverEndpoint>> retired_trunk_agents_;
  // Current home hub per participant (all-zero for single-hub).
  std::vector<int> home_hub_;
  // Serving hub of forwarders_[p] (tracked separately so retired-slot
  // stats and PLI routing survive the forwarder slot being rebuilt).
  std::vector<int> forwarder_hub_;
  std::vector<char> hub_alive_;
  std::vector<int64_t> hub_failures_;
  std::vector<int64_t> rehomed_away_;
  std::vector<int64_t> rehomed_onto_;
  // Re-homing incarnation bumps per participant, added on top of the
  // membership timeline's leave count so every rebuild gets a fresh,
  // never-reused SSRC bank.
  std::vector<int> extra_incarnations_;
  // Churn-time construction draws from a dedicated stream forked after the
  // initial build, so configs without membership events keep the historical
  // RNG sequence bit-for-bit.
  Random churn_rng_{0};
  std::vector<char> present_;
  bool started_ = false;
};

// Runs one independent Conference per config, fanned out across cores (each
// conference owns its EventLoop and seeded Random, so runs are
// embarrassingly parallel), and returns results in input order — identical
// however many workers ran. `jobs` <= 0 uses DefaultJobs(); 1 forces the
// serial fallback.
std::vector<ConferenceStats> RunConferences(
    const std::vector<ConferenceConfig>& configs, int jobs = 0);

}  // namespace converge
