// The receiving endpoint: per-stream receive pipelines plus the per-path
// RTCP machinery — receiver reports with the Figure-19 path extension,
// transport-wide feedback per path, immediate NACK/PLI/QoE feedback, and the
// SR echo needed for RTT measurement.
#pragma once

#include <memory>
#include <vector>

#include "receiver/nack_generator.h"
#include "receiver/receiver.h"
#include "rtp/rtcp.h"
#include "rtp/sequence_number.h"
#include "session/metrics.h"
#include "sim/event_loop.h"
#include "util/arena.h"

namespace converge {

class ReceiverEndpoint {
 public:
  struct Config {
    std::vector<uint32_t> ssrcs;  // one per camera stream, index = stream id
    VideoReceiveStream::Config stream_template;
    NackGenerator::Config nack;
    // Converge mode: loss detection over per-path sequence spaces (the
    // Appendix-B RTP extension), where a gap IS loss. Legacy mode (stock
    // WebRTC and the multipath variants of §2.2): gaps in the per-SSRC
    // media sequence space, where cross-path reordering looks like loss —
    // the spurious-retransmission behaviour §2.3 reports.
    bool per_path_nack = true;
    Duration feedback_interval = Duration::Millis(50);
    // Shared node arena for the endpoint's path state and everything below
    // it (streams, NACK chase lists, FEC history). The conference passes its
    // per-call arena; null => each component keeps a private arena.
    PoolArena* arena = nullptr;
  };

  struct Stats {
    int64_t rtp_received = 0;
    int64_t media_bytes = 0;
    int64_t fec_bytes = 0;
    int64_t rtcp_sent = 0;
  };

  // Feedback toward the sender; the Call wires it to the path's backward
  // link.
  using TransmitRtcpFn =
      std::function<void(PathId path, const RtcpPacket& packet)>;

  ReceiverEndpoint(EventLoop* loop, Config config, MetricsCollector* metrics,
                   TransmitRtcpFn transmit_rtcp);
  ~ReceiverEndpoint();

  void Start();
  // Cancels the periodic feedback timer when the participant leaves mid-call.
  // Late packets still in flight may keep arriving; they are absorbed (and
  // counted) but no longer generate feedback toward the sender.
  void Stop();

  // Network delivery entry points. RTP packets arrive by value and are moved
  // through the stream pipeline into the packet buffer.
  void OnRtpPacket(RtpPacket packet, Timestamp arrival, PathId path);
  void OnRtcpPacket(const RtcpPacket& packet, Timestamp arrival, PathId path);

  const Stats& stats() const { return stats_; }
  const VideoReceiveStream& stream(int stream_id) const {
    return *streams_.at(static_cast<size_t>(stream_id));
  }
  size_t num_streams() const { return streams_.size(); }
  const NackGenerator& nack() const { return *nack_; }

 private:
  struct PathReceiveState {
    explicit PathReceiveState(PoolArena* arena) : pending_arrivals(arena) {}
    SeqUnwrapper transport_unwrapper;
    // Arrivals since the last transport feedback: seq -> time.
    ArenaMap<int64_t, Timestamp> pending_arrivals;
    int64_t highest_reported = -1;
    // Per-path media loss accounting (mp_seq space).
    SeqUnwrapper mp_unwrapper;
    int64_t highest_mp_seq = -1;
    int64_t received_in_interval = 0;
    int64_t expected_base = -1;
    int64_t cumulative_lost = 0;
    // SR echo.
    Timestamp last_sr_time = Timestamp::MinusInfinity();
    Timestamp last_sr_arrival = Timestamp::MinusInfinity();
    Timestamp last_activity = Timestamp::MinusInfinity();
    // Jitter (RFC 3550 style, on arrival deltas).
    double jitter_ms = 0.0;
    Timestamp prev_arrival = Timestamp::MinusInfinity();
    Timestamp prev_send = Timestamp::MinusInfinity();
  };

  void SendFeedback();
  void SendImmediate(const RtcpPacket& packet);
  int StreamIndexOf(uint32_t ssrc) const;

  EventLoop* loop_;
  Config config_;
  MetricsCollector* metrics_;
  TransmitRtcpFn transmit_rtcp_;
  Stats stats_;

  PoolArena own_arena_;  // declared before the containers: destruction order
  PoolArena* arena_;
  std::vector<std::unique_ptr<VideoReceiveStream>> streams_;
  std::unique_ptr<NackGenerator> nack_;
  ArenaMap<PathId, PathReceiveState> path_state_;
  std::unique_ptr<RepeatingTask> feedback_task_;
};

}  // namespace converge
