// RTCP message model with the Converge multipath extensions (Appendix C).
//
// Converge adds a path id to every RTCP report plus two new message types:
// a sender-side SDES announcing the expected frame rate and a receiver-side
// QoE feedback message carrying (path id, alpha, FCD) — §4.2/§5.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/path.h"
#include "util/time.h"

namespace converge {

// Sender report: lets the receiver echo timing for RTT measurement.
struct SenderReport {
  uint32_t ssrc = 0;
  Timestamp send_time;
  uint32_t packet_count = 0;
  uint32_t octet_count = 0;
};

// Receiver report for one path (extended with path-specific sequence space).
struct ReceiverReport {
  uint32_t ssrc = 0;
  double fraction_lost = 0.0;   // since previous report, this path
  int64_t cumulative_lost = 0;
  uint16_t ext_high_seq = 0;     // per-SSRC media sequence space
  uint16_t ext_high_mp_seq = 0;  // per-path sequence space (Figure 19)
  Duration jitter;
  // RTT support: echo of the last SenderReport's send time and the delay
  // the receiver held it before responding.
  Timestamp last_sr_time = Timestamp::MinusInfinity();
  Duration delay_since_last_sr;
};

// Transport-wide feedback for one path: arrival times of the path's
// transport sequence numbers (drives the delay-based GCC estimator).
struct TransportFeedback {
  struct Arrival {
    int64_t mp_transport_seq;  // unwrapped
    Timestamp recv_time;       // MinusInfinity marks "not received"
  };
  std::vector<Arrival> arrivals;
};

// Negative acknowledgement: per-SSRC media sequence numbers to retransmit.
struct Nack {
  uint32_t ssrc = 0;
  std::vector<uint16_t> seqs;
};

// Picture Loss Indication: receiver requests a new keyframe for the stream.
struct KeyframeRequest {
  uint32_t ssrc = 0;
};

// SDES extension: sender announces the encode frame rate so the receiver can
// derive IFD_exp = 1 / fps (§4.2).
struct SdesFrameRate {
  uint32_t ssrc = 0;
  double fps = 30.0;
};

// The Converge QoE feedback message: the path whose packets deteriorated
// frame construction, the early/late packet count alpha (sign says whether
// the sender should add or remove packets, Eq. 2), and the observed frame
// construction delay (used for path re-enablement, Eq. 3).
struct QoeFeedback {
  PathId path_id = kInvalidPathId;
  int32_t alpha = 0;
  Duration fcd;
};

using RtcpPayload =
    std::variant<SenderReport, ReceiverReport, TransportFeedback, Nack,
                 KeyframeRequest, SdesFrameRate, QoeFeedback>;

struct RtcpPacket {
  // Path the report *describes* (Figure 19 header extension). The packet may
  // physically travel on any path; Converge sends feedback on the path it
  // describes when that path is alive, else on the fast path.
  PathId path_id = kInvalidPathId;
  RtcpPayload payload;

  int64_t wire_size() const;
};

// Wire serialization of the extended RTCP header + payload (Figure 19
// layout: common header, path id word, then type-specific fields). Used by
// tests to pin the format; the simulator passes structs.
std::vector<uint8_t> SerializeRtcp(const RtcpPacket& packet);
bool ParseRtcp(const std::vector<uint8_t>& buffer, RtcpPacket* packet);

}  // namespace converge
