// 16-bit RTP sequence-number arithmetic (RFC 3550 wrap-around rules) and an
// unwrapper that extends wrapped sequence numbers to monotone int64 values.
#pragma once

#include <cstdint>

namespace converge {

// True if `a` is strictly newer than `b` under mod-2^16 arithmetic.
inline bool SeqNewerThan(uint16_t a, uint16_t b) {
  return static_cast<uint16_t>(a - b) < 0x8000 && a != b;
}

inline uint16_t SeqMax(uint16_t a, uint16_t b) {
  return SeqNewerThan(a, b) ? a : b;
}

// Forward distance from `from` to `to` (how many increments).
inline uint16_t SeqDistance(uint16_t from, uint16_t to) {
  return static_cast<uint16_t>(to - from);
}

// Extends uint16 sequence numbers into a monotone 64-bit space. Handles
// reordering around the wrap point.
class SeqUnwrapper {
 public:
  int64_t Unwrap(uint16_t seq) {
    if (!initialized_) {
      last_unwrapped_ = seq;
      initialized_ = true;
      return last_unwrapped_;
    }
    const uint16_t last_wrapped = static_cast<uint16_t>(last_unwrapped_);
    int64_t delta = static_cast<int16_t>(static_cast<uint16_t>(seq - last_wrapped));
    last_unwrapped_ += delta;
    if (last_unwrapped_ < 0) last_unwrapped_ += 0x10000;
    return last_unwrapped_;
  }

 private:
  bool initialized_ = false;
  int64_t last_unwrapped_ = 0;
};

}  // namespace converge
