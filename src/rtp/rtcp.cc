#include "rtp/rtcp.h"

namespace converge {
namespace {

// RTCP packet-type tags for the wire format. 200/201/205/206 follow RFC
// 3550/4585; 210/211 are the Converge extensions (SDES frame rate, QoE
// feedback) registered in the experimental range.
enum class WireType : uint8_t {
  kSenderReport = 200,
  kReceiverReport = 201,
  kTransportFeedback = 205,
  kKeyframeRequest = 206,
  kNack = 207,
  kSdesFrameRate = 210,
  kQoeFeedback = 211,
};

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xFF));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v >> 16));
  PutU16(out, static_cast<uint16_t>(v & 0xFFFF));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFF));
}

uint16_t GetU16(const std::vector<uint8_t>& in, size_t& at) {
  const uint16_t v = static_cast<uint16_t>((in[at] << 8) | in[at + 1]);
  at += 2;
  return v;
}

uint32_t GetU32(const std::vector<uint8_t>& in, size_t& at) {
  uint32_t v = GetU16(in, at);
  v = (v << 16) | GetU16(in, at);
  return v;
}

uint64_t GetU64(const std::vector<uint8_t>& in, size_t& at) {
  uint64_t v = GetU32(in, at);
  v = (v << 32) | GetU32(in, at);
  return v;
}

struct WireSizeVisitor {
  int64_t operator()(const SenderReport&) const { return 28; }
  int64_t operator()(const ReceiverReport&) const { return 44; }
  int64_t operator()(const TransportFeedback& fb) const {
    return 8 + static_cast<int64_t>(fb.arrivals.size()) * 10;
  }
  int64_t operator()(const Nack& n) const {
    return 12 + static_cast<int64_t>(n.seqs.size()) * 2;
  }
  int64_t operator()(const KeyframeRequest&) const { return 12; }
  int64_t operator()(const SdesFrameRate&) const { return 16; }
  int64_t operator()(const QoeFeedback&) const { return 20; }
};

}  // namespace

int64_t RtcpPacket::wire_size() const {
  // Common header (4) + path id word (4) + payload.
  return 8 + std::visit(WireSizeVisitor{}, payload);
}

std::vector<uint8_t> SerializeRtcp(const RtcpPacket& packet) {
  std::vector<uint8_t> out;
  out.push_back(0x80);  // V=2, P=0, RC=0
  // Packet type.
  WireType type = WireType::kSenderReport;
  if (std::holds_alternative<ReceiverReport>(packet.payload))
    type = WireType::kReceiverReport;
  else if (std::holds_alternative<TransportFeedback>(packet.payload))
    type = WireType::kTransportFeedback;
  else if (std::holds_alternative<Nack>(packet.payload))
    type = WireType::kNack;
  else if (std::holds_alternative<KeyframeRequest>(packet.payload))
    type = WireType::kKeyframeRequest;
  else if (std::holds_alternative<SdesFrameRate>(packet.payload))
    type = WireType::kSdesFrameRate;
  else if (std::holds_alternative<QoeFeedback>(packet.payload))
    type = WireType::kQoeFeedback;
  out.push_back(static_cast<uint8_t>(type));
  PutU16(out, 0);  // length placeholder (words - 1), patched below
  PutU32(out, static_cast<uint32_t>(packet.path_id));  // Figure 19 PathID word

  std::visit(
      [&out](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, SenderReport>) {
          PutU32(out, p.ssrc);
          PutU64(out, static_cast<uint64_t>(p.send_time.us()));
          PutU32(out, p.packet_count);
          PutU32(out, p.octet_count);
        } else if constexpr (std::is_same_v<T, ReceiverReport>) {
          PutU32(out, p.ssrc);
          PutU32(out, static_cast<uint32_t>(p.fraction_lost * 0xFFFFFF));
          PutU32(out, static_cast<uint32_t>(p.cumulative_lost));
          PutU16(out, p.ext_high_seq);
          PutU16(out, p.ext_high_mp_seq);
          PutU64(out, static_cast<uint64_t>(p.jitter.us()));
          PutU64(out, static_cast<uint64_t>(p.last_sr_time.us()));
          PutU64(out, static_cast<uint64_t>(p.delay_since_last_sr.us()));
        } else if constexpr (std::is_same_v<T, TransportFeedback>) {
          PutU32(out, static_cast<uint32_t>(p.arrivals.size()));
          for (const auto& a : p.arrivals) {
            PutU16(out, static_cast<uint16_t>(a.mp_transport_seq & 0xFFFF));
            PutU64(out, static_cast<uint64_t>(a.recv_time.us()));
          }
        } else if constexpr (std::is_same_v<T, Nack>) {
          PutU32(out, p.ssrc);
          PutU16(out, static_cast<uint16_t>(p.seqs.size()));
          for (uint16_t s : p.seqs) PutU16(out, s);
        } else if constexpr (std::is_same_v<T, KeyframeRequest>) {
          PutU32(out, p.ssrc);
        } else if constexpr (std::is_same_v<T, SdesFrameRate>) {
          PutU32(out, p.ssrc);
          PutU32(out, static_cast<uint32_t>(p.fps * 1000.0));
        } else if constexpr (std::is_same_v<T, QoeFeedback>) {
          PutU32(out, static_cast<uint32_t>(p.alpha));
          PutU64(out, static_cast<uint64_t>(p.fcd.us()));
        }
      },
      packet.payload);

  // Patch length: total 32-bit words minus one (RFC 3550 convention).
  while ((out.size() % 4) != 0) out.push_back(0);
  const uint16_t words = static_cast<uint16_t>(out.size() / 4 - 1);
  out[2] = static_cast<uint8_t>(words >> 8);
  out[3] = static_cast<uint8_t>(words & 0xFF);
  return out;
}

bool ParseRtcp(const std::vector<uint8_t>& in, RtcpPacket* packet) {
  if (in.size() < 8 || (in[0] >> 6) != 2) return false;
  const uint8_t type = in[1];
  size_t at = 4;
  packet->path_id = static_cast<PathId>(GetU32(in, at));

  switch (static_cast<WireType>(type)) {
    case WireType::kSenderReport: {
      SenderReport sr;
      sr.ssrc = GetU32(in, at);
      sr.send_time = Timestamp::Micros(static_cast<int64_t>(GetU64(in, at)));
      sr.packet_count = GetU32(in, at);
      sr.octet_count = GetU32(in, at);
      packet->payload = sr;
      return true;
    }
    case WireType::kReceiverReport: {
      ReceiverReport rr;
      rr.ssrc = GetU32(in, at);
      rr.fraction_lost = static_cast<double>(GetU32(in, at)) / 0xFFFFFF;
      rr.cumulative_lost = GetU32(in, at);
      rr.ext_high_seq = GetU16(in, at);
      rr.ext_high_mp_seq = GetU16(in, at);
      rr.jitter = Duration::Micros(static_cast<int64_t>(GetU64(in, at)));
      rr.last_sr_time = Timestamp::Micros(static_cast<int64_t>(GetU64(in, at)));
      rr.delay_since_last_sr =
          Duration::Micros(static_cast<int64_t>(GetU64(in, at)));
      packet->payload = rr;
      return true;
    }
    case WireType::kTransportFeedback: {
      TransportFeedback fb;
      const uint32_t n = GetU32(in, at);
      for (uint32_t i = 0; i < n; ++i) {
        TransportFeedback::Arrival a;
        a.mp_transport_seq = GetU16(in, at);
        a.recv_time = Timestamp::Micros(static_cast<int64_t>(GetU64(in, at)));
        fb.arrivals.push_back(a);
      }
      packet->payload = fb;
      return true;
    }
    case WireType::kNack: {
      Nack n;
      n.ssrc = GetU32(in, at);
      const uint16_t count = GetU16(in, at);
      for (uint16_t i = 0; i < count; ++i) n.seqs.push_back(GetU16(in, at));
      packet->payload = n;
      return true;
    }
    case WireType::kKeyframeRequest: {
      KeyframeRequest k;
      k.ssrc = GetU32(in, at);
      packet->payload = k;
      return true;
    }
    case WireType::kSdesFrameRate: {
      SdesFrameRate s;
      s.ssrc = GetU32(in, at);
      s.fps = static_cast<double>(GetU32(in, at)) / 1000.0;
      packet->payload = s;
      return true;
    }
    case WireType::kQoeFeedback: {
      QoeFeedback q;
      q.path_id = packet->path_id;
      q.alpha = static_cast<int32_t>(GetU32(in, at));
      q.fcd = Duration::Micros(static_cast<int64_t>(GetU64(in, at)));
      packet->payload = q;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace converge
