// Single source of truth for the SSRC layout shared by the sender, the
// receiver subscription lists, and SDP negotiation. Historically the base
// (0x1000 + stream) was hardcoded independently in the sender and receiver
// blocks of call.cc and again in signaling — workable for one point-to-point
// call, but colliding as soon as two participants publish streams into the
// same conference. Every SSRC now derives from (participant, stream,
// incarnation):
//
//   participant 0: 0x1000, 0x1001, ...   (the legacy 2-party layout)
//   participant 1: 0x1100, 0x1101, ...
//   participant p: 0x1000 + p * 0x100 + stream
//
// A participant that leaves and rejoins mid-call comes back under a new
// *incarnation*. Incarnations occupy disjoint 0x100000-wide banks above the
// legacy block, so a rejoiner's streams can never collide with any SSRC it
// (or anyone else) used before — receivers, hub downlink sequence spaces,
// and NACK/RTX history keyed by SSRC all see a brand-new stream identity,
// exactly as a real endpoint would re-randomize its SSRCs on reconnect.
// Incarnation 0 reproduces the historical layout bit-for-bit, which keeps
// the seed-era JSON fixtures valid.
//
// The stride caps streams-per-participant at 256 and participants-per-
// incarnation at 4096, far above the 3-stream regime the paper evaluates;
// Conference enforces the bounds with invariants rather than silently
// wrapping into a neighbour's block.
#pragma once

#include <cstdint>

namespace converge {

class SsrcAllocator {
 public:
  static constexpr uint32_t kBase = 0x1000;
  static constexpr uint32_t kParticipantStride = 0x100;
  static constexpr uint32_t kIncarnationStride = 0x100000;
  static constexpr int kMaxStreamsPerParticipant =
      static_cast<int>(kParticipantStride);
  static constexpr int kMaxParticipantsPerIncarnation =
      static_cast<int>(kIncarnationStride / kParticipantStride);

  static constexpr uint32_t StreamSsrc(int participant, int stream,
                                       int incarnation = 0) {
    return kBase +
           static_cast<uint32_t>(incarnation) * kIncarnationStride +
           static_cast<uint32_t>(participant) * kParticipantStride +
           static_cast<uint32_t>(stream);
  }
};

}  // namespace converge
