// RTP packet model with the Converge multipath header extension.
//
// The simulator passes `RtpPacket` structs by value/shared_ptr instead of
// serialized buffers, but the wire format of the header + multipath extension
// (paper Appendix B, Figure 18) is implemented and round-trip tested so the
// model stays faithful to what Converge puts on the wire. Payload bytes are
// represented only by their size.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/path.h"
#include "util/time.h"

namespace converge {

// What the packet carries. In the real system this is implicit in the codec
// payload; Converge exposes it to the scheduler (§4.1).
enum class PayloadKind : uint8_t {
  kMedia = 0,  // slice data of a key or delta frame
  kPps,        // Picture Parameter Set: required per frame
  kSps,        // Sequence Parameter Set: required per group of frames
  kFec,        // XOR parity packet
  kRtx,        // retransmission in response to a NACK
  kProbe,      // duplicated packet probing a disabled path (§4.2)
};

// Scheduler priority levels from Table 2 (1 = highest). Plain delta-frame
// media packets have no priority (kNone).
enum class Priority : uint8_t {
  kRetransmit = 1,
  kKeyframe = 2,
  kSps = 3,
  kPps = 4,
  kFec = 5,
  kNone = 6,
};

enum class FrameKind : uint8_t { kKey = 0, kDelta = 1 };

// Compact description of a packet protected by a FEC parity packet. The
// real XOR codec recovers the whole bitstream; the simulator recovers this
// metadata (see src/fec/xor_fec.h).
struct ProtectedPacketMeta {
  uint16_t seq = 0;
  int stream_id = 0;
  int64_t frame_id = -1;
  int64_t gop_id = -1;
  FrameKind frame_kind = FrameKind::kDelta;
  PayloadKind kind = PayloadKind::kMedia;
  Priority priority = Priority::kNone;
  bool first_in_frame = false;
  bool last_in_frame = false;
  bool marker = false;
  int64_t payload_bytes = 0;
  Timestamp capture_time;
  // Layer coordinates of the covered packet (defaults for single-layer).
  uint8_t spatial_id = 0;
  uint8_t num_spatial = 1;
  uint8_t temporal_id = 0;
  uint8_t num_temporal = 1;
};

// Recovery metadata of one FEC parity packet: the covered sequence numbers
// and per-packet rebuild info. Built once by the encoder and shared,
// immutable, by every copy of the parity packet (sender history, link
// in-flight captures, receiver buffers) — copying an RtpPacket is a flat
// memcpy plus a refcount bump, never a vector clone.
struct FecBlockMeta {
  std::vector<ProtectedPacketMeta> covered;
};

struct RtpPacket {
  // ---- standard RTP header fields ----
  uint32_t ssrc = 0;
  uint16_t seq = 0;            // per-SSRC media sequence number
  uint32_t rtp_timestamp = 0;  // 90 kHz media clock
  bool marker = false;         // set on the last packet of a frame
  uint8_t payload_type = 96;

  // ---- Converge multipath extension (Appendix B) ----
  PathId path_id = 0;
  uint16_t mp_seq = 0;            // per-path media sequence
  uint16_t mp_transport_seq = 0;  // per-path transport-wide sequence

  // ---- content metadata (codec-derived in the real stack) ----
  PayloadKind kind = PayloadKind::kMedia;
  FrameKind frame_kind = FrameKind::kDelta;
  Priority priority = Priority::kNone;
  int stream_id = 0;       // camera stream index
  int64_t frame_id = -1;   // monotone per stream, shared across rungs
  int64_t gop_id = -1;
  bool first_in_frame = false;
  bool last_in_frame = false;
  int64_t payload_bytes = 0;
  int qp = 30;  // encoder QP of the carrying frame

  // ---- layer coordinates (x-converge-layers extension element) ----
  // Simulcast rung / temporal layer of the carrying frame. On the wire the
  // element is emitted only for layered streams (num_spatial > 1 or
  // num_temporal > 1), so single-layer serialization stays byte-identical.
  uint8_t spatial_id = 0;
  uint8_t num_spatial = 1;
  uint8_t temporal_id = 0;
  uint8_t num_temporal = 1;

  // Receiver-side provenance: set when this packet was rebuilt by FEC
  // recovery or arrived as an RTX retransmission.
  bool via_fec = false;
  bool via_rtx = false;

  // ---- timing (sim metadata) ----
  Timestamp capture_time;
  Timestamp send_time;

  // ---- FEC metadata (valid when kind == kFec) ----
  int64_t fec_block = -1;
  // Shared immutable recovery info; null on non-parity packets.
  std::shared_ptr<const FecBlockMeta> fec;

  // ---- RTX metadata (set on retransmitted copies) ----
  // Which (path, per-path seq) hole this retransmission plugs, so the
  // receiver's NACK tracker can stop chasing it.
  PathId rtx_for_path = kInvalidPathId;
  uint16_t rtx_for_mp_seq = 0;

  // True for duplicated probe copies sent on disabled paths.
  bool is_probe_duplicate = false;

  // Size on the wire: payload + 12-byte header + multipath extension.
  int64_t wire_size() const;

  bool IsDecodingCritical() const {
    return priority != Priority::kNone && priority != Priority::kFec;
  }
};

// Fixed RTP header size plus the Converge extension block (Figure 18):
// 4-byte extension header + pathID/MpSeq/MpTransportSeq elements, padded.
inline constexpr int64_t kRtpHeaderBytes = 12;
inline constexpr int64_t kMultipathExtensionBytes = 16;

// Serializes the header + multipath extension per Figure 18 (RFC 5285
// one-byte extension elements). Returns header bytes only; the payload is
// abstract in the simulator.
std::vector<uint8_t> SerializeRtpHeader(const RtpPacket& packet);

// Parses a buffer produced by SerializeRtpHeader. Returns false on a
// malformed buffer. Only wire-visible fields are recovered.
bool ParseRtpHeader(const std::vector<uint8_t>& buffer, RtpPacket* packet);

}  // namespace converge
