#include "rtp/rtp_packet.h"

namespace converge {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xFF));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>(v & 0xFF));
}

uint16_t GetU16(const std::vector<uint8_t>& in, size_t at) {
  return static_cast<uint16_t>((in[at] << 8) | in[at + 1]);
}

uint32_t GetU32(const std::vector<uint8_t>& in, size_t at) {
  return (static_cast<uint32_t>(in[at]) << 24) |
         (static_cast<uint32_t>(in[at + 1]) << 16) |
         (static_cast<uint32_t>(in[at + 2]) << 8) |
         static_cast<uint32_t>(in[at + 3]);
}

// RFC 5285 one-byte extension element IDs used by the Converge extension.
constexpr uint8_t kExtIdPathId = 1;
constexpr uint8_t kExtIdMpSeq = 2;
constexpr uint8_t kExtIdMpTransportSeq = 3;
// Layer coordinates (simulcast rung + temporal layer), emitted only for
// layered streams: the element fits in the padding of the 3-word extension
// block, so adding it changes neither wire_size nor the single-layer bytes.
constexpr uint8_t kExtIdLayers = 4;
constexpr uint16_t kOneByteProfile = 0xBEDE;

}  // namespace

int64_t RtpPacket::wire_size() const {
  return payload_bytes + kRtpHeaderBytes + kMultipathExtensionBytes;
}

std::vector<uint8_t> SerializeRtpHeader(const RtpPacket& packet) {
  std::vector<uint8_t> out;
  out.reserve(kRtpHeaderBytes + kMultipathExtensionBytes);

  // Byte 0: V=2, P=0, X=1 (extension present), CC=0.
  out.push_back(0x90);
  // Byte 1: M bit + payload type.
  out.push_back(static_cast<uint8_t>((packet.marker ? 0x80 : 0x00) |
                                     (packet.payload_type & 0x7F)));
  PutU16(out, packet.seq);
  PutU32(out, packet.rtp_timestamp);
  PutU32(out, packet.ssrc);

  // Extension block: profile 0xBEDE, length in 32-bit words.
  PutU16(out, kOneByteProfile);
  PutU16(out, 3);  // 12 bytes of extension data

  // pathID element: id=1, len=1 byte (L field = len-1 = 0).
  out.push_back(static_cast<uint8_t>((kExtIdPathId << 4) | 0));
  out.push_back(static_cast<uint8_t>(packet.path_id & 0xFF));
  // MpSequenceNumber: id=2, 2 bytes (L=1).
  out.push_back(static_cast<uint8_t>((kExtIdMpSeq << 4) | 1));
  PutU16(out, packet.mp_seq);
  // MpTransportSequenceNumber: id=3, 2 bytes (L=1).
  out.push_back(static_cast<uint8_t>((kExtIdMpTransportSeq << 4) | 1));
  PutU16(out, packet.mp_transport_seq);
  // Layers element: id=4, 2 bytes (L=1), only when the stream is layered.
  // Byte 0 packs (spatial_id, temporal_id), byte 1 (num_spatial,
  // num_temporal) — 4 bits each, mirroring the AV1 dependency descriptor's
  // compact layer coordinates.
  if (packet.num_spatial > 1 || packet.num_temporal > 1) {
    out.push_back(static_cast<uint8_t>((kExtIdLayers << 4) | 1));
    out.push_back(static_cast<uint8_t>(((packet.spatial_id & 0x0F) << 4) |
                                       (packet.temporal_id & 0x0F)));
    out.push_back(static_cast<uint8_t>(((packet.num_spatial & 0x0F) << 4) |
                                       (packet.num_temporal & 0x0F)));
  }
  // Pad to a 32-bit boundary (8 data bytes used, pad 4).
  while ((out.size() % 4) != 0) out.push_back(0);
  while (out.size() < static_cast<size_t>(kRtpHeaderBytes + kMultipathExtensionBytes)) {
    out.push_back(0);
  }
  return out;
}

bool ParseRtpHeader(const std::vector<uint8_t>& in, RtpPacket* packet) {
  if (in.size() < static_cast<size_t>(kRtpHeaderBytes + 4)) return false;
  if ((in[0] >> 6) != 2) return false;         // version
  const bool has_extension = (in[0] & 0x10) != 0;
  packet->marker = (in[1] & 0x80) != 0;
  packet->payload_type = in[1] & 0x7F;
  packet->seq = GetU16(in, 2);
  packet->rtp_timestamp = GetU32(in, 4);
  packet->ssrc = GetU32(in, 8);
  if (!has_extension) return true;

  size_t at = 12;
  if (GetU16(in, at) != kOneByteProfile) return false;
  const size_t ext_words = GetU16(in, at + 2);
  at += 4;
  const size_t ext_end = at + ext_words * 4;
  if (ext_end > in.size()) return false;

  while (at < ext_end) {
    const uint8_t header = in[at];
    if (header == 0) {  // padding
      ++at;
      continue;
    }
    const uint8_t id = header >> 4;
    const size_t len = static_cast<size_t>(header & 0x0F) + 1;
    ++at;
    if (at + len > ext_end) return false;
    switch (id) {
      case kExtIdPathId:
        packet->path_id = static_cast<PathId>(in[at]);
        break;
      case kExtIdMpSeq:
        packet->mp_seq = GetU16(in, at);
        break;
      case kExtIdMpTransportSeq:
        packet->mp_transport_seq = GetU16(in, at);
        break;
      case kExtIdLayers:
        packet->spatial_id = in[at] >> 4;
        packet->temporal_id = in[at] & 0x0F;
        packet->num_spatial = in[at + 1] >> 4;
        packet->num_temporal = in[at + 1] & 0x0F;
        break;
      default:
        break;  // unknown element: skip
    }
    at += len;
  }
  return true;
}

}  // namespace converge
