#include "sim/event_loop.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {

EventLoop::EventLoop() : bucket_head_(kWheelTicks, -1) {}

uint32_t EventLoop::AcquireSlot(Callback&& cb) {
  const int32_t participant = TraceRecorder::CurrentParticipant();
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
    slot_meta_[slot].participant = participant;
    return slot;
  }
  slots_.push_back(std::move(cb));
  slot_meta_.push_back(SlotMeta{Timestamp::Zero(), 0, -1, participant});
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::Insert(Entry entry) {
  const int64_t tick = TickOf(entry.at);
  if (tick <= cursor_tick_) {
    // The open tick (or, after a RunUntil boundary left the cursor parked on
    // a future tick, an earlier one): the cursor heap's exact (at, seq)
    // order puts it in its rightful place among the already-expanded events.
    cursor_.push_back(entry);
    std::push_heap(cursor_.begin(), cursor_.end(), Later{});
  } else if (tick < cursor_tick_ + static_cast<int64_t>(kWheelTicks)) {
    // Within the wheel horizon: O(1) intrusive push onto the tick's bucket.
    // The window invariant guarantees one round per bucket, so draining
    // never has to filter entries by tick.
    const size_t b = static_cast<uint64_t>(tick) & kWheelMask;
    SlotMeta& meta = slot_meta_[entry.slot];
    meta.at = entry.at;
    meta.seq = entry.seq;
    meta.next = bucket_head_[b];
    bucket_head_[b] = static_cast<int32_t>(entry.slot);
    ++near_count_;
  } else {
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void EventLoop::ScheduleAt(Timestamp at, Callback&& cb) {
  if (at < now_) {
    ++clamped_past_;
    CONVERGE_INVARIANT("EventLoop", now_, at >= now_,
                       "schedule-in-the-past clamped: at=" + at.ToString() +
                           " now=" + now_.ToString());
    at = now_;
  }
  const uint32_t slot = AcquireSlot(std::move(cb));
  Insert(Entry{at, next_seq_++, slot});
}

void EventLoop::ScheduleIn(Duration delay, Callback&& cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventLoop::DumpBucket(int64_t tick) {
  const size_t b = static_cast<uint64_t>(tick) & kWheelMask;
  int32_t head = bucket_head_[b];
  bucket_head_[b] = -1;
  while (head != -1) {
    const SlotMeta& meta = slot_meta_[head];
    cursor_.push_back(Entry{meta.at, meta.seq, static_cast<uint32_t>(head)});
    std::push_heap(cursor_.begin(), cursor_.end(), Later{});
    head = meta.next;
    --near_count_;
  }
}

bool EventLoop::AdvanceCursor(Timestamp end) {
  const int64_t end_tick = TickOf(end);
  while (near_count_ > 0 || !overflow_.empty()) {
    int64_t next_tick;
    if (near_count_ > 0) {
      // Some bucket inside the window is populated; scan forward. Bounded by
      // kWheelTicks probes, each a 4-byte load.
      next_tick = cursor_tick_;
      do {
        ++next_tick;
      } while (bucket_head_[static_cast<uint64_t>(next_tick) & kWheelMask] ==
               -1);
    } else {
      // Wheel empty: jump straight to the earliest far event.
      next_tick = TickOf(overflow_.front().at);
    }
    if (next_tick > end_tick) return false;
    cursor_tick_ = next_tick;
    DumpBucket(next_tick);
    // The window slid forward: pull far events that are now inside it.
    const int64_t window_end =
        cursor_tick_ + static_cast<int64_t>(kWheelTicks);
    while (!overflow_.empty() && TickOf(overflow_.front().at) < window_end) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      Entry entry = overflow_.back();
      overflow_.pop_back();
      if (TickOf(entry.at) <= cursor_tick_) {
        cursor_.push_back(entry);
        std::push_heap(cursor_.begin(), cursor_.end(), Later{});
      } else {
        const size_t b = static_cast<uint64_t>(TickOf(entry.at)) & kWheelMask;
        SlotMeta& meta = slot_meta_[entry.slot];
        meta.at = entry.at;
        meta.seq = entry.seq;
        meta.next = bucket_head_[b];
        bucket_head_[b] = static_cast<int32_t>(entry.slot);
        ++near_count_;
      }
    }
    if (!cursor_.empty()) return true;
  }
  return false;
}

void EventLoop::RunUntil(Timestamp end) {
  // Restoring the scheduling-time participant tag only matters when a trace
  // recorder is installed; skip the TLS store entirely otherwise so untraced
  // dispatch stays a plain pop + call.
  const bool tag_participants = TraceRecorder::Current() != nullptr;
  for (;;) {
    if (cursor_.empty() && !AdvanceCursor(end)) break;
    if (cursor_.front().at > end) break;
    std::pop_heap(cursor_.begin(), cursor_.end(), Later{});
    const Entry entry = cursor_.back();
    cursor_.pop_back();
    // Move the callback out before running it: the callback may schedule
    // more events, which can reuse the slot.
    Callback cb = std::move(slots_[entry.slot]);
    slots_[entry.slot] = nullptr;
    free_slots_.push_back(entry.slot);
    now_ = entry.at;
    ++executed_;
    if (tag_participants) {
      TraceRecorder::SetCurrentParticipant(slot_meta_[entry.slot].participant);
    }
    cb();
  }
  if (tag_participants) TraceRecorder::SetCurrentParticipant(-1);
  if (end.IsFinite() && now_ < end) now_ = end;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

uint64_t EventLoop::StartRepeating(Duration period, Callback tick) {
  uint32_t slot;
  if (!repeating_free_.empty()) {
    slot = repeating_free_.back();
    repeating_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(repeating_.size());
    repeating_.emplace_back();
  }
  RepeatingSlot& rs = repeating_[slot];
  rs.tick = std::move(tick);
  rs.period = period;
  const uint32_t generation = rs.generation;
  ScheduleIn(period, [this, slot, generation] {
    FireRepeating(slot, generation);
  });
  return (static_cast<uint64_t>(slot) << 32) | generation;
}

void EventLoop::CancelRepeating(uint64_t handle) {
  const uint32_t slot = static_cast<uint32_t>(handle >> 32);
  const uint32_t generation = static_cast<uint32_t>(handle);
  if (slot >= repeating_.size()) return;
  RepeatingSlot& rs = repeating_[slot];
  if (rs.generation != generation) return;  // already cancelled / reused
  ++rs.generation;
  rs.tick = nullptr;
  repeating_free_.push_back(slot);
}

void EventLoop::FireRepeating(uint32_t slot, uint32_t generation) {
  RepeatingSlot& rs = repeating_[slot];
  if (rs.generation != generation) return;  // cancelled while in flight
  // Move the tick out while it runs: the tick may cancel its own task (which
  // frees and possibly re-populates the slot) without destroying the
  // callable mid-call.
  Callback tick = std::move(rs.tick);
  tick();
  RepeatingSlot& after = repeating_[slot];
  if (after.generation != generation) return;  // cancelled inside the tick
  after.tick = std::move(tick);
  ScheduleIn(after.period, [this, slot, generation] {
    FireRepeating(slot, generation);
  });
}

}  // namespace converge
