#include "sim/event_loop.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/trace_recorder.h"

namespace converge {

uint32_t EventLoop::AcquireSlot(Callback cb) {
  const int32_t participant = TraceRecorder::CurrentParticipant();
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
    slot_participants_[slot] = participant;
    return slot;
  }
  slots_.push_back(std::move(cb));
  slot_participants_.push_back(participant);
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::ScheduleAt(Timestamp at, Callback cb) {
  if (at < now_) at = now_;
  const uint32_t slot = AcquireSlot(std::move(cb));
  heap_.push_back(HeapEntry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventLoop::ScheduleIn(Duration delay, Callback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventLoop::RunUntil(Timestamp end) {
  // Restoring the scheduling-time participant tag only matters when a trace
  // recorder is installed; skip the TLS store entirely otherwise so untraced
  // dispatch stays a plain heap pop + call.
  const bool tag_participants = TraceRecorder::Current() != nullptr;
  while (!heap_.empty() && heap_.front().at <= end) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    // Move the callback out before running it: the callback may schedule
    // more events, which can reuse the slot.
    Callback cb = std::move(slots_[entry.slot]);
    slots_[entry.slot] = nullptr;
    free_slots_.push_back(entry.slot);
    now_ = entry.at;
    ++executed_;
    if (tag_participants) {
      TraceRecorder::SetCurrentParticipant(slot_participants_[entry.slot]);
    }
    cb();
  }
  if (tag_participants) TraceRecorder::SetCurrentParticipant(-1);
  if (end.IsFinite() && now_ < end) now_ = end;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

RepeatingTask::RepeatingTask(EventLoop* loop, Duration period,
                             std::function<void()> tick)
    : loop_(loop),
      period_(period),
      tick_(std::move(tick)),
      alive_(std::make_shared<bool>(true)) {
  Arm();
}

RepeatingTask::~RepeatingTask() { Stop(); }

void RepeatingTask::Stop() {
  if (alive_) *alive_ = false;
  alive_.reset();
}

void RepeatingTask::Arm() {
  std::weak_ptr<bool> weak = alive_;
  loop_->ScheduleIn(period_, [this, weak] {
    auto alive = weak.lock();
    if (!alive || !*alive) return;
    tick_();
    // The tick may have stopped or destroyed the task; `alive` (a strong
    // ref to the flag) outlives the object, so check it before touching
    // `this` again.
    if (*alive) Arm();
  });
}

}  // namespace converge
