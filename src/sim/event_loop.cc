#include "sim/event_loop.h"

#include <memory>
#include <utility>

namespace converge {

void EventLoop::ScheduleAt(Timestamp at, Callback cb) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

void EventLoop::ScheduleIn(Duration delay, Callback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventLoop::RunUntil(Timestamp end) {
  while (!queue_.empty() && queue_.top().at <= end) {
    // Copy out before pop: the callback may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.cb();
  }
  if (end.IsFinite() && now_ < end) now_ = end;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

RepeatingTask::RepeatingTask(EventLoop* loop, Duration period,
                             std::function<void()> tick)
    : loop_(loop),
      period_(period),
      tick_(std::move(tick)),
      alive_(std::make_shared<bool>(true)) {
  Arm();
}

RepeatingTask::~RepeatingTask() { Stop(); }

void RepeatingTask::Stop() {
  if (alive_) *alive_ = false;
  alive_.reset();
}

void RepeatingTask::Arm() {
  std::weak_ptr<bool> weak = alive_;
  loop_->ScheduleIn(period_, [this, weak] {
    auto alive = weak.lock();
    if (!alive || !*alive) return;
    tick_();
    Arm();
  });
}

}  // namespace converge
