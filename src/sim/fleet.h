// Fleet-scale simulation driver: thousands of concurrent conferences
// interleaved across cores.
//
// A single Conference is a deterministic island — its own EventLoop, its own
// seeded Random. A fleet run shards N such islands over worker threads and,
// within each shard, interleaves them in fixed time quanta: every call is
// advanced to the same fleet-time boundary before any call crosses it, so
// all calls in a shard are genuinely concurrent (live state, live arenas)
// rather than run back to back. This is the workload that sizes the
// simulator for capacity studies: how many simultaneous 3-party calls fit a
// core, and what the steady-state memory per call is.
//
// Determinism contract: a call's results depend only on its own config
// (EventLoop::RunUntil(t1) followed by RunUntil(t2) executes exactly the
// events RunUntil(t2) would), so the per-call summaries are byte-identical
// for ANY shard count or quantum — `bench_fleet --smoke` in CI diffs
// jobs=1 against jobs=8 to pin this.
//
// Churn: optional per-call join offsets stagger calls across fleet time;
// a call occupies [offset, offset + duration) and its state exists only in
// that window (constructed at join, destroyed at leave), so mid-run joins
// and leaves exercise allocation/teardown under load exactly like a real
// conferencing fleet.
#pragma once

#include <vector>

#include "session/conference.h"

namespace converge {

struct FleetConfig {
  // One entry per call; each carries its own topology/variant/seed/duration.
  std::vector<ConferenceConfig> calls;
  // Worker shards; <=0 => DefaultJobs(). Calls are dealt round-robin.
  int shards = 0;
  // Fleet-time slice: every live call advances to each quantum boundary
  // before any call passes it. Smaller quanta mean tighter interleaving
  // (more realistic concurrency) at slightly more switching overhead.
  Duration quantum = Duration::Millis(250);
  // Fleet-time join offset per call (empty => everyone joins at 0).
  std::vector<Duration> start_offsets;
};

// Compact deterministic per-call digest (full ConferenceStats for thousands
// of calls would dwarf the simulation state itself).
struct FleetCallSummary {
  int index = 0;
  double avg_fps = 0.0;
  double avg_freeze_ms = 0.0;
  double avg_e2e_ms = 0.0;
  double total_tput_mbps = 0.0;
  int64_t frame_drops = 0;
  int64_t keyframe_requests = 0;
  int64_t media_packets_sent = 0;
  int64_t frames_encoded = 0;
  // Cascaded-fabric calls only: participants re-homed across hubs by
  // mid-call hub failures (sum of the per-hub rehomed_onto counters;
  // 0 for every single-hub call).
  int64_t rehomed = 0;
};

struct FleetResult {
  std::vector<FleetCallSummary> calls;  // input order, independent of shards
  int shards = 0;
  double sim_seconds = 0.0;   // total simulated seconds summed over calls
  double wall_seconds = 0.0;
  double sim_per_wall = 0.0;  // simulated seconds per wall second
  double calls_per_core = 0.0;
  int max_concurrent = 0;     // peak simultaneously-live calls (fleet time)
  int64_t peak_rss_kb = 0;    // process peak RSS after the run
};

FleetResult RunFleet(const FleetConfig& config);

}  // namespace converge
