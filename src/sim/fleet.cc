#include "sim/fleet.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "util/parallel.h"

namespace converge {
namespace {

Duration OffsetOf(const FleetConfig& config, size_t i) {
  return i < config.start_offsets.size() ? config.start_offsets[i]
                                         : Duration::Zero();
}

FleetCallSummary Summarize(int index, const ConferenceStats& stats) {
  FleetCallSummary s;
  s.index = index;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    s.frame_drops += leg.stats.total_frame_drops;
    s.keyframe_requests += leg.stats.total_keyframe_requests;
    s.media_packets_sent += leg.stats.media_packets_sent;
    s.frames_encoded += leg.stats.frames_encoded;
  }
  for (const ConferenceStats::Hub& hub : stats.hubs) {
    s.rehomed += hub.rehomed_onto;
  }
  double fps = 0.0;
  double freeze = 0.0;
  double e2e = 0.0;
  int receiving = 0;
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    if (p.inbound_streams == 0) continue;
    fps += p.avg_fps;
    freeze += p.avg_freeze_ms;
    e2e += p.avg_e2e_ms;
    s.total_tput_mbps += p.total_tput_mbps;
    ++receiving;
  }
  if (receiving > 0) {
    s.avg_fps = fps / receiving;
    s.avg_freeze_ms = freeze / receiving;
    s.avg_e2e_ms = e2e / receiving;
  }
  return s;
}

int64_t PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);  // KiB on Linux
}

}  // namespace

FleetResult RunFleet(const FleetConfig& config) {
  FleetResult out;
  const size_t n = config.calls.size();
  out.calls.resize(n);
  const int shards =
      std::max(1, std::min(config.shards > 0 ? config.shards : DefaultJobs(),
                           static_cast<int>(n > 0 ? n : 1)));
  out.shards = shards;
  if (n == 0) return out;

  // Total simulated time and the peak-concurrency envelope both follow from
  // the (offset, duration) windows alone — computed up front, deterministic.
  std::vector<std::pair<Duration, int>> edges;  // (fleet time, +1/-1)
  edges.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    const Duration offset = OffsetOf(config, i);
    out.sim_seconds += config.calls[i].duration.seconds();
    edges.emplace_back(offset, 1);
    edges.emplace_back(offset + config.calls[i].duration, -1);
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              // A leave at t happens before a join at t: windows are
              // half-open [offset, offset + duration).
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  int live = 0;
  for (const auto& [t, delta] : edges) {
    live += delta;
    out.max_concurrent = std::max(out.max_concurrent, live);
  }

  const Duration quantum =
      config.quantum > Duration::Zero() ? config.quantum
                                        : Duration::Millis(250);

  const auto wall_start = std::chrono::steady_clock::now();
  ParallelFor(
      shards,
      [&](int64_t shard) {
        // This shard's calls, joined in fleet-time order. Each summary slot
        // is written by exactly one shard, so no synchronization is needed.
        std::vector<size_t> mine;
        for (size_t i = static_cast<size_t>(shard); i < n;
             i += static_cast<size_t>(shards)) {
          mine.push_back(i);
        }
        std::stable_sort(mine.begin(), mine.end(), [&](size_t a, size_t b) {
          return OffsetOf(config, a) < OffsetOf(config, b);
        });

        struct Active {
          size_t index;
          Duration offset;
          std::unique_ptr<Conference> conf;
        };
        std::vector<Active> active;
        size_t next_join = 0;
        Timestamp fleet_now = Timestamp::Zero();

        while (next_join < mine.size() || !active.empty()) {
          const Timestamp fleet_next = fleet_now + quantum;
          // Joins inside (fleet_now, fleet_next]: calls are built (and their
          // first slice run) the first quantum that covers them.
          while (next_join < mine.size() &&
                 Timestamp::Zero() + OffsetOf(config, mine[next_join]) <
                     fleet_next) {
            const size_t i = mine[next_join++];
            Active a;
            a.index = i;
            a.offset = OffsetOf(config, i);
            a.conf = std::make_unique<Conference>(config.calls[i]);
            a.conf->Start();
            active.push_back(std::move(a));
          }
          // Advance every live call to the boundary (its own clock runs
          // `offset` behind fleet time), retiring the ones that finish.
          for (Active& a : active) {
            const Duration duration = config.calls[a.index].duration;
            const Duration local =
                std::min((fleet_next - Timestamp::Zero()) - a.offset,
                         duration);
            a.conf->AdvanceTo(Timestamp::Zero() + local);
            if (local >= duration) {
              out.calls[a.index] =
                  Summarize(static_cast<int>(a.index), a.conf->Collect());
              a.conf.reset();
            }
          }
          active.erase(std::remove_if(active.begin(), active.end(),
                                      [](const Active& a) {
                                        return a.conf == nullptr;
                                      }),
                       active.end());
          fleet_now = fleet_next;
        }
      },
      shards);
  const auto wall_end = std::chrono::steady_clock::now();

  out.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  out.sim_per_wall =
      out.wall_seconds > 0.0 ? out.sim_seconds / out.wall_seconds : 0.0;
  out.calls_per_core = static_cast<double>(n) / static_cast<double>(shards);
  out.peak_rss_kb = PeakRssKb();
  return out;
}

}  // namespace converge
