// Discrete-event simulation core.
//
// Single-threaded, deterministic: events at the same timestamp run in the
// order they were scheduled (stable tie-break by insertion sequence). All
// Converge components take an `EventLoop*` and never read wall-clock time.
//
// Steady-state scheduling is allocation-free: callbacks are stored in a
// small-buffer-optimized InlineFunction (big enough for an in-flight
// RtpPacket capture) inside a recycled slot array, and the ready queue is a
// flat binary heap of 24-byte (timestamp, seq, slot) entries — no
// std::function heap spill, no per-event node allocation, and heap sifts
// move tiny entries instead of whole callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/inline_function.h"
#include "util/time.h"

namespace converge {

class EventLoop {
 public:
  // Sized so the largest hot-path capture — a link-delivery continuation
  // carrying an RtpPacket by value — stays inline. Oversized captures still
  // work; they fall back to the heap inside InlineFunction.
  static constexpr size_t kCallbackInlineBytes = 192;
  using Callback = InlineFunction<void(), kCallbackInlineBytes>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Timestamp now() const { return now_; }

  // Schedule `cb` to run at absolute time `at` (clamped to now).
  void ScheduleAt(Timestamp at, Callback cb);
  // Schedule `cb` to run `delay` from now.
  void ScheduleIn(Duration delay, Callback cb);

  // Run until the queue drains or `end` is reached (events at exactly `end`
  // still execute).
  void RunUntil(Timestamp end);
  // Run until the queue drains entirely.
  void RunAll();

  size_t pending_events() const { return heap_.size(); }
  int64_t executed_events() const { return executed_; }

 private:
  struct HeapEntry {
    Timestamp at;
    int64_t seq;
    uint32_t slot;
  };
  // Min-heap on (at, seq) expressed as std::*_heap's max-heap of "later".
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  uint32_t AcquireSlot(Callback cb);

  Timestamp now_ = Timestamp::Zero();
  int64_t next_seq_ = 0;
  int64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Callback> slots_;
  // Conference participant attribution, parallel to slots_: each event
  // remembers the TraceRecorder participant tag active when it was
  // scheduled, and dispatch restores it (only while a recorder is
  // installed). Self-rescheduling component tasks — pacer drains, RTCP
  // timers — thereby inherit their owner's tag transitively without any
  // component knowing about participants.
  std::vector<int32_t> slot_participants_;
  std::vector<uint32_t> free_slots_;
};

// Repeating timer helper: invokes `tick` every `period` until cancelled or
// the owning loop stops running. Cancel by destroying the handle; calling
// Stop() from inside the tick itself is safe — the task will not re-arm.
class RepeatingTask {
 public:
  RepeatingTask(EventLoop* loop, Duration period, std::function<void()> tick);
  ~RepeatingTask();
  RepeatingTask(const RepeatingTask&) = delete;
  RepeatingTask& operator=(const RepeatingTask&) = delete;

  void Stop();

 private:
  void Arm();

  EventLoop* loop_;
  Duration period_;
  std::function<void()> tick_;
  std::shared_ptr<bool> alive_;
};

}  // namespace converge
