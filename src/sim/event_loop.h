// Discrete-event simulation core.
//
// Single-threaded, deterministic: events at the same timestamp run in the
// order they were scheduled (stable tie-break by insertion sequence). All
// Converge components take an `EventLoop*` and never read wall-clock time.
//
// Steady-state scheduling is allocation-free: callbacks are stored in a
// small-buffer-optimized InlineFunction (big enough for an in-flight
// RtpPacket capture) inside a recycled slot array, and the ready queue is a
// hierarchical timer wheel:
//
//   - Near events (within kWheelTicks * kTickUs ≈ 0.52 s, which covers
//     virtually every timer a call arms: link service/propagation, pacer
//     drains, RTCP feedback, NACK retries, frame-buffer waits) are hashed
//     into calendar buckets by 1.024 ms tick. Buckets are intrusive singly
//     linked lists threaded through the slot array — a bucket costs 4 bytes,
//     insertion is O(1), and no per-event node is ever allocated.
//   - The bucket whose tick is being drained is expanded into a tiny binary
//     heap (`cursor_`) ordered by the exact (timestamp, seq) key, so events
//     within one tick — including events a callback schedules into the
//     current tick — execute in exactly the order the old flat global heap
//     produced. The heap holds one tick's population (typically a handful of
//     events) instead of the whole pending set.
//   - Far events (> the wheel horizon: multi-second repeating timers, call
//     teardown) overflow into a conventional binary heap and migrate into
//     buckets as the wheel window slides over them.
//
// The dispatch order is bit-for-bit identical to a single global min-heap on
// (timestamp, seq) — pinned by the heap-vs-wheel differential test and the
// seed-era call fixtures.
#pragma once

#include <cstdint>
#include <vector>

#include "util/inline_function.h"
#include "util/time.h"

namespace converge {

class EventLoop {
 public:
  // Sized so the largest hot-path capture — a link-delivery continuation
  // carrying an RtpPacket by value — stays inline. Oversized captures still
  // work; they fall back to the heap inside InlineFunction.
  static constexpr size_t kCallbackInlineBytes = 192;
  using Callback = InlineFunction<void(), kCallbackInlineBytes>;

  // Timer-wheel geometry. One tick is 2^kTickShift µs; the wheel spans
  // kWheelTicks ticks ahead of the tick currently executing.
  static constexpr int kTickShift = 10;  // 1.024 ms per tick
  static constexpr uint64_t kWheelTicks = 512;
  static constexpr uint64_t kWheelMask = kWheelTicks - 1;

  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Timestamp now() const { return now_; }

  // Schedule `cb` to run at absolute time `at` (clamped to now; the clamp is
  // counted — see clamped_past_events()). Takes the callback by rvalue
  // reference so a packet-carrying capture is moved exactly once — from the
  // call site straight into its recycled slot — instead of hopping through
  // every by-value parameter on the way.
  void ScheduleAt(Timestamp at, Callback&& cb);
  // Schedule `cb` to run `delay` from now.
  void ScheduleIn(Duration delay, Callback&& cb);

  // Run until the queue drains or `end` is reached (events at exactly `end`
  // still execute).
  void RunUntil(Timestamp end);
  // Run until the queue drains entirely.
  void RunAll();

  size_t pending_events() const {
    return cursor_.size() + near_count_ + overflow_.size();
  }
  int64_t executed_events() const { return executed_; }
  // Number of ScheduleAt calls whose timestamp was already in the past and
  // got clamped to now. Scheduling in the past is almost always a component
  // bug (a stale timer or a miscomputed deadline) that the clamp would
  // otherwise mask; the counter makes it observable, and with the invariant
  // harness enabled each clamp also reports through CONVERGE_INVARIANT.
  int64_t clamped_past_events() const { return clamped_past_; }

  // First-class repeating timers (the machinery under RepeatingTask).
  // StartRepeating arms `tick` every `period`; the returned handle cancels
  // via CancelRepeating. Slot-generation based: the tick is stored once in a
  // recycled slot, each firing re-arms in place, and cancellation bumps the
  // slot's generation so any in-flight firing becomes a no-op — no
  // allocation, no shared_ptr liveness flag, no dangling `this`.
  uint64_t StartRepeating(Duration period, Callback tick);
  void CancelRepeating(uint64_t handle);

 private:
  struct Entry {
    Timestamp at;
    int64_t seq;
    uint32_t slot;
  };
  // Min-heap on (at, seq) expressed as std::*_heap's max-heap of "later".
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct RepeatingSlot {
    Callback tick;
    Duration period;
    uint32_t generation = 0;
  };

  static constexpr int64_t TickOf(Timestamp t) {
    return t.us() >> kTickShift;
  }

  uint32_t AcquireSlot(Callback&& cb);
  void Insert(Entry entry);
  // Moves the earliest pending tick's events into cursor_. Returns false
  // when nothing is pending at a tick <= TickOf(end).
  bool AdvanceCursor(Timestamp end);
  void DumpBucket(int64_t tick);
  void FireRepeating(uint32_t slot, uint32_t generation);

  Timestamp now_ = Timestamp::Zero();
  int64_t next_seq_ = 0;
  int64_t executed_ = 0;
  int64_t clamped_past_ = 0;

  // Tick whose events cursor_ holds. Events scheduled at ticks <= cursor
  // (possible after a RunUntil boundary froze the cursor mid-jump) go
  // straight into cursor_, whose (at, seq) heap order absorbs them.
  int64_t cursor_tick_ = 0;
  std::vector<Entry> cursor_;        // heap (Later) of the open tick
  std::vector<int32_t> bucket_head_; // kWheelTicks intrusive list heads
  size_t near_count_ = 0;            // events resident in buckets
  std::vector<Entry> overflow_;      // heap (Later) of beyond-horizon events

  // Recycled callback slots. The metadata rides in one packed record so a
  // bucket insert touches a single cache line, not four parallel vectors.
  // at/seq/next are only meaningful while the slot sits in a bucket list
  // (heap entries carry their own copies). `participant` is conference
  // participant attribution: each event remembers the TraceRecorder
  // participant tag active when it was scheduled, and dispatch restores it
  // (only while a recorder is installed), so self-rescheduling component
  // tasks — pacer drains, RTCP timers — inherit their owner's tag
  // transitively without any component knowing about participants.
  struct SlotMeta {
    Timestamp at;
    int64_t seq;
    int32_t next;
    int32_t participant;
  };
  std::vector<Callback> slots_;
  std::vector<SlotMeta> slot_meta_;
  std::vector<uint32_t> free_slots_;

  // Repeating-timer table (slot-generation cancellation).
  std::vector<RepeatingSlot> repeating_;
  std::vector<uint32_t> repeating_free_;
};

// Repeating timer helper: invokes `tick` every `period` until cancelled or
// the owning loop stops running. Cancel by destroying the handle; calling
// Stop() from inside the tick itself is safe — the task will not re-arm.
// Thin RAII wrapper over EventLoop::StartRepeating/CancelRepeating: the tick
// lives in the loop's recycled repeating-slot table as an InlineFunction, so
// arming, firing and re-arming are allocation-free.
class RepeatingTask {
 public:
  RepeatingTask(EventLoop* loop, Duration period, EventLoop::Callback tick)
      : loop_(loop), handle_(loop->StartRepeating(period, std::move(tick))) {}
  ~RepeatingTask() { Stop(); }
  RepeatingTask(const RepeatingTask&) = delete;
  RepeatingTask& operator=(const RepeatingTask&) = delete;

  void Stop() {
    if (!stopped_) {
      stopped_ = true;
      loop_->CancelRepeating(handle_);
    }
  }

 private:
  EventLoop* loop_;
  uint64_t handle_;
  bool stopped_ = false;
};

}  // namespace converge
