// Discrete-event simulation core.
//
// Single-threaded, deterministic: events at the same timestamp run in the
// order they were scheduled (stable tie-break by insertion sequence). All
// Converge components take an `EventLoop*` and never read wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace converge {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Timestamp now() const { return now_; }

  // Schedule `cb` to run at absolute time `at` (clamped to now).
  void ScheduleAt(Timestamp at, Callback cb);
  // Schedule `cb` to run `delay` from now.
  void ScheduleIn(Duration delay, Callback cb);

  // Run until the queue drains or `end` is reached (events at exactly `end`
  // still execute).
  void RunUntil(Timestamp end);
  // Run until the queue drains entirely.
  void RunAll();

  size_t pending_events() const { return queue_.size(); }
  int64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Timestamp at;
    int64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Timestamp now_ = Timestamp::Zero();
  int64_t next_seq_ = 0;
  int64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// Repeating timer helper: invokes `tick` every `period` until cancelled or
// the owning loop stops running. Cancel by destroying the handle.
class RepeatingTask {
 public:
  RepeatingTask(EventLoop* loop, Duration period, std::function<void()> tick);
  ~RepeatingTask();
  RepeatingTask(const RepeatingTask&) = delete;
  RepeatingTask& operator=(const RepeatingTask&) = delete;

  void Stop();

 private:
  void Arm();

  EventLoop* loop_;
  Duration period_;
  std::function<void()> tick_;
  std::shared_ptr<bool> alive_;
};

}  // namespace converge
