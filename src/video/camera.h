// Camera stream model: emits RawFrames at a fixed frame rate with slowly
// varying scene complexity (a mean-reverting random walk), standing in for
// the real capture devices of §5.
#pragma once

#include <functional>
#include <memory>

#include "sim/event_loop.h"
#include "util/random.h"
#include "video/frame.h"

namespace converge {

class Camera {
 public:
  struct Config {
    int stream_id = 0;
    double fps = 30.0;
    int width = 1280;
    int height = 720;
    double complexity_mean = 1.0;
    double complexity_jitter = 0.05;  // per-frame random-walk step
  };

  using FrameCallback = std::function<void(const RawFrame&)>;

  Camera(EventLoop* loop, Config config, Random rng, FrameCallback on_frame);

  void Start();
  void Stop();

  double fps() const { return config_.fps; }
  int64_t frames_captured() const { return frame_number_; }

 private:
  void Tick();

  EventLoop* loop_;
  Config config_;
  Random rng_;
  FrameCallback on_frame_;
  int64_t frame_number_ = 0;
  double complexity_;
  std::unique_ptr<RepeatingTask> task_;
};

}  // namespace converge
