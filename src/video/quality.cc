#include "video/quality.h"

#include <algorithm>
#include <cmath>

namespace converge {

int QpForBudget(double bits, int width, int height, double complexity) {
  const double pixels = static_cast<double>(width) * height;
  if (pixels <= 0 || bits <= 0) return kMaxQp;
  // Reference operating point: 0.36 bits/pixel (a 720p30 stream at 10 Mbps)
  // encodes around QP 24; each halving of the per-pixel budget costs about
  // 6.5 QP steps. Complexity scales the effective budget.
  const double bpp = bits / (pixels * std::max(0.1, complexity));
  const double qp = 24.0 - 6.5 * std::log2(bpp / 0.36);
  return std::clamp(static_cast<int>(std::lround(qp)), kMinQp, kMaxQp);
}

double PsnrForQp(int qp) {
  // H.264-style fit: ~52 dB at QP 10 falling ~0.5 dB per QP step, with a
  // gentle floor so extreme QPs stay physically plausible.
  const double psnr = 57.0 - 0.55 * static_cast<double>(qp);
  return std::max(18.0, psnr);
}

}  // namespace converge
