// Frame types flowing through the encode/decode pipeline.
#pragma once

#include <cstdint>

#include "rtp/rtp_packet.h"
#include "util/time.h"

namespace converge {

// A raw capture from a camera stream (pixels abstracted away; `complexity`
// models scene difficulty and scales encoded size at a given quality).
struct RawFrame {
  int stream_id = 0;
  int64_t frame_number = 0;
  Timestamp capture_time;
  int width = 1280;
  int height = 720;
  double complexity = 1.0;
};

// Output of the encoder: a compressed key or delta frame.
struct EncodedFrame {
  int stream_id = 0;
  int64_t frame_id = 0;  // monotone per stream
  int64_t gop_id = 0;    // increments at each keyframe
  FrameKind kind = FrameKind::kDelta;
  int64_t size_bytes = 0;
  int qp = 30;            // quantization parameter actually used
  double encode_fps = 30; // frame rate the encoder is running at
  Timestamp capture_time;
  int width = 1280;
  int height = 720;
};

// A frame rebuilt by the receiver and handed to the decoder.
struct AssembledFrame {
  int stream_id = 0;
  int64_t frame_id = 0;
  int64_t gop_id = 0;
  FrameKind kind = FrameKind::kDelta;
  int64_t size_bytes = 0;
  int qp = 30;
  Timestamp capture_time;
  Timestamp first_packet_time;
  Timestamp complete_time;          // all packets (incl. PPS/SPS) present
  Duration fcd;                     // frame construction delay (§4.2)
  int packets = 0;
  int recovered_by_fec = 0;         // packets restored by XOR recovery
  int recovered_by_rtx = 0;         // packets restored via NACK/RTX
};

// A frame the decoder rendered.
struct DecodedFrame {
  int stream_id = 0;
  int64_t frame_id = 0;
  Timestamp capture_time;
  Timestamp render_time;
  int qp = 30;
  double psnr_db = 0.0;
  int64_t size_bytes = 0;  // compressed size (decoded-goodput accounting)
  Duration e2e_latency;    // render_time - capture_time
};

}  // namespace converge
