// Frame types flowing through the encode/decode pipeline.
#pragma once

#include <cstdint>

#include "rtp/rtp_packet.h"
#include "util/time.h"

namespace converge {

// A raw capture from a camera stream (pixels abstracted away; `complexity`
// models scene difficulty and scales encoded size at a given quality).
struct RawFrame {
  int stream_id = 0;
  int64_t frame_number = 0;
  Timestamp capture_time;
  int width = 1280;
  int height = 720;
  double complexity = 1.0;
};

// Output of the encoder: a compressed key or delta frame. When the encoder
// runs layered (simulcast rungs and/or temporal SVC), every rung of a
// capture shares frame_id/gop_id/capture_time — a hub forwards exactly one
// rung per frame_id, so the receiver's frame-id continuity contract holds
// regardless of which rung it is subscribed to.
struct EncodedFrame {
  int stream_id = 0;
  int64_t frame_id = 0;  // monotone per stream, shared across rungs
  int64_t gop_id = 0;    // increments at each keyframe
  FrameKind kind = FrameKind::kDelta;
  int64_t size_bytes = 0;
  int qp = 30;            // quantization parameter actually used
  double encode_fps = 30; // frame rate the encoder is running at
  Timestamp capture_time;
  int width = 1280;
  int height = 720;
  // Layer coordinates. Single-layer encodes leave the defaults (0 of 1).
  int spatial_id = 0;     // simulcast rung, 0 = highest quality
  int num_spatial = 1;
  int temporal_id = 0;    // dyadic temporal layer, 0 = base cadence
  int num_temporal = 1;
};

// A frame rebuilt by the receiver and handed to the decoder.
struct AssembledFrame {
  int stream_id = 0;
  int64_t frame_id = 0;
  int64_t gop_id = 0;
  FrameKind kind = FrameKind::kDelta;
  int64_t size_bytes = 0;
  int qp = 30;
  Timestamp capture_time;
  Timestamp first_packet_time;
  Timestamp complete_time;          // all packets (incl. PPS/SPS) present
  Duration fcd;                     // frame construction delay (§4.2)
  int packets = 0;
  int recovered_by_fec = 0;         // packets restored by XOR recovery
  int recovered_by_rtx = 0;         // packets restored via NACK/RTX
  // Layer coordinates of the rung that reached this receiver (hub-selected
  // on a star downlink; always 0/1 for single-layer senders).
  int spatial_id = 0;
  int temporal_id = 0;
};

// A frame the decoder rendered.
struct DecodedFrame {
  int stream_id = 0;
  int64_t frame_id = 0;
  Timestamp capture_time;
  Timestamp render_time;
  int qp = 30;
  double psnr_db = 0.0;
  int64_t size_bytes = 0;  // compressed size (decoded-goodput accounting)
  Duration e2e_latency;    // render_time - capture_time
};

}  // namespace converge
