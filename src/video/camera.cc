#include "video/camera.h"

#include <algorithm>

namespace converge {

Camera::Camera(EventLoop* loop, Config config, Random rng,
               FrameCallback on_frame)
    : loop_(loop),
      config_(config),
      rng_(rng),
      on_frame_(std::move(on_frame)),
      complexity_(config.complexity_mean) {}

void Camera::Start() {
  if (task_) return;
  const Duration period = Duration::Seconds(1.0 / config_.fps);
  task_ = std::make_unique<RepeatingTask>(loop_, period, [this] { Tick(); });
}

void Camera::Stop() { task_.reset(); }

void Camera::Tick() {
  // Mean-reverting complexity walk keeps frame sizes realistically bursty.
  const double pull = 0.1 * (config_.complexity_mean - complexity_);
  complexity_ += pull + rng_.Gaussian(0.0, config_.complexity_jitter);
  complexity_ = std::clamp(complexity_, 0.5, 2.0);

  RawFrame frame;
  frame.stream_id = config_.stream_id;
  frame.frame_number = frame_number_++;
  frame.capture_time = loop_->now();
  frame.width = config_.width;
  frame.height = config_.height;
  frame.complexity = complexity_;
  on_frame_(frame);
}

}  // namespace converge
