// Decoder model: consumes assembled frames in decode order, enforces the
// key/delta dependency chain (§3.1), and renders DecodedFrames. FEC
// recovery work adds decode latency, reflecting the paper's observation
// that FEC decoding incurs non-negligible delay in the pipeline (§2.1).
#pragma once

#include <functional>

#include "sim/event_loop.h"
#include "video/frame.h"
#include "video/quality.h"

namespace converge {

class Decoder {
 public:
  struct Config {
    Duration base_decode_time = Duration::Millis(3);
    Duration fec_recovery_penalty = Duration::Millis(2);  // per recovered pkt
  };

  using RenderCallback = std::function<void(const DecodedFrame&)>;
  // Invoked when a frame cannot be decoded (broken dependency chain); the
  // receiver responds with a keyframe request.
  using DecodeFailureCallback = std::function<void(const AssembledFrame&)>;

  Decoder(EventLoop* loop, Config config, RenderCallback on_render,
          DecodeFailureCallback on_failure);

  // Frames must arrive in the order the frame buffer releases them.
  void Decode(const AssembledFrame& frame);

  int64_t frames_decoded() const { return frames_decoded_; }
  int64_t decode_failures() const { return decode_failures_; }

 private:
  bool Decodable(const AssembledFrame& frame) const;

  EventLoop* loop_;
  Config config_;
  RenderCallback on_render_;
  DecodeFailureCallback on_failure_;

  bool have_reference_ = false;
  int64_t last_decoded_frame_id_ = -1;
  int64_t last_decoded_gop_ = -1;
  int64_t frames_decoded_ = 0;
  int64_t decode_failures_ = 0;
};

}  // namespace converge
