#include "video/decoder.h"

#include <utility>

namespace converge {

Decoder::Decoder(EventLoop* loop, Config config, RenderCallback on_render,
                 DecodeFailureCallback on_failure)
    : loop_(loop),
      config_(config),
      on_render_(std::move(on_render)),
      on_failure_(std::move(on_failure)) {}

bool Decoder::Decodable(const AssembledFrame& frame) const {
  if (frame.kind == FrameKind::kKey) return true;
  // A delta frame references its predecessor: decodable only when the chain
  // from the GOP's keyframe is unbroken.
  return have_reference_ && frame.gop_id == last_decoded_gop_ &&
         frame.frame_id == last_decoded_frame_id_ + 1;
}

void Decoder::Decode(const AssembledFrame& frame) {
  if (!Decodable(frame)) {
    ++decode_failures_;
    have_reference_ = false;  // freeze until a keyframe arrives
    if (on_failure_) on_failure_(frame);
    return;
  }
  have_reference_ = true;
  last_decoded_frame_id_ = frame.frame_id;
  last_decoded_gop_ = frame.gop_id;
  ++frames_decoded_;

  const Duration decode_delay =
      config_.base_decode_time +
      config_.fec_recovery_penalty * static_cast<double>(frame.recovered_by_fec);

  DecodedFrame out;
  out.stream_id = frame.stream_id;
  out.frame_id = frame.frame_id;
  out.capture_time = frame.capture_time;
  out.qp = frame.qp;
  out.psnr_db = PsnrForQp(frame.qp);
  out.size_bytes = frame.size_bytes;
  const Timestamp render_time = loop_->now() + decode_delay;
  out.render_time = render_time;
  out.e2e_latency = render_time - frame.capture_time;
  loop_->ScheduleIn(decode_delay,
                    [cb = on_render_, out] { if (cb) cb(out); });
}

}  // namespace converge
