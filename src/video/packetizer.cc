#include "video/packetizer.h"

#include <algorithm>

namespace converge {

std::vector<RtpPacket> Packetizer::Packetize(const EncodedFrame& frame) {
  std::vector<RtpPacket> packets;
  const bool keyframe = frame.kind == FrameKind::kKey;
  const uint32_t rtp_ts =
      static_cast<uint32_t>(frame.capture_time.us() * 90 / 1000);  // 90 kHz

  auto base_packet = [&](PayloadKind kind, Priority priority,
                         int64_t payload) {
    RtpPacket p;
    p.ssrc = config_.ssrc;
    p.seq = next_seq_++;
    p.rtp_timestamp = rtp_ts;
    p.kind = kind;
    p.priority = priority;
    p.frame_kind = frame.kind;
    p.stream_id = frame.stream_id;
    p.frame_id = frame.frame_id;
    p.gop_id = frame.gop_id;
    p.payload_bytes = payload;
    p.capture_time = frame.capture_time;
    p.spatial_id = static_cast<uint8_t>(frame.spatial_id);
    p.num_spatial = static_cast<uint8_t>(frame.num_spatial);
    p.temporal_id = static_cast<uint8_t>(frame.temporal_id);
    p.num_temporal = static_cast<uint8_t>(frame.num_temporal);
    return p;
  };

  // SPS: decoding information for the group of frames; present at GOP start.
  if (keyframe) {
    packets.push_back(
        base_packet(PayloadKind::kSps, Priority::kSps, config_.sps_bytes));
  }
  // PPS: decoding information for this frame; present on every frame.
  packets.push_back(
      base_packet(PayloadKind::kPps, Priority::kPps, config_.pps_bytes));

  // Media slices. Keyframe media carries Table-2 priority 2; delta media is
  // unprioritized and split across paths by rate (§4.1).
  const Priority media_priority =
      keyframe ? Priority::kKeyframe : Priority::kNone;
  int64_t remaining = std::max<int64_t>(frame.size_bytes, 1);
  while (remaining > 0) {
    const int64_t payload = std::min(remaining, config_.max_payload_bytes);
    packets.push_back(
        base_packet(PayloadKind::kMedia, media_priority, payload));
    remaining -= payload;
  }

  packets.front().first_in_frame = true;
  packets.back().last_in_frame = true;
  packets.back().marker = true;
  return packets;
}

}  // namespace converge
