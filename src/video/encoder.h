// Rate-controlled encoder model.
//
// Converts RawFrames into EncodedFrames sized by the target bitrate the
// congestion controller supplies (§2.1 pipeline). Keyframes are produced at
// stream start and on demand (PLI); like WebRTC's infinite-GOP conferencing
// mode there is no periodic keyframe interval. Keyframes cost a configurable
// multiple of the per-frame budget.
#pragma once

#include <functional>
#include <vector>

#include "util/random.h"
#include "util/time.h"
#include "video/frame.h"

namespace converge {

class Encoder {
 public:
  struct Config {
    double keyframe_size_factor = 4.0;  // keyframe bytes vs delta budget
    double size_jitter = 0.08;          // lognormal-ish size noise
    DataRate min_rate = DataRate::KilobitsPerSec(50);
    DataRate max_rate = DataRate::MegabitsPerSec(10);  // app cap per stream
    // Resolution ladder: at low rates the encoder steps the output down
    // (the paper's driving scenario: "adjusting the video resolution to
    // match the lower throughput"). A resolution switch forces a keyframe,
    // so switches are hysteretic and rate-limited.
    bool adapt_resolution = true;
    Duration min_resolution_dwell = Duration::Seconds(3.0);
    // Layered encoding. simulcast_rungs > 1 makes EncodeLayered emit that
    // many independently decodable rungs per capture (rung k halves the
    // linear resolution k times and takes a 4^-k share of the target rate);
    // the per-subscriber choice among them moves to the hub, so the
    // sender-side adaptive ladder is bypassed in layered mode.
    // temporal_layers > 1 stamps a dyadic temporal_id on every frame
    // (metadata the SFU study's providers expose; no frames are withheld
    // at the encoder). 1/1 reproduces the historical single-layer encode
    // bit-for-bit, including the RNG draw sequence.
    int simulcast_rungs = 1;
    int temporal_layers = 1;
  };

  Encoder(Config config, Random rng);

  // Target from the congestion controller; clamped to [min_rate, max_rate].
  void SetTargetRate(DataRate rate);
  DataRate target_rate() const { return target_rate_; }

  // Forces the next frame to be a keyframe (PLI / keyframe request path).
  void RequestKeyframe() { keyframe_requested_ = true; }

  // Encodes one captured frame.
  EncodedFrame Encode(const RawFrame& raw);

  // Layered encode: one EncodedFrame per simulcast rung (rung 0 first), all
  // sharing the capture's frame_id/gop_id and stamped with the dyadic
  // temporal_id of this position in the GOP. A keyframe request keys every
  // rung of the same capture, so a hub can switch rungs at that frame
  // boundary without breaking the subscriber's decode chain. With the
  // default 1-rung/1-temporal config this is exactly {Encode(raw)}.
  std::vector<EncodedFrame> EncodeLayered(const RawFrame& raw);

  int64_t keyframes_encoded() const { return keyframes_encoded_; }
  int64_t frames_encoded() const { return next_frame_id_; }
  // Current rung of the resolution ladder (0 = full capture resolution).
  int resolution_step() const { return resolution_step_; }

 private:
  // Picks the ladder rung for the current target rate (with hysteresis).
  void UpdateResolutionStep(Timestamp now);

  Config config_;
  Random rng_;
  DataRate target_rate_;
  bool keyframe_requested_ = true;  // first frame is always a key
  int64_t next_frame_id_ = 0;
  int64_t gop_id_ = -1;
  int64_t gop_pos_ = 0;  // frames since the current GOP's keyframe
  int64_t keyframes_encoded_ = 0;
  int resolution_step_ = 0;
  Timestamp last_resolution_change_ = Timestamp::MinusInfinity();
};

}  // namespace converge
