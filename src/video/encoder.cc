#include "video/encoder.h"

#include <algorithm>
#include <cmath>

#include "video/quality.h"

namespace converge {

Encoder::Encoder(Config config, Random rng)
    : config_(config), rng_(rng), target_rate_(config.min_rate) {}

void Encoder::SetTargetRate(DataRate rate) {
  target_rate_ = std::clamp(rate, config_.min_rate, config_.max_rate);
}

void Encoder::UpdateResolutionStep(Timestamp now) {
  if (!config_.adapt_resolution) return;
  if (last_resolution_change_.IsFinite() &&
      now - last_resolution_change_ < config_.min_resolution_dwell) {
    return;
  }
  // Rate thresholds per rung (each rung halves the linear resolution).
  // Hysteresis: step down below `down`, step back up above `up`.
  struct Rung {
    double down_mbps;
    double up_mbps;
  };
  static constexpr Rung kLadder[] = {
      {2.0, 0.0},   // rung 0 (full) -> rung 1 below 2.0 Mbps
      {0.8, 3.0},   // rung 1 (1/2)  -> rung 2 below 0.8, back up above 3.0
      {0.3, 1.2},   // rung 2 (1/4)  -> rung 3 below 0.3, back up above 1.2
      {0.0, 0.5},   // rung 3 (1/8)  -> back up above 0.5
  };
  const double mbps = target_rate_.mbps();
  const int max_step = 3;
  int step = resolution_step_;
  if (step < max_step && mbps < kLadder[step].down_mbps) {
    ++step;
  } else if (step > 0 && mbps > kLadder[step].up_mbps) {
    --step;
  }
  if (step != resolution_step_) {
    resolution_step_ = step;
    last_resolution_change_ = now;
    // Codecs require a keyframe at a new resolution.
    keyframe_requested_ = true;
  }
}

EncodedFrame Encoder::Encode(const RawFrame& raw) {
  UpdateResolutionStep(raw.capture_time);

  EncodedFrame out;
  out.stream_id = raw.stream_id;
  out.frame_id = next_frame_id_++;
  out.capture_time = raw.capture_time;
  out.width = std::max(1, raw.width >> resolution_step_);
  out.height = std::max(1, raw.height >> resolution_step_);

  const double fps = 30.0;  // capture cadence; sizes derive from per-frame budget
  const double budget_bits =
      static_cast<double>(target_rate_.bps()) / fps;

  const bool keyframe = keyframe_requested_;
  keyframe_requested_ = false;
  if (keyframe) {
    ++gop_id_;
    ++keyframes_encoded_;
  }
  out.gop_id = gop_id_;
  out.kind = keyframe ? FrameKind::kKey : FrameKind::kDelta;
  out.encode_fps = fps;

  const double factor = keyframe ? config_.keyframe_size_factor : 1.0;
  const double noise =
      std::exp(rng_.Gaussian(0.0, config_.size_jitter));
  const double bits =
      std::max(8.0 * 200.0, budget_bits * factor * raw.complexity * noise);
  out.size_bytes = static_cast<int64_t>(bits / 8.0);
  // QP is reported as full-resolution-equivalent quality: encoding at a
  // lower rung keeps the per-pixel QP moderate but costs upscaling quality
  // (~6 dB, i.e. ~11 QP steps per halving), so the ladder trades QP for
  // frame-rate stability rather than hiding the loss.
  const int raw_qp =
      QpForBudget(budget_bits, out.width, out.height, raw.complexity);
  out.qp = std::min(kMaxQp, raw_qp + 11 * resolution_step_);
  return out;
}

}  // namespace converge
