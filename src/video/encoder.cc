#include "video/encoder.h"

#include <algorithm>
#include <cmath>

#include "video/quality.h"

namespace converge {
namespace {

// Dyadic temporal-layer id for the `gop_pos`-th frame after a keyframe:
// the base layer (tid 0) runs at cadence/2^(T-1), each higher layer doubles
// it. T=3 yields the classic [0, 2, 1, 2] pattern.
int TemporalIdFor(int64_t gop_pos, int num_temporal) {
  if (num_temporal <= 1) return 0;
  const int64_t period = int64_t{1} << (num_temporal - 1);
  int64_t idx = gop_pos % period;
  if (idx == 0) return 0;
  int tid = num_temporal - 1;
  while ((idx & 1) == 0) {
    idx >>= 1;
    --tid;
  }
  return tid;
}

}  // namespace

Encoder::Encoder(Config config, Random rng)
    : config_(config), rng_(rng), target_rate_(config.min_rate) {}

void Encoder::SetTargetRate(DataRate rate) {
  target_rate_ = std::clamp(rate, config_.min_rate, config_.max_rate);
}

void Encoder::UpdateResolutionStep(Timestamp now) {
  if (!config_.adapt_resolution) return;
  if (last_resolution_change_.IsFinite() &&
      now - last_resolution_change_ < config_.min_resolution_dwell) {
    return;
  }
  // Rate thresholds per rung (each rung halves the linear resolution).
  // Hysteresis: step down below `down`, step back up above `up`.
  struct Rung {
    double down_mbps;
    double up_mbps;
  };
  static constexpr Rung kLadder[] = {
      {2.0, 0.0},   // rung 0 (full) -> rung 1 below 2.0 Mbps
      {0.8, 3.0},   // rung 1 (1/2)  -> rung 2 below 0.8, back up above 3.0
      {0.3, 1.2},   // rung 2 (1/4)  -> rung 3 below 0.3, back up above 1.2
      {0.0, 0.5},   // rung 3 (1/8)  -> back up above 0.5
  };
  const double mbps = target_rate_.mbps();
  const int max_step = 3;
  int step = resolution_step_;
  if (step < max_step && mbps < kLadder[step].down_mbps) {
    ++step;
  } else if (step > 0 && mbps > kLadder[step].up_mbps) {
    --step;
  }
  if (step != resolution_step_) {
    resolution_step_ = step;
    last_resolution_change_ = now;
    // Codecs require a keyframe at a new resolution.
    keyframe_requested_ = true;
  }
}

EncodedFrame Encoder::Encode(const RawFrame& raw) {
  UpdateResolutionStep(raw.capture_time);

  EncodedFrame out;
  out.stream_id = raw.stream_id;
  out.frame_id = next_frame_id_++;
  out.capture_time = raw.capture_time;
  out.width = std::max(1, raw.width >> resolution_step_);
  out.height = std::max(1, raw.height >> resolution_step_);

  const double fps = 30.0;  // capture cadence; sizes derive from per-frame budget
  const double budget_bits =
      static_cast<double>(target_rate_.bps()) / fps;

  const bool keyframe = keyframe_requested_;
  keyframe_requested_ = false;
  if (keyframe) {
    ++gop_id_;
    ++keyframes_encoded_;
    gop_pos_ = 0;
  }
  ++gop_pos_;
  out.gop_id = gop_id_;
  out.kind = keyframe ? FrameKind::kKey : FrameKind::kDelta;
  out.encode_fps = fps;

  const double factor = keyframe ? config_.keyframe_size_factor : 1.0;
  const double noise =
      std::exp(rng_.Gaussian(0.0, config_.size_jitter));
  const double bits =
      std::max(8.0 * 200.0, budget_bits * factor * raw.complexity * noise);
  out.size_bytes = static_cast<int64_t>(bits / 8.0);
  // QP is reported as full-resolution-equivalent quality: encoding at a
  // lower rung keeps the per-pixel QP moderate but costs upscaling quality
  // (~6 dB, i.e. ~11 QP steps per halving), so the ladder trades QP for
  // frame-rate stability rather than hiding the loss.
  const int raw_qp =
      QpForBudget(budget_bits, out.width, out.height, raw.complexity);
  out.qp = std::min(kMaxQp, raw_qp + 11 * resolution_step_);
  return out;
}

std::vector<EncodedFrame> Encoder::EncodeLayered(const RawFrame& raw) {
  const int rungs = std::max(1, config_.simulcast_rungs);
  const int temporal = std::max(1, config_.temporal_layers);
  if (rungs == 1 && temporal == 1) return {Encode(raw)};

  // Layered mode bypasses the sender-side adaptive ladder: the rung set IS
  // the ladder, and the per-subscriber choice among rungs belongs to the
  // hub (§ layer selection).
  const bool keyframe = keyframe_requested_;
  keyframe_requested_ = false;
  if (keyframe) {
    ++gop_id_;
    ++keyframes_encoded_;
    gop_pos_ = 0;
  }
  const int temporal_id = TemporalIdFor(gop_pos_, temporal);
  ++gop_pos_;
  const int64_t frame_id = next_frame_id_++;

  const double fps = 30.0;
  // Rung k halves the linear resolution k times, so its share of the
  // target rate scales with pixel count: w_k ∝ 4^-k.
  double weight_sum = 0.0;
  for (int k = 0; k < rungs; ++k) weight_sum += std::pow(0.25, k);

  std::vector<EncodedFrame> out;
  out.reserve(static_cast<size_t>(rungs));
  for (int k = 0; k < rungs; ++k) {
    EncodedFrame f;
    f.stream_id = raw.stream_id;
    f.frame_id = frame_id;
    f.gop_id = gop_id_;
    f.kind = keyframe ? FrameKind::kKey : FrameKind::kDelta;
    f.capture_time = raw.capture_time;
    f.encode_fps = fps;
    f.width = std::max(1, raw.width >> k);
    f.height = std::max(1, raw.height >> k);
    f.spatial_id = k;
    f.num_spatial = rungs;
    f.temporal_id = temporal_id;
    f.num_temporal = temporal;

    const double share = std::pow(0.25, k) / weight_sum;
    const double budget_bits =
        static_cast<double>(target_rate_.bps()) * share / fps;
    const double factor = keyframe ? config_.keyframe_size_factor : 1.0;
    const double noise = std::exp(rng_.Gaussian(0.0, config_.size_jitter));
    const double bits =
        std::max(8.0 * 200.0, budget_bits * factor * raw.complexity * noise);
    f.size_bytes = static_cast<int64_t>(bits / 8.0);
    const int raw_qp =
        QpForBudget(budget_bits, f.width, f.height, raw.complexity);
    f.qp = std::min(kMaxQp, raw_qp + 11 * k);
    out.push_back(f);
  }
  return out;
}

}  // namespace converge
