// Rate/quality model for the simulated codec.
//
// Maps an encode budget (bits per pixel) to the quantization parameter a
// rate-controlled H.264/VP8-class encoder would pick, and QP to PSNR. The
// constants are fit to the usual R-D rules of thumb (~-0.5 dB per QP step,
// QP halving per ~2x rate) so that the paper's QP/PSNR *ordering* between
// variants is preserved even though no pixels are coded.
#pragma once

#include "util/time.h"

namespace converge {

// QP the rate controller picks for a frame budget of `bits` over a
// `width` x `height` frame with the given scene complexity. Clamped to
// [kMinQp, kMaxQp] (60 is "lowest video quality" per §6).
int QpForBudget(double bits, int width, int height, double complexity = 1.0);

// Approximate luma PSNR delivered at a given QP.
double PsnrForQp(int qp);

inline constexpr int kMinQp = 10;
inline constexpr int kMaxQp = 60;

}  // namespace converge
