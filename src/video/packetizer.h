// Packetizer: slices EncodedFrames into RTP packets and exposes the video
// structure the Converge scheduler relies on (§3.1): keyframe vs delta
// media packets, the per-frame PPS packet, the per-GOP SPS packet, and the
// Table-2 priority of each packet.
#pragma once

#include <cstdint>
#include <vector>

#include "rtp/rtp_packet.h"
#include "video/frame.h"

namespace converge {

class Packetizer {
 public:
  struct Config {
    uint32_t ssrc = 0x1000;
    int64_t max_payload_bytes = 1100;
    int64_t pps_bytes = 20;   // picture parameter set payload
    int64_t sps_bytes = 40;   // sequence parameter set payload
  };

  explicit Packetizer(Config config) : config_(config) {}

  // Packet order within a frame: [SPS (keyframes only)], PPS, media...
  // The first packet carries first_in_frame, the last carries marker.
  std::vector<RtpPacket> Packetize(const EncodedFrame& frame);

  uint32_t ssrc() const { return config_.ssrc; }
  uint16_t next_seq() const { return next_seq_; }

 private:
  Config config_;
  uint16_t next_seq_ = 0;
};

}  // namespace converge
