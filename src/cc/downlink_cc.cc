#include "cc/downlink_cc.h"

#include <vector>

namespace converge {

DownlinkCc::DownlinkCc(Config config)
    : config_(config), cc_(MakeCcController(config.controller)) {}

void DownlinkCc::OnPacketSent(int leg, int64_t transport_seq,
                              Timestamp send_time, int64_t bytes) {
  const auto key = std::make_pair(leg, transport_seq);
  sent_[key] = {send_time, bytes};
  sent_order_.push_back(key);
  ++packets_registered_;
  while (sent_order_.size() > config_.max_history) {
    sent_.erase(sent_order_.front());
    sent_order_.pop_front();
  }
}

void DownlinkCc::OnTransportFeedback(int leg, const TransportFeedback& fb,
                                     Timestamp now) {
  std::vector<PacketResult> results;
  results.reserve(fb.arrivals.size());
  int received = 0;
  int lost = 0;
  Timestamp newest_send = Timestamp::MinusInfinity();
  for (const auto& a : fb.arrivals) {
    auto it = sent_.find({leg, a.mp_transport_seq});
    if (it == sent_.end()) continue;
    PacketResult r;
    r.transport_seq = a.mp_transport_seq;
    r.bytes = it->second.bytes;
    r.send_time = it->second.send_time;
    r.received = a.recv_time.IsFinite();
    if (r.received) {
      r.recv_time = a.recv_time;
      ++received;
      if (it->second.send_time > newest_send) {
        newest_send = it->second.send_time;
      }
    } else {
      ++lost;
    }
    results.push_back(r);
  }
  if (results.empty()) return;
  ++feedback_batches_;
  packets_acked_ += received;
  packets_lost_ += lost;
  cc_->OnTransportFeedback(results, now);
  // Drive the loss branch from the same batch: without hub SRs there is no
  // receiver-report RTT echo for this hop, so use feedback arrival minus
  // the newest received packet's send time as the round-trip sample.
  const double fraction_lost =
      static_cast<double>(lost) / static_cast<double>(received + lost);
  Duration rtt = Duration::Millis(1);
  if (newest_send.IsFinite() && now > newest_send) {
    rtt = now - newest_send;
  }
  cc_->OnReceiverReport(fraction_lost, rtt, now);
}

}  // namespace converge
