// Hub-side congestion loop for one (receiver, path) downlink of a star
// conference. The SFU hub owns the downlink sequence spaces: it re-stamps
// mp_transport_seq per (origin leg, path) at egress and registers every
// stamped packet here, then translates the receiver's per-leg transport
// feedback into PacketResults for a wrapped CcController (GCC by default;
// any algorithm behind MakeCcController).
//
// The hub sends no SenderReports of its own (SR/SDES pass through from the
// origin), so the receiver-report RTT echo measures the origin's round
// trip, not the hub's. The loss branch is therefore driven from transport
// feedback directly: each batch yields a loss fraction and an RTT sample
// (feedback arrival minus send time of the newest received packet).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "cc/cc_controller.h"
#include "rtp/rtcp.h"
#include "util/time.h"

namespace converge {

class DownlinkCc {
 public:
  struct Config {
    CcConfig controller;
    // Packets kept awaiting feedback; the oldest entries are pruned first.
    size_t max_history = 8192;
  };

  explicit DownlinkCc(Config config);

  // Registers a packet stamped onto this downlink. `transport_seq` is the
  // hub's unwrapped per-(leg, path) egress counter — the same value the
  // receiver's unwrapper reconstructs and echoes in transport feedback.
  void OnPacketSent(int leg, int64_t transport_seq, Timestamp send_time,
                    int64_t bytes);

  // One leg's transport feedback for this downlink path. Entries missing
  // from the sent history (pruned, or stamped before a restart) are
  // skipped rather than misread as losses.
  void OnTransportFeedback(int leg, const TransportFeedback& fb,
                           Timestamp now);

  DataRate target_rate() const { return cc_->target_rate(); }
  Duration smoothed_rtt() const { return cc_->smoothed_rtt(); }
  double loss_estimate() const { return cc_->loss_estimate(); }
  const CcController& controller() const { return *cc_; }

  int64_t feedback_batches() const { return feedback_batches_; }
  int64_t packets_registered() const { return packets_registered_; }
  int64_t packets_acked() const { return packets_acked_; }
  int64_t packets_lost() const { return packets_lost_; }

 private:
  struct SentRecord {
    Timestamp send_time;
    int64_t bytes = 0;
  };

  Config config_;
  std::unique_ptr<CcController> cc_;
  // Keyed (leg, unwrapped transport seq); each leg's sequence space is
  // independent, so the pair key keeps them disjoint.
  std::map<std::pair<int, int64_t>, SentRecord> sent_;
  std::deque<std::pair<int, int64_t>> sent_order_;
  int64_t feedback_batches_ = 0;
  int64_t packets_registered_ = 0;
  int64_t packets_acked_ = 0;
  int64_t packets_lost_ = 0;
};

}  // namespace converge
