// Loss-based branch of GCC: reacts to the fraction-lost field of receiver
// reports with the published thresholds (increase below 2%, hold to 10%,
// multiplicative backoff above 10%).
#pragma once

#include "util/time.h"

namespace converge {

class LossBasedControl {
 public:
  struct Config {
    DataRate min_rate = DataRate::KilobitsPerSec(50);
    DataRate max_rate = DataRate::MegabitsPerSec(50);
    double low_loss = 0.02;
    double high_loss = 0.10;
    double increase_factor = 1.05;
  };

  LossBasedControl(Config config, DataRate start_rate);

  void OnLossReport(double fraction_lost, Timestamp now);

  DataRate rate() const { return rate_; }
  void SetRate(DataRate rate);
  double smoothed_loss() const { return smoothed_loss_; }

 private:
  Config config_;
  DataRate rate_;
  double smoothed_loss_ = 0.0;
  Timestamp last_increase_ = Timestamp::MinusInfinity();
};

}  // namespace converge
