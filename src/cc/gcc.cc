#include "cc/gcc.h"

#include <algorithm>
#include <string>

#include "util/invariants.h"

namespace converge {
namespace {

// Shared by both feedback entry points: the combined estimate must stay
// inside the configured envelope or the encoder/scheduler see garbage rates.
void CheckRateEnvelope(const GccController::Config& config, DataRate rate,
                       Timestamp now) {
  CONVERGE_INVARIANT(
      "GccController", now,
      rate >= config.min_rate && rate <= config.max_rate,
      "target=" + std::to_string(rate.bps()) +
          "bps min=" + std::to_string(config.min_rate.bps()) +
          " max=" + std::to_string(config.max_rate.bps()));
}

}  // namespace

GccController::GccController() : GccController(Config{}) {}

GccController::GccController(Config config)
    : config_(config),
      trendline_(),
      aimd_({.min_rate = config.min_rate, .max_rate = config.max_rate},
            config.start_rate),
      loss_({.min_rate = config.min_rate, .max_rate = config.max_rate},
            config.start_rate) {}

void GccController::OnTransportFeedback(
    const std::vector<PacketResult>& results, Timestamp now) {
  for (const PacketResult& r : results) {
    if (!r.received) continue;
    trendline_.OnPacketFeedback(r.send_time, r.recv_time);
    acked_rate_.AddBytes(r.recv_time, r.bytes);
  }
  goodput_ = acked_rate_.Rate(now);
  aimd_.Update(trendline_.State(), goodput_, now);
  CheckRateEnvelope(config_, target_rate(), now);
}

void GccController::OnReceiverReport(double fraction_lost, Duration rtt,
                                     Timestamp now) {
  if (rtt > Duration::Zero()) {
    srtt_ = have_rtt_ ? srtt_ * 0.875 + rtt * 0.125 : rtt;
    have_rtt_ = true;
  }
  loss_.OnLossReport(fraction_lost, now);
  // Keep the loss branch from capping growth when it has no signal yet.
  if (loss_.rate() < aimd_.rate() && fraction_lost < 0.02) {
    loss_.SetRate(std::max(loss_.rate(), aimd_.rate()));
  }
  CheckRateEnvelope(config_, target_rate(), now);
  CONVERGE_INVARIANT("GccController", now, srtt_ > Duration::Zero(),
                     "srtt=" + std::to_string(srtt_.us()) + "us");
}

DataRate GccController::target_rate() const {
  return std::min(aimd_.rate(), loss_.rate());
}

}  // namespace converge
