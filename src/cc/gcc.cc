#include "cc/gcc.h"

#include <algorithm>

namespace converge {

GccController::GccController() : GccController(Config{}) {}

GccController::GccController(Config config)
    : config_(config),
      trendline_(),
      aimd_({.min_rate = config.min_rate, .max_rate = config.max_rate},
            config.start_rate),
      loss_({.min_rate = config.min_rate, .max_rate = config.max_rate},
            config.start_rate) {}

void GccController::OnTransportFeedback(
    const std::vector<PacketResult>& results, Timestamp now) {
  for (const PacketResult& r : results) {
    if (!r.received) continue;
    trendline_.OnPacketFeedback(r.send_time, r.recv_time);
    acked_rate_.AddBytes(r.recv_time, r.bytes);
  }
  goodput_ = acked_rate_.Rate(now);
  aimd_.Update(trendline_.State(), goodput_, now);
}

void GccController::OnReceiverReport(double fraction_lost, Duration rtt,
                                     Timestamp now) {
  if (rtt > Duration::Zero()) {
    srtt_ = have_rtt_ ? srtt_ * 0.875 + rtt * 0.125 : rtt;
    have_rtt_ = true;
  }
  loss_.OnLossReport(fraction_lost, now);
  // Keep the loss branch from capping growth when it has no signal yet.
  if (loss_.rate() < aimd_.rate() && fraction_lost < 0.02) {
    loss_.SetRate(std::max(loss_.rate(), aimd_.rate()));
  }
}

DataRate GccController::target_rate() const {
  return std::min(aimd_.rate(), loss_.rate());
}

}  // namespace converge
