#include "cc/gcc.h"

#include <algorithm>
#include <string>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {
namespace {

// Shared by both feedback entry points: the combined estimate must stay
// inside the configured envelope or the encoder/scheduler see garbage rates.
void CheckRateEnvelope(const GccController::Config& config, DataRate rate,
                       Timestamp now) {
  CONVERGE_INVARIANT(
      "GccController", now,
      rate >= config.min_rate && rate <= config.max_rate,
      "target=" + std::to_string(rate.bps()) +
          "bps min=" + std::to_string(config.min_rate.bps()) +
          " max=" + std::to_string(config.max_rate.bps()));
}

}  // namespace

GccController::GccController() : GccController(Config{}) {}

GccController::GccController(Config config)
    : config_(config),
      trendline_(),
      aimd_({.min_rate = config.min_rate, .max_rate = config.max_rate},
            config.start_rate),
      loss_({.min_rate = config.min_rate, .max_rate = config.max_rate},
            config.start_rate) {}

void GccController::OnTransportFeedback(
    const std::vector<PacketResult>& results, Timestamp now) {
  for (const PacketResult& r : results) {
    if (!r.received) continue;
    trendline_.OnPacketFeedback(r.send_time, r.recv_time);
    acked_rate_.AddBytes(r.recv_time, r.bytes);
  }
  goodput_ = acked_rate_.Rate(now);
  aimd_.Update(trendline_.State(), goodput_, now);
  CheckRateEnvelope(config_, target_rate(), now);
  EmitTrace(now);
}

void GccController::OnReceiverReport(double fraction_lost, Duration rtt,
                                     Timestamp now) {
  // Accept-loss-only policy (see header): the RTT sample is used only when
  // a valid SR echo produced it, the loss fraction always counts.
  if (rtt > Duration::Zero()) {
    srtt_ = have_rtt_ ? srtt_ * 0.875 + rtt * 0.125 : rtt;
    have_rtt_ = true;
  }
  loss_.OnLossReport(fraction_lost, now);
  // Keep the loss branch from capping growth when it has no signal yet.
  if (loss_.rate() < aimd_.rate() && fraction_lost < 0.02) {
    loss_.SetRate(std::max(loss_.rate(), aimd_.rate()));
  }
  CheckRateEnvelope(config_, target_rate(), now);
  CONVERGE_INVARIANT("GccController", now, srtt_ > Duration::Zero(),
                     "srtt=" + std::to_string(srtt_.us()) + "us");
  EmitTrace(now);
}

void GccController::EmitTrace(Timestamp now) const {
  TraceRecorder* trace = TraceRecorder::Current();
  if (trace == nullptr) return;
  const int32_t path = config_.trace_path;
  const char* c =
      config_.trace_component != nullptr ? config_.trace_component : name();
  trace->Counter(c, "target_kbps", now,
                 static_cast<double>(target_rate().bps()) / 1000.0, path);
  trace->Counter(c, "goodput_kbps", now,
                 static_cast<double>(goodput_.bps()) / 1000.0, path);
  trace->Counter(c, "trendline_slope", now, trendline_.trend(), path);
  trace->Counter(c, "trendline_threshold", now, trendline_.threshold(),
                 path);
  trace->Counter(c, "detector_state", now,
                 static_cast<double>(trendline_.State()), path);
  trace->Counter(c, "aimd_state", now,
                 static_cast<double>(aimd_.state()), path);
  trace->Counter(c, "srtt_ms", now, srtt_.seconds() * 1000.0, path);
  trace->Counter(c, "loss", now, loss_.smoothed_loss(), path);
}

DataRate GccController::target_rate() const {
  return std::min(aimd_.rate(), loss_.rate());
}

}  // namespace converge
