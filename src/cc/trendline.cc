#include "cc/trendline.h"

#include <algorithm>
#include <cmath>

namespace converge {

TrendlineEstimator::TrendlineEstimator() : TrendlineEstimator(Config{}) {}

TrendlineEstimator::TrendlineEstimator(Config config)
    : config_(config), threshold_(config.initial_threshold) {}

void TrendlineEstimator::OnPacketFeedback(Timestamp send_time,
                                          Timestamp recv_time) {
  UpdateGroup(send_time, recv_time);
}

void TrendlineEstimator::UpdateGroup(Timestamp send_time, Timestamp recv_time) {
  if (!group_open_) {
    group_open_ = true;
    group_first_send_ = send_time;
    group_last_send_ = send_time;
    group_last_recv_ = recv_time;
    return;
  }
  if (send_time - group_first_send_ <= config_.burst_window) {
    // Same burst: extend.
    group_last_send_ = std::max(group_last_send_, send_time);
    group_last_recv_ = std::max(group_last_recv_, recv_time);
    return;
  }
  // Group closed: compute inter-group deltas against the previous group.
  if (have_prev_group_) {
    const double send_delta_ms = (group_last_send_ - prev_group_send_).ms();
    const double recv_delta_ms = (group_last_recv_ - prev_group_recv_).ms();
    const double delay_delta_ms = recv_delta_ms - send_delta_ms;
    accumulated_delay_ms_ += delay_delta_ms;
    smoothed_delay_ms_ = config_.smoothing * smoothed_delay_ms_ +
                         (1.0 - config_.smoothing) * accumulated_delay_ms_;
    UpdateTrend(group_last_recv_);
    ++num_deltas_;
    const Duration inter_arrival = group_last_recv_ - prev_group_recv_;
    Detect(trend_ * static_cast<double>(std::min<int64_t>(num_deltas_, 60)) *
               config_.threshold_gain,
           inter_arrival, group_last_recv_);
  }
  have_prev_group_ = true;
  prev_group_send_ = group_last_send_;
  prev_group_recv_ = group_last_recv_;
  // Start a new group with this packet.
  group_first_send_ = send_time;
  group_last_send_ = send_time;
  group_last_recv_ = recv_time;
}

void TrendlineEstimator::UpdateTrend(Timestamp recv_time) {
  if (window_.empty()) first_arrival_ms_ = recv_time.ms();
  window_.emplace_back(recv_time.ms() - first_arrival_ms_, smoothed_delay_ms_);
  while (window_.size() > static_cast<size_t>(config_.window_size)) {
    window_.pop_front();
  }
  if (window_.size() < 2) return;

  // Least-squares slope of smoothed delay vs arrival time.
  double sum_x = 0, sum_y = 0;
  for (const auto& [x, y] : window_) {
    sum_x += x;
    sum_y += y;
  }
  const double n = static_cast<double>(window_.size());
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double num = 0, den = 0;
  for (const auto& [x, y] : window_) {
    num += (x - mean_x) * (y - mean_y);
    den += (x - mean_x) * (x - mean_x);
  }
  if (den > 1e-9) trend_ = num / den;
}

void TrendlineEstimator::Detect(double modified_trend, Duration inter_arrival,
                                Timestamp recv_time) {
  if (modified_trend > threshold_) {
    time_over_using_ += inter_arrival;
    ++overuse_counter_;
    if (time_over_using_ > config_.overuse_time_threshold &&
        overuse_counter_ > 1 && trend_ >= prev_trend_) {
      state_ = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend < -threshold_) {
    time_over_using_ = Duration::Zero();
    overuse_counter_ = 0;
    state_ = BandwidthUsage::kUnderusing;
  } else {
    time_over_using_ = Duration::Zero();
    overuse_counter_ = 0;
    state_ = BandwidthUsage::kNormal;
  }
  prev_trend_ = trend_;
  UpdateThreshold(modified_trend, recv_time);
}

void TrendlineEstimator::UpdateThreshold(double modified_trend,
                                         Timestamp recv_time) {
  // Adaptive threshold (avoids starvation vs loss-based flows).
  if (!last_threshold_update_.IsFinite()) last_threshold_update_ = recv_time;
  const double abs_trend = std::fabs(modified_trend);
  if (abs_trend > threshold_ + 15.0) {
    // Outlier: do not adapt to extreme spikes.
    last_threshold_update_ = recv_time;
    return;
  }
  const double k = abs_trend < threshold_ ? config_.k_down : config_.k_up;
  const double dt_ms =
      std::min(100.0, (recv_time - last_threshold_update_).ms());
  threshold_ += k * (abs_trend - threshold_) * dt_ms;
  threshold_ = std::clamp(threshold_, 6.0, 600.0);
  last_threshold_update_ = recv_time;
}

}  // namespace converge
