// AIMD rate control of the delay-based GCC branch: multiplicative increase
// far from convergence, additive near it, multiplicative decrease to
// beta * measured throughput on overuse.
#pragma once

#include "cc/trendline.h"
#include "util/time.h"

namespace converge {

class AimdRateControl {
 public:
  struct Config {
    DataRate min_rate = DataRate::KilobitsPerSec(50);
    DataRate max_rate = DataRate::MegabitsPerSec(50);
    double beta = 0.85;               // decrease factor
    double increase_per_second = 0.08;  // multiplicative increase
  };

  AimdRateControl(Config config, DataRate start_rate);

  // Applies one detector decision. `acked_rate` is the measured delivered
  // rate for the path (goodput). Returns the new target.
  DataRate Update(BandwidthUsage usage, DataRate acked_rate, Timestamp now);

  enum class State { kHold, kIncrease, kDecrease };

  DataRate rate() const { return rate_; }
  void SetRate(DataRate rate) { rate_ = Clamp(rate); }
  State state() const { return state_; }
  // Normalized variance of the capacity samples observed at decrease
  // points (kbps-scale, clamped to [0.4, 2.5]); the near-capacity
  // additive-increase band in Update is 3*sqrt of this, so spread samples
  // widen the cautious region and tight samples shrink it back.
  double link_capacity_variance() const { return link_capacity_var_; }
  double link_capacity_estimate_bps() const {
    return link_capacity_estimate_bps_;
  }

 private:
  DataRate Clamp(DataRate r) const;
  DataRate AdditiveStep(Timestamp now) const;

  Config config_;
  DataRate rate_;
  State state_ = State::kIncrease;
  bool ever_decreased_ = false;
  Timestamp last_decrease_ = Timestamp::MinusInfinity();
  Timestamp last_update_ = Timestamp::MinusInfinity();
  // Average decrease point: near it we switch to additive increase. The
  // variance is the EWMA of the normalized squared estimation error at
  // decrease points (libwebrtc LinkCapacityEstimator-style), so the band
  // width tracks how repeatable the capacity samples actually are.
  double link_capacity_estimate_bps_ = 0.0;
  double link_capacity_var_ = 0.4;
};

}  // namespace converge
