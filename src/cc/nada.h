// NADA congestion control (RFC 8698): a composite congestion signal built
// from queuing delay plus a loss penalty, with a gradual rate update toward
// equilibrium and an accelerated ramp-up phase when the path shows no
// congestion. One instance per path, behind the CcController seam.
//
// The implementation follows the RFC's reference aggregation (x_curr =
// warped queuing delay + loss penalty; r_ref updated by the offset from the
// delay target and the signal's derivative) with the same simplifications
// the rest of this repo makes: EWMA filters instead of the 15-tap median,
// and the delivered-goodput ceiling GCC's AIMD also applies, so a
// controller can never run far ahead of what the path demonstrably carries.
#pragma once

#include <vector>

#include "cc/cc_controller.h"
#include "util/stats.h"
#include "util/time.h"

namespace converge {

class NadaController : public CcController {
 public:
  struct Params {
    double xref_ms = 10.0;    // delay target at equilibrium (XREF)
    double tau_ms = 500.0;    // filter time constant (TAU)
    double kappa = 0.5;       // gradual-update scaling (KAPPA)
    double eta = 2.0;         // derivative weight (ETA)
    double gamma_max = 0.5;   // accelerated ramp-up cap per interval
    double qbound_ms = 50.0;  // ramp-up delay bound (QBOUND)
    double qeps_ms = 10.0;    // "uncongested" queue threshold for ramp-up
    double loss_penalty_ms = 1000.0;  // signal ms added per unit loss ratio
  };

  explicit NadaController(CcConfig config);
  NadaController(CcConfig config, Params params);

  const char* name() const override { return "nada"; }

  void OnTransportFeedback(const std::vector<PacketResult>& results,
                           Timestamp now) override;
  void OnReceiverReport(double fraction_lost, Duration rtt,
                        Timestamp now) override;

  DataRate target_rate() const override { return rate_; }
  Duration smoothed_rtt() const override { return srtt_; }
  double loss_estimate() const override {
    return loss_.initialized() ? loss_.value() : 0.0;
  }
  DataRate goodput() const override { return goodput_; }

  // Filtered queuing delay (ms), for tests and traces.
  double queue_delay_ms() const { return queue_ms_; }
  // Last composite congestion signal x_curr (ms).
  double congestion_signal_ms() const { return x_curr_ms_; }

 private:
  void UpdateRate(bool batch_had_loss, Timestamp now);
  void EmitTrace(Timestamp now) const;

  CcConfig config_;
  Params params_;
  DataRate rate_;
  Duration srtt_ = Duration::Millis(100);
  bool have_rtt_ = false;
  // Baseline (minimum observed) one-way delay; queuing delay is measured
  // against it. One-way delays in this simulation share a clock, so no
  // offset handling is needed.
  Duration base_delay_ = Duration::Infinity();
  double queue_ms_ = 0.0;     // EWMA-filtered queuing delay
  double x_curr_ms_ = 0.0;    // composite signal of the last update
  double x_prev_ms_ = 0.0;
  Ewma loss_{0.1};
  Timestamp last_update_ = Timestamp::MinusInfinity();
  RateEstimator acked_rate_{Duration::Millis(800)};
  DataRate goodput_ = DataRate::Zero();
};

}  // namespace converge
