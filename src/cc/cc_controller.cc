#include "cc/cc_controller.h"

#include "cc/cross.h"
#include "cc/gcc.h"
#include "cc/nada.h"
#include "util/invariants.h"

namespace converge {

std::string ToString(CcAlgorithm a) {
  switch (a) {
    case CcAlgorithm::kGcc:
      return "gcc";
    case CcAlgorithm::kNada:
      return "nada";
    case CcAlgorithm::kCross:
      return "cross";
  }
  return "?";
}

std::string ToString(CcCoupling c) {
  switch (c) {
    case CcCoupling::kUncoupled:
      return "uncoupled";
    case CcCoupling::kWeighted:
      return "mp-weighted";
    case CcCoupling::kRoundRobin:
      return "mp-rr";
    case CcCoupling::kBestPath:
      return "mp-best";
  }
  return "?";
}

bool ParseCcAlgorithm(const std::string& token, CcAlgorithm* out) {
  for (CcAlgorithm a :
       {CcAlgorithm::kGcc, CcAlgorithm::kNada, CcAlgorithm::kCross}) {
    if (token == ToString(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool ParseCcCoupling(const std::string& token, CcCoupling* out) {
  for (CcCoupling c : {CcCoupling::kUncoupled, CcCoupling::kWeighted,
                       CcCoupling::kRoundRobin, CcCoupling::kBestPath}) {
    if (token == ToString(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

std::unique_ptr<CcController> MakeCcController(const CcConfig& config) {
  switch (config.algorithm) {
    case CcAlgorithm::kGcc:
      return std::make_unique<GccController>(config);
    case CcAlgorithm::kNada:
      return std::make_unique<NadaController>(config);
    case CcAlgorithm::kCross:
      return std::make_unique<CrossController>(config);
  }
  // The switch above is exhaustive; only a CcAlgorithm forged from an
  // out-of-range integer lands here. Scream under the harness, then degrade
  // to GCC so release builds still produce a run.
  CONVERGE_INVARIANT(
      "CcController", Timestamp::MinusInfinity(), false,
      "unknown CcAlgorithm " +
          std::to_string(static_cast<int>(config.algorithm)));
  CcConfig fallback = config;
  fallback.algorithm = CcAlgorithm::kGcc;
  return std::make_unique<GccController>(fallback);
}

const char* HubTraceComponent(CcAlgorithm a) {
  switch (a) {
    case CcAlgorithm::kGcc:
      return "hub_gcc";
    case CcAlgorithm::kNada:
      return "hub_nada";
    case CcAlgorithm::kCross:
      return "hub_cross";
  }
  return "hub_gcc";
}

}  // namespace converge
