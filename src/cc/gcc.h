// Per-path Google Congestion Control: combines the delay-based branch
// (trendline + AIMD) with the loss-based branch and tracks path statistics
// the schedulers consume (smoothed RTT, loss estimate, goodput).
//
// Converge runs one GccController per path (uncoupled congestion control,
// §4.1); the encoder target is min(sum of path rates, application max).
// GCC is the default CcController and the one the pinned tests/data
// fixtures were captured under.
#pragma once

#include <vector>

#include "cc/aimd.h"
#include "cc/cc_controller.h"
#include "cc/loss_based.h"
#include "cc/trendline.h"
#include "util/stats.h"
#include "util/time.h"

namespace converge {

class GccController : public CcController {
 public:
  // GCC's construction parameters are exactly the shared CcConfig; the
  // alias keeps the historical GccController::Config spelling working.
  using Config = CcConfig;

  GccController();
  explicit GccController(Config config);

  const char* name() const override { return "gcc"; }

  // Transport-wide feedback for this path (delay-based branch + goodput).
  void OnTransportFeedback(const std::vector<PacketResult>& results,
                           Timestamp now) override;
  // Receiver-report loss + RTT (loss-based branch). Zero-RTT policy —
  // accept loss-only: the fraction-lost field is self-contained receiver
  // evidence (a cumulative count delta), so it always drives the loss
  // branch, while the RTT sample requires a valid SR echo and is dropped
  // when rtt <= 0 (no echo yet, or a clock artifact). Rejecting the whole
  // report would blind the loss branch exactly when SRs are lost.
  void OnReceiverReport(double fraction_lost, Duration rtt,
                        Timestamp now) override;

  // Combined target: min(delay-based, loss-based).
  DataRate target_rate() const override;

  Duration smoothed_rtt() const override { return srtt_; }
  double loss_estimate() const override { return loss_.smoothed_loss(); }
  DataRate goodput() const override { return goodput_; }
  BandwidthUsage detector_state() const { return trendline_.State(); }
  double trendline_slope() const { return trendline_.trend(); }
  AimdRateControl::State aimd_state() const { return aimd_.state(); }

 private:
  void EmitTrace(Timestamp now) const;

  Config config_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  LossBasedControl loss_;
  Duration srtt_ = Duration::Millis(100);
  bool have_rtt_ = false;
  RateEstimator acked_rate_{Duration::Millis(800)};
  DataRate goodput_ = DataRate::Zero();
};

}  // namespace converge
