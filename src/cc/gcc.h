// Per-path Google Congestion Control: combines the delay-based branch
// (trendline + AIMD) with the loss-based branch and tracks path statistics
// the schedulers consume (smoothed RTT, loss estimate, goodput).
//
// Converge runs one GccController per path (uncoupled congestion control,
// §4.1); the encoder target is min(sum of path rates, application max).
#pragma once

#include <vector>

#include "cc/aimd.h"
#include "cc/loss_based.h"
#include "cc/trendline.h"
#include "util/stats.h"
#include "util/time.h"

namespace converge {

// One packet's fate as reported by transport feedback.
struct PacketResult {
  int64_t transport_seq = 0;
  int64_t bytes = 0;
  Timestamp send_time;
  Timestamp recv_time;  // only valid when received
  bool received = false;
};

class GccController {
 public:
  struct Config {
    DataRate start_rate = DataRate::KilobitsPerSec(300);
    DataRate min_rate = DataRate::KilobitsPerSec(50);
    DataRate max_rate = DataRate::MegabitsPerSec(50);
    // PathId stamped on trace events (-1 when this controller is not
    // path-scoped); probes are read-only and fire only under TraceScope.
    int trace_path = -1;
    // Trace component the series are emitted under; the hub's per-downlink
    // controllers use a distinct name so their series do not collide with a
    // participant's own sender-side controllers in the same trace.
    const char* trace_component = "gcc";
  };

  GccController();
  explicit GccController(Config config);

  // Transport-wide feedback for this path (delay-based branch + goodput).
  void OnTransportFeedback(const std::vector<PacketResult>& results,
                           Timestamp now);
  // Receiver-report loss + RTT (loss-based branch).
  void OnReceiverReport(double fraction_lost, Duration rtt, Timestamp now);

  // Combined target: min(delay-based, loss-based).
  DataRate target_rate() const;

  Duration smoothed_rtt() const { return srtt_; }
  double loss_estimate() const { return loss_.smoothed_loss(); }
  DataRate goodput() const { return goodput_; }
  BandwidthUsage detector_state() const { return trendline_.State(); }
  double trendline_slope() const { return trendline_.trend(); }
  AimdRateControl::State aimd_state() const { return aimd_.state(); }

 private:
  void EmitTrace(Timestamp now) const;

  Config config_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  LossBasedControl loss_;
  Duration srtt_ = Duration::Millis(100);
  bool have_rtt_ = false;
  RateEstimator acked_rate_{Duration::Millis(800)};
  DataRate goodput_ = DataRate::Zero();
};

}  // namespace converge
