#include "cc/aimd.h"

#include <algorithm>
#include <cmath>

namespace converge {

AimdRateControl::AimdRateControl(Config config, DataRate start_rate)
    : config_(config), rate_(start_rate) {}

DataRate AimdRateControl::Clamp(DataRate r) const {
  return std::clamp(r, config_.min_rate, config_.max_rate);
}

DataRate AimdRateControl::AdditiveStep(Timestamp) const {
  // Roughly one mtu-sized packet per response interval.
  return DataRate::KilobitsPerSec(60);
}

DataRate AimdRateControl::Update(BandwidthUsage usage, DataRate acked_rate,
                                 Timestamp now) {
  const double dt = last_update_.IsFinite()
                        ? std::min(1.0, (now - last_update_).seconds())
                        : 0.05;
  last_update_ = now;

  switch (usage) {
    case BandwidthUsage::kOverusing: {
      // Decrease toward beta * measured throughput.
      const DataRate measured =
          acked_rate.IsZero() ? rate_ : acked_rate;
      const DataRate target = measured * config_.beta;
      if (target < rate_) rate_ = Clamp(target);
      // Remember the capacity estimate (EWMA around decrease points) and
      // track the normalized variance of the samples against it: the
      // squared estimation error in kbps, normalized by the estimate so the
      // value is scale-free, EWMA-smoothed and clamped like libwebrtc's
      // LinkCapacityEstimator. Tight samples pull the variance back to the
      // floor; scattered ones widen the near-capacity band above.
      const double sample = static_cast<double>(measured.bps());
      if (link_capacity_estimate_bps_ <= 0.0) {
        link_capacity_estimate_bps_ = sample;
      } else {
        link_capacity_estimate_bps_ +=
            0.05 * (sample - link_capacity_estimate_bps_);
        const double estimate_kbps = link_capacity_estimate_bps_ / 1000.0;
        const double error_kbps = estimate_kbps - sample / 1000.0;
        link_capacity_var_ =
            0.95 * link_capacity_var_ +
            0.05 * (error_kbps * error_kbps) / std::max(estimate_kbps, 1.0);
        link_capacity_var_ = std::clamp(link_capacity_var_, 0.4, 2.5);
      }
      ever_decreased_ = true;
      last_decrease_ = now;
      state_ = State::kHold;
      break;
    }
    case BandwidthUsage::kUnderusing:
      // Queues draining: hold to let them empty.
      state_ = State::kHold;
      break;
    case BandwidthUsage::kNormal: {
      state_ = State::kIncrease;
      const bool near_capacity =
          link_capacity_estimate_bps_ > 0.0 &&
          static_cast<double>(rate_.bps()) >
              (1.0 - 3.0 * std::sqrt(link_capacity_var_) * 0.1) *
                  link_capacity_estimate_bps_;
      const bool delivering =
          !acked_rate.IsZero() &&
          static_cast<double>(acked_rate.bps()) >
              0.8 * static_cast<double>(rate_.bps());
      const double quiet_s = last_decrease_.IsFinite()
                                 ? (now - last_decrease_).seconds()
                                 : 1e9;
      if (!ever_decreased_) {
        // Startup: no congestion signal seen yet. Ramp aggressively while
        // the path demonstrably delivers what we send — this stands in for
        // WebRTC's initial probing phase.
        const double per_second =
            delivering ? 0.30 : config_.increase_per_second;
        rate_ = Clamp(rate_ * std::pow(1.0 + per_second, dt));
      } else if (near_capacity && quiet_s < 4.0) {
        // Near the last decrease point and recently congested: cautious
        // additive increase.
        rate_ = Clamp(rate_ + AdditiveStep(now) * dt);
      } else {
        // Recovery probing: the longer the path has been congestion-free
        // while delivering everything we send, the harder we ramp — this
        // is what re-climbs quickly after an outage collapsed the rate
        // (WebRTC's ALR/network probes play this role).
        double per_second = config_.increase_per_second;
        if (delivering && quiet_s > 2.0) {
          per_second = std::min(
              0.5, per_second * std::pow(2.0, (quiet_s - 2.0) / 2.0));
        }
        rate_ = Clamp(rate_ * std::pow(1.0 + per_second, dt));
      }
      // Never run far ahead of what the path demonstrably delivers.
      if (!acked_rate.IsZero()) {
        const DataRate ceiling = acked_rate * 2.0 + DataRate::KilobitsPerSec(500);
        if (rate_ > ceiling) rate_ = Clamp(ceiling);
      }
      break;
    }
  }
  return rate_;
}

}  // namespace converge
