#include "cc/pacer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {

Pacer::Pacer(EventLoop* loop, Config config, SendFn send)
    : loop_(loop),
      config_(config),
      send_(std::move(send)),
      last_process_(loop->now()) {
  task_ = std::make_unique<RepeatingTask>(loop_, config_.process_interval,
                                          [this] { Process(); });
}

Pacer::~Pacer() = default;

void Pacer::SetRate(DataRate media_rate) {
  pacing_rate_ = media_rate * config_.pacing_factor;
}

void Pacer::Enqueue(RtpPacket packet) {
  queued_bytes_ += packet.wire_size();
  Queued entry{std::move(packet), loop_->now()};
  if (entry.packet.priority == Priority::kRetransmit) {
    high_queue_.push_back(std::move(entry));
  } else {
    queue_.push_back(std::move(entry));
  }
}

Duration Pacer::QueueDelay() const {
  if (pacing_rate_.IsZero()) return Duration::Infinity();
  return pacing_rate_.TransmitTime(queued_bytes_);
}

void Pacer::Process() {
  const Timestamp now = loop_->now();
  const Duration elapsed = now - last_process_;
  last_process_ = now;

  budget_bytes_ += static_cast<double>(pacing_rate_.BytesIn(elapsed));
  budget_bytes_ = std::min(
      budget_bytes_, static_cast<double>(config_.max_burst_bytes));

  // Overload protection: drop retransmissions that went stale in the queue
  // (their frame has been skipped), then shed old media from the head
  // rather than let the whole pipeline's latency grow without bound.
  while (!high_queue_.empty() &&
         now - high_queue_.front().enqueued > config_.max_rtx_age) {
    queued_bytes_ -= high_queue_.front().packet.wire_size();
    high_queue_.pop_front();
    ++stats_.packets_dropped;
  }
  while (!queue_.empty() && QueueDelay() > config_.max_queue_time) {
    queued_bytes_ -= queue_.front().packet.wire_size();
    queue_.pop_front();
    ++stats_.packets_dropped;
  }

  while (true) {
    RingQueue<Queued>* source =
        !high_queue_.empty() ? &high_queue_ : &queue_;
    if (source->empty()) break;
    if (budget_bytes_ <
        static_cast<double>(source->front().packet.wire_size())) {
      break;
    }
    RtpPacket packet = std::move(source->front().packet);
    source->pop_front();
    const int64_t size = packet.wire_size();
    queued_bytes_ -= size;
    budget_bytes_ -= static_cast<double>(size);
    packet.send_time = now;
    ++stats_.packets_sent;
    send_(std::move(packet));
  }
  if (queue_.empty() && high_queue_.empty() && budget_bytes_ > 0.0) {
    // Do not accumulate idle budget beyond one burst.
    budget_bytes_ = std::min(budget_bytes_, 3000.0);
  }

  if (TraceRecorder* trace = TraceRecorder::Current()) {
    const int32_t path = config_.trace_path;
    trace->Counter("pacer", "queue_pkts", now,
                   static_cast<double>(queue_packets()), path);
    trace->Counter("pacer", "queue_bytes", now,
                   static_cast<double>(queued_bytes_), path);
    trace->Counter("pacer", "budget_bytes", now, budget_bytes_, path);
    const Duration delay = QueueDelay();
    trace->Counter("pacer", "queue_delay_ms", now,
                   delay.IsInfinite() ? -1.0 : delay.seconds() * 1000.0,
                   path);
  }

  CONVERGE_INVARIANT("Pacer", now, queued_bytes_ >= 0,
                     "queued_bytes=" + std::to_string(queued_bytes_));
  CONVERGE_INVARIANT(
      "Pacer", now,
      !(queue_.empty() && high_queue_.empty()) || queued_bytes_ == 0,
      "empty queues but queued_bytes=" + std::to_string(queued_bytes_));
  CONVERGE_INVARIANT(
      "Pacer", now, budget_bytes_ <= static_cast<double>(config_.max_burst_bytes),
      "budget=" + std::to_string(budget_bytes_) +
          " max_burst=" + std::to_string(config_.max_burst_bytes));
}

}  // namespace converge
