// The pluggable congestion-control seam. Converge runs one controller per
// path (uncoupled CC, §4.1); this interface is the surface the session layer
// (session/sender.h, cc/downlink_cc.h, the hub forwarder) holds controllers
// through, so the paper's uncoupled-GCC choice can be evaluated against
// alternative controllers (NADA, Cross) and against coupled-multipath
// wrapper strategies (cc/coupling.h) without touching the media pipeline.
//
// Controllers are created through MakeCcController, an exhaustive switch
// mirroring the MakeScheduler/MakeFec pattern in session/conference.cc: a
// forged enum screams through the invariant registry and degrades to GCC so
// release builds still produce a run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/time.h"

namespace converge {

// One packet's fate as reported by transport feedback.
struct PacketResult {
  int64_t transport_seq = 0;
  int64_t bytes = 0;
  Timestamp send_time;
  Timestamp recv_time;  // only valid when received
  bool received = false;
};

// The available per-path rate controllers.
enum class CcAlgorithm {
  kGcc,    // trendline + AIMD + loss branch (WebRTC's controller)
  kNada,   // RFC 8698: composite congestion signal, gradual update
  kCross,  // Cross-style delay gradient with an explicit queue budget
};

// How a sender combines its per-path controllers. kUncoupled is the paper's
// design (each path's target stands alone); the mp-* strategies redistribute
// the aggregate target across paths (cc/coupling.h).
enum class CcCoupling {
  kUncoupled,   // per-path targets used as-is (Converge §4.1)
  kWeighted,    // aggregate split by delivered-goodput share ("mp-weighted")
  kRoundRobin,  // aggregate split equally across paths ("mp-rr")
  kBestPath,    // aggregate pinned to the best path ("mp-best")
};

std::string ToString(CcAlgorithm a);
std::string ToString(CcCoupling c);
// Parse the stable token names ("gcc", "nada", "cross"; "uncoupled",
// "mp-weighted", "mp-rr", "mp-best") used by bench flags and SDP. Returns
// false on an unknown token, leaving `out` untouched.
bool ParseCcAlgorithm(const std::string& token, CcAlgorithm* out);
bool ParseCcCoupling(const std::string& token, CcCoupling* out);

// Construction parameters shared by every controller.
struct CcConfig {
  CcAlgorithm algorithm = CcAlgorithm::kGcc;
  DataRate start_rate = DataRate::KilobitsPerSec(300);
  DataRate min_rate = DataRate::KilobitsPerSec(50);
  DataRate max_rate = DataRate::MegabitsPerSec(50);
  // PathId stamped on trace events (-1 when this controller is not
  // path-scoped); probes are read-only and fire only under TraceScope.
  int trace_path = -1;
  // Trace component the series are emitted under; nullptr uses the
  // controller's own name ("gcc", "nada", "cross"). The hub's per-downlink
  // controllers use a distinct "hub_"-prefixed name so their series do not
  // collide with a participant's own sender-side controllers in the same
  // trace (HubTraceComponent below).
  const char* trace_component = nullptr;
};

// Per-path congestion controller. Implementations must keep target_rate()
// inside [config.min_rate, config.max_rate] (checked via the invariant
// registry) and be fully deterministic functions of their inputs.
class CcController {
 public:
  virtual ~CcController() = default;

  // Stable token name ("gcc", "nada", "cross").
  virtual const char* name() const = 0;

  // Transport-wide feedback for this path (delay signal + goodput).
  virtual void OnTransportFeedback(const std::vector<PacketResult>& results,
                                   Timestamp now) = 0;
  // Receiver-report loss + RTT. Policy (enforced by every implementation,
  // documented in cc/gcc.h): a report with rtt <= 0 is accepted loss-only —
  // the loss fraction is self-contained receiver evidence, while an RTT
  // sample needs a valid SR echo.
  virtual void OnReceiverReport(double fraction_lost, Duration rtt,
                                Timestamp now) = 0;

  virtual DataRate target_rate() const = 0;
  virtual Duration smoothed_rtt() const = 0;
  virtual double loss_estimate() const = 0;
  virtual DataRate goodput() const = 0;
};

// Exhaustive factory over CcAlgorithm (the MakeScheduler pattern): a forged
// enum screams through the invariant registry and falls back to GCC.
std::unique_ptr<CcController> MakeCcController(const CcConfig& config);

// The hub-side trace component for an algorithm ("hub_gcc", "hub_nada",
// "hub_cross"); static storage, valid forever.
const char* HubTraceComponent(CcAlgorithm a);

}  // namespace converge
