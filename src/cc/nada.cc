#include "cc/nada.h"

#include <algorithm>
#include <string>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {
namespace {

void CheckRateEnvelope(const CcConfig& config, DataRate rate, Timestamp now) {
  CONVERGE_INVARIANT(
      "NadaController", now,
      rate >= config.min_rate && rate <= config.max_rate,
      "target=" + std::to_string(rate.bps()) +
          "bps min=" + std::to_string(config.min_rate.bps()) +
          " max=" + std::to_string(config.max_rate.bps()));
}

}  // namespace

NadaController::NadaController(CcConfig config)
    : NadaController(config, Params{}) {}

NadaController::NadaController(CcConfig config, Params params)
    : config_(config), params_(params), rate_(config.start_rate) {}

void NadaController::OnTransportFeedback(
    const std::vector<PacketResult>& results, Timestamp now) {
  int received = 0;
  int lost = 0;
  Duration batch_min_owd = Duration::Infinity();
  for (const PacketResult& r : results) {
    if (!r.received) {
      ++lost;
      continue;
    }
    ++received;
    acked_rate_.AddBytes(r.recv_time, r.bytes);
    const Duration owd = r.recv_time - r.send_time;
    if (owd < base_delay_) base_delay_ = owd;
    if (owd < batch_min_owd) batch_min_owd = owd;
  }
  if (received + lost == 0) return;
  goodput_ = acked_rate_.Rate(now);

  if (!batch_min_owd.IsInfinite() && !base_delay_.IsInfinite()) {
    const double sample_ms = (batch_min_owd - base_delay_).ms();
    // EWMA in place of the RFC's 15-tap median: same intent (suppress
    // single-packet jitter), cheaper and already the house style.
    queue_ms_ = 0.5 * queue_ms_ + 0.5 * sample_ms;
  }
  loss_.Add(static_cast<double>(lost) /
            static_cast<double>(received + lost));

  UpdateRate(/*batch_had_loss=*/lost > 0, now);
  CheckRateEnvelope(config_, rate_, now);
  EmitTrace(now);
}

void NadaController::UpdateRate(bool batch_had_loss, Timestamp now) {
  const double dt_s = last_update_.IsFinite()
                          ? std::clamp((now - last_update_).seconds(), 0.0, 0.5)
                          : 0.1;
  last_update_ = now;

  // Composite congestion signal (RFC 8698 §4.2): filtered queuing delay
  // plus an equivalent-delay loss penalty.
  x_curr_ms_ = queue_ms_ + params_.loss_penalty_ms * loss_estimate();

  const bool uncongested =
      !batch_had_loss && queue_ms_ < params_.qeps_ms && loss_estimate() < 0.01;
  if (uncongested) {
    // Accelerated ramp-up (§4.3): multiplicative growth bounded so the
    // self-inflicted queue stays under QBOUND for the current RTT.
    const double rtt_ms = std::max(10.0, srtt_.seconds() * 1000.0);
    const double gamma =
        std::min(params_.gamma_max, params_.qbound_ms / (rtt_ms + 100.0));
    rate_ = rate_ * (1.0 + gamma * dt_s / 0.1);
  } else {
    // Gradual update (§4.3): proportional term on the offset from the
    // delay target, derivative term on the signal's change.
    const double x_offset = x_curr_ms_ - params_.xref_ms;
    const double x_diff = x_curr_ms_ - x_prev_ms_;
    const double dt_ms = dt_s * 1000.0;
    const double delta =
        params_.kappa * (dt_ms / params_.tau_ms) * (x_offset / params_.tau_ms) +
        params_.kappa * params_.eta * (x_diff / params_.tau_ms);
    rate_ = rate_ * std::clamp(1.0 - delta, 0.5, 1.1);
  }
  x_prev_ms_ = x_curr_ms_;

  // Never run far ahead of what the path demonstrably delivers (the same
  // ceiling AIMD applies), except while still blind before the first
  // goodput sample.
  if (!goodput_.IsZero()) {
    const DataRate ceiling = goodput_ * 2.0 + DataRate::KilobitsPerSec(500);
    if (rate_ > ceiling) rate_ = ceiling;
  }
  rate_ = std::clamp(rate_, config_.min_rate, config_.max_rate);
}

void NadaController::OnReceiverReport(double fraction_lost, Duration rtt,
                                      Timestamp now) {
  // Zero-RTT policy — accept loss-only (see cc/gcc.h): loss is
  // self-contained receiver evidence; the RTT sample needs a valid SR echo.
  if (rtt > Duration::Zero()) {
    srtt_ = have_rtt_ ? srtt_ * 0.875 + rtt * 0.125 : rtt;
    have_rtt_ = true;
  }
  loss_.Add(fraction_lost);
  CheckRateEnvelope(config_, rate_, now);
  CONVERGE_INVARIANT("NadaController", now, srtt_ > Duration::Zero(),
                     "srtt=" + std::to_string(srtt_.us()) + "us");
  EmitTrace(now);
}

void NadaController::EmitTrace(Timestamp now) const {
  TraceRecorder* trace = TraceRecorder::Current();
  if (trace == nullptr) return;
  const int32_t path = config_.trace_path;
  const char* c =
      config_.trace_component != nullptr ? config_.trace_component : name();
  trace->Counter(c, "target_kbps", now,
                 static_cast<double>(rate_.bps()) / 1000.0, path);
  trace->Counter(c, "goodput_kbps", now,
                 static_cast<double>(goodput_.bps()) / 1000.0, path);
  trace->Counter(c, "queue_ms", now, queue_ms_, path);
  trace->Counter(c, "x_curr_ms", now, x_curr_ms_, path);
  trace->Counter(c, "srtt_ms", now, srtt_.seconds() * 1000.0, path);
  trace->Counter(c, "loss", now, loss_estimate(), path);
}

}  // namespace converge
