// Cross-style delay-based congestion control (after arXiv 2409.10042):
// tracks the queuing delay against an explicit budget and steers the rate
// by the filtered delay gradient. Unlike GCC's trendline detector (a
// slope-over-threshold state machine) the controller regulates directly on
// the measured queue: overshoot of the budget produces a proportional
// multiplicative decrease, headroom under it scales the increase, and a
// sustained positive gradient holds the rate before the budget is even
// reached. One instance per path, behind the CcController seam.
#pragma once

#include <vector>

#include "cc/cc_controller.h"
#include "util/stats.h"
#include "util/time.h"

namespace converge {

class CrossController : public CcController {
 public:
  struct Params {
    double queue_budget_ms = 50.0;   // explicit queuing-delay budget
    double gradient_hold_ms_per_s = 25.0;  // hold when queue grows faster
    double increase_per_second = 0.4;      // growth at full headroom
    double decrease_gain = 0.8;      // decrease rate per unit overshoot
    double loss_backoff = 0.85;      // multiplicative backoff on heavy loss
    double high_loss = 0.10;
  };

  explicit CrossController(CcConfig config);
  CrossController(CcConfig config, Params params);

  const char* name() const override { return "cross"; }

  void OnTransportFeedback(const std::vector<PacketResult>& results,
                           Timestamp now) override;
  void OnReceiverReport(double fraction_lost, Duration rtt,
                        Timestamp now) override;

  DataRate target_rate() const override { return rate_; }
  Duration smoothed_rtt() const override { return srtt_; }
  double loss_estimate() const override {
    return loss_.initialized() ? loss_.value() : 0.0;
  }
  DataRate goodput() const override { return goodput_; }

  // Filtered queuing delay (ms) and gradient (ms/s), for tests and traces.
  double queue_delay_ms() const { return queue_ms_; }
  double queue_gradient_ms_per_s() const { return gradient_ms_per_s_; }

 private:
  void EmitTrace(Timestamp now) const;

  CcConfig config_;
  Params params_;
  DataRate rate_;
  Duration srtt_ = Duration::Millis(100);
  bool have_rtt_ = false;
  Duration base_delay_ = Duration::Infinity();
  double queue_ms_ = 0.0;
  double gradient_ms_per_s_ = 0.0;
  bool have_queue_sample_ = false;
  Ewma loss_{0.1};
  Timestamp last_update_ = Timestamp::MinusInfinity();
  Timestamp last_loss_backoff_ = Timestamp::MinusInfinity();
  RateEstimator acked_rate_{Duration::Millis(800)};
  DataRate goodput_ = DataRate::Zero();
};

}  // namespace converge
