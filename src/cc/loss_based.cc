#include "cc/loss_based.h"

#include <algorithm>

namespace converge {

LossBasedControl::LossBasedControl(Config config, DataRate start_rate)
    : config_(config), rate_(start_rate) {}

void LossBasedControl::SetRate(DataRate rate) {
  rate_ = std::clamp(rate, config_.min_rate, config_.max_rate);
}

void LossBasedControl::OnLossReport(double fraction_lost, Timestamp now) {
  smoothed_loss_ = 0.7 * smoothed_loss_ + 0.3 * fraction_lost;

  if (fraction_lost > config_.high_loss) {
    SetRate(rate_ * (1.0 - 0.5 * fraction_lost));
  } else if (fraction_lost < config_.low_loss) {
    // Rate-limit multiplicative increases to once per ~200 ms of reports.
    if (!last_increase_.IsFinite() ||
        now - last_increase_ >= Duration::Millis(200)) {
      SetRate(rate_ * config_.increase_factor);
      last_increase_ = now;
    }
  }
  // Between 2% and 10%: hold.
}

}  // namespace converge
