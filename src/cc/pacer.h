// Per-path pacer: smooths packet emission onto a path at a configurable
// multiple of the path's allocated rate, like WebRTC's paced sender.
#pragma once

#include <functional>
#include <memory>

#include "rtp/rtp_packet.h"
#include "sim/event_loop.h"
#include "util/ring_buffer.h"

namespace converge {

class Pacer {
 public:
  struct Config {
    Duration process_interval = Duration::Millis(5);
    double pacing_factor = 1.25;  // headroom over the media rate
    int64_t max_burst_bytes = 20'000;
    // Packets whose projected queueing time exceeds this are dropped from
    // the head of the queue (stale media is worthless in conferencing).
    Duration max_queue_time = Duration::Millis(400);
    // Retransmissions older than this are dropped: the frame buffer has
    // already skipped past the frame they would repair.
    Duration max_rtx_age = Duration::Millis(300);
    // PathId stamped on trace events (-1 when not path-scoped).
    int trace_path = -1;
  };

  struct Stats {
    int64_t packets_sent = 0;
    int64_t packets_dropped = 0;  // overload drops at the sender
  };

  using SendFn = std::function<void(RtpPacket&&)>;

  Pacer(EventLoop* loop, Config config, SendFn send);
  ~Pacer();

  void SetRate(DataRate media_rate);
  // Retransmissions (Table 2 priority 1) bypass the media backlog.
  void Enqueue(RtpPacket packet);

  size_t queue_packets() const { return queue_.size() + high_queue_.size(); }
  int64_t queue_bytes() const { return queued_bytes_; }
  // Expected time to drain the current queue at the pacing rate.
  Duration QueueDelay() const;
  const Stats& stats() const { return stats_; }

 private:
  void Process();

  EventLoop* loop_;
  Config config_;
  SendFn send_;
  struct Queued {
    RtpPacket packet;
    Timestamp enqueued;
  };

  DataRate pacing_rate_ = DataRate::KilobitsPerSec(300);
  // Recycled rings: the pacer queue slides through memory at packet rate,
  // so a deque would allocate and free chunks on the hot path; the ring
  // reuses its slots once it reaches steady-state depth.
  RingQueue<Queued> high_queue_;  // retransmissions
  RingQueue<Queued> queue_;
  int64_t queued_bytes_ = 0;
  double budget_bytes_ = 0.0;
  Timestamp last_process_;
  Stats stats_;
  std::unique_ptr<RepeatingTask> task_;
};

}  // namespace converge
