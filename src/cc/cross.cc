#include "cc/cross.h"

#include <algorithm>
#include <string>

#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {
namespace {

void CheckRateEnvelope(const CcConfig& config, DataRate rate, Timestamp now) {
  CONVERGE_INVARIANT(
      "CrossController", now,
      rate >= config.min_rate && rate <= config.max_rate,
      "target=" + std::to_string(rate.bps()) +
          "bps min=" + std::to_string(config.min_rate.bps()) +
          " max=" + std::to_string(config.max_rate.bps()));
}

}  // namespace

CrossController::CrossController(CcConfig config)
    : CrossController(config, Params{}) {}

CrossController::CrossController(CcConfig config, Params params)
    : config_(config), params_(params), rate_(config.start_rate) {}

void CrossController::OnTransportFeedback(
    const std::vector<PacketResult>& results, Timestamp now) {
  int received = 0;
  int lost = 0;
  Duration batch_min_owd = Duration::Infinity();
  for (const PacketResult& r : results) {
    if (!r.received) {
      ++lost;
      continue;
    }
    ++received;
    acked_rate_.AddBytes(r.recv_time, r.bytes);
    const Duration owd = r.recv_time - r.send_time;
    if (owd < base_delay_) base_delay_ = owd;
    if (owd < batch_min_owd) batch_min_owd = owd;
  }
  if (received + lost == 0) return;
  goodput_ = acked_rate_.Rate(now);
  loss_.Add(static_cast<double>(lost) /
            static_cast<double>(received + lost));

  const double dt_s = last_update_.IsFinite()
                          ? std::clamp((now - last_update_).seconds(), 0.0, 0.5)
                          : 0.1;
  last_update_ = now;

  if (!batch_min_owd.IsInfinite() && !base_delay_.IsInfinite()) {
    const double sample_ms = (batch_min_owd - base_delay_).ms();
    if (have_queue_sample_ && dt_s > 1e-6) {
      const double gradient = (sample_ms - queue_ms_) / dt_s;
      gradient_ms_per_s_ =
          0.7 * gradient_ms_per_s_ + 0.3 * gradient;
    }
    queue_ms_ = have_queue_sample_ ? 0.5 * queue_ms_ + 0.5 * sample_ms
                                   : sample_ms;
    have_queue_sample_ = true;
  }

  const double budget = params_.queue_budget_ms;
  if (loss_estimate() > params_.high_loss) {
    // Heavy loss means the queue signal already failed (a drop-tail ahead
    // of the bottleneck, or a faulted link): back off multiplicatively, at
    // most once per ~300 ms so consecutive batches don't compound.
    if (!last_loss_backoff_.IsFinite() ||
        now - last_loss_backoff_ > Duration::Millis(300)) {
      rate_ = rate_ * params_.loss_backoff;
      last_loss_backoff_ = now;
    }
  } else if (queue_ms_ > budget) {
    // Proportional multiplicative decrease: the further past the budget
    // the queue sits, the harder the pull-down.
    const double overshoot = (queue_ms_ - budget) / budget;
    const double factor =
        std::clamp(1.0 - params_.decrease_gain * dt_s * overshoot, 0.5, 1.0);
    rate_ = rate_ * factor;
  } else if (gradient_ms_per_s_ > params_.gradient_hold_ms_per_s) {
    // Queue is filling fast even though it is still under budget: hold and
    // let the gradient play out instead of feeding it.
  } else {
    // Headroom-scaled increase: full speed on an empty queue, tapering to
    // nothing as the queue approaches the budget.
    const double headroom =
        std::clamp((budget - queue_ms_) / budget, 0.0, 1.0);
    rate_ = rate_ * (1.0 + params_.increase_per_second * dt_s * headroom);
  }

  if (!goodput_.IsZero()) {
    const DataRate ceiling = goodput_ * 2.0 + DataRate::KilobitsPerSec(500);
    if (rate_ > ceiling) rate_ = ceiling;
  }
  rate_ = std::clamp(rate_, config_.min_rate, config_.max_rate);
  CheckRateEnvelope(config_, rate_, now);
  EmitTrace(now);
}

void CrossController::OnReceiverReport(double fraction_lost, Duration rtt,
                                       Timestamp now) {
  // Zero-RTT policy — accept loss-only (see cc/gcc.h).
  if (rtt > Duration::Zero()) {
    srtt_ = have_rtt_ ? srtt_ * 0.875 + rtt * 0.125 : rtt;
    have_rtt_ = true;
  }
  loss_.Add(fraction_lost);
  CheckRateEnvelope(config_, rate_, now);
  CONVERGE_INVARIANT("CrossController", now, srtt_ > Duration::Zero(),
                     "srtt=" + std::to_string(srtt_.us()) + "us");
  EmitTrace(now);
}

void CrossController::EmitTrace(Timestamp now) const {
  TraceRecorder* trace = TraceRecorder::Current();
  if (trace == nullptr) return;
  const int32_t path = config_.trace_path;
  const char* c =
      config_.trace_component != nullptr ? config_.trace_component : name();
  trace->Counter(c, "target_kbps", now,
                 static_cast<double>(rate_.bps()) / 1000.0, path);
  trace->Counter(c, "goodput_kbps", now,
                 static_cast<double>(goodput_.bps()) / 1000.0, path);
  trace->Counter(c, "queue_ms", now, queue_ms_, path);
  trace->Counter(c, "queue_gradient", now, gradient_ms_per_s_, path);
  trace->Counter(c, "srtt_ms", now, srtt_.seconds() * 1000.0, path);
  trace->Counter(c, "loss", now, loss_estimate(), path);
}

}  // namespace converge
