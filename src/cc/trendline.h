// Delay-based overuse detection: trendline filter + adaptive-threshold
// detector, following the published GCC design (Carlucci et al., MMSys'16)
// as used by WebRTC. One instance per path (uncoupled CC, §4.1).
#pragma once

#include <deque>

#include "util/time.h"

namespace converge {

enum class BandwidthUsage { kNormal, kOverusing, kUnderusing };

class TrendlineEstimator {
 public:
  struct Config {
    Duration burst_window = Duration::Millis(5);  // packet-group span
    int window_size = 20;                         // regression points
    double smoothing = 0.9;
    double threshold_gain = 4.0;
    double initial_threshold = 12.5;              // ms
    double k_up = 0.0087;
    double k_down = 0.039;
    Duration overuse_time_threshold = Duration::Millis(10);
  };

  TrendlineEstimator();
  explicit TrendlineEstimator(Config config);

  // Feed one packet's send and receive timestamps (from transport feedback).
  void OnPacketFeedback(Timestamp send_time, Timestamp recv_time);

  BandwidthUsage State() const { return state_; }
  double trend() const { return trend_; }
  double threshold() const { return threshold_; }
  // Inter-group delay deltas observed so far; the detector gain is
  // min(num_deltas, 60), independent of the regression window size.
  int64_t num_deltas() const { return num_deltas_; }

 private:
  void UpdateGroup(Timestamp send_time, Timestamp recv_time);
  void UpdateTrend(Timestamp recv_time);
  void Detect(double modified_trend, Duration inter_arrival,
              Timestamp recv_time);
  void UpdateThreshold(double modified_trend, Timestamp recv_time);

  Config config_;
  // Current packet group (burst) accumulation.
  bool group_open_ = false;
  Timestamp group_first_send_;
  Timestamp group_last_send_;
  Timestamp group_last_recv_;
  // Previous completed group edges.
  bool have_prev_group_ = false;
  Timestamp prev_group_send_;
  Timestamp prev_group_recv_;

  double accumulated_delay_ms_ = 0.0;
  double smoothed_delay_ms_ = 0.0;
  std::deque<std::pair<double, double>> window_;  // (arrival ms, smoothed)
  double first_arrival_ms_ = 0.0;
  // Total deltas observed, counted separately from the regression window:
  // the detector gain saturates at 60 deltas (the published design), while
  // the window holds only the last window_size points for the slope fit.
  int64_t num_deltas_ = 0;

  double trend_ = 0.0;
  double threshold_;
  Timestamp last_threshold_update_ = Timestamp::MinusInfinity();
  Duration time_over_using_ = Duration::Zero();
  int overuse_counter_ = 0;
  double prev_trend_ = 0.0;
  BandwidthUsage state_ = BandwidthUsage::kNormal;
};

}  // namespace converge
