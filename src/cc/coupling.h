// Coupled-multipath rate allocation: wrapper strategies over the per-path
// CcControllers, after the mp-weighted / mp-rr / mp-best family of coupled
// multipath congestion-control variants. The per-path controllers keep
// running untouched (they still probe and back off on their own signals);
// coupling only redistributes the AGGREGATE of their targets across the
// paths before the sender hands rates to the pacers, the encoder budget,
// and the schedulers' PathInfo. kUncoupled is the identity — the paper's
// per-path design (§4.1) — and must leave every rate byte-identical.
#pragma once

#include <vector>

#include "cc/cc_controller.h"
#include "util/time.h"

namespace converge {

// Read-only snapshot of one path's controller, in the sender's path order.
struct PathCcSnapshot {
  DataRate target = DataRate::Zero();
  DataRate goodput = DataRate::Zero();
  Duration srtt = Duration::Zero();
  double loss = 0.0;
};

// Returns the allocated per-path rates (same order as `paths`) under the
// strategy:
//   kUncoupled  — each path keeps its own controller target (identity);
//   kWeighted   — the aggregate target split by delivered-goodput share
//                 (equal split until any path reports goodput);
//   kRoundRobin — the aggregate split equally across paths;
//   kBestPath   — the aggregate pinned to the best path (highest target,
//                 first wins on ties), the rest held at `floor` so they
//                 still carry probes/feedback and can take over.
// Every allocation is floored at `floor` and the function is a pure,
// deterministic function of its arguments.
std::vector<DataRate> CoupleRates(CcCoupling coupling,
                                  const std::vector<PathCcSnapshot>& paths,
                                  DataRate floor);

}  // namespace converge
