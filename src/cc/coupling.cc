#include "cc/coupling.h"

#include <algorithm>

#include "util/invariants.h"

namespace converge {

std::vector<DataRate> CoupleRates(CcCoupling coupling,
                                  const std::vector<PathCcSnapshot>& paths,
                                  DataRate floor) {
  std::vector<DataRate> allocated;
  allocated.reserve(paths.size());
  if (paths.empty()) return allocated;

  switch (coupling) {
    case CcCoupling::kUncoupled: {
      for (const PathCcSnapshot& p : paths) allocated.push_back(p.target);
      return allocated;
    }
    case CcCoupling::kWeighted: {
      DataRate aggregate = DataRate::Zero();
      double total_goodput = 0.0;
      for (const PathCcSnapshot& p : paths) {
        aggregate = aggregate + p.target;
        total_goodput += static_cast<double>(p.goodput.bps());
      }
      const double n = static_cast<double>(paths.size());
      for (const PathCcSnapshot& p : paths) {
        // Goodput-share weights; equal split until any path has delivered.
        const double weight =
            total_goodput > 0.0
                ? static_cast<double>(p.goodput.bps()) / total_goodput
                : 1.0 / n;
        allocated.push_back(std::max(floor, aggregate * weight));
      }
      return allocated;
    }
    case CcCoupling::kRoundRobin: {
      DataRate aggregate = DataRate::Zero();
      for (const PathCcSnapshot& p : paths) aggregate = aggregate + p.target;
      const DataRate share =
          aggregate / static_cast<int64_t>(paths.size());
      for (size_t i = 0; i < paths.size(); ++i) {
        allocated.push_back(std::max(floor, share));
      }
      return allocated;
    }
    case CcCoupling::kBestPath: {
      DataRate aggregate = DataRate::Zero();
      size_t best = 0;
      for (size_t i = 0; i < paths.size(); ++i) {
        aggregate = aggregate + paths[i].target;
        // Strictly-greater keeps the first best on ties — deterministic in
        // the sender's fixed path order.
        if (paths[i].target > paths[best].target) best = i;
      }
      for (size_t i = 0; i < paths.size(); ++i) {
        allocated.push_back(i == best ? std::max(floor, aggregate) : floor);
      }
      return allocated;
    }
  }
  // Exhaustive switch; only a forged enum lands here. Scream and fall back
  // to the uncoupled identity.
  CONVERGE_INVARIANT("CoupleRates", Timestamp::MinusInfinity(), false,
                     "unknown CcCoupling " +
                         std::to_string(static_cast<int>(coupling)));
  for (const PathCcSnapshot& p : paths) allocated.push_back(p.target);
  return allocated;
}

}  // namespace converge
