// Synthetic network-trace generators shaped after the paper's Appendix D
// measurements (Figures 20-22): per-carrier bandwidth envelopes for the
// stationary, walking, and driving scenarios. The paper's evaluation fed
// iperf3-collected traces into an emulator (§6.2); these generators produce
// seeded traces with the same qualitative envelope — means, dip depth and
// frequency, and full outages in the driving case — so every experiment is
// reproducible from a (scenario, carrier, seed) triple.
#pragma once

#include <memory>
#include <string>

#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "net/network.h"
#include "net/trace.h"
#include "util/random.h"

namespace converge {

enum class Scenario { kStationary, kWalking, kDriving };
enum class Carrier { kWifi, kTmobile, kVerizon };

std::string ToString(Scenario s);
std::string ToString(Carrier c);

struct TraceParams {
  Duration length = Duration::Seconds(180);
  Duration sample_interval = Duration::Millis(200);
};

// Bandwidth trace for one carrier in one scenario.
BandwidthTrace GenerateBandwidth(Scenario scenario, Carrier carrier,
                                 uint64_t seed, TraceParams params = {});

// Matching loss model: mobility raises both the base loss and burstiness.
std::shared_ptr<LossModel> GenerateLoss(Scenario scenario, Carrier carrier,
                                        uint64_t seed);

// Convenience: a full PathSpec (capacity + loss + propagation delay) for a
// carrier in a scenario.
PathSpec MakePathSpec(Scenario scenario, Carrier carrier, uint64_t seed,
                      TraceParams params = {});

// The two-path networks the paper evaluates: walking = WiFi + T-Mobile,
// driving = Verizon + T-Mobile, stationary = WiFi + T-Mobile (§6.1).
std::vector<PathSpec> MakeScenarioPaths(Scenario scenario, uint64_t seed,
                                        TraceParams params = {});

// Canned fault plan matching the scenario's mobility profile, with event
// times jittered deterministically from `seed`:
//   stationary — one jitter spike plus a shallow rate cliff;
//   walking    — two handovers (RTT step + burst loss) and a cliff to ~40%;
//   driving    — a 2 s primary outage, a handover, a cliff to ~25%, and a
//                reorder/duplication window.
FaultPlan MakeScenarioFaultPlan(Scenario scenario, uint64_t seed,
                                TraceParams params = {});

// Randomized plan for chaos testing: 2-6 mixed events drawn from `rng`,
// spread over `length`, outages capped at 3 s so calls can recover.
FaultPlan MakeRandomFaultPlan(Random& rng, Duration length);

// MakeScenarioPaths with the scenario's canned fault plan installed on the
// primary (first) path's forward link.
std::vector<PathSpec> MakeScenarioPathsWithFaults(Scenario scenario,
                                                  uint64_t seed,
                                                  TraceParams params = {});

}  // namespace converge
