#include "trace/generators.h"

#include <algorithm>
#include <cmath>

namespace converge {
namespace {

struct EnvelopeParams {
  double mean_mbps;
  double volatility;       // OU step size in log space
  double reversion;        // OU pull toward the mean
  double outage_per_s;     // probability of entering an outage, per second
  double outage_mean_s;    // mean outage duration
  double outage_floor_mbps;
  double base_loss;
  double burst_loss;       // Gilbert-Elliott bad-state loss
  double burst_per_s;      // bad-state entry pressure
  Duration prop_delay;
};

// Envelopes follow Figures 20-22: stationary WiFi is flat and fast with rare
// shallow dips; cellular carriers hover near the 10 Mbps requirement with
// occasional shortfalls; driving adds deep swings and multi-second outages.
EnvelopeParams ParamsFor(Scenario scenario, Carrier carrier) {
  switch (scenario) {
    case Scenario::kStationary:
      switch (carrier) {
        case Carrier::kWifi:
          return {35.0, 0.04, 0.30, 0.004, 2.0, 1.0, 0.0005, 0.05, 0.002,
                  Duration::Millis(8)};
        case Carrier::kTmobile:
          return {12.0, 0.08, 0.20, 0.008, 2.0, 1.5, 0.002, 0.08, 0.004,
                  Duration::Millis(35)};
        case Carrier::kVerizon:
          return {11.0, 0.08, 0.20, 0.008, 2.0, 1.5, 0.002, 0.08, 0.004,
                  Duration::Millis(40)};
      }
      break;
    case Scenario::kWalking:
      switch (carrier) {
        case Carrier::kWifi:
          return {22.0, 0.10, 0.15, 0.008, 2.5, 0.4, 0.004, 0.15, 0.010,
                  Duration::Millis(10)};
        case Carrier::kTmobile:
          return {14.0, 0.12, 0.15, 0.006, 2.0, 0.9, 0.005, 0.15, 0.012,
                  Duration::Millis(38)};
        case Carrier::kVerizon:
          return {12.0, 0.12, 0.15, 0.006, 2.0, 0.9, 0.005, 0.15, 0.012,
                  Duration::Millis(42)};
      }
      break;
    case Scenario::kDriving:
      switch (carrier) {
        case Carrier::kWifi:  // not used while driving; keep a weak link
          return {5.0, 0.20, 0.10, 0.030, 3.0, 0.2, 0.010, 0.22, 0.025,
                  Duration::Millis(15)};
        case Carrier::kTmobile:
          return {13.0, 0.16, 0.10, 0.010, 3.0, 0.6, 0.010, 0.22, 0.020,
                  Duration::Millis(40)};
        case Carrier::kVerizon:
          return {10.0, 0.16, 0.10, 0.012, 3.5, 0.6, 0.012, 0.24, 0.022,
                  Duration::Millis(45)};
      }
      break;
  }
  return {10.0, 0.1, 0.2, 0.01, 3.0, 0.5, 0.005, 0.1, 0.01,
          Duration::Millis(30)};
}

}  // namespace

std::string ToString(Scenario s) {
  switch (s) {
    case Scenario::kStationary:
      return "stationary";
    case Scenario::kWalking:
      return "walking";
    case Scenario::kDriving:
      return "driving";
  }
  return "?";
}

std::string ToString(Carrier c) {
  switch (c) {
    case Carrier::kWifi:
      return "WiFi";
    case Carrier::kTmobile:
      return "T-Mobile";
    case Carrier::kVerizon:
      return "Verizon";
  }
  return "?";
}

BandwidthTrace GenerateBandwidth(Scenario scenario, Carrier carrier,
                                 uint64_t seed, TraceParams params) {
  const EnvelopeParams env = ParamsFor(scenario, carrier);
  Random rng(seed ^ (static_cast<uint64_t>(scenario) << 8) ^
             (static_cast<uint64_t>(carrier) << 16));

  std::vector<TraceSample> samples;
  const double dt = params.sample_interval.seconds();
  double log_offset = 0.0;  // OU process around log(mean)
  double outage_left_s = 0.0;

  for (Timestamp t = Timestamp::Zero(); t <= Timestamp::Zero() + params.length;
       t += params.sample_interval) {
    // Outage state machine.
    if (outage_left_s > 0.0) {
      outage_left_s -= dt;
    } else if (rng.Bernoulli(env.outage_per_s * dt)) {
      outage_left_s = rng.Exponential(env.outage_mean_s);
    }

    // Mean-reverting walk in log space keeps capacity positive and bursty.
    log_offset += -env.reversion * log_offset * dt +
                  env.volatility * rng.Gaussian(0.0, 1.0) * std::sqrt(dt) *
                      3.0;
    log_offset = std::clamp(log_offset, -1.8, 0.9);

    double mbps = env.mean_mbps * std::exp(log_offset);
    if (outage_left_s > 0.0) {
      mbps = std::min(mbps, env.outage_floor_mbps * rng.Uniform(0.2, 1.0));
    }
    mbps = std::max(0.02, mbps);
    samples.push_back({t, mbps * 1e6});
  }
  // Radio fades are not step functions: smooth sample-to-sample transitions
  // (~0.5 s time constant) so capacity ramps instead of cliff-dropping.
  double smoothed = samples.empty() ? 0.0 : samples.front().value;
  for (TraceSample& s : samples) {
    smoothed = 0.65 * smoothed + 0.35 * s.value;
    s.value = smoothed;
  }
  return BandwidthTrace(ValueTrace(std::move(samples), /*repeat=*/true));
}

std::shared_ptr<LossModel> GenerateLoss(Scenario scenario, Carrier carrier,
                                        uint64_t seed) {
  const EnvelopeParams env = ParamsFor(scenario, carrier);
  GilbertElliottLoss::Config config;
  config.loss_good = env.base_loss;
  config.loss_bad = env.burst_loss;
  // Per-packet transition probabilities assuming ~1000 pkt/s nominal.
  config.p_good_to_bad = env.burst_per_s / 1000.0;
  config.p_bad_to_good = 1.0 / (0.3 * 1000.0);  // ~300 ms bursts
  (void)seed;  // state is per-link; the link provides the RNG
  return std::make_shared<GilbertElliottLoss>(config);
}

PathSpec MakePathSpec(Scenario scenario, Carrier carrier, uint64_t seed,
                      TraceParams params) {
  const EnvelopeParams env = ParamsFor(scenario, carrier);
  PathSpec spec;
  spec.name = ToString(carrier);
  spec.capacity = GenerateBandwidth(scenario, carrier, seed, params);
  spec.prop_delay = env.prop_delay;
  spec.loss = GenerateLoss(scenario, carrier, seed);
  return spec;
}

std::vector<PathSpec> MakeScenarioPaths(Scenario scenario, uint64_t seed,
                                        TraceParams params) {
  switch (scenario) {
    case Scenario::kStationary:
    case Scenario::kWalking:
      return {MakePathSpec(scenario, Carrier::kWifi, seed, params),
              MakePathSpec(scenario, Carrier::kTmobile, seed + 1, params)};
    case Scenario::kDriving:
      return {MakePathSpec(scenario, Carrier::kVerizon, seed, params),
              MakePathSpec(scenario, Carrier::kTmobile, seed + 1, params)};
  }
  return {};
}

FaultPlan MakeScenarioFaultPlan(Scenario scenario, uint64_t seed,
                                TraceParams params) {
  Random rng(seed ^ 0x9e3779b97f4a7c15ULL ^
             (static_cast<uint64_t>(scenario) << 24));
  const double len_s = params.length.seconds();
  // Event anchors are fractions of the trace, jittered by the seed so no two
  // seeds hit the congestion controller at the same phase.
  auto at = [&](double frac) {
    const double jitter_s = rng.Uniform(-0.03, 0.03) * len_s;
    const double t = std::clamp(frac * len_s + jitter_s, 1.0, len_s - 1.0);
    return Timestamp::Zero() + Duration::Seconds(t);
  };

  FaultPlan plan;
  switch (scenario) {
    case Scenario::kStationary:
      plan.Add(FaultEvent::JitterSpike(at(0.30), Duration::Seconds(2),
                                       Duration::Millis(25)));
      plan.Add(FaultEvent::RateCliff(at(0.65), Duration::Seconds(4), 0.6));
      break;
    case Scenario::kWalking:
      plan.Add(FaultEvent::Handover(at(0.25), Duration::Seconds(1),
                                    Duration::Millis(30), 0.12));
      plan.Add(FaultEvent::RateCliff(at(0.50), Duration::Seconds(5), 0.4));
      plan.Add(FaultEvent::Handover(at(0.75), Duration::Seconds(1),
                                    Duration::Millis(40), 0.15));
      break;
    case Scenario::kDriving:
      plan.Add(FaultEvent::RateCliff(at(0.20), Duration::Seconds(6), 0.25));
      plan.Add(FaultEvent::Outage(at(0.45), Duration::Seconds(2)));
      plan.Add(FaultEvent::Handover(at(0.65), Duration::Seconds(1),
                                    Duration::Millis(50), 0.2));
      plan.Add(FaultEvent::Reorder(at(0.85), Duration::Seconds(3),
                                   Duration::Millis(40), 0.02));
      break;
  }
  return plan;
}

FaultPlan MakeRandomFaultPlan(Random& rng, Duration length) {
  FaultPlan plan;
  const double len_s = length.seconds();
  const int n_events = static_cast<int>(rng.UniformInt(2, 6));
  for (int i = 0; i < n_events; ++i) {
    // Leave the head of the call fault-free (controllers are still ramping)
    // and guarantee a quiet tail so recovery is observable.
    const double start_s = rng.Uniform(0.1 * len_s, 0.8 * len_s);
    const Timestamp start = Timestamp::Zero() + Duration::Seconds(start_s);
    switch (rng.UniformInt(0, 4)) {
      case 0:
        plan.Add(FaultEvent::Outage(
            start, Duration::Seconds(rng.Uniform(0.3, 3.0)),
            rng.Bernoulli(0.5) ? InFlightPolicy::kDrop
                               : InFlightPolicy::kDelayToEnd));
        break;
      case 1:
        plan.Add(FaultEvent::RateCliff(
            start, Duration::Seconds(rng.Uniform(1.0, 6.0)),
            rng.Uniform(0.1, 0.7)));
        break;
      case 2:
        plan.Add(FaultEvent::Handover(
            start, Duration::Seconds(rng.Uniform(0.5, 2.0)),
            Duration::Millis(rng.UniformInt(10, 80)),
            rng.Uniform(0.05, 0.3)));
        break;
      case 3:
        plan.Add(FaultEvent::Reorder(
            start, Duration::Seconds(rng.Uniform(1.0, 4.0)),
            Duration::Millis(rng.UniformInt(5, 60)),
            rng.Uniform(0.0, 0.05)));
        break;
      default:
        plan.Add(FaultEvent::JitterSpike(
            start, Duration::Seconds(rng.Uniform(1.0, 4.0)),
            Duration::Millis(rng.UniformInt(5, 50))));
        break;
    }
  }
  return plan;
}

std::vector<PathSpec> MakeScenarioPathsWithFaults(Scenario scenario,
                                                  uint64_t seed,
                                                  TraceParams params) {
  std::vector<PathSpec> paths = MakeScenarioPaths(scenario, seed, params);
  if (!paths.empty()) {
    paths.front().fault_plan = MakeScenarioFaultPlan(scenario, seed, params);
  }
  return paths;
}

}  // namespace converge
