#include "util/time.h"

#include <cstdio>

namespace converge {

std::string Duration::ToString() const {
  char buf[32];
  if (IsInfinite()) return "+inf";
  std::snprintf(buf, sizeof(buf), "%.3f ms", ms());
  return buf;
}

std::string Timestamp::ToString() const {
  char buf[32];
  if (!IsFinite()) return us_ > 0 ? "+inf" : "-inf";
  std::snprintf(buf, sizeof(buf), "%.3f s", seconds());
  return buf;
}

}  // namespace converge
