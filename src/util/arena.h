// Per-call slab/pool arena for hot-path node containers.
//
// Every simulated call churns through map/set/list nodes — packet-buffer
// entries, frame-progress records, NACK chase lists, FEC history — at packet
// rate. With the global allocator each node is a malloc/free pair, and at
// fleet scale (thousands of concurrent calls) the allocator lock becomes the
// bottleneck. PoolArena carves nodes out of private 64 KiB slabs and recycles
// freed nodes through per-size-class free lists, so a call's steady state
// allocates nothing after warm-up and frees everything wholesale when the
// call is destroyed.
//
// Not thread-safe by design: a call/conference runs single-threaded on one
// worker, and each owns (or shares within itself) exactly one arena.
// Allocation never affects simulation behaviour — containers stay ordered by
// key, never by address — so arena-backed runs are byte-identical with
// global-allocator runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <new>
#include <set>
#include <type_traits>
#include <vector>

namespace converge {

class PoolArena {
 public:
  // Blocks are rounded up to multiples of kGranularity and pooled per size
  // class up to kMaxPooledBytes; larger requests (bulk vector growth) fall
  // through to the global allocator.
  static constexpr size_t kGranularity = alignof(std::max_align_t);
  static constexpr size_t kMaxPooledBytes = 1024;
  static constexpr size_t kSlabBytes = 64 * 1024;

  struct Stats {
    int64_t slabs = 0;            // 64 KiB slabs owned
    int64_t live_blocks = 0;      // allocated minus freed
    int64_t pooled_allocs = 0;    // served from a slab or a free list
    int64_t fallback_allocs = 0;  // oversized, global operator new
  };

  PoolArena() = default;
  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;
  ~PoolArena() {
    for (char* slab : slabs_) ::operator delete(slab);
  }

  void* Allocate(size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxPooledBytes) {
      ++stats_.fallback_allocs;
      ++stats_.live_blocks;
      return ::operator new(bytes);
    }
    const size_t cls = SizeClass(bytes);
    ++stats_.pooled_allocs;
    ++stats_.live_blocks;
    if (FreeNode* head = free_lists_[cls]) {
      free_lists_[cls] = head->next;
      return head;
    }
    const size_t block = (cls + 1) * kGranularity;
    if (bump_remaining_ < block) NewSlab();
    void* out = bump_;
    bump_ += block;
    bump_remaining_ -= block;
    return out;
  }

  void Deallocate(void* p, size_t bytes) {
    if (p == nullptr) return;
    if (bytes == 0) bytes = 1;
    --stats_.live_blocks;
    if (bytes > kMaxPooledBytes) {
      ::operator delete(p);
      return;
    }
    const size_t cls = SizeClass(bytes);
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr size_t kNumClasses = kMaxPooledBytes / kGranularity;

  static constexpr size_t SizeClass(size_t bytes) {
    return (bytes - 1) / kGranularity;
  }

  void NewSlab() {
    // ::operator new guarantees max_align_t alignment, which kGranularity
    // block sizes preserve for every block carved out of the slab.
    char* slab = static_cast<char*>(::operator new(kSlabBytes));
    slabs_.push_back(slab);
    bump_ = slab;
    bump_remaining_ = kSlabBytes;
    ++stats_.slabs;
  }

  // Raw slab list; std::vector<char*> keeps the arena itself cheap to
  // construct (no slab until the first allocation).
  std::vector<char*> slabs_;
  char* bump_ = nullptr;
  size_t bump_remaining_ = 0;
  FreeNode* free_lists_[kNumClasses] = {};
  Stats stats_;
};

// std-compatible allocator over a PoolArena, for the node containers on the
// receive hot path. Stateful: containers constructed with different arenas
// compare unequal and never exchange memory.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Containers are never moved/copied across arenas in this codebase; keep
  // the allocator with its container.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  // Converting: lets containers be constructed straight from the arena
  // pointer (entries_(arena) in a member-init list).
  ArenaAllocator(PoolArena* arena) : arena_(arena) {}  // NOLINT
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { arena_->Deallocate(p, n * sizeof(T)); }

  PoolArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  PoolArena* arena_;
};

// Arena-backed node containers for the receive hot path. Construct with an
// ArenaAllocator (or the bare PoolArena* via the allocator's converting
// constructor at the call site).
template <typename K, typename V>
using ArenaMap =
    std::map<K, V, std::less<K>, ArenaAllocator<std::pair<const K, V>>>;
template <typename T>
using ArenaSet = std::set<T, std::less<T>, ArenaAllocator<T>>;
template <typename T>
using ArenaList = std::list<T, ArenaAllocator<T>>;

}  // namespace converge
