// Recycled ring-buffer FIFO for the per-link transmit queue.
//
// std::deque allocates and frees fixed-size chunks as the queue slides
// through memory, which puts a malloc/free pair on the per-packet hot path
// once the queue depth crosses a chunk boundary. RingQueue keeps a power-of-
// two circular array of default-constructed slots and move-assigns elements
// in and out, so after the array has grown to the link's steady-state depth
// every push/pop is just an index increment and a move — no allocation, and
// popped slots are recycled in place.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace converge {

template <typename T>
class RingQueue {
 public:
  // Starts empty and cheap; the slot array is only materialized (and then
  // doubled as needed) on first use.
  RingQueue() = default;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  // Steady-state capacity reached so far (for tests/diagnostics).
  size_t capacity() const { return slots_.size(); }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  // Forwards straight into the recycled slot: an rvalue is move-assigned
  // once, with no intermediate parameter copy.
  template <typename U>
  void push_back(U&& value) {
    if (size_ == slots_.size()) Grow();
    const size_t tail = (head_ + size_) & (slots_.size() - 1);
    slots_[tail] = std::forward<U>(value);
    ++size_;
  }

  // Releases the head slot by resetting it to a default-constructed T, so
  // whatever resources it held (inline callbacks, buffers) are dropped now
  // rather than lingering until the slot is overwritten.
  void pop_front() {
    slots_[head_] = T();
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
  }

 private:
  void Grow() {
    const size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<T> grown(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace converge
