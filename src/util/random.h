// Deterministic, seedable random number generation (xoshiro256++).
//
// Every stochastic component of the simulator draws from an explicitly
// seeded `Random` instance so that whole-call experiments are reproducible
// and can be repeated across seeds for mean/stddev reporting.
#pragma once

#include <cstdint>

namespace converge {

class Random {
 public:
  explicit Random(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();
  // Uniform in [0.0, 1.0).
  double NextDouble();
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);
  // Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);
  // Gaussian with given mean / stddev (Box-Muller).
  double Gaussian(double mean, double stddev);
  // Exponential with given mean.
  double Exponential(double mean);

  // Derive an independent generator (e.g. one per subsystem).
  Random Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace converge
