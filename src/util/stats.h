// Streaming statistics helpers used by the QoE metrics pipeline and by the
// congestion controller / QoE monitor internals.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/time.h"

namespace converge {

// Welford running mean / variance with min/max.
class RunningStat {
 public:
  void Add(double x);
  void Clear();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores samples; answers arbitrary quantiles. Intended for offline QoE
// reporting (per-frame latency percentiles etc.), not hot paths.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    dirty_ = true;
  }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  // q in [0,1]; linear interpolation between order statistics. The sorted
  // order is cached with dirty-bit invalidation, so a multi-quantile report
  // (p5/p50/p95/p99...) sorts once, not once per quantile.
  double Quantile(double q) const;
  double Mean() const;
  double Stddev() const;
  const std::vector<double>& samples() const { return samples_; }
  // Sorted copy, useful for CDF emission.
  std::vector<double> Sorted() const;

 private:
  const std::vector<double>& SortedCache() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset() { initialized_ = false; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Windowed byte-rate estimator: bytes observed in the trailing window.
class RateEstimator {
 public:
  explicit RateEstimator(Duration window = Duration::Millis(500))
      : window_(window) {}

  void AddBytes(Timestamp now, int64_t bytes);
  DataRate Rate(Timestamp now) const;
  void Clear() { events_.clear(); }

 private:
  void Evict(Timestamp now) const;

  Duration window_;
  mutable std::deque<std::pair<Timestamp, int64_t>> events_;
};

// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);
  void Add(double x);
  int64_t count() const { return count_; }
  const std::vector<int64_t>& bins() const { return bins_; }
  double BinCenter(int i) const;

 private:
  double lo_, hi_;
  std::vector<int64_t> bins_;
  int64_t count_ = 0;
};

}  // namespace converge
