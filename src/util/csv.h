// Tiny CSV writer used by the bench harnesses to dump time series that
// correspond to the paper's figures (so they can be plotted externally).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace converge {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Check `ok()`.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool ok() const { return static_cast<bool>(out_); }
  void Row(const std::vector<double>& values);
  void Row(std::initializer_list<double> values);

 private:
  std::ofstream out_;
  size_t columns_;
};

}  // namespace converge
