// Strong time types used throughout the Converge stack.
//
// All simulation time is kept as signed 64-bit microseconds. `Duration` is a
// span, `Timestamp` a point on the simulated clock. Both are trivially
// copyable value types; arithmetic that would mix the two incorrectly does
// not compile.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace converge {

class Duration {
 public:
  constexpr Duration() : us_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Infinity() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool IsZero() const { return us_ == 0; }
  constexpr bool IsInfinite() const {
    return us_ == std::numeric_limits<int64_t>::max();
  }

  constexpr Duration operator+(Duration other) const {
    return Duration(us_ + other.us_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(us_ - other.us_);
  }
  constexpr Duration operator*(double factor) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) * factor));
  }
  constexpr Duration operator/(int64_t divisor) const {
    return Duration(us_ / divisor);
  }
  constexpr double operator/(Duration other) const {
    return static_cast<double>(us_) / static_cast<double>(other.us_);
  }
  Duration& operator+=(Duration other) {
    us_ += other.us_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    us_ -= other.us_;
    return *this;
  }
  constexpr Duration operator-() const { return Duration(-us_); }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : us_(us) {}
  int64_t us_;
};

class Timestamp {
 public:
  constexpr Timestamp() : us_(0) {}

  static constexpr Timestamp Micros(int64_t us) { return Timestamp(us); }
  static constexpr Timestamp Millis(int64_t ms) { return Timestamp(ms * 1000); }
  static constexpr Timestamp Seconds(double s) {
    return Timestamp(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Timestamp Zero() { return Timestamp(0); }
  static constexpr Timestamp PlusInfinity() {
    return Timestamp(std::numeric_limits<int64_t>::max());
  }
  static constexpr Timestamp MinusInfinity() {
    return Timestamp(std::numeric_limits<int64_t>::min());
  }

  constexpr int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool IsFinite() const {
    return us_ != std::numeric_limits<int64_t>::max() &&
           us_ != std::numeric_limits<int64_t>::min();
  }

  constexpr Timestamp operator+(Duration d) const {
    return Timestamp(us_ + d.us());
  }
  constexpr Timestamp operator-(Duration d) const {
    return Timestamp(us_ - d.us());
  }
  constexpr Duration operator-(Timestamp other) const {
    return Duration::Micros(us_ - other.us_);
  }
  Timestamp& operator+=(Duration d) {
    us_ += d.us();
    return *this;
  }

  constexpr auto operator<=>(const Timestamp&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Timestamp(int64_t us) : us_(us) {}
  int64_t us_;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToString();
}
inline std::ostream& operator<<(std::ostream& os, Timestamp t) {
  return os << t.ToString();
}

// Data-rate value type, stored as bits per second.
class DataRate {
 public:
  constexpr DataRate() : bps_(0) {}

  static constexpr DataRate BitsPerSec(int64_t bps) { return DataRate(bps); }
  static constexpr DataRate KilobitsPerSec(int64_t kbps) {
    return DataRate(kbps * 1000);
  }
  static constexpr DataRate MegabitsPerSec(double mbps) {
    return DataRate(static_cast<int64_t>(mbps * 1e6));
  }
  static constexpr DataRate Zero() { return DataRate(0); }
  static constexpr DataRate Infinity() {
    return DataRate(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t bps() const { return bps_; }
  constexpr double kbps() const { return static_cast<double>(bps_) / 1e3; }
  constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }
  constexpr bool IsZero() const { return bps_ == 0; }

  // Time to serialize `bytes` at this rate.
  constexpr Duration TransmitTime(int64_t bytes) const {
    if (bps_ <= 0) return Duration::Infinity();
    return Duration::Micros(bytes * 8 * 1'000'000 / bps_);
  }
  // Bytes deliverable in `d`.
  constexpr int64_t BytesIn(Duration d) const {
    return bps_ * d.us() / 8 / 1'000'000;
  }

  constexpr DataRate operator+(DataRate other) const {
    return DataRate(bps_ + other.bps_);
  }
  constexpr DataRate operator-(DataRate other) const {
    return DataRate(bps_ - other.bps_);
  }
  constexpr DataRate operator*(double f) const {
    return DataRate(static_cast<int64_t>(static_cast<double>(bps_) * f));
  }
  constexpr DataRate operator/(int64_t d) const { return DataRate(bps_ / d); }
  constexpr double operator/(DataRate other) const {
    return static_cast<double>(bps_) / static_cast<double>(other.bps_);
  }
  DataRate& operator+=(DataRate other) {
    bps_ += other.bps_;
    return *this;
  }

  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  explicit constexpr DataRate(int64_t bps) : bps_(bps) {}
  int64_t bps_;
};

inline std::ostream& operator<<(std::ostream& os, DataRate r) {
  return os << r.mbps() << " Mbps";
}

}  // namespace converge
