#include "util/random.h"

#include <cmath>

namespace converge {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used for seeding the xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Random::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % range);
}

double Random::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::Gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Random::Exponential(double mean) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-12);
  return -mean * std::log(u);
}

Random Random::Fork() { return Random(NextU64()); }

}  // namespace converge
