#include "util/stats.h"

#include <cmath>
#include <numeric>

namespace converge {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Clear() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  const std::vector<double>& sorted = SortedCache();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::vector<double> SampleSet::Sorted() const { return SortedCache(); }

const std::vector<double>& SampleSet::SortedCache() const {
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  return sorted_;
}

void RateEstimator::AddBytes(Timestamp now, int64_t bytes) {
  events_.emplace_back(now, bytes);
  Evict(now);
}

DataRate RateEstimator::Rate(Timestamp now) const {
  Evict(now);
  if (events_.empty() || window_.IsZero()) return DataRate::Zero();
  int64_t total = 0;
  for (const auto& [t, b] : events_) total += b;
  // Average over the observed span, not the full window, so a source that
  // has only been running for part of the window is not under-reported.
  Duration span = now - events_.front().first;
  if (span > window_) span = window_;
  if (span < Duration::Millis(1)) span = Duration::Millis(1);
  return DataRate::BitsPerSec(total * 8 * 1'000'000 / span.us());
}

void RateEstimator::Evict(Timestamp now) const {
  const Timestamp cutoff = now - window_;
  while (!events_.empty() && events_.front().first < cutoff) {
    events_.pop_front();
  }
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), bins_(static_cast<size_t>(bins), 0) {}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  int idx = static_cast<int>((x - lo_) / span * static_cast<double>(bins_.size()));
  idx = std::clamp(idx, 0, static_cast<int>(bins_.size()) - 1);
  ++bins_[static_cast<size_t>(idx)];
  ++count_;
}

double Histogram::BinCenter(int i) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace converge
