#include "util/trace_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace converge {

ATTR_TLS_INITIAL_EXEC constinit thread_local TraceRecorder*
    TraceRecorder::current_ = nullptr;
ATTR_TLS_INITIAL_EXEC constinit thread_local int32_t
    TraceRecorder::participant_ = -1;

TraceScope::TraceScope(TraceRecorder* recorder)
    : prev_(TraceRecorder::current_) {
  TraceRecorder::current_ = recorder;
}

TraceScope::~TraceScope() { TraceRecorder::current_ = prev_; }

void TraceRecorder::SetCurrentParticipant(int32_t participant) {
  participant_ = participant;
}

TraceParticipantScope::TraceParticipantScope(int32_t participant)
    : prev_(TraceRecorder::CurrentParticipant()) {
  TraceRecorder::SetCurrentParticipant(participant);
}

TraceParticipantScope::~TraceParticipantScope() {
  TraceRecorder::SetCurrentParticipant(prev_);
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Emit(TraceEvent event) {
  event.participant = participant_;
  if (event.at_us == kInheritTime) {
    // Clock-less emitter (e.g. a pure-function FEC controller): pin the
    // event to the newest simulation time seen so the timeline stays
    // monotone for exporters.
    event.at_us = last_at_us_;
  } else {
    last_at_us_ = std::max(last_at_us_, event.at_us);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<size_t>(total_ % static_cast<int64_t>(capacity_))] =
        event;
  }
  ++total_;
}

size_t TraceRecorder::size() const {
  return ring_.size();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (total_ <= static_cast<int64_t>(capacity_)) {
    out = ring_;
  } else {
    // The ring wrapped: the oldest surviving event lives at the next write
    // position.
    const size_t head =
        static_cast<size_t>(total_ % static_cast<int64_t>(capacity_));
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(head));
  }
  return out;
}

namespace {

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

// Series name: component.name plus participant/path/stream qualifiers so
// each scope gets its own Perfetto track (e.g. "gcc.target_kbps.P2.p1" for
// conference participant 2's second path; untagged point-to-point runs keep
// the historical "gcc.target_kbps.p1" names).
std::string SeriesName(const TraceEvent& e) {
  std::string name = e.component;
  name.push_back('.');
  name += e.name;
  if (e.participant >= 0) {
    name += ".P";
    name += std::to_string(e.participant);
  }
  if (e.path >= 0) {
    name += ".p";
    name += std::to_string(e.path);
  }
  if (e.stream >= 0) {
    name += ".s";
    name += std::to_string(e.stream);
  }
  return name;
}

}  // namespace

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 128);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    const std::string series = SeriesName(e);
    out += "{\"name\":\"";
    AppendJsonEscaped(out, series.c_str());
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, e.component);
    out += "\",\"ph\":\"";
    out += e.kind == TraceKind::kCounter ? "C" : "i";
    out += "\",\"ts\":";
    out += std::to_string(e.at_us);
    out += ",\"pid\":1,\"tid\":1";
    if (e.kind == TraceKind::kInstant) {
      out += ",\"s\":\"g\"";
    }
    out += ",\"args\":{\"value\":";
    AppendDouble(out, e.value);
    if (e.kind == TraceKind::kInstant && e.value2 != 0.0) {
      out += ",\"value2\":";
      AppendDouble(out, e.value2);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) return false;
  file << ChromeTraceJson();
  return file.good();
}

std::string TraceRecorder::Csv() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out =
      "t_ms,component,name,kind,participant,path,stream,value,value2\n";
  char buf[64];
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.at_us) / 1000.0);
    out += buf;
    out.push_back(',');
    out += e.component;
    out.push_back(',');
    out += e.name;
    out.push_back(',');
    out += e.kind == TraceKind::kCounter ? "counter" : "instant";
    out.push_back(',');
    out += std::to_string(e.participant);
    out.push_back(',');
    out += std::to_string(e.path);
    out.push_back(',');
    out += std::to_string(e.stream);
    out.push_back(',');
    AppendDouble(out, e.value);
    out.push_back(',');
    AppendDouble(out, e.value2);
    out.push_back('\n');
  }
  return out;
}

bool TraceRecorder::WriteCsv(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) return false;
  file << Csv();
  return file.good();
}

std::string TraceRecorder::DescribeTail(size_t max_events) const {
  const std::vector<TraceEvent> events = Snapshot();
  const size_t n = std::min(max_events, events.size());
  std::ostringstream out;
  out << "flight recorder tail (" << n << " of " << total_
      << " events, newest last):\n";
  for (size_t i = events.size() - n; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << "  t=" << (static_cast<double>(e.at_us) / 1000.0) << "ms "
        << e.component << '.' << e.name;
    if (e.participant >= 0) out << " participant=" << e.participant;
    if (e.path >= 0) out << " path=" << e.path;
    if (e.stream >= 0) out << " stream=" << e.stream;
    out << " value=" << e.value;
    if (e.kind == TraceKind::kInstant && e.value2 != 0.0) {
      out << " value2=" << e.value2;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace converge
