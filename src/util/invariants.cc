#include "util/invariants.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "util/trace_recorder.h"

namespace converge {
namespace {

// Storage cap: a systematically broken invariant in a long stress run must
// not exhaust memory; the count keeps the true total.
constexpr size_t kMaxStoredViolations = 10'000;

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<InvariantViolation>& Violations() {
  static std::vector<InvariantViolation> v;
  return v;
}

std::atomic<int64_t>& Count() {
  static std::atomic<int64_t> c{0};
  return c;
}

thread_local std::string t_context;

// Tail of the reporting thread's flight recorder, captured under Mutex()
// when the first violation is stored.
std::string& FlightTail() {
  static std::string tail;
  return tail;
}

std::string FormatTime(Timestamp at) {
  if (!at.IsFinite()) return "no-sim-time";
  std::ostringstream os;
  os << at.ms() << " ms";
  return os.str();
}

}  // namespace

std::atomic<bool> InvariantRegistry::enabled_{false};

void InvariantRegistry::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void InvariantRegistry::Report(const char* component, const char* condition,
                               Timestamp at, std::string detail) {
  Count().fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(Mutex());
  if (Violations().size() >= kMaxStoredViolations) return;
  if (Violations().empty() && FlightTail().empty()) {
    // First stored violation: if this thread is tracing, preserve the
    // recent component history — the post-mortem for chaos/CI artifacts.
    if (TraceRecorder* trace = TraceRecorder::Current()) {
      FlightTail() = trace->DescribeTail();
    }
  }
  Violations().push_back(InvariantViolation{component, condition,
                                            std::move(detail), t_context, at});
}

void InvariantRegistry::SetContext(std::string context) {
  t_context = std::move(context);
}

void InvariantRegistry::ClearContext() { t_context.clear(); }

int64_t InvariantRegistry::violation_count() {
  return Count().load(std::memory_order_relaxed);
}

std::vector<InvariantViolation> InvariantRegistry::Snapshot() {
  std::lock_guard<std::mutex> lock(Mutex());
  return Violations();
}

void InvariantRegistry::Clear() {
  std::lock_guard<std::mutex> lock(Mutex());
  Violations().clear();
  Count().store(0, std::memory_order_relaxed);
  FlightTail().clear();
}

std::string InvariantRegistry::FlightRecorderTail() {
  std::lock_guard<std::mutex> lock(Mutex());
  return FlightTail();
}

std::string InvariantRegistry::Describe(size_t max_entries) {
  const auto violations = Snapshot();
  std::ostringstream os;
  os << violation_count() << " invariant violation(s)";
  if (violations.empty()) return os.str();
  os << ":\n";
  size_t shown = 0;
  for (const InvariantViolation& v : violations) {
    if (shown++ >= max_entries) {
      os << "  ... (" << violations.size() - max_entries << " more stored)\n";
      break;
    }
    os << "  [" << v.component << " @ " << FormatTime(v.at) << "] "
       << v.condition;
    if (!v.detail.empty()) os << " — " << v.detail;
    if (!v.context.empty()) os << " (" << v.context << ")";
    os << "\n";
  }
  const std::string tail = FlightRecorderTail();
  if (!tail.empty()) os << tail;
  return os.str();
}

bool InvariantRegistry::WriteLog(const std::string& path) {
  const auto violations = Snapshot();
  std::ofstream out(path);
  if (!out) return false;
  out << "total_violations=" << violation_count() << "\n";
  for (const InvariantViolation& v : violations) {
    out << v.component << "\t" << FormatTime(v.at) << "\t" << v.condition
        << "\t" << v.detail << "\t" << v.context << "\n";
  }
  const std::string tail = FlightRecorderTail();
  if (!tail.empty()) out << tail;
  return static_cast<bool>(out);
}

}  // namespace converge
