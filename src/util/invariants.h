// Runtime invariant harness: cheap, always-on-in-tests assertions that core
// components (packet/frame buffers, GCC, pacer, schedulers, FEC, path
// manager) register at their state-transition points.
//
// Checking is off by default and costs one relaxed atomic load per check
// site, so production/bench runs pay nothing measurable. Tests flip it on
// with `ScopedInvariants`; a violated condition records the component, the
// failed condition text, the simulation time and a detail string into a
// process-wide sink that the test inspects (and fails on) afterwards.
// Violations never alter component behaviour — enabling the harness cannot
// change simulation results, which keeps fault-injected runs byte-identical
// with and without it.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "util/time.h"

namespace converge {

struct InvariantViolation {
  std::string component;  // e.g. "FrameBuffer"
  std::string condition;  // stringified failed condition
  std::string detail;     // values at the moment of violation
  std::string context;    // run label (variant + seed), set by Call::Run
  Timestamp at;           // sim time; MinusInfinity when the component
                          // has no clock (pure-function controllers)
};

class InvariantRegistry {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on);

  // Records one violation (thread-safe; callable from parallel bench
  // workers). Storage is capped; the total count keeps incrementing.
  static void Report(const char* component, const char* condition,
                     Timestamp at, std::string detail);

  // Thread-local run label attached to subsequent violations on this
  // thread — Call::Run sets "<variant> seed=<n>" so a violation inside a
  // parallel multi-seed sweep names the run that produced it.
  static void SetContext(std::string context);
  static void ClearContext();

  static int64_t violation_count();
  static std::vector<InvariantViolation> Snapshot();
  static void Clear();

  // Flight-recorder tail captured from the reporting thread's TraceRecorder
  // at the moment the first violation was stored (empty when no recorder
  // was installed). Describe() and WriteLog() append it, so a traced chaos
  // run that trips an invariant ships the controllers' recent history with
  // the violation report.
  static std::string FlightRecorderTail();

  // Human-readable dump of the first `max_entries` violations, for test
  // failure messages.
  static std::string Describe(size_t max_entries = 16);
  // Writes the full violation list to `path` (CI failure artifact).
  // Returns false if the file could not be written.
  static bool WriteLog(const std::string& path);

 private:
  static std::atomic<bool> enabled_;
};

// RAII test scope: clears the sink and enables checking; disables on exit
// (violations stay recorded for inspection).
class ScopedInvariants {
 public:
  ScopedInvariants() {
    InvariantRegistry::Clear();
    InvariantRegistry::SetEnabled(true);
  }
  ~ScopedInvariants() { InvariantRegistry::SetEnabled(false); }
  ScopedInvariants(const ScopedInvariants&) = delete;
  ScopedInvariants& operator=(const ScopedInvariants&) = delete;
};

// The check macro. `detail` is an expression yielding std::string and is
// evaluated only on violation, so check sites stay allocation-free.
#define CONVERGE_INVARIANT(component, at, cond, detail)                     \
  do {                                                                      \
    if (::converge::InvariantRegistry::enabled() && !(cond)) {              \
      ::converge::InvariantRegistry::Report((component), #cond, (at),       \
                                            (detail));                      \
    }                                                                       \
  } while (0)

}  // namespace converge
