// Parallel execution of independent work items (the multi-seed / multi-cell
// bench sweeps). Every simulated call is a self-contained deterministic
// island (own EventLoop, own seeded Random), so fanning calls across threads
// changes nothing about the results as long as the reduction happens in a
// fixed order — ParallelFor guarantees item i's effects land wherever the
// body writes for index i, and callers reduce serially in index order.
//
// Concurrency model: a budget-rationed loop borrows helpers from a
// process-wide persistent worker pool (spawned lazily once, parked between
// loops — no thread spawn on the per-loop hot path); an explicitly sized
// pool spawns dedicated threads for the duration of the loop. Either way the
// calling thread always participates, so nested loops (a bench fanning out
// table cells whose bodies fan out seeds) can never deadlock — the innermost
// caller just runs its own indices. A global permit budget of
// DefaultJobs()-1 helpers keeps nesting from oversubscribing the machine.
// CONVERGE_BENCH_JOBS=1 (or a single-core host) disables threading entirely
// and every loop runs serially on the caller.
#pragma once

#include <cstdint>
#include <functional>

namespace converge {

// Worker parallelism: CONVERGE_BENCH_JOBS if set (>0), else
// std::thread::hardware_concurrency(). Cached after the first call.
int DefaultJobs();

class ThreadPool {
 public:
  // Spawns nothing up front; `jobs` bounds workers per loop. <=0 means
  // DefaultJobs(), in which case helper threads are rationed by the global
  // permit budget; an explicit positive `jobs` is authoritative and always
  // gets its jobs-1 helpers (tests rely on this to force real concurrency).
  explicit ThreadPool(int jobs = 0);

  int jobs() const { return jobs_; }

  // Runs body(i) for i in [0, n). Blocks until every index finished; the
  // caller executes indices itself alongside up to jobs()-1 helpers. The
  // first exception thrown by any body is rethrown here after the loop
  // drains. For budget-rationed pools, helper threads beyond the global
  // permit budget are not spawned (the loop still completes on the caller),
  // so nested ParallelFor calls degrade gracefully instead of multiplying
  // threads.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body) const;

 private:
  int jobs_;
  bool explicit_size_;
};

// Convenience: one loop on a pool of `jobs` workers (<=0 → DefaultJobs()).
inline void ParallelFor(int64_t n, const std::function<void(int64_t)>& body,
                        int jobs = 0) {
  ThreadPool(jobs).ParallelFor(n, body);
}

}  // namespace converge
