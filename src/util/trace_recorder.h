// Flight-recorder trace layer: a fixed-capacity ring buffer of typed trace
// events stamped with simulation time, fed by lightweight probes inside the
// runtime components (GCC, pacer, schedulers, FEC controllers, NACK
// generator, receiver buffers, QoE monitor).
//
// Cost model mirrors util/invariants.h: recording is off by default and a
// probe site costs one thread-local pointer load when no recorder is
// installed, so production/bench hot paths pay nothing measurable. A call
// opts in by owning a TraceRecorder and installing it with TraceScope for
// the duration of its Run; because every Call executes on a single worker
// thread, parallel multi-seed sweeps can each trace their own call without
// sharing state. Probes only *read* component state — enabling tracing can
// never alter simulation results, which keeps traced runs byte-identical
// with untraced ones.
//
// Exporters: Chrome trace-format JSON (loadable in Perfetto or
// chrome://tracing) and a flat per-metric CSV time series, plus a
// human-readable tail dump that the invariant harness attaches to violation
// reports (see util/invariants.h).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/time.h"

#if defined(__ELF__) && (defined(__GNUC__) || defined(__clang__))
#define ATTR_TLS_INITIAL_EXEC __attribute__((tls_model("initial-exec")))
#else
#define ATTR_TLS_INITIAL_EXEC
#endif

namespace converge {

// Counters are sampled values rendered as time-series tracks; instants are
// discrete moments (a NACK batch leaving, a QoE verdict, a path disable).
enum class TraceKind : uint8_t { kCounter, kInstant };

// One recorded event. Component/name must be string literals (or otherwise
// outlive the recorder): events store the pointers, never copies, so
// emission is allocation-free.
struct TraceEvent {
  int64_t at_us = 0;
  const char* component = "";
  const char* name = "";
  TraceKind kind = TraceKind::kCounter;
  int32_t path = -1;    // PathId, -1 when not path-scoped
  int32_t stream = -1;  // stream id, -1 when not stream-scoped
  double value = 0.0;
  double value2 = 0.0;  // secondary value for instants (context)
  // Conference participant the event belongs to, -1 for untagged
  // point-to-point runs. Stamped by Emit() from the thread-local participant
  // id — probe sites never pass it explicitly (a GCC pacer probe has no idea
  // which of N senders owns it; the Conference routing layer does).
  int32_t participant = -1;
};

class TraceRecorder {
 public:
  // ~11 MB of events; at the default probe cadence this holds several
  // minutes of a two-path call, and older events are overwritten in flight
  // recorder fashion once the ring is full.
  static constexpr size_t kDefaultCapacity = 1 << 18;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  // The recorder installed on this thread, or nullptr when tracing is off.
  // Inline: a disabled probe site is one thread-local load and a branch.
  static TraceRecorder* Current() { return current_; }

  // The participant id events on this thread are currently attributed to
  // (-1 = untagged). Set by TraceParticipantScope at conference routing
  // boundaries and restored by the EventLoop when it dispatches a callback
  // that was scheduled under a tag (so self-rescheduling component tasks —
  // pacer drains, RTCP timers — inherit their owner transitively). The
  // *load* is inline (it sits on the EventLoop schedule path); the store is
  // out of line, see TraceParticipantScope.
  static int32_t CurrentParticipant() { return participant_; }
  static void SetCurrentParticipant(int32_t participant);

  // Emission. Events whose timestamp is not finite (pure-function components
  // with no clock, e.g. the FEC controllers) inherit the recorder's
  // high-water simulation time so the timeline stays ordered.
  void Emit(TraceEvent event);
  void Counter(const char* component, const char* name, Timestamp at,
               double value, int32_t path = -1, int32_t stream = -1) {
    Emit(TraceEvent{at.IsFinite() ? at.us() : kInheritTime, component, name,
                    TraceKind::kCounter, path, stream, value, 0.0});
  }
  void Instant(const char* component, const char* name, Timestamp at,
               double value, int32_t path = -1, int32_t stream = -1,
               double value2 = 0.0) {
    Emit(TraceEvent{at.IsFinite() ? at.us() : kInheritTime, component, name,
                    TraceKind::kInstant, path, stream, value, value2});
  }

  size_t capacity() const { return capacity_; }
  // Events currently stored (<= capacity).
  size_t size() const;
  // Lifetime emission count; total_emitted() - size() events were
  // overwritten by the ring.
  int64_t total_emitted() const { return total_; }
  int64_t dropped() const { return total_ - static_cast<int64_t>(size()); }

  // Stored events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  // Chrome trace-format JSON ({"traceEvents": [...]}): counters become "C"
  // events (one series per component.name[pN]), instants become "i" events.
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // Flat CSV time series:
  // t_ms,component,name,kind,participant,path,stream,value,value2.
  std::string Csv() const;
  bool WriteCsv(const std::string& path) const;

  // Human-readable dump of the newest `max_events` events, newest last —
  // the flight-recorder tail attached to invariant-violation reports.
  std::string DescribeTail(size_t max_events = 48) const;

 private:
  friend class TraceScope;
  static constexpr int64_t kInheritTime =
      std::numeric_limits<int64_t>::min();

  // constinit: no dynamic initialization, so access sites skip the TLS
  // init-guard wrapper entirely (GCC 12 miscompiles that guard's flags
  // under -fsanitize=address,undefined at -O2, branching spuriously into
  // the sanitizer error block). initial-exec additionally keeps the
  // disabled-probe load a single %fs-relative mov (no __tls_get_addr
  // call); valid because the recorder only lives in statically linked
  // code.
  ATTR_TLS_INITIAL_EXEC static constinit thread_local TraceRecorder*
      current_;
  // Participant attribution for Emit(); same constinit/initial-exec
  // reasoning as current_.
  ATTR_TLS_INITIAL_EXEC static constinit thread_local int32_t participant_;

  size_t capacity_;
  std::vector<TraceEvent> ring_;
  int64_t total_ = 0;
  int64_t last_at_us_ = 0;
};

// RAII: installs a recorder as this thread's trace target, restoring the
// previous target (usually nullptr) on exit. Ctor/dtor are out of line on
// purpose: GCC 12 miscompiles the inlined TLS *store* under
// -fsanitize=address,undefined at -O2 (the TLS-init guard's flags are
// clobbered by the address computation, branching into the sanitizer's
// error block). Scopes are entered twice per call, so this costs nothing;
// the hot path is the inline Current() *load*, which is unaffected.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* recorder);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* prev_;
};

// RAII: attributes trace events emitted in this scope to one conference
// participant. The Conference enters a scope around each participant's
// component construction and at every routing boundary (packet delivered to
// participant p's receiver, feedback delivered to p's sender); the EventLoop
// then propagates the tag to events the scoped code schedules. Ctor/dtor are
// out of line for the same GCC 12 TLS-store reason as TraceScope.
class TraceParticipantScope {
 public:
  explicit TraceParticipantScope(int32_t participant);
  ~TraceParticipantScope();
  TraceParticipantScope(const TraceParticipantScope&) = delete;
  TraceParticipantScope& operator=(const TraceParticipantScope&) = delete;

 private:
  int32_t prev_;
};

}  // namespace converge
