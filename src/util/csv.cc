#include "util/csv.h"

namespace converge {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) return;
  for (size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::Row(const std::vector<double>& values) {
  if (!out_) return;
  for (size_t i = 0; i < values.size() && i < columns_; ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::Row(std::initializer_list<double> values) {
  Row(std::vector<double>(values));
}

}  // namespace converge
