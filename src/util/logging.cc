#include "util/logging.h"

#include <cstdio>

namespace converge {

Logger& Logger::Get() {
  static Logger instance;
  return instance;
}

void Logger::Write(LogLevel level, const std::string& msg) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 4) return;
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::fprintf(stderr, "[%s] %s\n", kNames[idx], msg.c_str());
}

}  // namespace converge
