// Minimal leveled logging. Off by default so benchmark output stays clean;
// tests and examples can raise the level.
//
// The singleton is shared by every simulation running under the parallel
// bench driver, so the level is atomic and writes are serialized — lines
// from concurrent seeds interleave whole, never mid-line.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace converge {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarning, kError, kOff };

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool Enabled(LogLevel level) const { return level >= this->level(); }
  void Write(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_ = LogLevel::kWarning;
  std::mutex write_mutex_;
};

namespace logging_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Get().Write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace logging_internal
}  // namespace converge

#define CONVERGE_LOG(level)                                      \
  if (!::converge::Logger::Get().Enabled(::converge::LogLevel::level)) \
    ;                                                            \
  else                                                           \
    ::converge::logging_internal::LogLine(::converge::LogLevel::level)
