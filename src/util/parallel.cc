#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace converge {
namespace {

int ComputeDefaultJobs() {
  if (const char* env = std::getenv("CONVERGE_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Global helper-thread budget shared by every concurrent/nested loop. The
// caller thread is free; only helpers consume permits, so total live threads
// stay near DefaultJobs() no matter how loops nest.
class ThreadBudget {
 public:
  static ThreadBudget& Get() {
    static ThreadBudget budget;
    return budget;
  }

  int TryAcquire(int want) {
    int avail = available_.load(std::memory_order_relaxed);
    while (avail > 0) {
      const int take = want < avail ? want : avail;
      if (available_.compare_exchange_weak(avail, avail - take,
                                           std::memory_order_relaxed)) {
        return take;
      }
    }
    return 0;
  }

  void Release(int n) { available_.fetch_add(n, std::memory_order_relaxed); }

 private:
  ThreadBudget() : available_(DefaultJobs() - 1) {}
  std::atomic<int> available_;
};

// Persistent helpers for budget-rationed loops. Spawning a thread per
// ParallelFor costs ~100µs each; a fleet bench calling back-to-back sweeps
// pays that over and over. Instead, DefaultJobs()-1 workers are spawned once
// on first use and parked on a condition variable between loops; a loop
// hands each granted worker one execution of its claim-next-index closure.
//
// Leaky singleton: the pool (and its parked threads) intentionally outlives
// every static destructor, so no join-at-exit ordering hazards exist.
class WorkerPool {
 public:
  // One ParallelFor's dispatch unit. `fn` is the loop's worker closure;
  // every dispatched worker runs it once. The caller owns the batch on its
  // stack and blocks in Wait() until the last worker checks out, so
  // reference captures inside `fn` stay valid.
  struct Batch {
    std::function<void()> fn;
    std::atomic<int> pending{0};
    std::mutex done_mutex;
    std::condition_variable done;

    void Wait() {
      std::unique_lock<std::mutex> lock(done_mutex);
      done.wait(lock, [this] {
        return pending.load(std::memory_order_acquire) == 0;
      });
    }
  };

  static WorkerPool& Get() {
    static WorkerPool* pool = new WorkerPool();
    return *pool;
  }

  // Queues `count` executions of batch->fn. batch->pending must already
  // include them.
  void Submit(Batch* batch, int count) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int i = 0; i < count; ++i) queue_.push_back(batch);
    }
    if (count == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

 private:
  WorkerPool() {
    const int n = DefaultJobs() - 1;
    threads_.reserve(static_cast<size_t>(n > 0 ? n : 0));
    for (int i = 0; i < n; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  void Loop() {
    for (;;) {
      Batch* batch;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return !queue_.empty(); });
        batch = queue_.front();
        queue_.pop_front();
      }
      batch->fn();
      {
        // Decrement under the batch mutex: were it outside, a spuriously
        // woken caller could observe pending == 0, return from Wait(), and
        // destroy the batch before this thread touches its mutex/cv.
        std::lock_guard<std::mutex> lock(batch->done_mutex);
        if (batch->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          batch->done.notify_all();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Batch*> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace

int DefaultJobs() {
  static const int jobs = ComputeDefaultJobs();
  return jobs;
}

ThreadPool::ThreadPool(int jobs)
    : jobs_(jobs > 0 ? jobs : DefaultJobs()), explicit_size_(jobs > 0) {}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) const {
  if (n <= 0) return;
  const int64_t max_helpers = static_cast<int64_t>(jobs_) - 1;
  int64_t want = max_helpers < n - 1 ? max_helpers : n - 1;
  if (want < 0) want = 0;
  int granted = 0;
  if (want > 0) {
    granted = explicit_size_
                  ? static_cast<int>(want)
                  : ThreadBudget::Get().TryAcquire(static_cast<int>(want));
  }

  if (granted == 0) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<int64_t> next(0);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (explicit_size_) {
    // Explicitly sized pools always get dedicated threads: tests use this
    // to force real concurrency regardless of budget or host core count.
    std::vector<std::thread> helpers;
    helpers.reserve(static_cast<size_t>(granted));
    for (int t = 0; t < granted; ++t) helpers.emplace_back(worker);
    worker();  // The caller always participates.
    for (std::thread& h : helpers) h.join();
  } else {
    // Budget-rationed loops ride the persistent pool; its worker count
    // equals the total permit budget, so granted permits always map onto
    // (eventually) free workers.
    WorkerPool::Batch batch;
    batch.fn = worker;
    batch.pending.store(granted, std::memory_order_release);
    WorkerPool::Get().Submit(&batch, granted);
    worker();  // The caller always participates.
    batch.Wait();
    ThreadBudget::Get().Release(granted);
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace converge
