#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace converge {
namespace {

int ComputeDefaultJobs() {
  if (const char* env = std::getenv("CONVERGE_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Global helper-thread budget shared by every concurrent/nested loop. The
// caller thread is free; only helpers consume permits, so total live threads
// stay near DefaultJobs() no matter how loops nest.
class ThreadBudget {
 public:
  static ThreadBudget& Get() {
    static ThreadBudget budget;
    return budget;
  }

  int TryAcquire(int want) {
    int avail = available_.load(std::memory_order_relaxed);
    while (avail > 0) {
      const int take = want < avail ? want : avail;
      if (available_.compare_exchange_weak(avail, avail - take,
                                           std::memory_order_relaxed)) {
        return take;
      }
    }
    return 0;
  }

  void Release(int n) { available_.fetch_add(n, std::memory_order_relaxed); }

 private:
  ThreadBudget() : available_(DefaultJobs() - 1) {}
  std::atomic<int> available_;
};

}  // namespace

int DefaultJobs() {
  static const int jobs = ComputeDefaultJobs();
  return jobs;
}

ThreadPool::ThreadPool(int jobs)
    : jobs_(jobs > 0 ? jobs : DefaultJobs()), explicit_size_(jobs > 0) {}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) const {
  if (n <= 0) return;
  const int64_t max_helpers = static_cast<int64_t>(jobs_) - 1;
  int64_t want = max_helpers < n - 1 ? max_helpers : n - 1;
  if (want < 0) want = 0;
  int granted = 0;
  if (want > 0) {
    granted = explicit_size_
                  ? static_cast<int>(want)
                  : ThreadBudget::Get().TryAcquire(static_cast<int>(want));
  }

  if (granted == 0) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<int64_t> next(0);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> helpers;
  helpers.reserve(static_cast<size_t>(granted));
  for (int t = 0; t < granted; ++t) helpers.emplace_back(worker);
  worker();  // The caller always participates.
  for (std::thread& h : helpers) h.join();
  if (!explicit_size_) ThreadBudget::Get().Release(granted);

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace converge
