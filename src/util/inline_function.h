// Move-only callable wrapper with a caller-chosen inline buffer.
//
// std::function heap-allocates any callable bigger than ~2 pointers, which
// makes every scheduled event and every in-flight packet a malloc/free pair
// in the simulator's inner loop. InlineFunction stores callables up to
// kInlineBytes in place (a full RtpPacket capture fits) and only falls back
// to the heap for oversized captures, so the steady-state event path runs
// allocation-free. Move-only: captures are moved, never copied, end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace converge {

template <typename Signature, size_t kInlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, size_t kInlineBytes>
class InlineFunction<R(Args...), kInlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable does not match signature");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = &InvokeInline<Fn>;
      manage_ = &ManageInline<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = &InvokeHeap<Fn>;
      manage_ = &ManageHeap<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(this, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMoveTo, kDestroy };

  using InvokeFn = R (*)(InlineFunction*, Args&&...);
  using ManageFn = void (*)(InlineFunction* self, InlineFunction* dst, Op op);

  template <typename Fn>
  static R InvokeInline(InlineFunction* self, Args&&... args) {
    return (*std::launder(reinterpret_cast<Fn*>(self->storage_)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static R InvokeHeap(InlineFunction* self, Args&&... args) {
    return (*static_cast<Fn*>(self->heap_))(std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageInline(InlineFunction* self, InlineFunction* dst, Op op) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(self->storage_));
    if (op == Op::kMoveTo) {
      ::new (static_cast<void*>(dst->storage_)) Fn(std::move(*fn));
    }
    fn->~Fn();
  }

  template <typename Fn>
  static void ManageHeap(InlineFunction* self, InlineFunction* dst, Op op) {
    if (op == Op::kMoveTo) {
      dst->heap_ = self->heap_;
      self->heap_ = nullptr;
    } else {
      delete static_cast<Fn*>(self->heap_);
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    if (!other.invoke_) return;
    other.manage_(&other, this, Op::kMoveTo);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() {
    if (invoke_) {
      manage_(this, nullptr, Op::kDestroy);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void* heap_;
  };
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace converge
