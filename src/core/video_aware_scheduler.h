// The Converge video-aware RTP scheduler (§4.1).
//
// Three levels of control:
//  * frame-level  — keyframe media packets ride the fast path;
//  * packet-level — PPS/SPS (and RTX) packets ride the fast path;
//  * reliability  — FEC placement prefers the fast path, falling back to the
//    path the parity was generated for when the fast path's packet budget
//    P_max is exhausted.
//
// The fast path is the one minimizing the transmission completion time
// cpt_i = N*k/rate_i + rtt_i/2 (Algorithm 1). Unprioritized (delta media)
// packets are split proportionally to the per-path rates S_i (Eq. 1), then
// adjusted by the receiver's QoE feedback alpha (Eq. 2). A path whose
// packet count reaches zero is disabled and probed until Eq. 3 re-enables
// it (handled by PathManager).
#pragma once

#include <map>
#include <memory>

#include "core/path_manager.h"
#include "schedulers/scheduler.h"

namespace converge {

class VideoAwareScheduler final : public Scheduler {
 public:
  struct Config {
    int64_t packet_bytes = 1200;          // k in Algorithm 1
    double frame_interval_s = 1.0 / 30.0; // P_max budget horizon
    double pmax_headroom = 1.6;           // P_max probing headroom over S_i
    double alpha_decay_per_s = 0.4;       // exponential decay rate of alpha
    double max_positive_alpha = 16.0;
    double max_negative_alpha = -64.0;
    PathManager::Config path_manager;
  };

  VideoAwareScheduler();
  explicit VideoAwareScheduler(Config config);

  std::string name() const override { return "Converge"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override;
  PathId ChooseRtxPath(const RtpPacket& packet,
                       const std::vector<PathInfo>& paths) override;
  PathId ChooseFecPath(const RtpPacket& fec, PathId origin,
                       const std::vector<PathInfo>& paths) override;
  void OnQoeFeedback(const QoeFeedback& feedback) override;
  bool IsPathActive(PathId id) const override;
  std::vector<PathId> PathsNeedingProbe(Timestamp now) override;
  void OnTick(const std::vector<PathInfo>& paths, Timestamp now) override;

  // Introspection for tests/benches.
  PathId last_fast_path() const { return last_fast_path_; }
  double alpha(PathId path) const;
  const PathManager& path_manager() const { return path_manager_; }

 private:
  // Packet budget per scheduling round for a path (P_max, §4.1).
  int PMax(const PathInfo& path) const;

  Config config_;
  PathManager path_manager_;
  std::map<PathId, double> alpha_;  // Eq. 2 adjustment, in packets/frame
  PathId last_fast_path_ = kInvalidPathId;
  // Remaining fast-path budget after the last AssignFrame (consumed by
  // subsequent FEC/RTX placement for the same frame).
  int fast_budget_left_ = 0;
  Timestamp last_tick_ = Timestamp::MinusInfinity();
};

}  // namespace converge
