#include "core/video_aware_scheduler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "schedulers/path_stats.h"
#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {

VideoAwareScheduler::VideoAwareScheduler()
    : VideoAwareScheduler(Config{}) {}

VideoAwareScheduler::VideoAwareScheduler(Config config)
    : config_(config), path_manager_(config.path_manager) {}

int VideoAwareScheduler::PMax(const PathInfo& path) const {
  // Packets the path can absorb during one frame interval at S_i, with
  // headroom: letting positive feedback push slightly past the current rate
  // is what allows an under-estimated path to ramp (the extra packets act
  // as in-band probes for its congestion controller).
  const double bits_per_frame =
      static_cast<double>(path.allocated_rate.bps()) * config_.frame_interval_s;
  const double packets = config_.pmax_headroom * bits_per_frame /
                         (8.0 * static_cast<double>(config_.packet_bytes));
  return std::max(2, static_cast<int>(std::floor(packets)));
}

std::vector<PathId> VideoAwareScheduler::AssignFrame(
    const std::vector<RtpPacket>& packets,
    const std::vector<PathInfo>& paths) {
  std::vector<PathId> out(packets.size(), kInvalidPathId);
  if (paths.empty()) return out;

  std::vector<PathInfo> active = path_manager_.ActivePaths(paths);
  if (active.empty()) {
    // Everything disabled (should not happen: the last path is never
    // disabled) — fail open on the lowest-RTT path.
    const PathId fallback = MinSrttPath(paths);
    return std::vector<PathId>(packets.size(), fallback);
  }

  // Algorithm 1: fast path = argmin cpt_i.
  const PathId fast = MinCompletionTimePath(
      active, static_cast<int>(packets.size()), config_.packet_bytes);
  last_fast_path_ = fast;

  // Rank the remaining active paths by their completion time so priority
  // overflow cascades to the next-best path.
  std::vector<const PathInfo*> ranked;
  for (const PathInfo& p : active) ranked.push_back(&p);
  const int64_t k = config_.packet_bytes;
  const int n_packets = static_cast<int>(packets.size());
  std::sort(ranked.begin(), ranked.end(),
            [&](const PathInfo* a, const PathInfo* b) {
              auto cpt = [&](const PathInfo* p) {
                const DataRate rate =
                    p->goodput.bps() > 0 ? p->goodput : p->allocated_rate;
                const double bps = std::max<double>(
                    1000.0, static_cast<double>(rate.bps()));
                return static_cast<double>(n_packets) *
                           static_cast<double>(k) * 8.0 / bps +
                       p->srtt.seconds() / 2.0;
              };
              return cpt(a) < cpt(b);
            });

  // Remaining per-path budgets for this round.
  std::map<PathId, int> budget;
  for (const PathInfo& p : active) budget[p.id] = PMax(p);

  // --- Priority packets (Table 2): fast path first; once its budget is
  // exhausted, each further critical packet takes the path that would
  // complete it soonest *including* the backlog this frame has already
  // queued there. A nominally "slow" path only receives keyframe tail
  // packets when it genuinely finishes them earlier than queueing behind
  // the fast path's backlog — never as a blind cascade.
  std::vector<size_t> priority_indices;
  std::vector<size_t> media_indices;
  for (size_t i = 0; i < packets.size(); ++i) {
    if (packets[i].IsDecodingCritical()) {
      priority_indices.push_back(i);
    } else {
      media_indices.push_back(i);
    }
  }
  std::stable_sort(priority_indices.begin(), priority_indices.end(),
                   [&](size_t a, size_t b) {
                     return static_cast<int>(packets[a].priority) <
                            static_cast<int>(packets[b].priority);
                   });
  std::map<PathId, int64_t> backlog;
  for (const PathInfo& p : active) backlog[p.id] = p.pacer_queue_bytes;
  auto incremental_cpt = [&](const PathInfo& p, int64_t bytes) {
    const DataRate rate = p.goodput.bps() > 0 ? p.goodput : p.allocated_rate;
    const double bps = std::max<double>(1000.0, static_cast<double>(rate.bps()));
    return static_cast<double>(backlog[p.id] + bytes) * 8.0 / bps +
           p.srtt.seconds() / 2.0;
  };
  for (size_t idx : priority_indices) {
    PathId chosen = fast;
    if (budget[fast] <= 0) {
      double best = 0.0;
      bool first = true;
      for (const PathInfo& p : active) {
        const double cpt = incremental_cpt(p, packets[idx].wire_size());
        if (first || cpt < best) {
          best = cpt;
          chosen = p.id;
          first = false;
        }
      }
    }
    out[idx] = chosen;
    --budget[chosen];
    backlog[chosen] += packets[idx].wire_size();
  }

  // --- Media packets: Eq. 1 proportional split over active paths,
  //     adjusted per path by the feedback alpha (Eq. 2), capped by P_max ---
  // A path only participates in the media split if it can actually carry
  // its trickle: one straggler packet on a collapsed or backlogged path
  // blocks the assembly of *every* frame it touches (§3.2). Such paths
  // stay active (they still get probes and can carry overflow FEC) but get
  // no media until they recover.
  std::vector<PathInfo> splittable;
  for (const PathInfo& p : active) {
    const bool can_carry_trickle =
        static_cast<double>(p.allocated_rate.bps()) * config_.frame_interval_s >=
        8.0 * static_cast<double>(config_.packet_bytes);
    const bool backlogged = p.pacer_queue_delay > Duration::Millis(300);
    if ((can_carry_trickle && !backlogged) || p.id == fast) {
      splittable.push_back(p);
    }
  }
  if (splittable.empty()) splittable = active;
  std::vector<int> share =
      ProportionalSplit(splittable, static_cast<int>(media_indices.size()));
  std::vector<std::pair<PathId, int>> targets;
  int assigned_total = 0;
  for (size_t i = 0; i < splittable.size(); ++i) {
    const PathId id = splittable[i].id;
    int target = share[i];
    const double a = alpha_.count(id) ? alpha_.at(id) : 0.0;
    if (a > 0) {
      target = std::min(PMax(splittable[i]),
                        target + static_cast<int>(std::lround(a)));
    } else if (a < 0) {
      target = std::max(0, target + static_cast<int>(std::lround(a)));
    }
    target = std::min(target, std::max(0, budget[id]));
    targets.emplace_back(id, target);
    assigned_total += target;
  }
  // Shortfall (alpha reductions / caps): redistribute into the remaining
  // P_max budgets, fast path first, so no single path is overloaded past
  // its own headroom. Anything left after every budget is full lands on the
  // fast path (the encoder will be throttled by ΣS_i shortly anyway).
  int shortfall = static_cast<int>(media_indices.size()) - assigned_total;
  if (shortfall > 0) {
    std::vector<std::pair<PathId, int>*> by_pref;
    for (auto& t : targets) by_pref.push_back(&t);
    std::stable_sort(by_pref.begin(), by_pref.end(),
                     [&](auto* a, auto* b) {
                       if (a->first == fast) return b->first != fast;
                       return false;
                     });
    for (auto* t : by_pref) {
      if (shortfall <= 0) break;
      // Never push the shortfall back onto a path the receiver's feedback
      // just pulled packets off (that would undo Eq. 2).
      const double a = alpha_.count(t->first) ? alpha_.at(t->first) : 0.0;
      if (t->first != fast && a < -1.0) continue;
      const int room = std::max(0, budget[t->first] - t->second);
      const int add = std::min(room, shortfall);
      t->second += add;
      shortfall -= add;
    }
    if (shortfall > 0) {
      for (auto& [id, target] : targets) {
        if (id == fast) target += shortfall;
      }
    }
  }

  // Assign media packets in contiguous blocks, fast path first, preserving
  // sequence order within each block (Figure 8's 5:1 pattern).
  std::stable_sort(targets.begin(), targets.end(),
                   [&](const auto& a, const auto& b) {
                     if (a.first == fast) return b.first != fast;
                     if (b.first == fast) return false;
                     return a.first < b.first;
                   });
  size_t cursor = 0;
  for (const auto& [id, target] : targets) {
    for (int c = 0; c < target && cursor < media_indices.size(); ++c) {
      out[media_indices[cursor++]] = id;
      --budget[id];
    }
  }
  while (cursor < media_indices.size()) {
    out[media_indices[cursor++]] = fast;
    --budget[fast];
  }

  fast_budget_left_ = std::max(0, budget[fast]);

  // Paths that received nothing at all this round (feedback drove their
  // media target to zero and no priority packet landed there) get disabled
  // — never the fast path (§4.1 "If P_i becomes zero, the path will be
  // disabled").
  std::map<PathId, int> assigned_count;
  for (PathId id : out) {
    if (id != kInvalidPathId) ++assigned_count[id];
    // Checked before this round's zero-assignment disables below: at this
    // point every target must still be in the active set.
    CONVERGE_INVARIANT("VideoAwareScheduler", last_tick_,
                       id == kInvalidPathId || path_manager_.IsActive(id),
                       "assigned inactive path " + std::to_string(id));
  }
  for (const PathInfo& p : active) {
    if (assigned_count[p.id] == 0 && p.id != fast && active.size() > 1) {
      const double a = alpha_.count(p.id) ? alpha_.at(p.id) : 0.0;
      // Require meaningful negative feedback: with a tiny encoder target a
      // path can receive zero packets in a round without being at fault.
      if (a <= -2.0) {
        path_manager_.Disable(
            p.id, last_tick_.IsFinite() ? last_tick_ : Timestamp::Zero());
      }
    }
  }
  return out;
}

PathId VideoAwareScheduler::ChooseRtxPath(const RtpPacket&,
                                          const std::vector<PathInfo>& paths) {
  // Retransmissions are the highest priority (Table 2): always fast path.
  std::vector<PathInfo> active = path_manager_.ActivePaths(paths);
  if (active.empty()) return MinSrttPath(paths);
  return MinCompletionTimePath(active, 1, config_.packet_bytes);
}

PathId VideoAwareScheduler::ChooseFecPath(const RtpPacket&, PathId origin,
                                          const std::vector<PathInfo>& paths) {
  // FEC prefers the fast path while the budget lasts; otherwise it is sent
  // on the path it was generated for (§4.1).
  std::vector<PathInfo> active = path_manager_.ActivePaths(paths);
  if (active.empty()) return MinSrttPath(paths);
  const PathId fast = last_fast_path_ != kInvalidPathId
                          ? last_fast_path_
                          : MinSrttPath(active);
  if (fast_budget_left_ > 0) {
    --fast_budget_left_;
    return fast;
  }
  if (path_manager_.IsActive(origin) && FindPath(active, origin) != nullptr) {
    return origin;
  }
  return fast;
}

void VideoAwareScheduler::OnQoeFeedback(const QoeFeedback& feedback) {
  if (feedback.path_id == kInvalidPathId) return;
  alpha_[feedback.path_id] += static_cast<double>(feedback.alpha);
  alpha_[feedback.path_id] =
      std::clamp(alpha_[feedback.path_id], config_.max_negative_alpha,
                 config_.max_positive_alpha);
  path_manager_.OnFeedbackFcd(feedback.fcd);
}

bool VideoAwareScheduler::IsPathActive(PathId id) const {
  return path_manager_.IsActive(id);
}

std::vector<PathId> VideoAwareScheduler::PathsNeedingProbe(Timestamp now) {
  return path_manager_.ProbeDue(now);
}

void VideoAwareScheduler::OnTick(const std::vector<PathInfo>& paths,
                                 Timestamp now) {
  path_manager_.MaybeReenable(paths, now);
  // Alpha decays exponentially toward zero (half-life ~1.7 s): stale
  // feedback must not bias scheduling once conditions change — only
  // *sustained* feedback keeps a path suppressed.
  if (last_tick_.IsFinite()) {
    const double dt = (now - last_tick_).seconds();
    const double keep = std::exp(-config_.alpha_decay_per_s * dt);
    for (auto& [id, a] : alpha_) a *= keep;
  }
  last_tick_ = now;

  if (TraceRecorder* trace = TraceRecorder::Current()) {
    for (const PathInfo& p : paths) {
      const auto it = alpha_.find(p.id);
      trace->Counter("scheduler", "alpha", now,
                     it != alpha_.end() ? it->second : 0.0,
                     static_cast<int32_t>(p.id));
      trace->Counter("scheduler", "path_active", now,
                     path_manager_.IsActive(p.id) ? 1.0 : 0.0,
                     static_cast<int32_t>(p.id));
    }
    if (last_fast_path_ != kInvalidPathId) {
      trace->Counter("scheduler", "fast_path", now,
                     static_cast<double>(last_fast_path_));
    }
  }
}

double VideoAwareScheduler::alpha(PathId path) const {
  auto it = alpha_.find(path);
  return it == alpha_.end() ? 0.0 : it->second;
}

}  // namespace converge
