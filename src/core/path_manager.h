// Converge path management (§4.1/§4.2): paths whose per-path packet budget
// reaches zero are disabled; disabled paths receive duplicated probe packets
// so their RTT stays measurable, and are re-enabled once Equation 3 holds:
//
//   (rtt_fast - rtt_i) / 2 <= FCD
//
// i.e. the path's one-way delay penalty relative to the fast path no longer
// exceeds the receiver's observed frame construction delay.
#pragma once

#include <map>
#include <vector>

#include "schedulers/scheduler.h"

namespace converge {

class PathManager {
 public:
  struct Config {
    Duration probe_interval = Duration::Millis(50);
    Duration min_disable_time = Duration::Millis(500);
  };

  PathManager();
  explicit PathManager(Config config);

  void Disable(PathId path, Timestamp now);
  bool IsActive(PathId path) const;

  // Latest FCD reported in QoE feedback (right-hand side of Eq. 3).
  void OnFeedbackFcd(Duration fcd) { last_fcd_ = fcd; }

  // Evaluates Eq. 3 for every disabled path. `paths` must include the
  // disabled paths (their sRTT is maintained by probe packets).
  void MaybeReenable(const std::vector<PathInfo>& paths, Timestamp now);

  // Disabled paths due for a probe duplicate.
  std::vector<PathId> ProbeDue(Timestamp now);

  std::vector<PathInfo> ActivePaths(const std::vector<PathInfo>& all) const;

  int64_t disables() const { return disables_; }
  int64_t reenables() const { return reenables_; }

 private:
  struct DisabledState {
    Timestamp since;
    Timestamp last_probe = Timestamp::MinusInfinity();
  };

  Config config_;
  std::map<PathId, DisabledState> disabled_;
  Duration last_fcd_ = Duration::Zero();
  int64_t disables_ = 0;
  int64_t reenables_ = 0;
};

}  // namespace converge
