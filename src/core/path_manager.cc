#include "core/path_manager.h"

#include <algorithm>
#include <string>

#include "schedulers/path_stats.h"
#include "util/invariants.h"

namespace converge {

PathManager::PathManager() : PathManager(Config{}) {}

PathManager::PathManager(Config config) : config_(config) {}

void PathManager::Disable(PathId path, Timestamp now) {
  if (disabled_.count(path)) return;
  disabled_.emplace(path, DisabledState{now, Timestamp::MinusInfinity()});
  ++disables_;
}

bool PathManager::IsActive(PathId path) const {
  return disabled_.find(path) == disabled_.end();
}

void PathManager::MaybeReenable(const std::vector<PathInfo>& paths,
                                Timestamp now) {
  if (disabled_.empty()) return;

  // Fast path among the active ones (minimum sRTT is a good proxy here:
  // re-enablement compares one-way delays).
  Duration rtt_fast = Duration::Infinity();
  for (const PathInfo& p : paths) {
    if (IsActive(p.id)) rtt_fast = std::min(rtt_fast, p.srtt);
  }
  if (rtt_fast.IsInfinite()) return;

  for (auto it = disabled_.begin(); it != disabled_.end();) {
    const PathInfo* info = FindPath(paths, it->first);
    const bool min_time_ok =
        now - it->second.since >= config_.min_disable_time;
    if (info != nullptr && min_time_ok) {
      // Equation 3. |rtt_i - rtt_fast| / 2 is the extra one-way delay the
      // disabled path would add; tolerable once within the observed FCD.
      const Duration penalty = (info->srtt - rtt_fast) / 2;
      if (penalty <= last_fcd_ || penalty <= Duration::Zero()) {
        it = disabled_.erase(it);
        ++reenables_;
        continue;
      }
    }
    ++it;
  }
  // Every re-enable is paired with an earlier disable; a mismatch means the
  // disabled set and its counters have diverged.
  CONVERGE_INVARIANT("PathManager", now, reenables_ <= disables_,
                     "reenables=" + std::to_string(reenables_) +
                         " disables=" + std::to_string(disables_));
}

std::vector<PathId> PathManager::ProbeDue(Timestamp now) {
  std::vector<PathId> due;
  for (auto& [path, st] : disabled_) {
    if (!st.last_probe.IsFinite() ||
        now - st.last_probe >= config_.probe_interval) {
      st.last_probe = now;
      due.push_back(path);
    }
  }
  return due;
}

std::vector<PathInfo> PathManager::ActivePaths(
    const std::vector<PathInfo>& all) const {
  std::vector<PathInfo> active;
  for (const PathInfo& p : all) {
    if (IsActive(p.id)) active.push_back(p);
  }
  return active;
}

}  // namespace converge
