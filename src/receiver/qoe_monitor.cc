#include "receiver/qoe_monitor.h"

#include <algorithm>
#include <utility>

#include "util/trace_recorder.h"

namespace converge {

QoeMonitor::QoeMonitor(EventLoop* loop, Config config, FeedbackFn send)
    : loop_(loop), config_(config), send_(std::move(send)) {}

void QoeMonitor::SetExpectedFps(double fps) {
  if (fps > 1.0) ifd_exp_ = Duration::Seconds(1.0 / fps);
}

void QoeMonitor::OnFrameGathered(const GatheredFrame& gathered) {
  last_fcd_ = gathered.frame.fcd;
  // An FCD breach signals path asymmetry only when the frame needed no
  // loss recovery: a frame healed by RTX/FEC gathers slowly because of the
  // repair round trip, not because a path delivers late.
  const bool pure_lateness = gathered.frame.recovered_by_fec == 0 &&
                             gathered.frame.recovered_by_rtx == 0;
  if (pure_lateness && last_fcd_ > ifd_exp_ * config_.fcd_tolerance) {
    ++fcd_breach_streak_;
  } else {
    fcd_breach_streak_ = 0;
  }

  // Reference path: the one carrying the most packets of this frame (the
  // scheduler sends the bulk of the frame on the fast path).
  std::map<PathId, int> counts;
  std::map<PathId, Timestamp> last_arrival;
  for (const PacketArrivalInfo& a : gathered.arrivals) {
    ++counts[a.path_id];
    auto [it, inserted] = last_arrival.emplace(a.path_id, a.arrival);
    if (!inserted) it->second = std::max(it->second, a.arrival);
  }
  if (counts.size() < 2) return;  // single-path frame: no asymmetry signal

  PathId reference = counts.begin()->first;
  for (const auto& [path, n] : counts) {
    if (n > counts[reference]) reference = path;
  }
  const Timestamp t_ref = last_arrival[reference];

  for (const PacketArrivalInfo& a : gathered.arrivals) {
    if (a.path_id == reference) continue;
    PathWindow& w = windows_[a.path_id];
    ++w.packets;
    if (a.arrival > t_ref + config_.late_margin) {
      ++w.late;  // this packet extended the gathering delay
    } else if (a.arrival + config_.early_margin < t_ref) {
      ++w.early;  // headroom: the path could carry more
    }
  }
  if (++frames_in_window_ > config_.window_frames) DecayWindows();
}

void QoeMonitor::OnFrameInserted(Duration ifd) {
  last_ifd_ = ifd;
  const bool ifd_breach = ifd > ifd_exp_ * config_.ifd_tolerance;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Counter("qoe", "ifd_ms", loop_->now(), ifd.seconds() * 1000.0);
    trace->Counter("qoe", "fcd_ms", loop_->now(),
                   last_fcd_.seconds() * 1000.0);
    trace->Counter("qoe", "ifd_breach_streak", loop_->now(),
                   static_cast<double>(breach_streak_ + (ifd_breach ? 1 : 0)));
  }
  if (ifd_breach) {
    ++breach_streak_;
  } else {
    breach_streak_ = 0;
  }
  if (breach_streak_ >= config_.consecutive_breaches ||
      fcd_breach_streak_ >= config_.consecutive_breaches) {
    MaybeSendNegative();
  } else if (!ifd_breach) {
    MaybeSendPositive();
  }
}

void QoeMonitor::MaybeSendNegative() {
  const Timestamp now = loop_->now();
  if (last_feedback_.IsFinite() &&
      now - last_feedback_ < config_.min_feedback_interval) {
    return;
  }
  // Blame the path with the most late packets in the window.
  PathId worst = kInvalidPathId;
  int64_t worst_late = 0;
  for (const auto& [path, w] : windows_) {
    if (w.late > worst_late) {
      worst_late = w.late;
      worst = path;
    }
  }
  if (worst == kInvalidPathId || worst_late == 0) return;

  QoeFeedback fb;
  fb.path_id = worst;
  // Bounded per event: persistent asymmetry keeps producing feedback (and
  // ultimately disables the path); one bad frame must not.
  fb.alpha = -static_cast<int32_t>(std::min<int64_t>(worst_late, 5));
  fb.fcd = last_fcd_;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant("qoe", "negative_verdict", now,
                   static_cast<double>(fb.alpha),
                   static_cast<int32_t>(worst), -1,
                   last_fcd_.seconds() * 1000.0);
  }
  send_(fb);
  ++stats_.negative_feedback;
  last_feedback_ = now;
  windows_[worst] = PathWindow{};
}

void QoeMonitor::MaybeSendPositive() {
  const Timestamp now = loop_->now();
  if (last_positive_.IsFinite() &&
      now - last_positive_ < config_.positive_interval) {
    return;
  }
  // A path whose packets consistently arrive early (and never late) can
  // take more load.
  for (const auto& [path, w] : windows_) {
    if (w.packets >= 4 && w.late == 0 && w.early * 2 >= w.packets) {
      QoeFeedback fb;
      fb.path_id = path;
      fb.alpha = static_cast<int32_t>(std::min<int64_t>(
          w.early, config_.max_positive_alpha));
      fb.fcd = last_fcd_;
      if (TraceRecorder* trace = TraceRecorder::Current()) {
        trace->Instant("qoe", "positive_verdict", now,
                       static_cast<double>(fb.alpha),
                       static_cast<int32_t>(path), -1,
                       last_fcd_.seconds() * 1000.0);
      }
      send_(fb);
      ++stats_.positive_feedback;
      last_positive_ = now;
      windows_[path] = PathWindow{};
      return;
    }
  }
}

void QoeMonitor::DecayWindows() {
  frames_in_window_ = 0;
  for (auto& [path, w] : windows_) {
    w.late /= 2;
    w.early /= 2;
    w.packets /= 2;
  }
}

}  // namespace converge
