#include "receiver/frame_buffer.h"

#include <string>
#include <utility>

#include "util/invariants.h"

namespace converge {

FrameBuffer::FrameBuffer(EventLoop* loop, Config config,
                         ReleaseCallback on_release,
                         KeyframeRequestCallback on_keyframe_request,
                         PurgeCallback on_purge)
    : loop_(loop),
      config_(config),
      on_release_(std::move(on_release)),
      on_keyframe_request_(std::move(on_keyframe_request)),
      on_purge_(std::move(on_purge)),
      buffer_(config.arena != nullptr ? config.arena : &own_arena_) {}

void FrameBuffer::Insert(AssembledFrame frame) {
  if (stream_id_ < 0) stream_id_ = frame.stream_id;

  const Timestamp now = loop_->now();
  if (last_insert_time_.IsFinite()) last_ifd_ = now - last_insert_time_;
  last_insert_time_ = now;
  ++stats_.frames_inserted;

  if (frame.frame_id < next_expected_) {
    // Arrived after we already skipped past it (counted at skip time).
    return;
  }
  buffer_.emplace(frame.frame_id, std::move(frame));

  // A keyframe makes everything older irrelevant: decoding restarts there.
  Release();

  CONVERGE_INVARIANT(
      "FrameBuffer", now, buffer_.size() <= config_.capacity_frames,
      "size=" + std::to_string(buffer_.size()) +
          " capacity=" + std::to_string(config_.capacity_frames));
  // Never hold a frame older than one already released/skipped: such a
  // frame could only be decoded out of order.
  CONVERGE_INVARIANT(
      "FrameBuffer", now,
      buffer_.empty() || buffer_.begin()->first >= next_expected_,
      "oldest_buffered=" + std::to_string(buffer_.begin()->first) +
          " next_expected=" + std::to_string(next_expected_));
}

void FrameBuffer::Release() {
  while (true) {
    auto it = buffer_.find(next_expected_);
    if (it != buffer_.end()) {
      if (broken_chain_ && it->second.kind != FrameKind::kKey) {
        // Undecodable delta (its reference was dropped): purge it instead
        // of feeding the decoder (§3.2), and keep asking for a keyframe —
        // the previous request may itself have been lost. The receiver
        // rate-limits actual PLI emission.
        buffer_.erase(it);
        ++next_expected_;
        ++stats_.frames_dropped;
        on_keyframe_request_();
        continue;
      }
      broken_chain_ = false;
      const AssembledFrame out = std::move(it->second);
      buffer_.erase(it);
      ++next_expected_;
      ++stats_.frames_released;
      on_release_(out);
      continue;
    }
    break;
  }
  if (buffer_.empty()) return;

  // Head-of-line gap. A buffered keyframe short-circuits the wait: frames
  // older than it are useless to the decoder anyway (§3.1), so decoding
  // restarts there immediately.
  for (const auto& [id, frame] : buffer_) {
    if (frame.kind == FrameKind::kKey) {
      JumpForward();
      return;
    }
  }
  if (buffer_.size() >= config_.capacity_frames) {
    JumpForward();
    return;
  }
  if (!waiting_) {
    waiting_ = true;
    const int64_t waiting_for = next_expected_;
    std::weak_ptr<bool> weak = alive_;
    loop_->ScheduleIn(config_.max_wait, [this, waiting_for, weak] {
      if (auto alive = weak.lock(); alive && *alive) OnWaitExpired(waiting_for);
    });
  }
}

void FrameBuffer::OnWaitExpired(int64_t waiting_for) {
  waiting_ = false;
  if (next_expected_ != waiting_for || buffer_.empty()) {
    // Progress happened (or buffer drained); nothing to force.
    if (!buffer_.empty()) Release();
    return;
  }
  JumpForward();
}

void FrameBuffer::JumpForward() {
  waiting_ = false;
  if (buffer_.empty()) return;

  // Prefer restarting at a buffered keyframe: the dependency chain is intact
  // from there (§3.1). Otherwise skip only the missing range and let the
  // decoder flag the broken chain.
  int64_t jump_to = buffer_.begin()->first;
  bool keyframe_restart = false;
  for (const auto& [id, frame] : buffer_) {
    if (frame.kind == FrameKind::kKey) {
      jump_to = id;
      keyframe_restart = true;
      break;
    }
  }

  // Everything in [next_expected_, jump_to) is dropped: buffered deltas
  // older than the restart point plus the never-assembled missing frames.
  for (auto it = buffer_.begin(); it != buffer_.end() && it->first < jump_to;) {
    it = buffer_.erase(it);
  }
  stats_.frames_dropped += jump_to - next_expected_;

  on_purge_(stream_id_, jump_to - 1);
  next_expected_ = jump_to;
  if (keyframe_restart) {
    ++stats_.keyframe_jumps;
    broken_chain_ = false;
  } else {
    // Restarting at a delta frame: decoding cannot resume without a new
    // keyframe. Buffered deltas are undecodable and will be purged.
    broken_chain_ = true;
    on_keyframe_request_();
  }
  Release();
}

}  // namespace converge
