#include "receiver/receiver.h"

#include <utility>

#include "util/trace_recorder.h"

namespace converge {
namespace {

template <typename ConfigT>
ConfigT WithArena(ConfigT config, PoolArena* arena) {
  if (config.arena == nullptr) config.arena = arena;
  return config;
}

}  // namespace

VideoReceiveStream::VideoReceiveStream(EventLoop* loop, Config config,
                                       Callbacks callbacks)
    : loop_(loop),
      config_(config),
      callbacks_(std::move(callbacks)),
      fec_(
          [this](RtpPacket recovered) {
            // Recovered packets rejoin the media pipeline with the original
            // arrival context (recovery happens upon the triggering arrival).
            OnMediaLikePacket(std::move(recovered), current_arrival_,
                              current_path_);
          },
          config.arena),
      packet_buffer_(WithArena(config.packet_buffer, config.arena),
                     [this](GatheredFrame&& gathered) {
                       // The monitor always *measures* (FCD/IFD feed the
                       // metrics); enable_qoe_feedback only gates whether
                       // feedback messages leave the endpoint.
                       qoe_monitor_.OnFrameGathered(gathered);
                       const int32_t stream_id = gathered.frame.stream_id;
                       frame_buffer_.Insert(std::move(gathered.frame));
                       qoe_monitor_.OnFrameInserted(frame_buffer_.last_ifd());
                       if (TraceRecorder* trace = TraceRecorder::Current()) {
                         trace->Counter("packet_buffer", "frames", loop_->now(),
                                        static_cast<double>(packet_buffer_.size()),
                                        -1, stream_id);
                         trace->Counter("frame_buffer", "frames", loop_->now(),
                                        static_cast<double>(frame_buffer_.size()),
                                        -1, stream_id);
                       }
                     }),
      frame_buffer_(
          loop, WithArena(config.frame_buffer, config.arena),
          [this](const AssembledFrame& frame) { decoder_.Decode(frame); },
          [this] { RequestKeyframe(); },
          [this](int stream_id, int64_t upto_frame) {
            packet_buffer_.PurgeFramesUpTo(stream_id, upto_frame);
          }),
      qoe_monitor_(loop, config.qoe,
                   [this](const QoeFeedback& fb) {
                     if (config_.enable_qoe_feedback &&
                         callbacks_.send_qoe_feedback) {
                       callbacks_.send_qoe_feedback(fb);
                     }
                   }),
      decoder_(
          loop, config.decoder,
          [this](const DecodedFrame& frame) {
            if (callbacks_.on_decoded) callbacks_.on_decoded(frame);
          },
          [this](const AssembledFrame&) { RequestKeyframe(); }) {}

void VideoReceiveStream::OnRtpPacket(RtpPacket packet, Timestamp arrival,
                                     PathId path) {
  ++packets_received_;
  current_arrival_ = arrival;
  current_path_ = path;

  if (packet.kind == PayloadKind::kFec) {
    fec_.OnFecPacket(packet);
    return;
  }
  OnMediaLikePacket(std::move(packet), arrival, path);
}

void VideoReceiveStream::OnMediaLikePacket(RtpPacket packet,
                                           Timestamp arrival, PathId path) {
  if (!packet.via_fec) fec_.OnMediaPacket(packet);
  packet_buffer_.Insert(std::move(packet), arrival, path);
}

void VideoReceiveStream::RequestKeyframe() {
  const Timestamp now = loop_->now();
  if (last_keyframe_request_.IsFinite() &&
      now - last_keyframe_request_ < config_.min_keyframe_request_interval) {
    return;
  }
  last_keyframe_request_ = now;
  ++keyframe_requests_;
  if (callbacks_.send_keyframe_request) {
    callbacks_.send_keyframe_request(config_.ssrc);
  }
}

VideoReceiveStream::Stats VideoReceiveStream::GetStats() const {
  Stats s;
  s.packets_received = packets_received_;
  s.keyframe_requests = keyframe_requests_;
  s.frame_buffer_dropped = frame_buffer_.stats().frames_dropped;
  s.packet_buffer_destroyed = packet_buffer_.stats().frames_destroyed;
  s.decode_failures = decoder_.decode_failures();
  s.frames_decoded = decoder_.frames_decoded();
  return s;
}

}  // namespace converge
