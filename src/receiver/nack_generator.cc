#include "receiver/nack_generator.h"

#include <algorithm>
#include <utility>

#include "util/trace_recorder.h"

namespace converge {

NackGenerator::NackGenerator(EventLoop* loop, Config config, SendNackFn send)
    : loop_(loop),
      config_(config),
      send_(std::move(send)),
      arena_(config.arena != nullptr ? config.arena : &own_arena_),
      flows_(arena_) {
  task_ = std::make_unique<RepeatingTask>(loop_, Duration::Millis(5),
                                          [this] { Process(); });
}

NackGenerator::~NackGenerator() = default;

void NackGenerator::OnPacket(int64_t flow, uint16_t seq) {
  FlowState& st = flows_.try_emplace(flow, arena_).first->second;
  const int64_t useq = st.unwrapper.Unwrap(seq);

  if (!st.initialized) {
    st.initialized = true;
    st.highest = useq;
    return;
  }

  if (useq > st.highest) {
    // FIFO per path: every sequence in (highest, useq) was lost (or is
    // momentarily reordered — the grace period covers that). Only the
    // newest `max_outstanding_per_path` entries would survive the burst
    // cap anyway, so older ones are abandoned up front — a spurious jump
    // (e.g. a >32k-stale arrival unwrapping forward) costs O(cap), not
    // O(gap) insertions.
    const int64_t cap =
        static_cast<int64_t>(config_.max_outstanding_per_path);
    const int64_t first = std::max(st.highest + 1, useq - cap);
    stats_.abandoned += first - (st.highest + 1);
    for (int64_t s = first; s < useq; ++s) {
      st.missing.emplace(s, Missing{loop_->now(),
                                    loop_->now() + config_.reorder_grace, 0});
    }
    st.highest = useq;
    // Burst-loss cap: keep only the newest entries.
    while (st.missing.size() > config_.max_outstanding_per_path) {
      st.missing.erase(st.missing.begin());
      ++stats_.abandoned;
    }
  } else {
    auto it = st.missing.find(useq);
    if (it != st.missing.end()) {
      if (it->second.retries > 0) ++stats_.recovered;
      st.missing.erase(it);
    }
  }
}

void NackGenerator::OnRecovered(int64_t flow, uint16_t seq) {
  auto fit = flows_.find(flow);
  if (fit == flows_.end()) return;
  FlowState& st = fit->second;
  if (!st.initialized) return;
  // Re-wrap the 16-bit wire seq into the flow's unwrapped space relative to
  // the highest sequence seen, exactly as the sender side does. A linear
  // first-match scan on truncated seqs would be ambiguous across the wrap
  // boundary (keys 65536 apart share a wire seq) and could erase the wrong
  // entry; the exact key lookup cannot. This must not go through
  // st.unwrapper: recovery notifications are not in-order arrivals and
  // advancing the unwrapper here would corrupt gap detection.
  const int64_t key =
      st.highest + static_cast<int16_t>(static_cast<uint16_t>(
                       seq - static_cast<uint16_t>(st.highest & 0xFFFF)));
  auto it = st.missing.find(key);
  if (it != st.missing.end()) {
    ++stats_.recovered;
    st.missing.erase(it);
  }
}

void NackGenerator::Process() {
  const Timestamp now = loop_->now();
  for (auto& [flow, st] : flows_) {
    std::vector<uint16_t> batch;
    for (auto it = st.missing.begin(); it != st.missing.end();) {
      Missing& m = it->second;
      if (m.retries >= config_.max_retries ||
          now - m.first_detected > config_.max_age) {
        ++stats_.abandoned;
        it = st.missing.erase(it);
        continue;
      }
      if (now >= m.next_send) {
        batch.push_back(static_cast<uint16_t>(it->first & 0xFFFF));
        ++m.retries;
        m.next_send = now + config_.retry_interval;
      }
      ++it;
    }
    if (!batch.empty()) {
      stats_.nacks_sent += static_cast<int64_t>(batch.size());
      if (TraceRecorder* trace = TraceRecorder::Current()) {
        trace->Instant("nack", "batch", now,
                       static_cast<double>(batch.size()),
                       static_cast<int32_t>(flow), -1,
                       static_cast<double>(st.missing.size()));
      }
      send_(flow, batch);
    }
  }
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Counter("nack", "outstanding", now,
                   static_cast<double>(outstanding()));
  }
}

size_t NackGenerator::outstanding() const {
  size_t total = 0;
  for (const auto& [flow, st] : flows_) total += st.missing.size();
  return total;
}

}  // namespace converge
