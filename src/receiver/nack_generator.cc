#include "receiver/nack_generator.h"

#include <utility>

namespace converge {

NackGenerator::NackGenerator(EventLoop* loop, Config config, SendNackFn send)
    : loop_(loop), config_(config), send_(std::move(send)) {
  task_ = std::make_unique<RepeatingTask>(loop_, Duration::Millis(5),
                                          [this] { Process(); });
}

NackGenerator::~NackGenerator() = default;

void NackGenerator::OnPacket(int64_t flow, uint16_t seq) {
  FlowState& st = flows_[flow];
  const int64_t useq = st.unwrapper.Unwrap(seq);

  if (!st.initialized) {
    st.initialized = true;
    st.highest = useq;
    return;
  }

  if (useq > st.highest) {
    // FIFO per path: every sequence in (highest, useq) was lost (or is
    // momentarily reordered — the grace period covers that).
    for (int64_t s = st.highest + 1; s < useq; ++s) {
      st.missing.emplace(
          s, Missing{static_cast<uint16_t>(s & 0xFFFF), loop_->now(),
                     loop_->now() + config_.reorder_grace, 0});
    }
    st.highest = useq;
    // Burst-loss cap: keep only the newest entries.
    while (st.missing.size() > config_.max_outstanding_per_path) {
      st.missing.erase(st.missing.begin());
      ++stats_.abandoned;
    }
  } else {
    auto it = st.missing.find(useq);
    if (it != st.missing.end()) {
      if (it->second.retries > 0) ++stats_.recovered;
      st.missing.erase(it);
    }
  }
}

void NackGenerator::OnRecovered(int64_t flow, uint16_t seq) {
  auto fit = flows_.find(flow);
  if (fit == flows_.end()) return;
  auto& missing = fit->second.missing;
  for (auto it = missing.begin(); it != missing.end(); ++it) {
    if (it->second.seq == seq) {
      ++stats_.recovered;
      missing.erase(it);
      return;
    }
  }
}

void NackGenerator::Process() {
  const Timestamp now = loop_->now();
  for (auto& [flow, st] : flows_) {
    std::vector<uint16_t> batch;
    for (auto it = st.missing.begin(); it != st.missing.end();) {
      Missing& m = it->second;
      if (m.retries >= config_.max_retries ||
          now - m.first_detected > config_.max_age) {
        ++stats_.abandoned;
        it = st.missing.erase(it);
        continue;
      }
      if (now >= m.next_send) {
        batch.push_back(m.seq);
        ++m.retries;
        m.next_send = now + config_.retry_interval;
      }
      ++it;
    }
    if (!batch.empty()) {
      stats_.nacks_sent += static_cast<int64_t>(batch.size());
      send_(flow, batch);
    }
  }
}

size_t NackGenerator::outstanding() const {
  size_t total = 0;
  for (const auto& [flow, st] : flows_) total += st.missing.size();
  return total;
}

}  // namespace converge
