// The receiver's packet buffer (§2.1): a size-limited store that gathers the
// RTP packets of each frame. Packets of a frame occupy a contiguous per-SSRC
// sequence range ([first_in_frame .. marker]); a frame is assembled the
// moment the range is fully present. When the buffer is full, the oldest
// packets are discarded to make room — exactly the behaviour that, under
// multipath asymmetry, destroys frames whose tail packets ride a slow path
// (§3.2).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/path.h"
#include "rtp/rtp_packet.h"
#include "rtp/sequence_number.h"
#include "util/arena.h"
#include "video/frame.h"

namespace converge {

// Arrival record the QoE monitor consumes (§4.2).
struct PacketArrivalInfo {
  PathId path_id = kInvalidPathId;
  Timestamp arrival;
  int64_t seq = 0;  // unwrapped
};

// A fully gathered frame plus its arrival history.
struct GatheredFrame {
  AssembledFrame frame;
  std::vector<PacketArrivalInfo> arrivals;
};

class PacketBuffer {
 public:
  struct Config {
    size_t capacity_packets = 512;
    // Node storage for the entry/frame maps. Null: the buffer owns a
    // private arena. Callers running many components per call (the
    // conference runtime) share one per-call arena instead.
    PoolArena* arena = nullptr;
  };

  struct Stats {
    int64_t inserted = 0;
    int64_t duplicates = 0;
    int64_t evicted = 0;          // dropped to make room (buffer overflow)
    int64_t purged = 0;           // cleared on frame-buffer instruction
    int64_t frames_assembled = 0;
    int64_t frames_destroyed = 0;  // had packets evicted before completing
  };

  using FrameCallback = std::function<void(GatheredFrame&&)>;

  PacketBuffer(Config config, FrameCallback on_frame);

  // Inserts a media/PPS/SPS packet (FEC-recovered and RTX packets enter here
  // too, already converted to their original form). Takes the packet by
  // value: callers on the hot receive path move it in.
  void Insert(RtpPacket packet, Timestamp arrival, PathId path);

  // Frame-buffer instruction: drop all packets belonging to frames of
  // `stream` with frame_id <= `upto` (missing/purged frames, §2.1).
  void PurgeFramesUpTo(int stream_id, int64_t upto);

  // True if the (unwrapped) sequence number is present.
  bool Has(uint32_t ssrc, int64_t unwrapped_seq) const;

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    RtpPacket packet;
    Timestamp arrival;
    PathId path;
    int64_t insert_order;
  };

  struct FrameProgress {
    std::optional<int64_t> first_seq;  // unwrapped seq with first_in_frame
    std::optional<int64_t> last_seq;   // unwrapped seq with marker
    bool destroyed = false;
  };

  void TryAssemble(uint32_t ssrc, int stream_id, int64_t frame_id);
  void EvictOldest();

  Config config_;
  FrameCallback on_frame_;
  Stats stats_;
  int64_t next_insert_order_ = 0;

  // Declared before the containers: they return nodes into it on
  // destruction.
  PoolArena own_arena_;
  // Key: (ssrc, unwrapped seq).
  ArenaMap<std::pair<uint32_t, int64_t>, Entry> entries_;
  ArenaMap<uint32_t, SeqUnwrapper> unwrappers_;
  // Key: (stream, frame).
  ArenaMap<std::pair<int, int64_t>, FrameProgress> frames_;
};

}  // namespace converge
