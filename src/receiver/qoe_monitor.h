// The Converge video QoE feedback module (§4.2).
//
// Watches the frame construction process: per gathered frame it classifies
// each path's packets as early or late relative to the reference (fast)
// path, and tracks the inter-frame delay (IFD) against the expected value
// IFD_exp = 1 / announced-frame-rate. When IFD exceeds IFD_exp the monitor
// emits QoE feedback naming the offending path, the early/late packet count
// alpha, and the frame construction delay (FCD) — the exact triple the
// paper's Figure 8 walks through.
#pragma once

#include <functional>
#include <map>

#include "receiver/packet_buffer.h"
#include "rtp/rtcp.h"
#include "util/stats.h"

namespace converge {

class QoeMonitor {
 public:
  struct Config {
    double ifd_tolerance = 1.5;  // trigger at IFD > tolerance * IFD_exp
    // FCD is the other QoE parameter of §4.2: gathering a frame for longer
    // than this many frame intervals is deterioration even when frame
    // *completions* stay pipelined at IFD_exp (a constantly-late path).
    double fcd_tolerance = 2.0;
    int consecutive_breaches = 2;  // sustained breach before negative fb
    // A packet is "late" only when it extended the gathering delay
    // meaningfully past the reference path's completion.
    Duration late_margin = Duration::Millis(8);
    Duration early_margin = Duration::Millis(10);
    Duration min_feedback_interval = Duration::Millis(50);
    Duration positive_interval = Duration::Millis(500);
    int window_frames = 10;  // accumulation window for late/early counts
    int max_positive_alpha = 3;
  };

  struct Stats {
    int64_t negative_feedback = 0;
    int64_t positive_feedback = 0;
  };

  using FeedbackFn = std::function<void(const QoeFeedback&)>;

  QoeMonitor(EventLoop* loop, Config config, FeedbackFn send);

  // From the sender's SDES frame-rate message.
  void SetExpectedFps(double fps);

  // Every frame leaving the packet buffer, with its arrival history.
  void OnFrameGathered(const GatheredFrame& frame);

  // Every frame entering the frame buffer, with the measured IFD.
  void OnFrameInserted(Duration ifd);

  Duration expected_ifd() const { return ifd_exp_; }
  Duration last_fcd() const { return last_fcd_; }
  Duration last_ifd() const { return last_ifd_; }
  const Stats& stats() const { return stats_; }

 private:
  struct PathWindow {
    int64_t late = 0;
    int64_t early = 0;
    int64_t packets = 0;
  };

  void MaybeSendNegative();
  void MaybeSendPositive();
  void DecayWindows();

  EventLoop* loop_;
  Config config_;
  FeedbackFn send_;
  Stats stats_;

  Duration ifd_exp_ = Duration::Millis(33);
  Duration last_fcd_ = Duration::Zero();
  Duration last_ifd_ = Duration::Zero();
  int breach_streak_ = 0;
  int fcd_breach_streak_ = 0;
  int frames_in_window_ = 0;
  std::map<PathId, PathWindow> windows_;
  Timestamp last_feedback_ = Timestamp::MinusInfinity();
  Timestamp last_positive_ = Timestamp::MinusInfinity();
};

}  // namespace converge
