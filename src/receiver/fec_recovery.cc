#include "receiver/fec_recovery.h"

#include <utility>

namespace converge {
namespace {
constexpr size_t kMaxSeen = 4096;
constexpr size_t kMaxPending = 256;
constexpr int64_t kPendingMaxAge = 512;  // in media-packet ticks
}  // namespace

FecRecoverer::FecRecoverer(RecoveredCallback on_recovered, PoolArena* arena)
    : on_recovered_(std::move(on_recovered)),
      seen_(arena != nullptr ? arena : &own_arena_),
      pending_(arena != nullptr ? arena : &own_arena_) {}

void FecRecoverer::OnMediaPacket(const RtpPacket& packet) {
  seen_.insert({packet.ssrc, packet.seq});
  while (seen_.size() > kMaxSeen) seen_.erase(seen_.begin());
  ++tick_;

  // A new arrival may complete a pending parity group.
  for (auto it = pending_.begin(); it != pending_.end();) {
    bool relevant = false;
    if (it->packet.fec && it->packet.ssrc == packet.ssrc) {
      for (const ProtectedPacketMeta& meta : it->packet.fec->covered) {
        if (meta.seq == packet.seq) {
          relevant = true;
          break;
        }
      }
    }
    if (relevant && TryRecover(it->packet)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  Sweep();
}

void FecRecoverer::OnFecPacket(const RtpPacket& packet) {
  ++stats_.fec_received;
  ++tick_;
  if (!TryRecover(packet)) {
    pending_.push_back(PendingFec{packet, tick_});
    while (pending_.size() > kMaxPending) pending_.pop_front();
  }
  Sweep();
}

bool FecRecoverer::TryRecover(const RtpPacket& fec) {
  if (!fec.fec) return true;  // malformed parity: nothing recoverable
  int missing = 0;
  const ProtectedPacketMeta* missing_meta = nullptr;
  for (const ProtectedPacketMeta& meta : fec.fec->covered) {
    if (!seen_.count({fec.ssrc, meta.seq})) {
      ++missing;
      missing_meta = &meta;
    }
  }
  if (missing == 0) return true;  // nothing to do; parity spent
  if (missing > 1) return false;  // XOR cannot rebuild two losses

  RtpPacket recovered = PacketFromMeta(*missing_meta, fec.ssrc);
  recovered.via_fec = true;
  seen_.insert({recovered.ssrc, recovered.seq});
  ++stats_.fec_used;
  ++stats_.packets_recovered;
  on_recovered_(std::move(recovered));
  return true;
}

void FecRecoverer::Sweep() {
  while (!pending_.empty() && tick_ - pending_.front().age > kPendingMaxAge) {
    pending_.pop_front();
  }
}

}  // namespace converge
