// Receiver-side XOR FEC recovery.
//
// Tracks received media packets and pending parity packets; whenever a
// parity group has exactly one covered packet missing, that packet is
// rebuilt and handed back to the caller. Also reports the utilization
// statistics the paper evaluates (fraction of received FEC that actually
// repaired something, Figures 3c/12).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fec/xor_fec.h"
#include "rtp/rtp_packet.h"
#include "util/arena.h"

namespace converge {

class FecRecoverer {
 public:
  struct Stats {
    int64_t fec_received = 0;
    int64_t fec_used = 0;        // parity packets that repaired a loss
    int64_t packets_recovered = 0;
  };

  // Recovered packets are delivered through this callback (marked via_fec).
  // By value: the freshly rebuilt packet is moved out to the caller.
  using RecoveredCallback = std::function<void(RtpPacket)>;

  // `arena` backs the seen-set / pending-list nodes; null => private arena.
  explicit FecRecoverer(RecoveredCallback on_recovered,
                        PoolArena* arena = nullptr);

  // Media path: remember the sequence and re-check pending parity packets.
  void OnMediaPacket(const RtpPacket& packet);
  // Parity path: attempt recovery now, else park the parity packet.
  void OnFecPacket(const RtpPacket& packet);

  const Stats& stats() const { return stats_; }
  size_t pending() const { return pending_.size(); }

 private:
  struct PendingFec {
    RtpPacket packet;
    int64_t age = 0;
  };

  // Returns true if the parity packet is now spent (recovered or complete).
  bool TryRecover(const RtpPacket& fec);
  void Sweep();

  RecoveredCallback on_recovered_;
  Stats stats_;
  PoolArena own_arena_;  // declared before the containers: destruction order
  ArenaSet<std::pair<uint32_t, uint16_t>> seen_;  // (ssrc, seq), bounded
  ArenaList<PendingFec> pending_;
  int64_t tick_ = 0;
};

}  // namespace converge
