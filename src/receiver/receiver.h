// Per-stream receive pipeline: FEC recovery -> packet buffer -> frame buffer
// -> decoder, with NACK generation and the Converge QoE monitor attached.
// One instance per camera stream (SSRC); the session-level endpoint owns the
// per-path RTCP machinery and feeds packets in.
#pragma once

#include <functional>
#include <memory>

#include "receiver/fec_recovery.h"
#include "receiver/frame_buffer.h"
#include "receiver/packet_buffer.h"
#include "receiver/qoe_monitor.h"
#include "rtp/rtcp.h"
#include "video/decoder.h"

namespace converge {

class VideoReceiveStream {
 public:
  struct Config {
    uint32_t ssrc = 0;
    int stream_id = 0;
    PacketBuffer::Config packet_buffer;
    FrameBuffer::Config frame_buffer;
    QoeMonitor::Config qoe;
    Decoder::Config decoder;
    Duration min_keyframe_request_interval = Duration::Millis(1000);
    bool enable_qoe_feedback = true;  // Converge on; baselines off
    // Shared node arena for the stream's buffers and FEC history; flows into
    // packet_buffer/frame_buffer configs unless those carry their own.
    // Null => each component keeps a private arena.
    PoolArena* arena = nullptr;
  };

  // NACK generation lives at the endpoint (it operates on per-path
  // sequence spaces shared by all streams); the stream only raises
  // keyframe requests, QoE feedback, and decoded frames.
  struct Callbacks {
    std::function<void(uint32_t ssrc)> send_keyframe_request;
    std::function<void(const QoeFeedback&)> send_qoe_feedback;
    std::function<void(const DecodedFrame&)> on_decoded;
  };

  struct Stats {
    int64_t packets_received = 0;
    int64_t keyframe_requests = 0;
    // Frames lost at the receiver: skipped by the frame buffer, destroyed in
    // the packet buffer, or undecodable at the decoder.
    int64_t FrameDrops() const {
      return frame_buffer_dropped + packet_buffer_destroyed + decode_failures;
    }
    int64_t frame_buffer_dropped = 0;
    int64_t packet_buffer_destroyed = 0;
    int64_t decode_failures = 0;
    int64_t frames_decoded = 0;
  };

  VideoReceiveStream(EventLoop* loop, Config config, Callbacks callbacks);

  // Entry point for every RTP packet of this SSRC (any path, any kind).
  // By value: the packet is moved through to the packet buffer.
  void OnRtpPacket(RtpPacket packet, Timestamp arrival, PathId path);

  // Sender announcements.
  void OnSdesFrameRate(double fps) { qoe_monitor_.SetExpectedFps(fps); }

  Stats GetStats() const;
  const FecRecoverer& fec() const { return fec_; }
  const QoeMonitor& qoe() const { return qoe_monitor_; }
  const PacketBuffer& packet_buffer() const { return packet_buffer_; }
  const FrameBuffer& frame_buffer() const { return frame_buffer_; }

 private:
  void OnMediaLikePacket(RtpPacket packet, Timestamp arrival, PathId path);
  void RequestKeyframe();

  EventLoop* loop_;
  Config config_;
  Callbacks callbacks_;

  FecRecoverer fec_;
  PacketBuffer packet_buffer_;
  FrameBuffer frame_buffer_;
  QoeMonitor qoe_monitor_;
  Decoder decoder_;

  int64_t packets_received_ = 0;
  int64_t keyframe_requests_ = 0;
  Timestamp last_keyframe_request_ = Timestamp::MinusInfinity();
  // Arrival context while a packet traverses the recovery path.
  Timestamp current_arrival_;
  PathId current_path_ = kInvalidPathId;
};

}  // namespace converge
