// NACK generation over per-path sequence spaces.
//
// With multipath, gaps in the per-SSRC media sequence space are usually NOT
// loss — they are packets still in flight on another path. Converge's RTP
// extension gives every packet a per-path sequence number (mp_seq, Appendix
// B), and within a path delivery is FIFO, so a gap in a path's mp_seq space
// IS loss. NACKs therefore name (path, mp_seq) pairs; the sender maps them
// back to the original packets (§5 "we utilized the original sequence
// numbers to order packets").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/path.h"
#include "rtp/rtp_packet.h"
#include "rtp/sequence_number.h"
#include "sim/event_loop.h"
#include "util/arena.h"

namespace converge {

class NackGenerator {
 public:
  struct Config {
    // Per-path delivery is FIFO, so a gap is loss with near certainty —
    // only a token grace period is needed.
    Duration reorder_grace = Duration::Millis(5);
    Duration retry_interval = Duration::Millis(60);
    int max_retries = 5;
    // A burst loss of hundreds of packets is a path collapse, not something
    // retransmission can fix: bound the chase list and expire entries older
    // than the frame buffer would wait anyway.
    size_t max_outstanding_per_path = 64;
    Duration max_age = Duration::Millis(450);
    // Node storage for the chase lists; null => private arena.
    PoolArena* arena = nullptr;
  };

  struct Stats {
    int64_t nacks_sent = 0;      // individual sequence numbers requested
    int64_t recovered = 0;       // requested packets that later arrived
    int64_t abandoned = 0;
  };

  // Emits (flow, missing seqs). A flow is a path id in Converge's per-path
  // mode, or an SSRC in legacy mode (see receiver_endpoint.h).
  using SendNackFn =
      std::function<void(int64_t flow, const std::vector<uint16_t>& seqs)>;

  NackGenerator(EventLoop* loop, Config config, SendNackFn send);
  ~NackGenerator();

  // Feed every packet of the flow (any kind).
  void OnPacket(int64_t flow, uint16_t seq);

  // A retransmission plugged the hole at (flow, seq) — stop chasing it.
  void OnRecovered(int64_t flow, uint16_t seq);

  const Stats& stats() const { return stats_; }
  size_t outstanding() const;

 private:
  // The wire sequence is derived from the unwrapped map key when a NACK is
  // built (key & 0xFFFF). Storing a truncated copy alongside the key invites
  // aliasing: two keys 65536 apart carry the same 16-bit seq, and a
  // recovery for one could credit the other.
  struct Missing {
    Timestamp first_detected;
    Timestamp next_send;
    int retries = 0;
  };
  struct FlowState {
    explicit FlowState(PoolArena* arena) : missing(arena) {}
    SeqUnwrapper unwrapper;
    bool initialized = false;
    int64_t highest = 0;
    ArenaMap<int64_t, Missing> missing;  // keyed by unwrapped mp_seq
  };

  void Process();

  EventLoop* loop_;
  Config config_;
  SendNackFn send_;
  Stats stats_;
  PoolArena own_arena_;  // declared before flows_: destruction order
  PoolArena* arena_;
  ArenaMap<int64_t, FlowState> flows_;
  std::unique_ptr<RepeatingTask> task_;
};

}  // namespace converge
