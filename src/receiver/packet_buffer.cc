#include "receiver/packet_buffer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/invariants.h"

namespace converge {

PacketBuffer::PacketBuffer(Config config, FrameCallback on_frame)
    : config_(config),
      on_frame_(std::move(on_frame)),
      entries_(config.arena != nullptr ? config.arena : &own_arena_),
      unwrappers_(config.arena != nullptr ? config.arena : &own_arena_),
      frames_(config.arena != nullptr ? config.arena : &own_arena_) {}

void PacketBuffer::Insert(RtpPacket packet, Timestamp arrival, PathId path) {
  const int64_t useq = unwrappers_[packet.ssrc].Unwrap(packet.seq);
  const auto key = std::make_pair(packet.ssrc, useq);
  if (entries_.count(key)) {
    ++stats_.duplicates;
    return;
  }
  while (entries_.size() >= config_.capacity_packets) EvictOldest();

  ++stats_.inserted;
  const uint32_t ssrc = packet.ssrc;
  const int stream_id = packet.stream_id;
  const int64_t frame_id = packet.frame_id;
  const bool first_in_frame = packet.first_in_frame;
  const bool closes_frame = packet.marker || packet.last_in_frame;
  entries_.emplace(
      key, Entry{std::move(packet), arrival, path, next_insert_order_++});

  FrameProgress& progress = frames_[std::make_pair(stream_id, frame_id)];
  if (first_in_frame) progress.first_seq = useq;
  if (closes_frame) progress.last_seq = useq;
  TryAssemble(ssrc, stream_id, frame_id);

  CONVERGE_INVARIANT(
      "PacketBuffer", arrival, entries_.size() <= config_.capacity_packets,
      "size=" + std::to_string(entries_.size()) +
          " capacity=" + std::to_string(config_.capacity_packets));
  CONVERGE_INVARIANT(
      "PacketBuffer", arrival,
      stats_.inserted >= stats_.evicted + stats_.purged,
      "inserted=" + std::to_string(stats_.inserted) +
          " evicted=" + std::to_string(stats_.evicted) +
          " purged=" + std::to_string(stats_.purged));
}

void PacketBuffer::TryAssemble(uint32_t ssrc, int stream_id,
                               int64_t frame_id) {
  const auto fkey = std::make_pair(stream_id, frame_id);
  auto fit = frames_.find(fkey);
  if (fit == frames_.end()) return;
  FrameProgress& progress = fit->second;
  if (!progress.first_seq || !progress.last_seq || progress.destroyed) return;

  // All sequence numbers in [first, last] must be present.
  std::vector<const Entry*> members;
  for (int64_t s = *progress.first_seq; s <= *progress.last_seq; ++s) {
    auto it = entries_.find(std::make_pair(ssrc, s));
    if (it == entries_.end()) return;  // still gathering
    members.push_back(&it->second);
  }

  GatheredFrame gathered;
  AssembledFrame& frame = gathered.frame;
  const RtpPacket& sample = members.front()->packet;
  frame.stream_id = stream_id;
  frame.frame_id = frame_id;
  frame.gop_id = sample.gop_id;
  frame.kind = sample.frame_kind;
  frame.qp = sample.qp;
  frame.capture_time = sample.capture_time;
  frame.spatial_id = sample.spatial_id;
  frame.temporal_id = sample.temporal_id;
  frame.packets = static_cast<int>(members.size());

  Timestamp first_arrival = Timestamp::PlusInfinity();
  Timestamp last_arrival = Timestamp::MinusInfinity();
  for (const Entry* entry : members) {
    first_arrival = std::min(first_arrival, entry->arrival);
    last_arrival = std::max(last_arrival, entry->arrival);
    frame.size_bytes += entry->packet.payload_bytes;
    if (entry->packet.via_fec) ++frame.recovered_by_fec;
    if (entry->packet.via_rtx) ++frame.recovered_by_rtx;
    gathered.arrivals.push_back(PacketArrivalInfo{
        entry->path, entry->arrival,
        entry->insert_order /*unused placeholder, replaced below*/});
  }
  // Record real unwrapped seqs in arrival info.
  size_t idx = 0;
  for (int64_t s = *progress.first_seq; s <= *progress.last_seq; ++s, ++idx) {
    gathered.arrivals[idx].seq = s;
  }
  frame.first_packet_time = first_arrival;
  frame.complete_time = last_arrival;
  frame.fcd = last_arrival - first_arrival;

  // Frame leaves the packet buffer for the frame buffer.
  for (int64_t s = *progress.first_seq; s <= *progress.last_seq; ++s) {
    entries_.erase(std::make_pair(ssrc, s));
  }
  frames_.erase(fit);
  ++stats_.frames_assembled;
  on_frame_(std::move(gathered));
}

void PacketBuffer::EvictOldest() {
  if (entries_.empty()) return;
  auto oldest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.insert_order < oldest->second.insert_order) oldest = it;
  }
  const RtpPacket& victim = oldest->second.packet;
  auto fit =
      frames_.find(std::make_pair(victim.stream_id, victim.frame_id));
  if (fit != frames_.end() && !fit->second.destroyed) {
    fit->second.destroyed = true;
    ++stats_.frames_destroyed;
  }
  entries_.erase(oldest);
  ++stats_.evicted;
}

void PacketBuffer::PurgeFramesUpTo(int stream_id, int64_t upto) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const RtpPacket& p = it->second.packet;
    if (p.stream_id == stream_id && p.frame_id <= upto) {
      it = entries_.erase(it);
      ++stats_.purged;
    } else {
      ++it;
    }
  }
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->first.first == stream_id && it->first.second <= upto) {
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

bool PacketBuffer::Has(uint32_t ssrc, int64_t unwrapped_seq) const {
  return entries_.count(std::make_pair(ssrc, unwrapped_seq)) > 0;
}

}  // namespace converge
