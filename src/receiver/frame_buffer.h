// The receiver's frame buffer (§2.1): size-limited, orders assembled frames
// and releases them to the decoder in decode order. When the head-of-line
// frame is missing it waits up to `max_wait`; when the wait expires or the
// buffer fills, it jumps forward, counting the skipped frames as drops,
// instructing the packet buffer to purge their packets, and asking for a
// keyframe when the jump breaks the decode dependency chain (§3.1).
#pragma once

#include <functional>
#include <memory>

#include "receiver/packet_buffer.h"
#include "sim/event_loop.h"
#include "util/arena.h"
#include "video/frame.h"

namespace converge {

class FrameBuffer {
 public:
  struct Config {
    size_t capacity_frames = 16;
    Duration max_wait = Duration::Millis(300);  // head-of-line gap patience
    // Node storage for the ordered frame map; null => private arena.
    PoolArena* arena = nullptr;
  };

  struct Stats {
    int64_t frames_inserted = 0;
    int64_t frames_released = 0;
    int64_t frames_dropped = 0;    // skipped over or purged, never decoded
    int64_t keyframe_jumps = 0;    // continuity re-established at a keyframe
  };

  using ReleaseCallback = std::function<void(const AssembledFrame&)>;
  // Asks the sender for a fresh keyframe (PLI).
  using KeyframeRequestCallback = std::function<void()>;
  // Purge instruction toward the packet buffer.
  using PurgeCallback = std::function<void(int stream_id, int64_t upto_frame)>;

  FrameBuffer(EventLoop* loop, Config config, ReleaseCallback on_release,
              KeyframeRequestCallback on_keyframe_request,
              PurgeCallback on_purge);

  void Insert(AssembledFrame frame);

  // The inter-frame delay of the most recent insertion (§4.2 IFD).
  Duration last_ifd() const { return last_ifd_; }

  const Stats& stats() const { return stats_; }
  size_t size() const { return buffer_.size(); }

 private:
  void Release();
  void OnWaitExpired(int64_t waiting_for);
  void JumpForward();

  EventLoop* loop_;
  Config config_;
  ReleaseCallback on_release_;
  KeyframeRequestCallback on_keyframe_request_;
  PurgeCallback on_purge_;
  Stats stats_;

  int stream_id_ = -1;
  PoolArena own_arena_;  // declared before buffer_: destruction order
  ArenaMap<int64_t, AssembledFrame> buffer_;  // keyed by frame_id
  int64_t next_expected_ = 0;
  // Set after a jump restarted at a delta frame: the decode chain is broken,
  // so delta frames are dropped (not released) until a keyframe arrives.
  bool broken_chain_ = false;
  bool waiting_ = false;
  Timestamp last_insert_time_ = Timestamp::MinusInfinity();
  Duration last_ifd_ = Duration::Zero();
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace converge
