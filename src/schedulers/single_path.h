// Legacy single-path WebRTC: every packet rides one fixed path
// (WebRTC-W / WebRTC-T / WebRTC-V in the evaluation).
#pragma once

#include "schedulers/scheduler.h"

namespace converge {

class SinglePathScheduler final : public Scheduler {
 public:
  explicit SinglePathScheduler(PathId path) : path_(path) {}

  std::string name() const override { return "WebRTC"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>&) override {
    return std::vector<PathId>(packets.size(), path_);
  }

  PathId ChooseRtxPath(const RtpPacket&,
                       const std::vector<PathInfo>&) override {
    return path_;
  }
  PathId ChooseFecPath(const RtpPacket&, PathId,
                       const std::vector<PathInfo>&) override {
    return path_;
  }
  bool IsPathActive(PathId id) const override { return id == path_; }

 private:
  PathId path_;
};

}  // namespace converge
