#include "schedulers/path_stats.h"

#include <algorithm>
#include <cmath>

namespace converge {

PathId MinSrttPath(const std::vector<PathInfo>& paths) {
  if (paths.empty()) return kInvalidPathId;
  const PathInfo* best = &paths.front();
  for (const PathInfo& p : paths) {
    if (p.srtt < best->srtt) best = &p;
  }
  return best->id;
}

PathId MinCompletionTimePath(const std::vector<PathInfo>& paths,
                             int num_packets, int64_t packet_bytes) {
  if (paths.empty()) return kInvalidPathId;
  const PathInfo* best = nullptr;
  double best_cpt = 0.0;
  for (const PathInfo& p : paths) {
    const DataRate rate =
        p.goodput.bps() > 0 ? p.goodput : p.allocated_rate;
    const double rate_bps =
        std::max<double>(1000.0, static_cast<double>(rate.bps()));
    const double cpt =
        static_cast<double>(num_packets) * static_cast<double>(packet_bytes) *
            8.0 / rate_bps +
        p.srtt.seconds() / 2.0;
    if (best == nullptr || cpt < best_cpt) {
      best = &p;
      best_cpt = cpt;
    }
  }
  return best->id;
}

DataRate TotalAllocatedRate(const std::vector<PathInfo>& paths) {
  DataRate total = DataRate::Zero();
  for (const PathInfo& p : paths) total += p.allocated_rate;
  return total;
}

std::vector<int> ProportionalSplit(const std::vector<PathInfo>& paths,
                                   int n) {
  std::vector<int> out(paths.size(), 0);
  if (paths.empty() || n <= 0) return out;
  const double total =
      std::max<double>(1.0, static_cast<double>(TotalAllocatedRate(paths).bps()));

  std::vector<std::pair<double, size_t>> remainders;
  int assigned = 0;
  for (size_t i = 0; i < paths.size(); ++i) {
    const double exact =
        static_cast<double>(paths[i].allocated_rate.bps()) / total * n;
    out[i] = static_cast<int>(std::floor(exact));
    assigned += out[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  // Largest remainder first; remainder ties go to the lower PathId so the
  // split is deterministic and stable across the paths' iteration order
  // (a reversed pair-sort would hand ties to the higher index).
  std::sort(remainders.begin(), remainders.end(),
            [&](const std::pair<double, size_t>& a,
                const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return paths[a.second].id < paths[b.second].id;
            });
  for (size_t j = 0; j < remainders.size() && assigned < n; ++j) {
    ++out[remainders[j].second];
    ++assigned;
  }
  return out;
}

const PathInfo* FindPath(const std::vector<PathInfo>& paths, PathId id) {
  for (const PathInfo& p : paths) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

}  // namespace converge
