#include "schedulers/srtt_scheduler.h"

#include <algorithm>

#include "schedulers/path_stats.h"

namespace converge {

std::vector<PathId> SrttScheduler::AssignFrame(
    const std::vector<RtpPacket>& packets,
    const std::vector<PathInfo>& paths) {
  std::vector<PathId> out(packets.size(), kInvalidPathId);
  if (paths.empty()) return out;

  // Track the backlog we add during this frame so spillover kicks in
  // mid-frame, like a transport-level scheduler that fills a cwnd.
  std::vector<int64_t> backlog(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    backlog[i] = paths[i].pacer_queue_bytes;
  }

  for (size_t p = 0; p < packets.size(); ++p) {
    // Effective latency of each path: sRTT/2 plus time to drain the backlog.
    size_t best = 0;
    double best_latency = 0.0;
    for (size_t i = 0; i < paths.size(); ++i) {
      const double rate_bps = std::max<double>(
          1000.0, static_cast<double>(paths[i].allocated_rate.bps()));
      const double drain_s =
          static_cast<double>(backlog[i]) * 8.0 / rate_bps;
      const double latency = paths[i].srtt.seconds() / 2.0 + drain_s;
      if (i == 0 || latency < best_latency) {
        best = i;
        best_latency = latency;
      }
    }
    out[p] = paths[best].id;
    backlog[best] += packets[p].wire_size();
  }
  return out;
}

}  // namespace converge
