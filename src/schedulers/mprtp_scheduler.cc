#include "schedulers/mprtp_scheduler.h"

#include <algorithm>

namespace converge {

MprtpScheduler::MprtpScheduler() : MprtpScheduler(Config{}) {}

MprtpScheduler::MprtpScheduler(Config config) : config_(config) {}

std::vector<PathId> MprtpScheduler::AssignFrame(
    const std::vector<RtpPacket>& packets,
    const std::vector<PathInfo>& paths) {
  std::vector<PathId> out(packets.size(), kInvalidPathId);
  if (paths.empty()) return out;

  // Loss-discounted rate estimate per path, floored at the minimum share so
  // every subflow keeps carrying traffic (per the MPRTP spec).
  std::vector<double> weight(paths.size());
  double total = 0.0;
  for (size_t i = 0; i < paths.size(); ++i) {
    const double rate =
        static_cast<double>(paths[i].allocated_rate.bps());
    weight[i] = std::max(1.0, rate * (1.0 - paths[i].loss));
    total += weight[i];
  }
  const double floor_weight = config_.min_share * total;
  double adjusted_total = 0.0;
  for (double& w : weight) {
    w = std::max(w, floor_weight);
    adjusted_total += w;
  }

  // Stripe packet-by-packet with a rotating start, so consecutive frames
  // interleave differently (MPRTP round-robins subflows).
  std::vector<double> credit(paths.size(), 0.0);
  for (size_t p = 0; p < packets.size(); ++p) {
    for (size_t i = 0; i < paths.size(); ++i) {
      credit[i] += weight[i] / adjusted_total;
    }
    size_t best = (p + rr_offset_) % paths.size();
    for (size_t i = 0; i < paths.size(); ++i) {
      if (credit[i] > credit[best] + 1e-9) best = i;
    }
    credit[best] -= 1.0;
    out[p] = paths[best].id;
  }
  ++rr_offset_;
  return out;
}

}  // namespace converge
