// Multipath packet-scheduler interface shared by the Converge video-aware
// scheduler and the baselines the paper compares against (§2.2, §5):
// SRTT (minRTT, the MPTCP/MPQUIC default), M-TPUT (Musher), M-RTP (MPRTP),
// plus single-path WebRTC and WebRTC-CM (connection migration).
#pragma once

#include <string>
#include <vector>

#include "net/path.h"
#include "rtp/rtcp.h"
#include "rtp/rtp_packet.h"
#include "util/time.h"

namespace converge {

// Per-path state snapshot the sender hands to the scheduler.
struct PathInfo {
  PathId id = kInvalidPathId;
  DataRate allocated_rate;   // S_i from the per-path congestion controller
  Duration srtt = Duration::Millis(100);
  double loss = 0.0;         // smoothed loss estimate
  DataRate goodput;          // measured delivered rate
  int64_t pacer_queue_bytes = 0;
  Duration pacer_queue_delay;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Assigns every packet of one frame to a path. Entries may be
  // kInvalidPathId, meaning "do not send" (used by WebRTC-CM during
  // re-establishment blackouts).
  virtual std::vector<PathId> AssignFrame(
      const std::vector<RtpPacket>& packets,
      const std::vector<PathInfo>& paths) = 0;

  // Path for a retransmitted packet (responding to a NACK).
  virtual PathId ChooseRtxPath(const RtpPacket& packet,
                               const std::vector<PathInfo>& paths);

  // Path for a FEC packet generated to protect media sent on `origin`.
  virtual PathId ChooseFecPath(const RtpPacket& fec, PathId origin,
                               const std::vector<PathInfo>& paths);

  // Receiver QoE feedback (§4.2); only Converge reacts.
  virtual void OnQoeFeedback(const QoeFeedback& feedback) { (void)feedback; }

  // Whether the scheduler currently uses a path (Converge can disable paths;
  // CM uses one at a time).
  virtual bool IsPathActive(PathId id) const {
    (void)id;
    return true;
  }

  // Paths that should receive a duplicated probe packet now (§4.2).
  virtual std::vector<PathId> PathsNeedingProbe(Timestamp now) {
    (void)now;
    return {};
  }

  // Periodic maintenance (failure detection, path re-enablement).
  virtual void OnTick(const std::vector<PathInfo>& paths, Timestamp now) {
    (void)paths;
    (void)now;
  }
};

}  // namespace converge
