// WebRTC-CM: single-path WebRTC with connection migration (§6). Uses one
// path at a time; when the active path fails (goodput collapse or heavy
// loss sustained for `failure_window`), it drops the connection and
// re-establishes on the other path. During re-establishment (ICE restart)
// nothing can be sent — packets are blackholed, which is exactly why the
// paper's CM baseline underperforms Converge during handovers.
#pragma once

#include "schedulers/scheduler.h"

namespace converge {

class ConnectionMigrationScheduler final : public Scheduler {
 public:
  struct Config {
    PathId initial_path = 0;
    DataRate failure_goodput = DataRate::KilobitsPerSec(200);
    double failure_loss = 0.35;
    Duration failure_window = Duration::Millis(2000);
    Duration migration_blackout = Duration::Millis(1500);  // ICE restart
    Duration min_dwell = Duration::Millis(5000);  // no ping-pong
  };

  ConnectionMigrationScheduler();
  explicit ConnectionMigrationScheduler(Config config);

  std::string name() const override { return "WebRTC-CM"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override;
  PathId ChooseRtxPath(const RtpPacket&,
                       const std::vector<PathInfo>&) override;
  PathId ChooseFecPath(const RtpPacket&, PathId,
                       const std::vector<PathInfo>&) override;
  bool IsPathActive(PathId id) const override;
  void OnTick(const std::vector<PathInfo>& paths, Timestamp now) override;

  PathId current_path() const { return current_; }
  bool migrating() const { return migrating_; }
  int64_t migrations() const { return migrations_; }

 private:
  bool InBlackout(Timestamp now) const;

  Config config_;
  PathId current_;
  bool migrating_ = false;
  Timestamp blackout_until_ = Timestamp::MinusInfinity();
  Timestamp unhealthy_since_ = Timestamp::MinusInfinity();
  Timestamp last_migration_ = Timestamp::MinusInfinity();
  Timestamp now_ = Timestamp::Zero();
  int64_t migrations_ = 0;
};

}  // namespace converge
