// Shared helpers over PathInfo snapshots.
#pragma once

#include <vector>

#include "schedulers/scheduler.h"

namespace converge {

// Path with minimum smoothed RTT.
PathId MinSrttPath(const std::vector<PathInfo>& paths);

// Algorithm 1: path with minimum completion time for N packets of size k:
//   cpt_i = N * k / rate_i + rtt_i / 2
// using the measured goodput when available, else the allocated rate.
PathId MinCompletionTimePath(const std::vector<PathInfo>& paths,
                             int num_packets, int64_t packet_bytes);

// Sum of allocated rates.
DataRate TotalAllocatedRate(const std::vector<PathInfo>& paths);

// Proportional split of `n` items by allocated rate (Eq. 1), rounded with
// largest-remainder so the counts always sum to n.
std::vector<int> ProportionalSplit(const std::vector<PathInfo>& paths, int n);

const PathInfo* FindPath(const std::vector<PathInfo>& paths, PathId id);

}  // namespace converge
