// M-RTP: scheduler following the MPRTP specification [71] (§2.2, §5).
// Distributes packets over ALL available paths using a loss-discounted
// sending-rate estimate per path, with a minimum share per path (MPRTP keeps
// every subflow alive to maintain its statistics). No feedback about frame
// construction, no prioritization — the worst performer in Table 1.
#pragma once

#include "schedulers/scheduler.h"

namespace converge {

class MprtpScheduler final : public Scheduler {
 public:
  struct Config {
    double min_share = 0.15;  // every subflow keeps at least this fraction
  };

  MprtpScheduler();
  explicit MprtpScheduler(Config config);

  std::string name() const override { return "M-RTP"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override;

 private:
  Config config_;
  size_t rr_offset_ = 0;  // rotates the striping start across frames
};

}  // namespace converge
