// M-TPUT: the throughput-proportional scheduler from Musher [69] ported to
// WebRTC (§5). Packets of every frame are striped across all paths in
// proportion to each path's measured throughput. Video-unaware.
#pragma once

#include "schedulers/scheduler.h"

namespace converge {

class MtputScheduler final : public Scheduler {
 public:
  std::string name() const override { return "M-TPUT"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override;
};

}  // namespace converge
