#include "schedulers/scheduler.h"

#include "schedulers/path_stats.h"

namespace converge {

// Default RTX/FEC placement for video-unaware baselines: retransmissions go
// to the lowest-RTT path, FEC stays on the path whose media it protects.
PathId Scheduler::ChooseRtxPath(const RtpPacket&,
                                const std::vector<PathInfo>& paths) {
  return MinSrttPath(paths);
}

PathId Scheduler::ChooseFecPath(const RtpPacket&, PathId origin,
                                const std::vector<PathInfo>& paths) {
  if (FindPath(paths, origin) != nullptr) return origin;
  return MinSrttPath(paths);
}

}  // namespace converge
