// ECF: Earliest Completion First (Lim et al., CoNEXT'17), one of the
// heterogeneity-aware MPTCP schedulers the paper cites as prior work on
// head-of-line blocking (§2.2). Like minRTT it prefers the fastest path,
// but when that path is backlogged it only spills to a slower path if
// sending there now genuinely completes earlier than *waiting* for the fast
// path — otherwise it waits (keeps queueing on the fast path). Still
// video-unaware: no frame/packet priorities.
#pragma once

#include "schedulers/scheduler.h"

namespace converge {

class EcfScheduler final : public Scheduler {
 public:
  struct Config {
    // Hysteresis: the slow path must beat waiting by this margin.
    double delta = 0.25;
  };

  EcfScheduler();
  explicit EcfScheduler(Config config);

  std::string name() const override { return "ECF"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override;

 private:
  Config config_;
};

}  // namespace converge
