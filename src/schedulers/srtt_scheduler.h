// SRTT: the minRTT scheduler used by default in MPTCP and MPQUIC (§2.2).
// Every packet goes to the lowest-sRTT path; when that path's pacer backlog
// would delay the packet beyond the next path's RTT advantage, the packet
// spills to the next-best path. Video-unaware: keyframe, PPS/SPS and FEC
// packets are treated like any other payload, which is what breaks frame
// decode ordering under path asymmetry (§2.3).
#pragma once

#include "schedulers/scheduler.h"

namespace converge {

class SrttScheduler final : public Scheduler {
 public:
  std::string name() const override { return "SRTT"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override;
};

}  // namespace converge
