#include "schedulers/connection_migration.h"

#include "schedulers/path_stats.h"

namespace converge {

ConnectionMigrationScheduler::ConnectionMigrationScheduler()
    : ConnectionMigrationScheduler(Config{}) {}

ConnectionMigrationScheduler::ConnectionMigrationScheduler(Config config)
    : config_(config), current_(config.initial_path) {}

bool ConnectionMigrationScheduler::InBlackout(Timestamp now) const {
  return migrating_ && now < blackout_until_;
}

std::vector<PathId> ConnectionMigrationScheduler::AssignFrame(
    const std::vector<RtpPacket>& packets,
    const std::vector<PathInfo>& paths) {
  (void)paths;
  // During ICE restart nothing can be delivered: blackhole the frame.
  const PathId target = InBlackout(now_) ? kInvalidPathId : current_;
  return std::vector<PathId>(packets.size(), target);
}

PathId ConnectionMigrationScheduler::ChooseRtxPath(
    const RtpPacket&, const std::vector<PathInfo>&) {
  return InBlackout(now_) ? kInvalidPathId : current_;
}

PathId ConnectionMigrationScheduler::ChooseFecPath(
    const RtpPacket&, PathId, const std::vector<PathInfo>&) {
  return InBlackout(now_) ? kInvalidPathId : current_;
}

bool ConnectionMigrationScheduler::IsPathActive(PathId id) const {
  return id == current_ && !migrating_;
}

void ConnectionMigrationScheduler::OnTick(const std::vector<PathInfo>& paths,
                                          Timestamp now) {
  now_ = now;
  if (migrating_ && now >= blackout_until_) migrating_ = false;
  if (migrating_) return;

  const PathInfo* active = FindPath(paths, current_);
  if (active == nullptr) return;

  const bool unhealthy = active->goodput < config_.failure_goodput ||
                         active->loss > config_.failure_loss;
  if (!unhealthy) {
    unhealthy_since_ = Timestamp::MinusInfinity();
    return;
  }
  if (!unhealthy_since_.IsFinite()) {
    unhealthy_since_ = now;
    return;
  }
  const bool sustained = now - unhealthy_since_ >= config_.failure_window;
  const bool dwell_ok = !last_migration_.IsFinite() ||
                        now - last_migration_ >= config_.min_dwell;
  if (!sustained || !dwell_ok) return;

  // Migrate to the best other path (highest goodput).
  const PathInfo* best = nullptr;
  for (const PathInfo& p : paths) {
    if (p.id == current_) continue;
    if (best == nullptr || p.goodput > best->goodput) best = &p;
  }
  if (best == nullptr) return;

  current_ = best->id;
  migrating_ = true;
  blackout_until_ = now + config_.migration_blackout;
  last_migration_ = now;
  unhealthy_since_ = Timestamp::MinusInfinity();
  ++migrations_;
}

}  // namespace converge
