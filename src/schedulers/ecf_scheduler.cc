#include "schedulers/ecf_scheduler.h"

#include <algorithm>

namespace converge {

EcfScheduler::EcfScheduler() : EcfScheduler(Config{}) {}

EcfScheduler::EcfScheduler(Config config) : config_(config) {}

std::vector<PathId> EcfScheduler::AssignFrame(
    const std::vector<RtpPacket>& packets,
    const std::vector<PathInfo>& paths) {
  std::vector<PathId> out(packets.size(), kInvalidPathId);
  if (paths.empty()) return out;

  // Fastest path by sRTT; the alternative is the next-fastest.
  size_t fast = 0;
  for (size_t i = 1; i < paths.size(); ++i) {
    if (paths[i].srtt < paths[fast].srtt) fast = i;
  }

  std::vector<int64_t> backlog(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    backlog[i] = paths[i].pacer_queue_bytes;
  }
  auto rate_bps = [&](size_t i) {
    return std::max<double>(1000.0,
                            static_cast<double>(paths[i].allocated_rate.bps()));
  };

  for (size_t p = 0; p < packets.size(); ++p) {
    // Time if we keep queueing on the fast path (ECF's "wait" option).
    const double t_wait = paths[fast].srtt.seconds() / 2.0 +
                          static_cast<double>(backlog[fast]) * 8.0 /
                              rate_bps(fast);
    // Best immediate completion on any other path.
    size_t alt = fast;
    double t_alt = 0.0;
    for (size_t i = 0; i < paths.size(); ++i) {
      if (i == fast) continue;
      const double t = paths[i].srtt.seconds() / 2.0 +
                       static_cast<double>(backlog[i]) * 8.0 / rate_bps(i);
      if (alt == fast || t < t_alt) {
        alt = i;
        t_alt = t;
      }
    }
    size_t chosen = fast;
    if (alt != fast && t_alt * (1.0 + config_.delta) < t_wait) {
      chosen = alt;  // spilling genuinely completes earlier than waiting
    }
    out[p] = paths[chosen].id;
    backlog[chosen] += packets[p].wire_size();
  }
  return out;
}

}  // namespace converge
