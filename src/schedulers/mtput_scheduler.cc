#include "schedulers/mtput_scheduler.h"

#include <algorithm>
#include <cmath>

namespace converge {

std::vector<PathId> MtputScheduler::AssignFrame(
    const std::vector<RtpPacket>& packets,
    const std::vector<PathInfo>& paths) {
  std::vector<PathId> out(packets.size(), kInvalidPathId);
  if (paths.empty()) return out;

  // Weights: measured goodput (fall back to allocated rate before the first
  // throughput samples exist).
  std::vector<double> weight(paths.size());
  double total = 0.0;
  for (size_t i = 0; i < paths.size(); ++i) {
    weight[i] = static_cast<double>(
        paths[i].goodput.bps() > 0 ? paths[i].goodput.bps()
                                   : paths[i].allocated_rate.bps());
    weight[i] = std::max(weight[i], 1.0);
    total += weight[i];
  }

  // Weighted striping: packet p goes to the path whose cumulative weight
  // bucket contains it (interleaves paths within the frame, as a
  // transport-level throughput scheduler does).
  std::vector<double> credit(paths.size(), 0.0);
  for (size_t p = 0; p < packets.size(); ++p) {
    for (size_t i = 0; i < paths.size(); ++i) {
      credit[i] += weight[i] / total;
    }
    size_t best = 0;
    for (size_t i = 1; i < paths.size(); ++i) {
      if (credit[i] > credit[best]) best = i;
    }
    credit[best] -= 1.0;
    out[p] = paths[best].id;
  }
  return out;
}

}  // namespace converge
