// Deterministic fault injection for links.
//
// FaultInjector evaluates a FaultPlan packet by packet: given the current
// sim time (and a seeded RNG for the stochastic events — burst loss, jitter
// draws, duplication), it decides what happens to a packet at ingress and at
// delivery. FaultyLink is a Link decorator that applies those decisions to
// any traffic crossing it; Path/Network construct it transparently via
// MakeLink() whenever a Link::Config carries a non-empty plan, so senders,
// pacers and schedulers never know faults exist.
//
// Outage semantics (pinned; regression-tested): packets offered during an
// outage window are lost at ingress. Packets already in service or in
// flight whose delivery falls inside a window follow the event's
// InFlightPolicy — kDrop (default) loses them, kDelayToEnd parks them until
// the window closes. Without this, a link entering an outage would keep
// delivering pre-outage packets at their original timestamps.
#pragma once

#include <memory>

#include "net/fault_plan.h"
#include "net/link.h"
#include "sim/event_loop.h"
#include "util/random.h"

namespace converge {

class FaultInjector {
 public:
  // Ingress-time decision for one packet.
  struct SendDecision {
    bool drop = false;       // outage / handover burst loss at ingress
    Duration extra_delay;    // reorder/jitter delay drawn for this packet
    int copies = 1;          // 2 => deliver the packet twice (duplication)
  };

  // Delivery-time decision (outage windows swallowing in-flight packets).
  struct DeliveryAction {
    bool drop = false;
    bool delay = false;
    Timestamp deliver_at;  // valid when `delay`
  };

  struct Stats {
    int64_t outage_send_drops = 0;
    int64_t burst_loss_drops = 0;
    int64_t inflight_outage_drops = 0;
    int64_t inflight_outage_delays = 0;
    int64_t jittered_packets = 0;
    int64_t duplicated_packets = 0;
  };

  FaultInjector(FaultPlan plan, Random rng);

  // Decides the fate of a packet offered at `now`. Consumes RNG only inside
  // active stochastic windows, so runs without active faults draw nothing
  // and plans replay identically for identical traffic.
  SendDecision OnSend(Timestamp now);

  // Duplication draw for the *next* packet (consumed by Link::SendCopies —
  // callers clone the payload, the injector only decides). Kept separate
  // from OnSend so byte-level sends and payload-level duplication stay
  // independently deterministic.
  int DrawCopies(Timestamp now);

  // Evaluates the outage policy for a packet arriving at `arrival`
  // (after any jitter). Chained outage windows are followed until the
  // delivery time escapes them all or a kDrop window swallows the packet.
  DeliveryAction OnDelivery(Timestamp arrival);

  // True while an outage window could still affect in-flight packets —
  // FaultyLink only pays for delivery wrapping (heap-spilled callbacks)
  // until the last outage has passed.
  bool OutagePending(Timestamp now) const {
    return plan_.LastOutageEnd().IsFinite() && now < plan_.LastOutageEnd();
  }

  double CapacityScale(Timestamp t) const { return plan_.CapacityScaleAt(t); }
  Duration DelayStep(Timestamp t) const { return plan_.DelayStepAt(t); }

  const FaultPlan& plan() const { return plan_; }
  const Stats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  Random rng_;
  Stats stats_;
};

// Link decorator applying a FaultPlan. Capacity (rate cliffs), propagation
// delay (handover RTT steps) and ingress/delivery packet fates are all
// overridden; the underlying queueing/service/loss model is inherited.
class FaultyLink final : public Link {
 public:
  FaultyLink(EventLoop* loop, Config config, Random rng);

  void Send(int64_t bytes, DeliverFn on_deliver,
            DropFn on_drop = nullptr) override;
  int SendCopies() override;
  DataRate CapacityNow() const override;
  Duration PropDelayNow() const override;

  const FaultInjector& injector() const { return injector_; }

 private:
  FaultInjector injector_;
};

// Factory used by Path: a plain Link for an empty plan, a FaultyLink
// otherwise. This is the single seam through which the fault subsystem
// enters the network stack.
std::unique_ptr<Link> MakeLink(EventLoop* loop, Link::Config config,
                               Random rng);

}  // namespace converge
