#include "net/link.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace converge {
namespace {
// Floor on the instantaneous service rate: an outage makes transmission very
// slow (forcing queue drops) rather than dividing by zero.
constexpr int64_t kMinServiceBps = 10'000;
}  // namespace

Link::Link(EventLoop* loop, Config config, Random rng)
    : loop_(loop), config_(std::move(config)), rng_(rng) {}

int64_t Link::QueueLimitBytes() const {
  const int64_t delay_based =
      CapacityNow().BytesIn(config_.max_queue_delay);
  return std::max(config_.min_queue_bytes, delay_based);
}

void Link::Send(int64_t bytes, DeliverFn on_deliver, DropFn on_drop) {
  ++stats_.packets_sent;
  if (queued_bytes_ + bytes > QueueLimitBytes()) {
    ++stats_.packets_queue_dropped;
    if (on_drop) on_drop(/*queue_drop=*/true);
    return;
  }
  queue_.push_back(Pending{bytes, std::move(on_deliver), std::move(on_drop)});
  queued_bytes_ += bytes;
  if (!busy_) StartTransmission();
}

void Link::StartTransmission() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // The packet in service stays at the queue head until its service time
  // elapses, so the completion event captures only `this` — no callback or
  // packet state is dragged through the event loop per transmission.
  const int64_t rate_bps =
      std::max<int64_t>(kMinServiceBps, CapacityNow().bps());
  const Duration tx =
      DataRate::BitsPerSec(rate_bps).TransmitTime(queue_.front().bytes);
  loop_->ScheduleIn(tx, [this] { FinishTransmission(); });
}

void Link::FinishTransmission() {
  // Work on the head slot in place; pop_front (which resets the slot and
  // destroys whatever we did not move out) runs before rescheduling.
  Pending& pkt = queue_.front();
  queued_bytes_ -= pkt.bytes;
  const bool lost =
      config_.loss != nullptr && config_.loss->ShouldDrop(loop_->now(), rng_);
  if (lost) {
    ++stats_.packets_lost;
    DropFn on_drop = std::move(pkt.on_drop);
    queue_.pop_front();
    if (on_drop) on_drop(/*queue_drop=*/false);
  } else {
    ++stats_.packets_delivered;
    stats_.bytes_delivered += pkt.bytes;
    const Timestamp arrival = loop_->now() + PropDelayNow();
    uint32_t slot;
    if (!deliver_free_.empty()) {
      slot = deliver_free_.back();
      deliver_free_.pop_back();
      deliver_slots_[slot] = std::move(pkt.on_deliver);
    } else {
      slot = static_cast<uint32_t>(deliver_slots_.size());
      deliver_slots_.push_back(std::move(pkt.on_deliver));
    }
    queue_.pop_front();
    inflight_.push_back(Arrival{arrival, inflight_seq_++, slot});
    std::push_heap(inflight_.begin(), inflight_.end(), std::greater<>{});
    loop_->ScheduleAt(arrival, [this] { DeliverNext(); });
  }
  StartTransmission();
}

void Link::DeliverNext() {
  std::pop_heap(inflight_.begin(), inflight_.end(), std::greater<>{});
  const Arrival arrival = inflight_.back();
  inflight_.pop_back();
  DeliverFn deliver = std::move(deliver_slots_[arrival.slot]);
  deliver_slots_[arrival.slot] = nullptr;
  deliver_free_.push_back(arrival.slot);
  deliver(arrival.at);
}

}  // namespace converge
