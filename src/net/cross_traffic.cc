#include "net/cross_traffic.h"

#include <algorithm>

#include "net/link.h"
#include "util/trace_recorder.h"

namespace converge {

namespace {
constexpr double kMinCwnd = 2.0;
// Pacing bounds: the floor caps a single flow at mss / 200µs (= 48 Mbps at
// 1200 B), far above any bottleneck the suite models; the ceiling keeps an
// idle-window flow polling often enough to refill promptly after a decrease.
constexpr int64_t kMinPaceUs = 200;
constexpr int64_t kMaxPaceUs = 50'000;
}  // namespace

const char* CrossTrafficKindName(CrossTrafficKind kind) {
  switch (kind) {
    case CrossTrafficKind::kTcp:
      return "tcp";
    case CrossTrafficKind::kQuic:
      return "quic";
  }
  return "?";
}

CrossTrafficSource::CrossTrafficSource(EventLoop* loop, Link* link, int path,
                                       CrossTrafficSpec spec)
    : loop_(loop),
      link_(link),
      path_(path),
      spec_(std::move(spec)),
      cwnd_(std::max(kMinCwnd, spec_.initial_cwnd)),
      ssthresh_(spec_.ssthresh),
      srtt_(spec_.ack_delay + Duration::Millis(20)) {
  loop_->ScheduleAt(spec_.start, [this] { OnTimer(); });
}

const CrossTrafficSource::Stats& CrossTrafficSource::stats() const {
  stats_.final_cwnd = cwnd_;
  return stats_;
}

double CrossTrafficSource::ThroughputMbps(Timestamp call_end) const {
  const Timestamp begin = spec_.start;
  const Timestamp end = std::min(spec_.stop, call_end);
  const double seconds = std::max(1e-9, (end - begin).seconds());
  return static_cast<double>(stats_.bytes_delivered) * 8.0 / seconds / 1e6;
}

Duration CrossTrafficSource::PacingInterval() const {
  // One window of segments per smoothed RTT.
  const double interval_us =
      static_cast<double>(srtt_.us()) / std::max(1.0, cwnd_);
  return Duration::Micros(std::clamp(static_cast<int64_t>(interval_us),
                                     kMinPaceUs, kMaxPaceUs));
}

void CrossTrafficSource::Arm() {
  loop_->ScheduleIn(PacingInterval(), [this] { OnTimer(); });
}

void CrossTrafficSource::OnTimer() {
  const Timestamp now = loop_->now();
  if (now >= spec_.stop) return;  // flow over; no re-arm, no new segments
  if (static_cast<double>(inflight_) < cwnd_) SendSegment();
  Arm();
}

void CrossTrafficSource::SendSegment() {
  const Timestamp sent_at = loop_->now();
  ++stats_.packets_sent;
  ++inflight_;
  last_send_ = sent_at;
  link_->Send(
      spec_.mss_bytes,
      [this, sent_at](Timestamp arrival) {
        // Data reached the far end; the ACK crosses back off-link.
        loop_->ScheduleAt(arrival + spec_.ack_delay, [this, sent_at] {
          const Duration sample = loop_->now() - sent_at;
          srtt_ = Duration::Micros((srtt_.us() * 7 + sample.us()) / 8);
          OnAck();
        });
      },
      [this](bool /*queue_full*/) { OnLoss(); });
}

void CrossTrafficSource::OnAck() {
  inflight_ = std::max<int64_t>(0, inflight_ - 1);
  ++stats_.packets_delivered;
  stats_.bytes_delivered += spec_.mss_bytes;
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start: double per RTT
  } else {
    // Additive increase per ACK; the QUIC-like profile probes harder.
    const double gain = spec_.kind == CrossTrafficKind::kQuic ? 1.5 : 1.0;
    cwnd_ += gain / std::max(1.0, cwnd_);
  }
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    if (stats_.packets_delivered % 32 == 0) {
      trace->Counter("xtraffic", "cwnd_segments", loop_->now(), cwnd_, path_);
    }
  }
}

void CrossTrafficSource::OnLoss() {
  inflight_ = std::max<int64_t>(0, inflight_ - 1);
  ++stats_.packets_dropped;
  const Timestamp now = loop_->now();
  if (now < recovery_until_) return;  // one decrease per RTT round
  const double beta = spec_.kind == CrossTrafficKind::kQuic ? 0.7 : 0.5;
  ssthresh_ = std::max(kMinCwnd, cwnd_ * beta);
  cwnd_ = ssthresh_;
  recovery_until_ = now + srtt_;
  ++stats_.loss_events;
  if (TraceRecorder* trace = TraceRecorder::Current()) {
    trace->Instant("xtraffic", "loss_event", now, cwnd_, path_);
    trace->Counter("xtraffic", "cwnd_segments", now, cwnd_, path_);
  }
}

}  // namespace converge
