// A bidirectional network path between the two conference endpoints: a data
// link (sender -> receiver) and a feedback link (receiver -> sender), plus an
// identifier carried in the Converge RTP/RTCP multipath extensions.
//
// Links are held behind the Link interface so a Config carrying a FaultPlan
// transparently yields a FaultyLink (net/fault_injector.h) — callers always
// talk to `Link&` and never see the difference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/link.h"

namespace converge {

using PathId = int32_t;
inline constexpr PathId kInvalidPathId = -1;

class Path {
 public:
  struct Config {
    PathId id = 0;
    std::string name;  // e.g. "T-Mobile", "Verizon", "WiFi"
    Link::Config forward;   // data direction
    Link::Config backward;  // feedback direction
  };

  Path(EventLoop* loop, Config config, Random rng);

  PathId id() const { return id_; }
  const std::string& name() const { return name_; }

  Link& forward() { return *forward_; }
  Link& backward() { return *backward_; }
  const Link& forward() const { return *forward_; }
  const Link& backward() const { return *backward_; }

 private:
  PathId id_;
  std::string name_;
  std::unique_ptr<Link> forward_;
  std::unique_ptr<Link> backward_;
};

}  // namespace converge
