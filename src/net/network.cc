#include "net/network.h"

namespace converge {

Network::Network(EventLoop* loop, const std::vector<PathSpec>& specs,
                 Random rng) {
  for (size_t i = 0; i < specs.size(); ++i) {
    const PathSpec& spec = specs[i];
    Path::Config config;
    config.id = static_cast<PathId>(i);
    config.name = spec.name;
    config.forward.capacity = spec.capacity;
    config.forward.prop_delay = spec.prop_delay;
    config.forward.prop_delay_trace = spec.prop_delay_trace;
    config.forward.max_queue_delay = spec.max_queue_delay;
    config.forward.loss = spec.loss;
    config.forward.faults = spec.fault_plan;
    config.backward.capacity = BandwidthTrace::Constant(spec.feedback_capacity);
    config.backward.prop_delay = spec.prop_delay;
    config.backward.loss = spec.feedback_loss;
    config.backward.faults = spec.feedback_fault_plan;
    paths_.push_back(std::make_unique<Path>(loop, std::move(config), rng.Fork()));
  }
  // Attach after all paths exist so source construction (which schedules the
  // flow's first timer) cannot interleave with path RNG forks above.
  for (size_t i = 0; i < specs.size(); ++i) {
    for (const CrossTrafficSpec& flow : specs[i].cross_traffic) {
      cross_traffic_.push_back(std::make_unique<CrossTrafficSource>(
          loop, &paths_[i]->forward(), static_cast<int>(i), flow));
    }
  }
}

std::vector<PathId> Network::path_ids() const {
  std::vector<PathId> ids;
  ids.reserve(paths_.size());
  for (const auto& p : paths_) ids.push_back(p->id());
  return ids;
}

}  // namespace converge
