// The multipath network connecting the two conference endpoints. Owns the
// paths and provides a compact spec type used by CallConfig / the trace
// generators.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/cross_traffic.h"
#include "net/path.h"

namespace converge {

// Declarative description of one path, convertible to Path::Config. The
// backward (feedback) direction gets a fraction of the forward capacity and
// the same delay/loss unless overridden.
struct PathSpec {
  std::string name;
  BandwidthTrace capacity;
  Duration prop_delay = Duration::Millis(20);
  // Optional time-varying propagation delay (µs), forward direction.
  ValueTrace prop_delay_trace;
  std::shared_ptr<LossModel> loss;            // forward loss; null = lossless
  std::shared_ptr<LossModel> feedback_loss;   // null = lossless feedback
  DataRate feedback_capacity = DataRate::MegabitsPerSec(10);
  Duration max_queue_delay = Duration::Millis(250);
  // Scripted fault events (outages, rate cliffs, handovers, reorder/jitter
  // windows; net/fault_plan.h). A non-empty plan makes the path's link a
  // FaultyLink. Faults are seed-deterministic with the rest of the call.
  FaultPlan fault_plan;           // applied to the forward (data) link
  FaultPlan feedback_fault_plan;  // applied to the backward (feedback) link
  // Competing flows sharing the forward link's DropTail queue with the call
  // (net/cross_traffic.h). Deterministic and RNG-free: an empty list leaves
  // the path byte-identical to its pre-cross-traffic behaviour.
  std::vector<CrossTrafficSpec> cross_traffic;
};

class Network {
 public:
  Network(EventLoop* loop, const std::vector<PathSpec>& specs, Random rng);

  size_t num_paths() const { return paths_.size(); }
  Path& path(PathId id) { return *paths_.at(static_cast<size_t>(id)); }
  const Path& path(PathId id) const {
    return *paths_.at(static_cast<size_t>(id));
  }
  std::vector<PathId> path_ids() const;

  // Competing flows attached to this network's paths, in (path, spec) order.
  const std::vector<std::unique_ptr<CrossTrafficSource>>& cross_traffic()
      const {
    return cross_traffic_;
  }

 private:
  std::vector<std::unique_ptr<Path>> paths_;
  std::vector<std::unique_ptr<CrossTrafficSource>> cross_traffic_;
};

}  // namespace converge
