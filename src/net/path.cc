#include "net/path.h"

#include <utility>

#include "net/fault_injector.h"

namespace converge {

Path::Path(EventLoop* loop, Config config, Random rng)
    : id_(config.id),
      name_(std::move(config.name)),
      forward_(MakeLink(loop, std::move(config.forward), rng.Fork())),
      backward_(MakeLink(loop, std::move(config.backward), rng.Fork())) {}

}  // namespace converge
