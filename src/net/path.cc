#include "net/path.h"

#include <utility>

namespace converge {

Path::Path(EventLoop* loop, Config config, Random rng)
    : id_(config.id),
      name_(std::move(config.name)),
      forward_(loop, std::move(config.forward), rng.Fork()),
      backward_(loop, std::move(config.backward), rng.Fork()) {}

}  // namespace converge
