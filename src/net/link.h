// Directed bottleneck link: trace-driven service rate, DropTail byte queue,
// propagation delay, and a pluggable loss model at egress.
//
// The service model mirrors trace-driven emulators (mahimahi-style): a packet
// that reaches the head of the queue occupies the link for
// bytes / capacity(now); queued packets wait behind it. The queue is bounded
// either by a fixed byte budget or by `max_queue_delay` worth of bytes at the
// current capacity, whichever the config selects.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "net/loss_model.h"
#include "net/trace.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/random.h"

namespace converge {

class Link {
 public:
  struct Config {
    BandwidthTrace capacity;
    Duration prop_delay = Duration::Millis(20);
    // Optional time-varying propagation delay (µs values); overrides
    // prop_delay when non-empty. Models reroutes/handovers where a path's
    // base latency changes without any congestion signal.
    ValueTrace prop_delay_trace;
    // Queue bound: bytes admitted while the backlog (including the packet in
    // service) is below capacity(now) * max_queue_delay, floored at
    // `min_queue_bytes` so outages do not shrink the queue to nothing.
    Duration max_queue_delay = Duration::Millis(250);
    int64_t min_queue_bytes = 30'000;
    std::shared_ptr<LossModel> loss;  // null => lossless
  };

  struct Stats {
    int64_t packets_sent = 0;
    int64_t packets_delivered = 0;
    int64_t packets_lost = 0;        // random loss at egress
    int64_t packets_queue_dropped = 0;
    int64_t bytes_delivered = 0;
  };

  // Small-buffer-optimized so a delivery continuation carrying a whole
  // RtpPacket stays allocation-free; sized to fit inside an EventLoop
  // callback slot together with the arrival timestamp.
  static constexpr size_t kDeliverInlineBytes =
      EventLoop::kCallbackInlineBytes - 24;
  using DeliverFn = InlineFunction<void(Timestamp), kDeliverInlineBytes>;
  using DropFn = InlineFunction<void(bool), 48>;

  Link(EventLoop* loop, Config config, Random rng);

  // Enqueue `bytes` for transmission. Exactly one of the callbacks fires.
  void Send(int64_t bytes, DeliverFn on_deliver, DropFn on_drop = nullptr);

  DataRate CapacityNow() const { return config_.capacity.CapacityAt(loop_->now()); }
  Duration PropDelayNow() const {
    if (config_.prop_delay_trace.empty()) return config_.prop_delay;
    return Duration::Micros(
        static_cast<int64_t>(config_.prop_delay_trace.ValueAt(loop_->now())));
  }
  int64_t queued_bytes() const { return queued_bytes_; }
  const Stats& stats() const { return stats_; }
  double current_loss_rate() const {
    return config_.loss ? config_.loss->AverageRate(loop_->now()) : 0.0;
  }

 private:
  struct Pending {
    int64_t bytes;
    DeliverFn on_deliver;
    DropFn on_drop;
  };

  int64_t QueueLimitBytes() const;
  void StartTransmission();
  void FinishTransmission();

  EventLoop* loop_;
  Config config_;
  Random rng_;
  std::deque<Pending> queue_;
  int64_t queued_bytes_ = 0;
  bool busy_ = false;
  Stats stats_;
};

}  // namespace converge
