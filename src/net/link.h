// Directed bottleneck link: trace-driven service rate, DropTail byte queue,
// propagation delay, and a pluggable loss model at egress.
//
// The service model mirrors trace-driven emulators (mahimahi-style): a packet
// that reaches the head of the queue occupies the link for
// bytes / capacity(now); queued packets wait behind it. The queue is bounded
// either by a fixed byte budget or by `max_queue_delay` worth of bytes at the
// current capacity, whichever the config selects.
//
// The ingress (Send) and the instantaneous capacity / propagation delay are
// virtual so a decorator can inject faults without touching callers: see
// FaultyLink in net/fault_injector.h, which MakeLink() substitutes whenever
// the config carries a non-empty FaultPlan.
#pragma once

#include <cstdint>
#include <memory>

#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "net/trace.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/random.h"
#include "util/ring_buffer.h"

namespace converge {

class Link {
 public:
  struct Config {
    BandwidthTrace capacity;
    Duration prop_delay = Duration::Millis(20);
    // Optional time-varying propagation delay (µs values); overrides
    // prop_delay when non-empty. Models reroutes/handovers where a path's
    // base latency changes without any congestion signal.
    ValueTrace prop_delay_trace;
    // Queue bound: bytes admitted while the backlog (including the packet in
    // service) is below capacity(now) * max_queue_delay, floored at
    // `min_queue_bytes` so outages do not shrink the queue to nothing.
    Duration max_queue_delay = Duration::Millis(250);
    int64_t min_queue_bytes = 30'000;
    std::shared_ptr<LossModel> loss;  // null => lossless
    // Scripted fault events layered on top of the organic capacity/loss
    // model. The base Link ignores it; MakeLink() (net/fault_injector.h)
    // returns a FaultyLink when the plan is non-empty.
    FaultPlan faults;
  };

  struct Stats {
    int64_t packets_sent = 0;
    int64_t packets_delivered = 0;
    int64_t packets_lost = 0;        // random + fault-injected loss
    int64_t packets_queue_dropped = 0;
    int64_t bytes_delivered = 0;
  };

  // Small-buffer-optimized so a delivery continuation carrying a whole
  // RtpPacket stays allocation-free; sized to fit inside an EventLoop
  // callback slot together with the arrival timestamp.
  static constexpr size_t kDeliverInlineBytes =
      EventLoop::kCallbackInlineBytes - 24;
  using DeliverFn = InlineFunction<void(Timestamp), kDeliverInlineBytes>;
  using DropFn = InlineFunction<void(bool), 48>;

  Link(EventLoop* loop, Config config, Random rng);
  virtual ~Link() = default;
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Enqueue `bytes` for transmission. Exactly one of the callbacks fires
  // per copy (see SendCopies for duplication faults).
  virtual void Send(int64_t bytes, DeliverFn on_deliver,
                    DropFn on_drop = nullptr);

  // How many copies of the next packet the caller should Send. Plain links
  // always answer 1; a FaultyLink inside a duplication window may answer 2.
  // Byte-level links cannot clone an in-flight payload themselves (the
  // delivery continuation owns it, move-only), so callers that can copy
  // their payload cheaply — the RTP transmit path — consult this to realize
  // duplication end-to-end. Draws RNG: call exactly once per packet.
  virtual int SendCopies() { return 1; }

  virtual DataRate CapacityNow() const {
    return config_.capacity.CapacityAt(loop_->now());
  }
  virtual Duration PropDelayNow() const {
    if (config_.prop_delay_trace.empty()) return config_.prop_delay;
    return Duration::Micros(
        static_cast<int64_t>(config_.prop_delay_trace.ValueAt(loop_->now())));
  }
  int64_t queued_bytes() const { return queued_bytes_; }
  const Stats& stats() const { return stats_; }
  double current_loss_rate() const {
    return config_.loss ? config_.loss->AverageRate(loop_->now()) : 0.0;
  }

 protected:
  EventLoop* loop() const { return loop_; }
  const Config& config() const { return config_; }

  // Fault-injection stat hooks (FaultyLink only): an ingress fault drop
  // counts as sent+lost; a delivery retroactively converted to a loss (an
  // outage swallowing an in-flight packet) undoes the delivered counters.
  void RecordInjectedSendDrop() {
    ++stats_.packets_sent;
    ++stats_.packets_lost;
  }
  void ConvertDeliveryToLoss(int64_t bytes) {
    --stats_.packets_delivered;
    stats_.bytes_delivered -= bytes;
    ++stats_.packets_lost;
  }

 private:
  struct Pending {
    int64_t bytes;
    DeliverFn on_deliver;
    DropFn on_drop;
  };
  // One propagating packet: its delivery continuation parks in a recycled
  // slot and a 24-byte heap entry orders it by (arrival, seq). Wrapping the
  // continuation plus the arrival timestamp into the event-loop callback
  // directly would exceed the callback's inline buffer and heap-allocate on
  // every delivered packet; this keeps the scheduled event a bare `this`
  // capture.
  struct Arrival {
    Timestamp at;
    int64_t seq;
    uint32_t slot;
    bool operator>(const Arrival& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  int64_t QueueLimitBytes() const;
  void StartTransmission();
  void FinishTransmission();
  void DeliverNext();

  EventLoop* loop_;
  Config config_;
  Random rng_;
  // Recycled ring: after the queue grows to its steady-state depth once, the
  // per-packet enqueue/dequeue path never touches the allocator (a deque
  // allocates/frees chunks as it slides through memory).
  RingQueue<Pending> queue_;
  int64_t queued_bytes_ = 0;
  bool busy_ = false;
  // In-flight deliveries: min-heap on (arrival, seq) + recycled continuation
  // slots. Dispatch order matches the event loop's exactly — the loop fires
  // arrival events in (time, schedule-order) order, which is precisely the
  // heap's (at, seq) order — so delivery results are unchanged.
  std::vector<Arrival> inflight_;
  std::vector<DeliverFn> deliver_slots_;
  std::vector<uint32_t> deliver_free_;
  int64_t inflight_seq_ = 0;
  Stats stats_;
};

}  // namespace converge
