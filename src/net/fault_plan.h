// Scripted, seed-deterministic network fault plans (the hostile dynamics of
// the paper's driving/walking traces, §6, Figs 9-13, made explicit): a
// FaultPlan is a list of timed events — full path outage, partial rate cliff,
// handover (RTT step + burst loss), reorder/duplication window, jitter spike
// — that a FaultyLink decorator (net/fault_injector.h) applies on top of any
// Link. Plans are plain data: the same plan + the same seed reproduces the
// same packet-level behaviour byte for byte.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace converge {

enum class FaultKind : uint8_t {
  kOutage,      // 100% loss for the window
  kRateCliff,   // capacity multiplied by `fraction`
  kHandover,    // propagation-delay step, with burst loss at the cut-over
  kReorder,     // per-packet extra delay in [0, jitter] + duplication
  kJitterSpike  // per-packet extra delay in [0, jitter], no duplication
};

// What happens to packets already in service / in flight when their delivery
// falls inside an outage window. The pinned default is kDrop: a radio that
// lost its link does not park frames for later (regression-tested in
// tests/fault_injector_test.cc).
enum class InFlightPolicy : uint8_t {
  kDrop,       // in-flight packets arriving inside the window are lost
  kDelayToEnd  // ... are held and delivered when the window ends
};

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  Timestamp start;
  Duration duration;

  // kRateCliff: capacity scale in (0, 1].
  double fraction = 1.0;
  // kHandover: added propagation delay while the window is active. The step
  // decays to zero when the window ends (the new attachment point settles).
  Duration rtt_step;
  // kHandover: Bernoulli loss applied during the first `burst` of the
  // window (the make-before-break gap). Zero `burst` means the full window.
  double burst_loss = 0.0;
  Duration burst;
  // kReorder / kJitterSpike: per-packet extra delivery delay in [0, jitter].
  Duration jitter;
  // kReorder: probability that a packet is delivered twice.
  double duplicate_prob = 0.0;
  // kOutage: in-flight semantics (see InFlightPolicy).
  InFlightPolicy in_flight = InFlightPolicy::kDrop;

  Timestamp end() const { return start + duration; }
  bool Contains(Timestamp t) const { return t >= start && t < end(); }

  static FaultEvent Outage(Timestamp start, Duration duration,
                           InFlightPolicy in_flight = InFlightPolicy::kDrop);
  static FaultEvent RateCliff(Timestamp start, Duration duration,
                              double fraction);
  static FaultEvent Handover(Timestamp start, Duration duration,
                             Duration rtt_step, double burst_loss = 0.15,
                             Duration burst = Duration::Millis(300));
  static FaultEvent Reorder(Timestamp start, Duration duration,
                            Duration jitter, double duplicate_prob = 0.0);
  static FaultEvent JitterSpike(Timestamp start, Duration duration,
                                Duration jitter);
};

std::string ToString(FaultKind kind);

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  FaultPlan& Add(FaultEvent event);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // --- aggregate queries at time t (what the injector evaluates) ---
  bool InOutage(Timestamp t) const;
  // Latest end among outage windows containing t.
  std::optional<Timestamp> OutageEnd(Timestamp t) const;
  // Policy of the outage window containing t (kDrop when none).
  InFlightPolicy OutagePolicy(Timestamp t) const;
  // Product of all active rate-cliff fractions (1.0 when none active).
  double CapacityScaleAt(Timestamp t) const;
  // Sum of all active handover RTT steps.
  Duration DelayStepAt(Timestamp t) const;
  // Max Bernoulli loss among active handover burst windows.
  double ExtraLossAt(Timestamp t) const;
  // Max per-packet jitter among active reorder/jitter windows.
  Duration MaxJitterAt(Timestamp t) const;
  // Max duplication probability among active reorder windows.
  double DuplicateProbAt(Timestamp t) const;
  // End of the last outage window; MinusInfinity when the plan has none.
  // Lets the FaultyLink skip delivery wrapping (and its allocations) once
  // no outage can affect in-flight packets anymore.
  Timestamp LastOutageEnd() const { return last_outage_end_; }

  // Every kOutage window as a [start, end) pair, in event order. The
  // cascaded hub fabric (session/conference.h) reads a hub's plan through
  // this to schedule hub failure at each window start and recovery at its
  // end.
  std::vector<std::pair<Timestamp, Timestamp>> OutageWindows() const;

  // Compact one-line schema, e.g.
  // "outage[10s+2s] handover[14s+1s rtt+40ms loss15%] cliff[20s+5s x0.25]".
  std::string Describe() const;

 private:
  std::vector<FaultEvent> events_;  // sorted by start time
  Timestamp last_outage_end_ = Timestamp::MinusInfinity();
};

}  // namespace converge
