// Packet-loss models applied at link egress.
//
// The evaluation uses both i.i.d. Bernoulli loss (the controlled FEC sweep,
// §6.2) and bursty Gilbert–Elliott loss (mobile scenarios), plus a
// trace-driven variant whose instantaneous rate follows a ValueTrace.
#pragma once

#include <memory>

#include "net/trace.h"
#include "util/random.h"
#include "util/time.h"

namespace converge {

class LossModel {
 public:
  virtual ~LossModel() = default;
  // Returns true if the packet leaving at `now` should be dropped.
  virtual bool ShouldDrop(Timestamp now, Random& rng) = 0;
  // Current average loss fraction (for introspection/tests).
  virtual double AverageRate(Timestamp now) const = 0;
};

// No loss.
class NoLoss final : public LossModel {
 public:
  bool ShouldDrop(Timestamp, Random&) override { return false; }
  double AverageRate(Timestamp) const override { return 0.0; }
};

// Independent per-packet loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double rate) : rate_(rate) {}
  bool ShouldDrop(Timestamp, Random& rng) override {
    return rng.Bernoulli(rate_);
  }
  double AverageRate(Timestamp) const override { return rate_; }

 private:
  double rate_;
};

// Two-state Gilbert–Elliott model: Good state with low loss, Bad state with
// high loss; geometric sojourn times via per-packet transition probabilities.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Config {
    double p_good_to_bad = 0.002;
    double p_bad_to_good = 0.10;
    double loss_good = 0.001;
    double loss_bad = 0.30;
  };
  explicit GilbertElliottLoss(const Config& config) : config_(config) {}

  bool ShouldDrop(Timestamp, Random& rng) override;
  double AverageRate(Timestamp) const override;

 private:
  Config config_;
  bool bad_ = false;
};

// Loss probability follows a trace (fraction in [0,1]).
class TraceLoss final : public LossModel {
 public:
  explicit TraceLoss(ValueTrace trace) : trace_(std::move(trace)) {}
  bool ShouldDrop(Timestamp now, Random& rng) override {
    return rng.Bernoulli(trace_.ValueAt(now));
  }
  double AverageRate(Timestamp now) const override {
    return trace_.ValueAt(now);
  }

 private:
  ValueTrace trace_;
};

}  // namespace converge
