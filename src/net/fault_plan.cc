#include "net/fault_plan.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace converge {

FaultEvent FaultEvent::Outage(Timestamp start, Duration duration,
                              InFlightPolicy in_flight) {
  FaultEvent e;
  e.kind = FaultKind::kOutage;
  e.start = start;
  e.duration = duration;
  e.in_flight = in_flight;
  return e;
}

FaultEvent FaultEvent::RateCliff(Timestamp start, Duration duration,
                                 double fraction) {
  FaultEvent e;
  e.kind = FaultKind::kRateCliff;
  e.start = start;
  e.duration = duration;
  e.fraction = std::clamp(fraction, 0.001, 1.0);
  return e;
}

FaultEvent FaultEvent::Handover(Timestamp start, Duration duration,
                                Duration rtt_step, double burst_loss,
                                Duration burst) {
  FaultEvent e;
  e.kind = FaultKind::kHandover;
  e.start = start;
  e.duration = duration;
  e.rtt_step = rtt_step;
  e.burst_loss = std::clamp(burst_loss, 0.0, 1.0);
  e.burst = burst.IsZero() ? duration : std::min(burst, duration);
  return e;
}

FaultEvent FaultEvent::Reorder(Timestamp start, Duration duration,
                               Duration jitter, double duplicate_prob) {
  FaultEvent e;
  e.kind = FaultKind::kReorder;
  e.start = start;
  e.duration = duration;
  e.jitter = jitter;
  e.duplicate_prob = std::clamp(duplicate_prob, 0.0, 1.0);
  return e;
}

FaultEvent FaultEvent::JitterSpike(Timestamp start, Duration duration,
                                   Duration jitter) {
  FaultEvent e;
  e.kind = FaultKind::kJitterSpike;
  e.start = start;
  e.duration = duration;
  e.jitter = jitter;
  return e;
}

std::string ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kRateCliff:
      return "cliff";
    case FaultKind::kHandover:
      return "handover";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kJitterSpike:
      return "jitter";
  }
  return "?";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events) {
  for (FaultEvent& e : events) Add(std::move(e));
}

FaultPlan& FaultPlan::Add(FaultEvent event) {
  if (event.kind == FaultKind::kOutage) {
    last_outage_end_ = std::max(last_outage_end_, event.end());
  }
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.start < b.start; });
  events_.insert(pos, event);
  return *this;
}

bool FaultPlan::InOutage(Timestamp t) const {
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kOutage && e.Contains(t)) return true;
  }
  return false;
}

std::vector<std::pair<Timestamp, Timestamp>> FaultPlan::OutageWindows()
    const {
  std::vector<std::pair<Timestamp, Timestamp>> windows;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kOutage) windows.emplace_back(e.start, e.end());
  }
  return windows;
}

std::optional<Timestamp> FaultPlan::OutageEnd(Timestamp t) const {
  std::optional<Timestamp> end;
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kOutage && e.Contains(t)) {
      if (!end || e.end() > *end) end = e.end();
    }
  }
  return end;
}

InFlightPolicy FaultPlan::OutagePolicy(Timestamp t) const {
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kOutage && e.Contains(t)) return e.in_flight;
  }
  return InFlightPolicy::kDrop;
}

double FaultPlan::CapacityScaleAt(Timestamp t) const {
  double scale = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kRateCliff && e.Contains(t)) scale *= e.fraction;
  }
  return scale;
}

Duration FaultPlan::DelayStepAt(Timestamp t) const {
  Duration step = Duration::Zero();
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kHandover && e.Contains(t)) step += e.rtt_step;
  }
  return step;
}

double FaultPlan::ExtraLossAt(Timestamp t) const {
  double loss = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kHandover && t >= e.start &&
        t < e.start + e.burst) {
      loss = std::max(loss, e.burst_loss);
    }
  }
  return loss;
}

Duration FaultPlan::MaxJitterAt(Timestamp t) const {
  Duration jitter = Duration::Zero();
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if ((e.kind == FaultKind::kReorder || e.kind == FaultKind::kJitterSpike) &&
        e.Contains(t)) {
      jitter = std::max(jitter, e.jitter);
    }
  }
  return jitter;
}

double FaultPlan::DuplicateProbAt(Timestamp t) const {
  double p = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.start > t) break;
    if (e.kind == FaultKind::kReorder && e.Contains(t)) {
      p = std::max(p, e.duplicate_prob);
    }
  }
  return p;
}

std::string FaultPlan::Describe() const {
  std::ostringstream os;
  bool first = true;
  for (const FaultEvent& e : events_) {
    if (!first) os << " ";
    first = false;
    os << ToString(e.kind) << "[" << e.start.seconds() << "s+"
       << e.duration.seconds() << "s";
    switch (e.kind) {
      case FaultKind::kOutage:
        os << (e.in_flight == InFlightPolicy::kDrop ? " drop" : " delay");
        break;
      case FaultKind::kRateCliff:
        os << " x" << e.fraction;
        break;
      case FaultKind::kHandover:
        os << " rtt+" << e.rtt_step.ms() << "ms loss"
           << static_cast<int>(e.burst_loss * 100) << "%";
        break;
      case FaultKind::kReorder:
        os << " jit" << e.jitter.ms() << "ms dup"
           << static_cast<int>(e.duplicate_prob * 100) << "%";
        break;
      case FaultKind::kJitterSpike:
        os << " jit" << e.jitter.ms() << "ms";
        break;
    }
    os << "]";
  }
  return os.str();
}

}  // namespace converge
