// Time-varying value traces: piecewise-constant samples of link capacity or
// loss rate. Traces can repeat periodically (so a 180 s trace covers calls of
// any length) and can be loaded from / saved to CSV.
#pragma once

#include <string>
#include <vector>

#include "util/time.h"

namespace converge {

struct TraceSample {
  Timestamp at;
  double value;  // bits/sec for bandwidth traces, fraction for loss traces.
};

class ValueTrace {
 public:
  ValueTrace() = default;
  explicit ValueTrace(std::vector<TraceSample> samples, bool repeat = true);

  // Constant-valued trace.
  static ValueTrace Constant(double value);

  // Piecewise-constant lookup; before the first sample returns the first
  // value, after the last sample either wraps (repeat) or holds.
  double ValueAt(Timestamp t) const;

  bool empty() const { return samples_.empty(); }
  Duration span() const;
  const std::vector<TraceSample>& samples() const { return samples_; }

  // CSV format: one `seconds,value` row per sample.
  static ValueTrace LoadCsv(const std::string& path, bool repeat = true);
  bool SaveCsv(const std::string& path) const;

  // Pointwise transform (e.g. scaling a capacity trace).
  ValueTrace Scaled(double factor) const;

 private:
  std::vector<TraceSample> samples_;
  bool repeat_ = true;
};

// Strongly-typed convenience wrapper for capacity traces.
class BandwidthTrace {
 public:
  BandwidthTrace() : trace_(ValueTrace::Constant(0)) {}
  explicit BandwidthTrace(ValueTrace trace) : trace_(std::move(trace)) {}
  static BandwidthTrace Constant(DataRate rate) {
    return BandwidthTrace(ValueTrace::Constant(static_cast<double>(rate.bps())));
  }

  DataRate CapacityAt(Timestamp t) const {
    return DataRate::BitsPerSec(static_cast<int64_t>(trace_.ValueAt(t)));
  }
  const ValueTrace& trace() const { return trace_; }

 private:
  ValueTrace trace_;
};

}  // namespace converge
