#include "net/fault_injector.h"

#include <utility>

namespace converge {

FaultInjector::FaultInjector(FaultPlan plan, Random rng)
    : plan_(std::move(plan)), rng_(rng) {}

FaultInjector::SendDecision FaultInjector::OnSend(Timestamp now) {
  SendDecision d;
  if (plan_.InOutage(now)) {
    d.drop = true;
    ++stats_.outage_send_drops;
    return d;
  }
  const double burst_loss = plan_.ExtraLossAt(now);
  if (burst_loss > 0.0 && rng_.Bernoulli(burst_loss)) {
    d.drop = true;
    ++stats_.burst_loss_drops;
    return d;
  }
  const Duration jitter = plan_.MaxJitterAt(now);
  if (jitter > Duration::Zero()) {
    d.extra_delay =
        Duration::Micros(rng_.UniformInt(0, jitter.us()));
    if (d.extra_delay > Duration::Zero()) ++stats_.jittered_packets;
  }
  return d;
}

int FaultInjector::DrawCopies(Timestamp now) {
  const double p = plan_.DuplicateProbAt(now);
  if (p > 0.0 && rng_.Bernoulli(p)) {
    ++stats_.duplicated_packets;
    return 2;
  }
  return 1;
}

FaultInjector::DeliveryAction FaultInjector::OnDelivery(Timestamp arrival) {
  DeliveryAction action;
  Timestamp t = arrival;
  // Follow chained windows: a kDelayToEnd outage may release the packet
  // straight into the next window.
  for (int hops = 0; hops < 16; ++hops) {
    if (!plan_.InOutage(t)) break;
    if (plan_.OutagePolicy(t) == InFlightPolicy::kDrop) {
      action.drop = true;
      action.delay = false;
      ++stats_.inflight_outage_drops;
      return action;
    }
    t = *plan_.OutageEnd(t);
    action.delay = true;
  }
  if (action.delay) {
    action.deliver_at = t;
    ++stats_.inflight_outage_delays;
  }
  return action;
}

FaultyLink::FaultyLink(EventLoop* loop, Config config, Random rng)
    : Link(loop, config, rng.Fork()),
      injector_(config.faults, rng.Fork()) {}

DataRate FaultyLink::CapacityNow() const {
  const double scale = injector_.CapacityScale(loop()->now());
  const DataRate base = Link::CapacityNow();
  return scale >= 1.0 ? base : base * scale;
}

Duration FaultyLink::PropDelayNow() const {
  return Link::PropDelayNow() + injector_.DelayStep(loop()->now());
}

int FaultyLink::SendCopies() { return injector_.DrawCopies(loop()->now()); }

void FaultyLink::Send(int64_t bytes, DeliverFn on_deliver, DropFn on_drop) {
  const Timestamp now = loop()->now();
  const FaultInjector::SendDecision decision = injector_.OnSend(now);
  if (decision.drop) {
    RecordInjectedSendDrop();
    if (on_drop) on_drop(/*queue_drop=*/false);
    return;
  }
  const bool outage_pending = injector_.OutagePending(now);
  if (!outage_pending && decision.extra_delay.IsZero()) {
    // Fast path: no fault can touch this packet between here and delivery —
    // hand it straight to the base link, allocation-free.
    Link::Send(bytes, std::move(on_deliver), std::move(on_drop));
    return;
  }

  // The delivery continuation is wrapped so the packet's fate can be decided
  // again at arrival time (jitter shifts it; an outage window may swallow or
  // park it). The wrapper exceeds the inline callback budget, so packets in
  // fault windows heap-allocate — the steady state outside windows does not.
  // The drop callback is shared: the base link needs it for queue/loss drops
  // and the wrapper needs it for delivery-time outage drops.
  auto shared_drop = std::make_shared<DropFn>(std::move(on_drop));
  EventLoop* lp = loop();
  FaultInjector* inj = &injector_;
  FaultyLink* self = this;
  DeliverFn wrapped =
      [lp, inj, self, bytes, extra = decision.extra_delay,
       inner = std::move(on_deliver), shared_drop](Timestamp arrival) mutable {
        Timestamp target = arrival + extra;
        const FaultInjector::DeliveryAction action = inj->OnDelivery(target);
        if (action.drop) {
          self->ConvertDeliveryToLoss(bytes);
          if (*shared_drop) (*shared_drop)(/*queue_drop=*/false);
          return;
        }
        if (action.delay) target = action.deliver_at;
        if (target > arrival) {
          lp->ScheduleAt(target,
                         [target, inner = std::move(inner)]() mutable {
                           inner(target);
                         });
        } else {
          inner(arrival);
        }
      };
  Link::Send(bytes, std::move(wrapped),
             [shared_drop](bool queue_drop) {
               if (*shared_drop) (*shared_drop)(queue_drop);
             });
}

std::unique_ptr<Link> MakeLink(EventLoop* loop, Link::Config config,
                               Random rng) {
  if (config.faults.empty()) {
    return std::make_unique<Link>(loop, std::move(config), rng);
  }
  return std::make_unique<FaultyLink>(loop, std::move(config), rng);
}

}  // namespace converge
