#include "net/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace converge {

ValueTrace::ValueTrace(std::vector<TraceSample> samples, bool repeat)
    : samples_(std::move(samples)), repeat_(repeat) {
  std::sort(samples_.begin(), samples_.end(),
            [](const TraceSample& a, const TraceSample& b) { return a.at < b.at; });
}

ValueTrace ValueTrace::Constant(double value) {
  return ValueTrace({{Timestamp::Zero(), value}}, /*repeat=*/false);
}

double ValueTrace::ValueAt(Timestamp t) const {
  if (samples_.empty()) return 0.0;
  if (samples_.size() == 1) return samples_.front().value;

  Timestamp lookup = t;
  const Timestamp begin = samples_.front().at;
  const Timestamp end = samples_.back().at;
  if (repeat_ && lookup > end) {
    const int64_t span = (end - begin).us();
    if (span > 0) {
      const int64_t offset = (lookup - begin).us() % span;
      lookup = begin + Duration::Micros(offset);
    }
  }
  if (lookup <= begin) return samples_.front().value;
  // Last sample at or before `lookup`.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), lookup,
      [](Timestamp v, const TraceSample& s) { return v < s.at; });
  return std::prev(it)->value;
}

Duration ValueTrace::span() const {
  if (samples_.size() < 2) return Duration::Zero();
  return samples_.back().at - samples_.front().at;
}

ValueTrace ValueTrace::LoadCsv(const std::string& path, bool repeat) {
  std::ifstream in(path);
  std::vector<TraceSample> samples;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double sec = 0.0, value = 0.0;
    char comma = 0;
    if (ls >> sec >> comma >> value) {
      samples.push_back({Timestamp::Seconds(sec), value});
    }
  }
  return ValueTrace(std::move(samples), repeat);
}

bool ValueTrace::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& s : samples_) {
    out << s.at.seconds() << ',' << s.value << '\n';
  }
  return static_cast<bool>(out);
}

ValueTrace ValueTrace::Scaled(double factor) const {
  std::vector<TraceSample> scaled = samples_;
  for (auto& s : scaled) s.value *= factor;
  return ValueTrace(std::move(scaled), repeat_);
}

}  // namespace converge
