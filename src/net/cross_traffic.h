// Deterministic competing cross-traffic: long-lived AIMD rate processes that
// share a path's DropTail byte queue with the call's own media.
//
// The measurement studies this repo reproduces (and the "Can You See Me
// Now?" axes the scenario suite pins) all evaluate conferencing flows on
// *shared* bottlenecks — a video call competing with a bulk TCP download or
// a QUIC transfer — yet every scenario the repo could previously run gave
// the call a dedicated link. This module closes that gap with a closed-loop
// flow model driven entirely by the link's own delivery/loss signals:
//
//   * window-based AIMD: slow start to `ssthresh`, then additive increase
//     per ACK; on any loss (random egress loss or a DropTail queue drop)
//     the window collapses multiplicatively — once per RTT round, like a
//     real transport reacting once per window of data.
//   * self-clocked through the simulator: the source runs a pacing timer at
//     ~one segment per (srtt / cwnd) and only sends while the in-flight
//     count is below the window, so throughput converges to the classic
//     cwnd * mss / rtt without ever busy-looping the event loop. Timer
//     pacing also sidesteps Link::Send's synchronous queue-drop callback:
//     a drop is pure bookkeeping, never a recursive re-send.
//   * ACKs are modeled as a fixed reverse-path delay after delivery; the
//     feedback link is not consumed (real cross traffic does not share the
//     call's RTCP channel).
//
// Two profiles are provided: kTcp (Reno-like, beta 0.5, +1 segment/RTT) and
// kQuic (Cubic-flavoured in spirit: shallower backoff beta 0.7 and a more
// aggressive additive gain), matching the competing-workload shapes in the
// QUIC streaming study referenced from PAPERS.md.
//
// Determinism: the model draws NO random numbers — its entire evolution is
// a function of link delivery/loss timing, which is itself deterministic per
// seed. Adding a flow to a PathSpec therefore does not perturb the RNG fork
// sequence of the call, and configs without cross traffic are byte-identical
// to their pre-cross-traffic results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_loop.h"

namespace converge {

class Link;

enum class CrossTrafficKind {
  kTcp,   // Reno-like: beta 0.5, +1 segment per RTT
  kQuic,  // QUIC-like: beta 0.7, more aggressive additive increase
};

const char* CrossTrafficKindName(CrossTrafficKind kind);

// Declarative description of one competing flow, carried by PathSpec.
struct CrossTrafficSpec {
  std::string name = "xflow";
  CrossTrafficKind kind = CrossTrafficKind::kTcp;
  Timestamp start = Timestamp::Zero();
  // Flow lifetime end; PlusInfinity = runs for the whole call.
  Timestamp stop = Timestamp::PlusInfinity();
  int64_t mss_bytes = 1200;
  // Round-trip time seen by the flow: forward propagation is simulated by
  // the shared link; this adds the reverse (ACK) leg. The flow's effective
  // RTT is the link's queueing+propagation delay plus this.
  Duration ack_delay = Duration::Millis(20);
  double initial_cwnd = 10.0;
  double ssthresh = 64.0;  // segments; slow start ends here (or at first loss)
};

// One live flow bound to a link's forward direction. Owned by the Network
// that owns the link; must outlive any scheduled events, i.e. the Network
// must live until the EventLoop drains (Conference guarantees this, even for
// links retired by mid-call churn).
class CrossTrafficSource {
 public:
  struct Stats {
    int64_t packets_sent = 0;
    int64_t packets_delivered = 0;
    int64_t packets_dropped = 0;  // queue drops + egress loss
    int64_t bytes_delivered = 0;
    int64_t loss_events = 0;      // multiplicative-decrease episodes
    double final_cwnd = 0.0;      // window when the flow stopped / call ended
  };

  CrossTrafficSource(EventLoop* loop, Link* link, int path, CrossTrafficSpec spec);

  const CrossTrafficSpec& spec() const { return spec_; }
  int path() const { return path_; }
  const Stats& stats() const;
  // Delivered goodput over the flow's active window, for stats export.
  double ThroughputMbps(Timestamp call_end) const;

 private:
  void Arm();
  void OnTimer();
  void SendSegment();
  void OnAck();
  void OnLoss();
  Duration PacingInterval() const;

  EventLoop* loop_;
  Link* link_;
  int path_;
  CrossTrafficSpec spec_;

  double cwnd_;            // segments
  double ssthresh_;        // segments
  int64_t inflight_ = 0;   // segments
  // Loss reaction is applied at most once per RTT round: further losses
  // inside [.., recovery_until_) are counted but do not shrink the window
  // again (one decrease per window of data, like Reno's fast recovery).
  Timestamp recovery_until_ = Timestamp::MinusInfinity();
  Duration srtt_;          // smoothed from send->ack, seeded with ack_delay
  Timestamp last_send_ = Timestamp::MinusInfinity();
  mutable Stats stats_;
};

}  // namespace converge
