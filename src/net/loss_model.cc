#include "net/loss_model.h"

namespace converge {

bool GilbertElliottLoss::ShouldDrop(Timestamp, Random& rng) {
  if (bad_) {
    if (rng.Bernoulli(config_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng.Bernoulli(config_.p_good_to_bad)) bad_ = true;
  }
  return rng.Bernoulli(bad_ ? config_.loss_bad : config_.loss_good);
}

double GilbertElliottLoss::AverageRate(Timestamp) const {
  // Stationary distribution of the two-state chain.
  const double denom = config_.p_good_to_bad + config_.p_bad_to_good;
  if (denom <= 0.0) return config_.loss_good;
  const double pi_bad = config_.p_good_to_bad / denom;
  return pi_bad * config_.loss_bad + (1.0 - pi_bad) * config_.loss_good;
}

}  // namespace converge
