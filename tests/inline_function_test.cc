#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/inline_function.h"

namespace converge {
namespace {

TEST(InlineFunctionTest, EmptyIsFalseAssignedIsTrue) {
  InlineFunction<int()> fn;
  EXPECT_FALSE(fn);
  fn = [] { return 42; };
  ASSERT_TRUE(fn);
  EXPECT_EQ(fn(), 42);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  InlineFunction<void()> a = [&calls] { ++calls; };
  InlineFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): checking moved state
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFunctionTest, MoveOnlyCapturesWork) {
  auto ptr = std::make_unique<int>(7);
  InlineFunction<int()> fn = [p = std::move(ptr)] { return *p; };
  EXPECT_EQ(fn(), 7);
  // And the wrapper itself moves without copying the capture.
  InlineFunction<int()> fn2 = std::move(fn);
  EXPECT_EQ(fn2(), 7);
}

TEST(InlineFunctionTest, OversizedCaptureUsesHeapCorrectly) {
  // 256 bytes of capture against a 48-byte buffer: heap fallback path.
  std::array<uint64_t, 32> big{};
  for (size_t i = 0; i < big.size(); ++i) big[i] = i;
  InlineFunction<uint64_t(), 48> fn = [big] {
    uint64_t sum = 0;
    for (uint64_t v : big) sum += v;
    return sum;
  };
  EXPECT_EQ(fn(), 31u * 32u / 2u);
  InlineFunction<uint64_t(), 48> moved = std::move(fn);
  EXPECT_EQ(moved(), 31u * 32u / 2u);
}

TEST(InlineFunctionTest, DestructorRunsCaptureDestructor) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> n;
    ~Probe() {
      if (n) ++*n;
    }
    Probe(std::shared_ptr<int> n) : n(std::move(n)) {}
    Probe(Probe&& o) noexcept : n(std::move(o.n)) {}
    void operator()() const {}
  };
  {
    InlineFunction<void()> fn = Probe(counter);
    fn();
  }
  EXPECT_EQ(*counter, 1);  // exactly one live Probe was destroyed
}

TEST(InlineFunctionTest, MoveAssignReleasesPreviousTarget) {
  auto released = std::make_shared<int>(0);
  InlineFunction<void()> fn = [keep = released] {};
  EXPECT_EQ(released.use_count(), 2);
  fn = [] {};
  EXPECT_EQ(released.use_count(), 1);  // old capture destroyed on assign
}

}  // namespace
}  // namespace converge
