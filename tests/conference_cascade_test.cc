// Cascaded SFU fabric (DESIGN §10): the star session layer wired over a
// multi-hub graph. Covers the three load-bearing properties:
//
//   1. Degenerate case — a 1-hub cascade config is byte-identical to the
//      historical single-star run (stats JSON compared verbatim).
//   2. Trunk CC isolation — inter-hub trunk losses terminate at the trunk's
//      own congestion loop; they never leak into the publisher's uplink CC
//      or the remote hub's downlink CC.
//   3. Mid-call hub failover — a hub outage re-homes its participants onto
//      the next alive hub under fresh SSRC incarnations, with zero
//      invariant violations and the trunks rebuilt at recovery.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "session/conference.h"
#include "session/stats_json.h"
#include "util/invariants.h"

namespace converge {
namespace {

PathSpec StablePath(const std::string& name, double mbps, int delay_ms,
                    double loss = 0.0) {
  PathSpec spec;
  spec.name = name;
  spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
  spec.prop_delay = Duration::Millis(delay_ms);
  if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
  return spec;
}

// N duplex participants on clean access paths; hub downlinks provisioned
// for the aggregate.
ConferenceConfig CascadeStarConfig(int participants, Duration duration,
                                   uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(static_cast<size_t>(participants),
                             ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(2);
  config.duration = duration;
  config.seed = seed;
  const double fanout = static_cast<double>(participants - 1);
  config.paths_for_edge = [fanout](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 6.0 * fanout, 15),
                                   StablePath("d1", 4.0 * fanout, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  config.trunk_paths = {StablePath("t0", 12.0 * fanout, 10),
                        StablePath("t1", 8.0 * fanout, 20)};
  return config;
}

// --- 1. Degenerate single-hub case -----------------------------------------

TEST(ConferenceCascadeTest, SingleHubConfigIsByteIdenticalToPlainStar) {
  ConferenceConfig plain = CascadeStarConfig(4, Duration::Seconds(4), 9);
  plain.trunk_paths.clear();  // the historical config has no cascade fields

  ConferenceConfig cascade = CascadeStarConfig(4, Duration::Seconds(4), 9);
  cascade.num_hubs = 1;
  cascade.home_hub.assign(4, 0);
  cascade.hub_fault_plans.resize(1);  // empty plan, still the degenerate case

  Conference a(plain);
  Conference b(cascade);
  const std::string ja = ConferenceStatsToJson(a.Run());
  const std::string jb = ConferenceStatsToJson(b.Run());
  EXPECT_EQ(ja, jb) << "1-hub cascade diverged from the plain star";
  // Cascade keys are absent entirely, not present-but-empty: a single-hub
  // export must remain byte-compatible with every pre-cascade consumer.
  EXPECT_EQ(ja.find("\"num_hubs\""), std::string::npos);
  EXPECT_EQ(ja.find("\"trunks\""), std::string::npos);
  EXPECT_EQ(ja.find("\"hub\""), std::string::npos);
}

// --- 2. Trunk CC isolation --------------------------------------------------

// One sender homed at hub 0, one receiver homed at hub 1, clean access
// paths, heavily lossy trunk: the loss must register ONLY at the trunk
// engine's congestion loop. The publisher's uplink CC (fed by its
// hub_feedback endpoint) and the remote hub's downlink CC both stay clean.
TEST(ConferenceCascadeTest, TrunkFeedbackTerminatesAtTrunkController) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(2, ParticipantSpec{});
  config.participants[0].receives = false;
  config.participants[1].sends = false;
  config.max_rate_per_stream = DataRate::MegabitsPerSec(2);
  config.duration = Duration::Seconds(8);
  config.seed = 5;
  config.paths_for_edge = [](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 6.0, 15),
                                   StablePath("d1", 4.0, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  config.num_hubs = 2;
  config.home_hub = {0, 1};
  config.trunk_paths = {StablePath("t0", 6.0, 10, 0.15),
                        StablePath("t1", 4.0, 20, 0.15)};

  Conference conference(config);
  ASSERT_EQ(conference.num_legs(), 1u);
  const ConferenceStats stats = conference.Run();

  const Sender& origin = conference.leg_sender(0);
  const HubForwarder* trunk = conference.trunk_engine(0, 1);
  const HubForwarder* remote = conference.hub_forwarder(1);
  ASSERT_NE(trunk, nullptr);
  ASSERT_NE(remote, nullptr);
  double trunk_loss = 0.0;
  for (PathId path : {PathId{0}, PathId{1}}) {
    EXPECT_LT(origin.path_loss(path), 0.05)
        << "publisher uplink CC saw trunk loss on path " << path;
    EXPECT_LT(remote->downlink_loss(path), 0.05)
        << "remote hub downlink CC saw trunk loss on path " << path;
    trunk_loss = std::max(trunk_loss, trunk->downlink_loss(path));
  }
  EXPECT_GT(trunk_loss, 0.05)
      << "trunk controller never registered the trunk loss";

  // The trunk's congestion loop actually ran: feedback batches came back
  // from the far-end agent and packets were registered at send time.
  ASSERT_EQ(stats.trunks.size(), 4u);  // 2 directed trunks x 2 paths
  int64_t batches = 0, registered = 0;
  for (const ConferenceStats::Trunk& t : stats.trunks) {
    EXPECT_TRUE(t.live);
    if (t.from_hub == 0) {
      batches += t.feedback_batches;
      registered += t.packets_registered;
    }
  }
  EXPECT_GT(batches, 0);
  EXPECT_GT(registered, 0);

  // And the media still renders across the lossy trunk (losses are chased
  // hub-to-hub from trunk history).
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    if (p.inbound_streams > 0) {
      EXPECT_GT(p.avg_fps, 10.0);
    }
  }
}

// --- 3. Multi-hub routing + stats keying ------------------------------------

TEST(ConferenceCascadeTest, ThreeHubRoutingDeliversEveryStream) {
  ConferenceConfig config = CascadeStarConfig(6, Duration::Seconds(4), 17);
  config.num_hubs = 3;  // empty home_hub: round-robin p % 3

  Conference conference(config);
  const ConferenceStats stats = conference.Run();

  EXPECT_EQ(stats.num_hubs, 3);
  ASSERT_EQ(stats.hubs.size(), 3u);
  for (const ConferenceStats::Hub& h : stats.hubs) {
    EXPECT_TRUE(h.alive);
    EXPECT_EQ(h.failures, 0);
    EXPECT_EQ(h.home_participants, 2);
  }
  // Every participant renders all 5 remote streams across the fabric.
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    EXPECT_EQ(p.inbound_streams, 5) << "participant " << p.participant;
    EXPECT_GT(p.avg_fps, 10.0) << "participant " << p.participant;
  }
  // 3 hubs -> 6 directed trunks x 2 paths, all live.
  ASSERT_EQ(stats.trunks.size(), 12u);
  for (const ConferenceStats::Trunk& t : stats.trunks) {
    EXPECT_TRUE(t.live);
    EXPECT_NE(t.from_hub, t.to_hub);
    EXPECT_GT(t.packets_registered, 0)
        << "trunk " << t.from_hub << "->" << t.to_hub << " moved nothing";
  }
  // Downlink rows are keyed by serving hub = the receiver's home hub.
  for (const ConferenceStats::Downlink& d : stats.downlinks) {
    EXPECT_EQ(d.hub, d.receiver % 3);
  }
  const std::string json = ConferenceStatsToJson(stats);
  EXPECT_NE(json.find("\"num_hubs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"trunks\""), std::string::npos);
  EXPECT_NE(json.find("\"hubs\""), std::string::npos);
}

// --- 4. Mid-call hub failover -----------------------------------------------

ConferenceConfig FailoverConfig(uint64_t seed) {
  ConferenceConfig config = CascadeStarConfig(9, Duration::Seconds(8), seed);
  config.num_hubs = 3;
  FaultPlan outage;
  outage.Add(FaultEvent::Outage(Timestamp::Zero() + Duration::Seconds(2),
                                Duration::Seconds(2)));
  config.hub_fault_plans.resize(3);
  config.hub_fault_plans[1] = outage;
  return config;
}

TEST(ConferenceCascadeTest, HubFailureRehomesParticipantsCleanly) {
  ScopedInvariants invariants;
  Conference conference(FailoverConfig(29));
  const ConferenceStats stats = conference.Run();

  // Hub 1 failed once; its 3 home participants re-homed to hub 2 (the next
  // alive hub in ring order) and did not move back at recovery.
  ASSERT_EQ(stats.hubs.size(), 3u);
  EXPECT_EQ(stats.hubs[1].failures, 1);
  EXPECT_EQ(stats.hubs[1].rehomed_away, 3);
  EXPECT_EQ(stats.hubs[2].rehomed_onto, 3);
  EXPECT_EQ(stats.hubs[1].home_participants, 0);
  EXPECT_EQ(stats.hubs[2].home_participants, 6);
  for (int p : {1, 4, 7}) EXPECT_EQ(conference.home_hub(p), 2);

  // Re-homed publishers rebuilt under a fresh SSRC incarnation and moved
  // real bytes after the failover.
  int rehomed_legs = 0;
  double rehomed_tput = 0.0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    if (leg.incarnation != 1) continue;
    ++rehomed_legs;
    EXPECT_DOUBLE_EQ(leg.joined_s, 2.0);
    rehomed_tput += leg.stats.TotalTputMbps();
  }
  // 3 re-homed publishers x 8 receivers each, built in the rebuild batch.
  EXPECT_EQ(rehomed_legs, 24);
  EXPECT_GT(rehomed_tput, 0.0);

  // Trunks touching hub 1 retired at the failure and were rebuilt at
  // recovery: 12 initial + 4 rebuilt directed trunks, 2 paths each; the 8
  // retired rows stay in the export flagged dead.
  ASSERT_EQ(stats.trunks.size(), 20u);
  int live = 0;
  for (const ConferenceStats::Trunk& t : stats.trunks) {
    if (t.live) ++live;
  }
  EXPECT_EQ(live, 12);

  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

// The full failover scenario is byte-deterministic across worker counts and
// reruns (the scenario suite pins the larger 3-hub acceptance scenario; this
// is the fast structural version).
TEST(ConferenceCascadeTest, FailoverDeterministicAcrossJobs) {
  std::vector<ConferenceConfig> configs;
  for (uint64_t seed = 29; seed <= 31; ++seed) {
    configs.push_back(FailoverConfig(seed));
  }
  const std::vector<ConferenceStats> serial = RunConferences(configs, 1);
  const std::vector<ConferenceStats> parallel = RunConferences(configs, 8);
  const std::vector<ConferenceStats> rerun = RunConferences(configs, 1);
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(ConferenceStatsToJson(serial[i]),
              ConferenceStatsToJson(parallel[i]))
        << "seed " << configs[i].seed << ": jobs=8 diverged";
    EXPECT_EQ(ConferenceStatsToJson(serial[i]),
              ConferenceStatsToJson(rerun[i]))
        << "seed " << configs[i].seed << ": rerun diverged";
  }
}

}  // namespace
}  // namespace converge
