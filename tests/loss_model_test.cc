#include <gtest/gtest.h>

#include "net/loss_model.h"

namespace converge {
namespace {

TEST(LossModelTest, NoLossNeverDrops) {
  NoLoss model;
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.ShouldDrop(Timestamp::Zero(), rng));
  }
  EXPECT_EQ(model.AverageRate(Timestamp::Zero()), 0.0);
}

TEST(LossModelTest, BernoulliMatchesRate) {
  BernoulliLoss model(0.07);
  Random rng(5);
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (model.ShouldDrop(Timestamp::Zero(), rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.07, 0.005);
  EXPECT_EQ(model.AverageRate(Timestamp::Zero()), 0.07);
}

TEST(LossModelTest, GilbertElliottIsBursty) {
  // Same average rate as a Bernoulli model, but losses must cluster:
  // P(loss | previous loss) >> average loss rate.
  GilbertElliottLoss::Config config;
  config.p_good_to_bad = 0.004;
  config.p_bad_to_good = 0.05;
  config.loss_good = 0.0;
  config.loss_bad = 0.4;
  GilbertElliottLoss model(config);
  Random rng(9);

  int losses = 0;
  int pairs = 0;        // loss followed by loss
  bool prev_lost = false;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const bool lost = model.ShouldDrop(Timestamp::Zero(), rng);
    if (lost) {
      ++losses;
      if (prev_lost) ++pairs;
    }
    prev_lost = lost;
  }
  const double avg = static_cast<double>(losses) / n;
  const double cond = static_cast<double>(pairs) / std::max(1, losses);
  EXPECT_GT(cond, 3.0 * avg);  // heavy clustering
}

TEST(LossModelTest, TraceLossFollowsSchedule) {
  // 0% for the first second, 50% afterwards.
  ValueTrace schedule({{Timestamp::Seconds(0), 0.0},
                       {Timestamp::Seconds(1), 0.5}},
                      /*repeat=*/false);
  TraceLoss model{ValueTrace(schedule)};
  Random rng(3);
  int early = 0;
  int late = 0;
  for (int i = 0; i < 5000; ++i) {
    if (model.ShouldDrop(Timestamp::Millis(500), rng)) ++early;
    if (model.ShouldDrop(Timestamp::Millis(1500), rng)) ++late;
  }
  EXPECT_EQ(early, 0);
  EXPECT_NEAR(static_cast<double>(late) / 5000.0, 0.5, 0.03);
  EXPECT_EQ(model.AverageRate(Timestamp::Millis(1500)), 0.5);
}

}  // namespace
}  // namespace converge
