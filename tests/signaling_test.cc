#include <gtest/gtest.h>

#include "signaling/negotiation.h"

namespace converge {
namespace {

std::vector<NetworkInterface> DualInterfaces() {
  NetworkInterface wifi;
  wifi.name = "wlan0";
  wifi.address = "192.168.1.10";
  wifi.network_id = 0;
  wifi.local_preference = 65535;
  NetworkInterface cell;
  cell.name = "rmnet0";
  cell.address = "10.20.30.40";
  cell.network_id = 1;
  cell.local_preference = 60000;
  return {wifi, cell};
}

TEST(SdpTest, SerializeParseRoundTrip) {
  SessionDescription desc;
  desc.multipath_supported = true;
  desc.max_paths = 2;
  desc.header_extensions.push_back(kMultipathExtensionUri);
  desc.streams.push_back({0x1000, "camera0"});
  desc.streams.push_back({0x1001, "camera1"});

  const auto parsed = ParseSdp(SerializeSdp(desc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->multipath_supported);
  EXPECT_EQ(parsed->max_paths, 2);
  ASSERT_EQ(parsed->streams.size(), 2u);
  EXPECT_EQ(parsed->streams[0].ssrc, 0x1000u);
  EXPECT_EQ(parsed->streams[1].label, "camera1");
  ASSERT_EQ(parsed->header_extensions.size(), 1u);
  EXPECT_EQ(parsed->header_extensions[0], kMultipathExtensionUri);
}

TEST(SdpTest, LegacySdpHasNoMultipath) {
  SessionDescription desc;  // defaults: no multipath
  const auto parsed = ParseSdp(SerializeSdp(desc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->multipath_supported);
  EXPECT_EQ(parsed->max_paths, 1);
}

TEST(SdpTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseSdp("not sdp at all").has_value());
  EXPECT_FALSE(ParseSdp("v=1\r\nm=video 9 X 96\r\n").has_value());
  EXPECT_FALSE(ParseSdp("v=0\r\n").has_value());  // no media section
}

TEST(SdpTest, UnknownAttributesTolerated) {
  // A legacy endpoint may include attributes we do not understand.
  const std::string sdp =
      "v=0\r\no=legacy 0 0 IN IP4 0.0.0.0\r\ns=call\r\nt=0 0\r\n"
      "m=video 9 UDP/TLS/RTP/SAVPF 96\r\n"
      "a=rtcp-mux\r\na=setup:actpass\r\n"
      "a=ssrc:4096 label:cam\r\n";
  const auto parsed = ParseSdp(sdp);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->multipath_supported);
  ASSERT_EQ(parsed->streams.size(), 1u);
  EXPECT_EQ(parsed->streams[0].ssrc, 4096u);
}

TEST(IceTest, PriorityFormula) {
  // host > srflx; higher local preference wins within a type.
  const uint32_t host_hi = CandidatePriority(CandidateType::kHost, 65535, 1);
  const uint32_t host_lo = CandidatePriority(CandidateType::kHost, 60000, 1);
  const uint32_t srflx = CandidatePriority(CandidateType::kServerReflexive,
                                           65535, 1);
  EXPECT_GT(host_hi, host_lo);
  EXPECT_GT(host_lo, srflx);
}

TEST(IceTest, GatherProducesHostAndSrflx) {
  const auto candidates = GatherCandidates(DualInterfaces());
  // 2 interfaces x (host + srflx behind NAT).
  EXPECT_EQ(candidates.size(), 4u);
  int hosts = 0;
  for (const auto& c : candidates) {
    if (c.type == CandidateType::kHost) ++hosts;
    EXPECT_GT(c.priority, 0u);
  }
  EXPECT_EQ(hosts, 2);
}

TEST(IceTest, LegacyPairingKeepsSingleBestPair) {
  const auto local = GatherCandidates(DualInterfaces());
  const auto remote = GatherCandidates(DualInterfaces(), 60000);
  const auto pairs = PairCandidates(local, remote, /*multipath=*/false);
  ASSERT_EQ(pairs.size(), 1u);
  // Best pair is WiFi-WiFi (highest preferences).
  EXPECT_EQ(pairs[0].local.network_id, 0);
}

TEST(IceTest, MultipathPairingOnePairPerLocalInterface) {
  const auto local = GatherCandidates(DualInterfaces());
  const auto remote = GatherCandidates(DualInterfaces(), 60000);
  const auto pairs = PairCandidates(local, remote, /*multipath=*/true);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_NE(pairs[0].local.network_id, pairs[1].local.network_id);
}

TEST(NegotiationTest, BothCapableYieldsMultipath) {
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  EndpointCapabilities b = a;
  const NegotiatedSession session = Negotiate(a, b);
  EXPECT_TRUE(session.use_multipath);
  EXPECT_EQ(session.num_paths, 2);
}

TEST(NegotiationTest, LegacyRemoteFallsBackToSinglePath) {
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  EndpointCapabilities legacy;
  legacy.supports_multipath = false;
  legacy.interfaces = DualInterfaces();
  const NegotiatedSession session = Negotiate(a, legacy);
  EXPECT_FALSE(session.use_multipath);
  EXPECT_EQ(session.num_paths, 1);
}

TEST(NegotiationTest, SingleInterfaceCannotOfferMultipath) {
  EndpointCapabilities a;
  a.interfaces = {DualInterfaces()[0]};
  EndpointCapabilities b;
  b.interfaces = DualInterfaces();
  const NegotiatedSession session = Negotiate(a, b);
  EXPECT_FALSE(session.use_multipath);
}

TEST(NegotiationTest, MaxPathsIntersection) {
  std::vector<NetworkInterface> three = DualInterfaces();
  NetworkInterface extra;
  extra.name = "rmnet1";
  extra.address = "10.99.0.2";
  extra.network_id = 2;
  extra.local_preference = 55000;
  three.push_back(extra);

  EndpointCapabilities a;
  a.interfaces = three;
  a.max_paths = 3;
  EndpointCapabilities b;
  b.interfaces = DualInterfaces();
  b.max_paths = 2;
  const NegotiatedSession session = Negotiate(a, b);
  EXPECT_TRUE(session.use_multipath);
  EXPECT_LE(session.num_paths, 2);  // limited by the answerer
}

TEST(NegotiationTest, OfferAdvertisesExtensionUri) {
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  const SessionDescription offer = CreateOffer(a);
  ASSERT_TRUE(offer.multipath_supported);
  ASSERT_FALSE(offer.header_extensions.empty());
  EXPECT_EQ(offer.header_extensions[0], kMultipathExtensionUri);
}

TEST(NegotiationTest, OfferCarriesParticipantScopedSsrcs) {
  EndpointCapabilities caps;
  caps.participant_id = 2;
  caps.num_streams = 2;
  caps.interfaces = DualInterfaces();
  const SessionDescription offer = CreateOffer(caps);
  ASSERT_EQ(offer.streams.size(), 2u);
  EXPECT_EQ(offer.streams[0].ssrc, 0x1200u);  // 0x1000 + 2 * 0x100
  EXPECT_EQ(offer.streams[1].ssrc, 0x1201u);
  // Participant 0 keeps the historical point-to-point layout.
  caps.participant_id = 0;
  EXPECT_EQ(CreateOffer(caps).streams[0].ssrc, 0x1000u);
}

TEST(NegotiationTest, MeshPlanNegotiatesEveryPairOnce) {
  std::vector<EndpointCapabilities> participants(3);
  for (int i = 0; i < 3; ++i) {
    participants[static_cast<size_t>(i)].participant_id = i;
    participants[static_cast<size_t>(i)].interfaces = DualInterfaces();
  }
  const ConferencePlan plan = NegotiateMesh(participants);
  EXPECT_FALSE(plan.star);
  EXPECT_EQ(plan.num_participants, 3);
  ASSERT_EQ(plan.sessions.size(), 3u);  // C(3, 2) unordered pairs
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      const NegotiatedSession& session = plan.PairSession(a, b);
      EXPECT_TRUE(session.use_multipath) << "pair " << a << "," << b;
      // PairSession is order-insensitive: both lookups hit the same entry.
      EXPECT_EQ(&session, &plan.PairSession(b, a));
    }
  }
}

TEST(NegotiationTest, MeshPlanLegacyEndpointDowngradesOnlyItsOwnPairs) {
  std::vector<EndpointCapabilities> participants(3);
  for (int i = 0; i < 3; ++i) {
    participants[static_cast<size_t>(i)].participant_id = i;
    participants[static_cast<size_t>(i)].interfaces = DualInterfaces();
  }
  participants[1].supports_multipath = false;
  const ConferencePlan plan = NegotiateMesh(participants);
  EXPECT_FALSE(plan.PairSession(0, 1).use_multipath);
  EXPECT_FALSE(plan.PairSession(1, 2).use_multipath);
  // The pair not involving the legacy endpoint keeps multipath.
  EXPECT_TRUE(plan.PairSession(0, 2).use_multipath);
}

TEST(MembershipTest, ValidatesTimelines) {
  auto at = [](double s) { return Timestamp::Zero() + Duration::Seconds(s); };
  using K = MembershipEvent::Kind;

  // Valid: a late joiner, and a leave + rejoin.
  EXPECT_EQ(ValidateMembership(3, {{K::kJoin, at(5), 2}}), "");
  EXPECT_EQ(ValidateMembership(3, {{K::kLeave, at(4), 1},
                                   {K::kJoin, at(8), 1}}),
            "");
  EXPECT_EQ(ValidateMembership(2, {}), "");

  // Invalid: unknown participant, joining while present, leaving twice,
  // non-increasing per-participant times.
  EXPECT_NE(ValidateMembership(2, {{K::kJoin, at(1), 5}}), "");
  EXPECT_NE(ValidateMembership(2, {{K::kLeave, at(2), 0},
                                   {K::kJoin, at(4), 0},
                                   {K::kJoin, at(6), 0}}),
            "");
  EXPECT_NE(ValidateMembership(2, {{K::kLeave, at(2), 0},
                                   {K::kLeave, at(4), 0}}),
            "");
  EXPECT_NE(ValidateMembership(2, {{K::kLeave, at(4), 0},
                                   {K::kJoin, at(4), 0}}),
            "");
}

TEST(MembershipTest, PresenceAndIncarnationQueries) {
  auto at = [](double s) { return Timestamp::Zero() + Duration::Seconds(s); };
  using K = MembershipEvent::Kind;
  const std::vector<MembershipEvent> events = {
      {K::kJoin, at(3), 2},                       // late joiner
      {K::kLeave, at(4), 1}, {K::kJoin, at(8), 1}  // leave + rejoin
  };

  // Absent at t=0 iff the first event is a join.
  EXPECT_TRUE(MembershipPresentAtStart(0, events));
  EXPECT_TRUE(MembershipPresentAtStart(1, events));
  EXPECT_FALSE(MembershipPresentAtStart(2, events));

  // Incarnation = completed leaves at or before t; the rejoin at 8 s runs
  // as incarnation 1.
  EXPECT_EQ(MembershipIncarnationAt(1, at(0), events), 0);
  EXPECT_EQ(MembershipIncarnationAt(1, at(4), events), 1);
  EXPECT_EQ(MembershipIncarnationAt(1, at(8), events), 1);
  EXPECT_EQ(MembershipIncarnationAt(2, at(10), events), 0);
}

TEST(MembershipTest, ChurnAwareMeshPlanCarriesTimeline) {
  auto at = [](double s) { return Timestamp::Zero() + Duration::Seconds(s); };
  using K = MembershipEvent::Kind;
  std::vector<EndpointCapabilities> participants(3);
  for (int i = 0; i < 3; ++i) {
    participants[static_cast<size_t>(i)].participant_id = i;
    participants[static_cast<size_t>(i)].interfaces = DualInterfaces();
  }

  // The full roster negotiates up front (a rejoiner reuses its session);
  // the timeline is attached sorted.
  const ConferencePlan plan = NegotiateMesh(
      participants, {{K::kJoin, at(8), 1}, {K::kLeave, at(4), 1}});
  ASSERT_EQ(plan.membership.size(), 2u);
  EXPECT_EQ(plan.membership[0].kind, K::kLeave);
  EXPECT_TRUE(plan.PresentAtStart(1));
  EXPECT_TRUE(plan.PresentAt(1, at(2)));
  EXPECT_FALSE(plan.PresentAt(1, at(6)));
  EXPECT_TRUE(plan.PresentAt(1, at(10)));
  // Pairwise sessions exist for every pair regardless of churn.
  EXPECT_TRUE(plan.PairSession(0, 1).use_multipath);
}

TEST(NegotiationTest, StarPlanNegotiatesOneUplinkPerParticipant) {
  EndpointCapabilities forwarder;
  forwarder.participant_id = 100;
  forwarder.interfaces = DualInterfaces();
  std::vector<EndpointCapabilities> participants(3);
  for (int i = 0; i < 3; ++i) {
    participants[static_cast<size_t>(i)].participant_id = i;
    participants[static_cast<size_t>(i)].interfaces = DualInterfaces();
  }
  participants[2].supports_multipath = false;

  const ConferencePlan plan = NegotiateStar(forwarder, participants);
  EXPECT_TRUE(plan.star);
  ASSERT_EQ(plan.sessions.size(), 3u);
  EXPECT_TRUE(plan.UplinkSession(0).use_multipath);
  EXPECT_TRUE(plan.UplinkSession(1).use_multipath);
  // A legacy participant only downgrades its own uplink to the forwarder.
  EXPECT_FALSE(plan.UplinkSession(2).use_multipath);
}

TEST(SdpTest, DefaultCcOmitsAttributeForByteCompat) {
  // The historical SDP never carried a CC attribute; the GCC default must
  // keep serializing byte-identically, and a legacy description parses back
  // to "gcc".
  SessionDescription desc;
  const std::string sdp = SerializeSdp(desc);
  EXPECT_EQ(sdp.find(kCcAttribute), std::string::npos);
  const auto parsed = ParseSdp(sdp);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cc_algorithm, "gcc");
}

TEST(SdpTest, NonDefaultCcRoundTrips) {
  SessionDescription desc;
  desc.cc_algorithm = "nada";
  const std::string sdp = SerializeSdp(desc);
  EXPECT_NE(sdp.find("a=x-converge-cc:nada"), std::string::npos);
  const auto parsed = ParseSdp(sdp);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cc_algorithm, "nada");
}

TEST(NegotiationTest, MatchingCcAlgorithmIsNegotiated) {
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  a.cc_algorithm = "cross";
  EndpointCapabilities b = a;
  const NegotiatedSession session = Negotiate(a, b);
  EXPECT_EQ(session.cc_algorithm, "cross");
}

TEST(NegotiationTest, MismatchedCcAlgorithmFallsBackToGcc) {
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  a.cc_algorithm = "nada";
  EndpointCapabilities b = a;
  b.cc_algorithm = "cross";
  const NegotiatedSession session = Negotiate(a, b);
  EXPECT_EQ(session.cc_algorithm, "gcc");
}

TEST(NegotiationTest, LegacyAnswererFallsBackToGcc) {
  // A legacy remote never echoes the attribute (its caps keep the "gcc"
  // default), so the offerer lands on GCC even though it advertised NADA.
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  a.cc_algorithm = "nada";
  EndpointCapabilities legacy;
  legacy.interfaces = DualInterfaces();
  const NegotiatedSession session = Negotiate(a, legacy);
  EXPECT_EQ(session.cc_algorithm, "gcc");

  // Answer-side sanity: the echo only happens on an exact match.
  const SessionDescription offer = CreateOffer(a);
  EXPECT_EQ(offer.cc_algorithm, "nada");
  const SessionDescription answer = CreateAnswer(legacy, offer);
  EXPECT_EQ(answer.cc_algorithm, "gcc");
}

TEST(SdpTest, DefaultHomeHubOmitsAttributeForByteCompat) {
  SessionDescription desc;
  const std::string text = SerializeSdp(desc);
  EXPECT_EQ(text.find("x-converge-home-hub"), std::string::npos);
  const auto parsed = ParseSdp(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->home_hub, 0);
}

TEST(SdpTest, HomeHubAttributeRoundTrips) {
  SessionDescription desc;
  desc.home_hub = 2;
  const std::string text = SerializeSdp(desc);
  EXPECT_NE(text.find("a=x-converge-home-hub:2"), std::string::npos);
  const auto parsed = ParseSdp(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->home_hub, 2);
}

TEST(SdpTest, DefaultLayersOmitAttributeForByteCompat) {
  // Single-layer descriptions never carry the layers attribute, so the
  // serialized SDP is byte-identical to the pre-layers format; a legacy
  // description parses back to 1x1.
  SessionDescription desc;
  const std::string text = SerializeSdp(desc);
  EXPECT_EQ(text.find(kLayersAttribute), std::string::npos);
  const auto parsed = ParseSdp(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->simulcast_rungs, 1);
  EXPECT_EQ(parsed->temporal_layers, 1);
}

TEST(SdpTest, LayersAttributeRoundTrips) {
  SessionDescription desc;
  desc.simulcast_rungs = 3;
  desc.temporal_layers = 2;
  const std::string text = SerializeSdp(desc);
  EXPECT_NE(text.find("a=x-converge-layers:3x2"), std::string::npos);
  const auto parsed = ParseSdp(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->simulcast_rungs, 3);
  EXPECT_EQ(parsed->temporal_layers, 2);
}

TEST(NegotiationTest, LayersResolveToElementWiseMinimum) {
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  a.simulcast_rungs = 3;
  a.temporal_layers = 2;
  EndpointCapabilities b = a;
  b.simulcast_rungs = 2;
  b.temporal_layers = 3;
  const NegotiatedSession session = Negotiate(a, b);
  EXPECT_EQ(session.simulcast_rungs, 2);
  EXPECT_EQ(session.temporal_layers, 2);
}

TEST(NegotiationTest, LegacyPeerFallsBackToSingleLayer) {
  // A legacy answerer never echoes the attribute: both sides land on 1x1
  // however many rungs the offer advertised.
  EndpointCapabilities a;
  a.interfaces = DualInterfaces();
  a.simulcast_rungs = 3;
  a.temporal_layers = 3;
  EndpointCapabilities legacy;
  legacy.interfaces = DualInterfaces();
  const NegotiatedSession session = Negotiate(a, legacy);
  EXPECT_EQ(session.simulcast_rungs, 1);
  EXPECT_EQ(session.temporal_layers, 1);

  const SessionDescription offer = CreateOffer(a);
  EXPECT_EQ(offer.simulcast_rungs, 3);
  const SessionDescription answer = CreateAnswer(legacy, offer);
  EXPECT_EQ(answer.simulcast_rungs, 1);
  // The 1x1 answer stays byte-silent about layers entirely.
  EXPECT_EQ(SerializeSdp(answer).find(kLayersAttribute), std::string::npos);
}

TEST(NegotiationTest, CascadePlanHonorsValidPinsAndDefaultsLegacy) {
  EndpointCapabilities forwarder;
  forwarder.interfaces = DualInterfaces();
  std::vector<EndpointCapabilities> participants(3);
  for (size_t i = 0; i < participants.size(); ++i) {
    participants[i].participant_id = static_cast<int>(i);
    participants[i].interfaces = DualInterfaces();
  }
  participants[0].home_hub = 1;  // valid pin
  participants[1].home_hub = 0;  // legacy default: lands on hub 0
  participants[2].home_hub = 2;  // valid pin

  const ConferencePlan plan =
      NegotiateCascade(forwarder, participants, /*num_hubs=*/3);
  EXPECT_TRUE(plan.star);
  EXPECT_EQ(plan.num_hubs, 3);
  ASSERT_EQ(plan.home_hub.size(), 3u);
  EXPECT_EQ(plan.home_hub[0], 1);
  EXPECT_EQ(plan.home_hub[1], 0);
  EXPECT_EQ(plan.home_hub[2], 2);
  // The uplink sessions are exactly the star negotiation's.
  EXPECT_EQ(plan.sessions.size(), 3u);
}

TEST(NegotiationTest, CascadeSingleHubIsDegenerateStarPlan) {
  EndpointCapabilities forwarder;
  forwarder.interfaces = DualInterfaces();
  std::vector<EndpointCapabilities> participants(2);
  for (size_t i = 0; i < participants.size(); ++i) {
    participants[i].participant_id = static_cast<int>(i);
    participants[i].interfaces = DualInterfaces();
  }
  const ConferencePlan plan =
      NegotiateCascade(forwarder, participants, /*num_hubs=*/1);
  EXPECT_EQ(plan.num_hubs, 1);
  EXPECT_TRUE(plan.home_hub.empty());  // the plain single-star plan
  EXPECT_TRUE(plan.star);
}

}  // namespace
}  // namespace converge
