// Integration-level checks of the paper's two core claims at small scale:
// QoE feedback prevents the drops a collapsing path causes (§6.2, Table 4),
// and path-specific FEC beats the static table on overhead at equal loss
// (§6.2, Figure 12).
#include <gtest/gtest.h>

#include "session/call.h"

namespace converge {
namespace {

std::vector<PathSpec> CollapsingPathScenario() {
  PathSpec stable;
  stable.name = "p1";
  stable.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(25));
  stable.prop_delay = Duration::Millis(25);

  // Path 2 collapses from 25 Mbps to ~1 Mbps between t=10s and t=30s.
  ValueTrace dynamics({{Timestamp::Seconds(0), 25e6},
                       {Timestamp::Seconds(10), 1e6},
                       {Timestamp::Seconds(30), 25e6}},
                      /*repeat=*/false);
  PathSpec collapsing;
  collapsing.name = "p2";
  collapsing.capacity = BandwidthTrace(dynamics);
  collapsing.prop_delay = Duration::Millis(30);
  return {stable, collapsing};
}

CallStats RunScenario(Variant variant) {
  CallConfig config;
  config.variant = variant;
  config.paths = CollapsingPathScenario();
  config.duration = Duration::Seconds(40);
  config.seed = 21;
  Call call(config);
  return call.Run();
}

TEST(FeedbackAblationTest, FeedbackReducesDropsAndFreezes) {
  const CallStats with_fb = RunScenario(Variant::kConverge);
  const CallStats without_fb = RunScenario(Variant::kConvergeNoFeedback);

  // Both survive, but feedback avoids the asymmetry-induced damage.
  EXPECT_GT(with_fb.AvgFps(), 24.0);
  EXPECT_LE(with_fb.total_frame_drops, without_fb.total_frame_drops);
  EXPECT_LE(with_fb.AvgFreezeMs(), without_fb.AvgFreezeMs() + 1.0);
}

TEST(FeedbackAblationTest, PathSpecificFecCheaperThanTableAtEqualQoe) {
  auto lossy = [](Variant v) {
    CallConfig config;
    config.variant = v;
    PathSpec a;
    a.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(15));
    a.prop_delay = Duration::Millis(30);
    a.loss = std::make_shared<BernoulliLoss>(0.03);
    PathSpec b = a;
    b.prop_delay = Duration::Millis(40);
    config.paths = {a, b};
    config.duration = Duration::Seconds(30);
    config.seed = 7;
    Call call(config);
    return call.Run();
  };
  const CallStats path_specific = lossy(Variant::kConverge);
  const CallStats table = lossy(Variant::kConvergeWebRtcFec);

  // Both maintain the frame rate...
  EXPECT_GT(path_specific.AvgFps(), 24.0);
  EXPECT_GT(table.AvgFps(), 24.0);
  // ...but the table pays >10x the parity overhead for it.
  EXPECT_GT(table.fec_overhead, path_specific.fec_overhead * 5.0);
  // And the parity Converge does send repairs real losses more often.
  EXPECT_GT(path_specific.fec_utilization, table.fec_utilization);
}

TEST(FeedbackAblationTest, ConvergeBeatsSrttOnAsymmetricLossyPaths) {
  auto run = [](Variant v) {
    CallConfig config;
    config.variant = v;
    PathSpec fast;
    fast.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(9));
    fast.prop_delay = Duration::Millis(20);
    PathSpec slow;
    slow.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(9));
    slow.prop_delay = Duration::Millis(140);
    slow.loss = std::make_shared<BernoulliLoss>(0.04);
    config.paths = {fast, slow};
    config.duration = Duration::Seconds(30);
    config.seed = 13;
    Call call(config);
    return call.Run();
  };
  const CallStats conv = run(Variant::kConverge);
  const CallStats srtt = run(Variant::kSrtt);
  EXPECT_LE(conv.total_frame_drops, srtt.total_frame_drops);
  EXPECT_LT(conv.AvgE2eMs(), srtt.AvgE2eMs() + 50.0);
  EXPECT_GE(conv.AvgFps() + 0.5, srtt.AvgFps());
}

}  // namespace
}  // namespace converge
