#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace converge {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/csv_basic.csv";
  {
    CsvWriter csv(path, {"t", "a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.Row({1.0, 2.5, 3.0});
    csv.Row({2.0, 4.5, 6.0});
  }
  const std::string content = ReadAll(path);
  EXPECT_EQ(content, "t,a,b\n1,2.5,3\n2,4.5,6\n");
  std::remove(path.c_str());
}

TEST(CsvTest, TruncatesRowsToHeaderWidth) {
  const std::string path = testing::TempDir() + "/csv_trunc.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.Row({1.0, 2.0, 99.0, 100.0});  // extras dropped
  }
  EXPECT_EQ(ReadAll(path), "x,y\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvTest, InvalidPathReportsNotOk) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.Row({1.0});  // must not crash
}

}  // namespace
}  // namespace converge
