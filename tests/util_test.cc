#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"
#include "util/time.h"

namespace converge {
namespace {

TEST(TimeTest, DurationArithmetic) {
  const Duration a = Duration::Millis(100);
  const Duration b = Duration::Millis(50);
  EXPECT_EQ((a + b).ms(), 150.0);
  EXPECT_EQ((a - b).ms(), 50.0);
  EXPECT_EQ((a * 2.0).ms(), 200.0);
  EXPECT_EQ((a / 2).ms(), 50.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_LT(b, a);
  EXPECT_TRUE(Duration::Zero().IsZero());
  EXPECT_TRUE(Duration::Infinity().IsInfinite());
}

TEST(TimeTest, TimestampArithmetic) {
  const Timestamp t = Timestamp::Seconds(1.0);
  EXPECT_EQ((t + Duration::Millis(500)).ms(), 1500.0);
  EXPECT_EQ((t - Timestamp::Millis(400)).ms(), 600.0);
  EXPECT_TRUE(t.IsFinite());
  EXPECT_FALSE(Timestamp::PlusInfinity().IsFinite());
  EXPECT_FALSE(Timestamp::MinusInfinity().IsFinite());
}

TEST(TimeTest, DataRateConversions) {
  const DataRate r = DataRate::MegabitsPerSec(8.0);
  EXPECT_EQ(r.bps(), 8'000'000);
  // 1000 bytes at 8 Mbps -> 1 ms.
  EXPECT_EQ(r.TransmitTime(1000).ms(), 1.0);
  EXPECT_EQ(r.BytesIn(Duration::Millis(1)), 1000);
  EXPECT_EQ((r * 0.5).mbps(), 4.0);
}

TEST(TimeTest, ZeroRateTransmitIsInfinite) {
  EXPECT_TRUE(DataRate::Zero().TransmitTime(100).IsInfinite());
}

TEST(RandomTest, Deterministic) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    const int64_t n = rng.UniformInt(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(RandomTest, BernoulliRate) {
  Random rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RandomTest, BernoulliEdges) {
  Random rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RandomTest, GaussianMoments) {
  Random rng(3);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(5);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.Add(rng.Exponential(4.0));
  EXPECT_NEAR(st.mean(), 4.0, 0.2);
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat st;
  st.Add(1.0);
  st.Add(2.0);
  st.Add(3.0);
  EXPECT_EQ(st.count(), 3);
  EXPECT_DOUBLE_EQ(st.mean(), 2.0);
  EXPECT_DOUBLE_EQ(st.variance(), 1.0);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 3.0);
  st.Clear();
  EXPECT_EQ(st.count(), 0);
}

TEST(StatsTest, SampleSetQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(StatsTest, EwmaConverges) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  for (int i = 0; i < 50; ++i) e.Add(0.0);
  EXPECT_LT(e.value(), 1e-6);
}

TEST(StatsTest, RateEstimatorWindow) {
  RateEstimator est(Duration::Millis(1000));
  Timestamp t = Timestamp::Zero();
  // 125 bytes/ms == 1 Mbps.
  for (int i = 0; i < 1000; ++i) {
    est.AddBytes(t, 125);
    t += Duration::Millis(1);
  }
  EXPECT_NEAR(est.Rate(t).mbps(), 1.0, 0.05);
  // After the window drains, the rate drops to zero.
  EXPECT_EQ(est.Rate(t + Duration::Seconds(2.0)).bps(), 0);
}

TEST(StatsTest, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-100.0);  // clamps to first bin
  h.Add(100.0);   // clamps to last bin
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bins().front(), 2);
  EXPECT_EQ(h.bins().back(), 2);
  EXPECT_NEAR(h.BinCenter(0), 0.5, 1e-9);
}

}  // namespace
}  // namespace converge
