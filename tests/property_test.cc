// Property-style parameterized sweeps over core invariants.
#include <gtest/gtest.h>

#include "core/video_aware_scheduler.h"
#include "fec/converge_fec_controller.h"
#include "fec/fec_tables.h"
#include "fec/webrtc_fec_controller.h"
#include "fec/xor_fec.h"
#include "net/fault_injector.h"
#include "net/fault_plan.h"
#include "net/link.h"
#include "receiver/fec_recovery.h"
#include "receiver/frame_buffer.h"
#include "receiver/packet_buffer.h"
#include "schedulers/mprtp_scheduler.h"
#include "session/call.h"
#include "schedulers/mtput_scheduler.h"
#include "schedulers/path_stats.h"
#include "schedulers/srtt_scheduler.h"
#include "util/invariants.h"
#include "util/random.h"

namespace converge {
namespace {

// ---------------------------------------------------------------------------
// Property: any scheduler assigns every packet of every frame to some path
// (or explicitly blacks out), never inventing or losing packets, for
// arbitrary path counts / frame sizes.
// ---------------------------------------------------------------------------

struct SchedulerCase {
  std::string name;
  std::function<std::unique_ptr<Scheduler>()> make;
};

class SchedulerPropertyTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

std::vector<PathInfo> RandomPaths(Random& rng, int n) {
  std::vector<PathInfo> out;
  for (int i = 0; i < n; ++i) {
    PathInfo p;
    p.id = i;
    p.allocated_rate =
        DataRate::KilobitsPerSec(rng.UniformInt(100, 30000));
    p.goodput = p.allocated_rate * rng.Uniform(0.5, 1.0);
    p.srtt = Duration::Millis(rng.UniformInt(10, 400));
    p.loss = rng.Uniform(0.0, 0.2);
    out.push_back(p);
  }
  return out;
}

std::vector<RtpPacket> RandomFrame(Random& rng, int media) {
  std::vector<RtpPacket> out;
  const bool key = rng.Bernoulli(0.2);
  uint16_t seq = static_cast<uint16_t>(rng.UniformInt(0, 65535));
  auto push = [&](PayloadKind k, Priority prio) {
    RtpPacket p;
    p.seq = seq++;
    p.kind = k;
    p.priority = prio;
    p.frame_kind = key ? FrameKind::kKey : FrameKind::kDelta;
    p.payload_bytes = 1100;
    out.push_back(p);
  };
  if (key) push(PayloadKind::kSps, Priority::kSps);
  push(PayloadKind::kPps, Priority::kPps);
  for (int i = 0; i < media; ++i) {
    push(PayloadKind::kMedia, key ? Priority::kKeyframe : Priority::kNone);
  }
  return out;
}

TEST_P(SchedulerPropertyTest, AssignmentIsCompleteAndValid) {
  const auto [num_paths, media_packets] = GetParam();
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<SrttScheduler>());
  schedulers.push_back(std::make_unique<MtputScheduler>());
  schedulers.push_back(std::make_unique<MprtpScheduler>());
  schedulers.push_back(std::make_unique<VideoAwareScheduler>());

  Random rng(static_cast<uint64_t>(num_paths * 1000 + media_packets));
  for (auto& sched : schedulers) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto paths = RandomPaths(rng, num_paths);
      const auto frame = RandomFrame(rng, media_packets);
      const auto assignment = sched->AssignFrame(frame, paths);
      ASSERT_EQ(assignment.size(), frame.size()) << sched->name();
      for (PathId id : assignment) {
        ASSERT_GE(id, 0) << sched->name();
        ASSERT_LT(id, num_paths) << sched->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PathAndFrameSweep, SchedulerPropertyTest,
    testing::Combine(testing::Values(1, 2, 3, 4),
                     testing::Values(1, 5, 20, 100)));

// ---------------------------------------------------------------------------
// Property: XOR FEC recovers any single loss per parity group, for every
// (media count, parity count, loss position) combination.
// ---------------------------------------------------------------------------

class FecRecoveryPropertyTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FecRecoveryPropertyTest, AnySingleLossPerGroupRecovers) {
  const auto [media_count, fec_count] = GetParam();
  std::vector<RtpPacket> media;
  for (int i = 0; i < media_count; ++i) {
    RtpPacket p;
    p.ssrc = 0x9;
    p.seq = static_cast<uint16_t>(i);
    p.payload_bytes = 500 + i;
    p.frame_id = 1;
    media.push_back(p);
  }
  std::vector<const RtpPacket*> ptrs;
  for (const auto& p : media) ptrs.push_back(&p);
  const auto parity = XorFecEncoder::Generate(ptrs, fec_count, 0);

  for (int lost = 0; lost < media_count; ++lost) {
    std::vector<RtpPacket> recovered;
    FecRecoverer rec([&](const RtpPacket& p) { recovered.push_back(p); });
    for (const auto& p : media) {
      if (p.seq != lost) rec.OnMediaPacket(p);
    }
    for (const auto& f : parity) rec.OnFecPacket(f);
    ASSERT_EQ(recovered.size(), 1u)
        << "media=" << media_count << " fec=" << fec_count << " lost=" << lost;
    EXPECT_EQ(recovered[0].seq, lost);
    EXPECT_EQ(recovered[0].payload_bytes, 500 + lost);
  }
}

INSTANTIATE_TEST_SUITE_P(MediaFecSweep, FecRecoveryPropertyTest,
                         testing::Combine(testing::Values(1, 2, 5, 13, 40),
                                          testing::Values(1, 2, 3, 7)));

// ---------------------------------------------------------------------------
// Property: long-run FEC overhead of each controller matches its rule across
// a loss sweep — table lookup for WebRTC, l*beta for Converge.
// ---------------------------------------------------------------------------

class FecOverheadPropertyTest : public testing::TestWithParam<double> {};

TEST_P(FecOverheadPropertyTest, ConvergeOverheadTracksLoss) {
  const double loss = GetParam();
  ConvergeFecController ctl;
  int64_t media = 0;
  int64_t fec = 0;
  for (int i = 0; i < 3000; ++i) {
    fec += ctl.NumFecPackets(12, FrameKind::kDelta, 0, loss, loss);
    ctl.OnFrameSent(0, 12, 0);
    media += 12;
  }
  EXPECT_NEAR(static_cast<double>(fec) / media, loss, loss * 0.15 + 0.003);
}

TEST_P(FecOverheadPropertyTest, WebRtcOverheadMatchesTable) {
  const double loss = GetParam();
  WebRtcFecController ctl;
  int64_t media = 0;
  int64_t fec = 0;
  for (int i = 0; i < 3000; ++i) {
    fec += ctl.NumFecPackets(12, FrameKind::kDelta, 0, loss, loss);
    media += 12;
  }
  const double expected = WebRtcProtectionFactor(loss, FrameKind::kDelta);
  EXPECT_NEAR(static_cast<double>(fec) / media, expected, 0.02);
}

TEST_P(FecOverheadPropertyTest, ConvergeAlwaysCheaperThanTable) {
  const double loss = GetParam();
  ConvergeFecController conv;
  WebRtcFecController table;
  int64_t conv_fec = 0;
  int64_t table_fec = 0;
  for (int i = 0; i < 2000; ++i) {
    conv_fec += conv.NumFecPackets(12, FrameKind::kDelta, 0, loss, loss);
    conv.OnFrameSent(0, 12, 0);
    table_fec += table.NumFecPackets(12, FrameKind::kDelta, 0, loss, loss);
  }
  EXPECT_LT(conv_fec, table_fec);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, FecOverheadPropertyTest,
                         testing::Values(0.01, 0.02, 0.03, 0.05, 0.08, 0.10));

// ---------------------------------------------------------------------------
// Property: ProportionalSplit conserves the packet count for arbitrary rate
// vectors.
// ---------------------------------------------------------------------------

TEST(SplitPropertyTest, AlwaysSumsToN) {
  Random rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const int n_paths = static_cast<int>(rng.UniformInt(1, 6));
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    const auto paths = RandomPaths(rng, n_paths);
    const auto split = ProportionalSplit(paths, n);
    int total = 0;
    for (int c : split) {
      EXPECT_GE(c, 0);
      total += c;
    }
    EXPECT_EQ(total, n);
  }
}

// ---------------------------------------------------------------------------
// Property: the video-aware scheduler never sends critical packets to a
// disabled path, across random feedback sequences.
// ---------------------------------------------------------------------------

TEST(VideoAwarePropertyTest, CriticalPacketsNeverOnDisabledPaths) {
  Random rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    VideoAwareScheduler sched;
    const auto paths = RandomPaths(rng, 3);
    // Random feedback barrage.
    for (int i = 0; i < 10; ++i) {
      QoeFeedback fb;
      fb.path_id = static_cast<PathId>(rng.UniformInt(0, 2));
      fb.alpha = static_cast<int32_t>(rng.UniformInt(-20, 3));
      fb.fcd = Duration::Millis(rng.UniformInt(1, 50));
      sched.OnQoeFeedback(fb);
      sched.AssignFrame(RandomFrame(rng, 10), paths);
    }
    const auto frame = RandomFrame(rng, 30);
    const auto assignment = sched.AssignFrame(frame, paths);
    for (size_t i = 0; i < frame.size(); ++i) {
      ASSERT_TRUE(sched.IsPathActive(assignment[i]))
          << "packet assigned to disabled path";
    }
  }
}

// ---------------------------------------------------------------------------
// Conservation properties over whole links: every packet handed to a link is
// delivered, randomly lost, or queue-dropped — nothing vanishes, nothing is
// duplicated — across a sweep of loss rates and offered loads.
// ---------------------------------------------------------------------------

class LinkConservationTest
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LinkConservationTest, PacketsAreConserved) {
  const auto [loss_rate, load_factor] = GetParam();
  EventLoop loop;
  Link::Config config;
  config.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(5));
  config.prop_delay = Duration::Millis(10);
  if (loss_rate > 0) config.loss = std::make_shared<BernoulliLoss>(loss_rate);
  Link link(&loop, config, Random(42));

  int64_t delivered = 0;
  int64_t dropped = 0;
  const int total = 3000;
  // Offer `load_factor` times the link capacity.
  const Duration send_interval =
      Duration::Micros(static_cast<int64_t>(1200.0 * 8 / 5.0 / load_factor));
  Timestamp at = Timestamp::Zero();
  for (int i = 0; i < total; ++i) {
    loop.ScheduleAt(at, [&] {
      link.Send(
          1200, [&](Timestamp) { ++delivered; }, [&](bool) { ++dropped; });
    });
    at += send_interval;
  }
  loop.RunAll();
  EXPECT_EQ(delivered + dropped, total);
  EXPECT_EQ(link.stats().packets_delivered, delivered);
  EXPECT_EQ(link.stats().packets_lost + link.stats().packets_queue_dropped,
            dropped);
  if (load_factor > 1.2) {
    EXPECT_GT(link.stats().packets_queue_dropped, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(LossAndLoadSweep, LinkConservationTest,
                         testing::Combine(testing::Values(0.0, 0.05, 0.3),
                                          testing::Values(0.5, 1.0, 2.0)));

// ---------------------------------------------------------------------------
// Invariant-backed receiver-buffer properties: packets routed through a
// FaultyLink reorder/duplication window arrive shuffled and doubled, and the
// PacketBuffer / FrameBuffer registered invariants must hold throughout.
// ---------------------------------------------------------------------------

TEST(ReceiverBufferPropertyTest,
     PacketBufferInvariantsHoldUnderReorderAndDuplication) {
  ScopedInvariants guard;
  EventLoop loop;
  FaultPlan plan;
  plan.Add(FaultEvent::Reorder(Timestamp::Zero(), Duration::Seconds(60),
                               Duration::Millis(30),
                               /*duplicate_prob=*/0.25));
  Link::Config lc;
  lc.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(20));
  lc.prop_delay = Duration::Millis(10);
  lc.faults = plan;
  auto link = MakeLink(&loop, lc, Random(9));

  int64_t frames_out = 0;
  // Small capacity so the adversarial sequence also exercises eviction.
  PacketBuffer buffer({.capacity_packets = 48},
                      [&](GatheredFrame&&) { ++frames_out; });

  int64_t offered = 0;
  int64_t arrived = 0;
  Random gen(21);
  uint16_t seq = 0;
  Timestamp at = Timestamp::Zero();
  for (int frame = 0; frame < 200; ++frame) {
    const int n_packets = static_cast<int>(gen.UniformInt(1, 6));
    for (int i = 0; i < n_packets; ++i) {
      RtpPacket p;
      p.ssrc = 0x42;
      p.stream_id = 0;
      p.frame_id = frame;
      p.seq = seq++;
      p.first_in_frame = i == 0;
      p.marker = i == n_packets - 1;
      p.payload_bytes = 1000;
      loop.ScheduleAt(at, [&, p] {
        // The duplication fault answers how many copies cross the wire; the
        // buffer sees each as a separate arrival and must dedup.
        for (int c = link->SendCopies(); c > 0; --c) {
          ++offered;
          link->Send(p.payload_bytes, [&, p](Timestamp t) {
            ++arrived;
            buffer.Insert(p, t, 0);
          });
        }
      });
    }
    at += Duration::Millis(5);
  }
  loop.RunAll();

  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();
  EXPECT_EQ(arrived, offered);  // reorder/duplication faults never lose
  EXPECT_GT(offered, 200 * 1);  // duplication actually triggered
  // Conservation: every arrival was deduped, stored, or made room.
  const PacketBuffer::Stats& st = buffer.stats();
  EXPECT_EQ(st.inserted + st.duplicates, arrived);
  EXPECT_GT(st.duplicates, 0);
  EXPECT_LE(buffer.size(), 48u);
  // What is neither still buffered, evicted, nor purged left via assembly.
  EXPECT_GE(st.inserted,
            static_cast<int64_t>(buffer.size()) + st.evicted + st.purged);
  EXPECT_EQ(st.frames_assembled, frames_out);
  EXPECT_GT(frames_out, 0);
}

TEST(ReceiverBufferPropertyTest, FrameBufferReleasesInOrderUnderReorderFault) {
  ScopedInvariants guard;
  EventLoop loop;
  FaultPlan plan;
  plan.Add(FaultEvent::Reorder(Timestamp::Zero(), Duration::Seconds(60),
                               Duration::Millis(50)));
  Link::Config lc;
  lc.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(50));
  lc.prop_delay = Duration::Millis(5);
  lc.faults = plan;
  auto link = MakeLink(&loop, lc, Random(13));

  int64_t last_released = -1;
  int64_t released = 0;
  FrameBuffer fb(
      &loop, {.capacity_frames = 8, .max_wait = Duration::Millis(40)},
      [&](const AssembledFrame& f) {
        // Decode order: strictly increasing frame ids, always.
        EXPECT_GT(f.frame_id, last_released);
        last_released = f.frame_id;
        ++released;
      },
      /*on_keyframe_request=*/[] {},
      /*on_purge=*/[](int, int64_t) {});

  Random gen(31);
  Timestamp at = Timestamp::Zero();
  for (int id = 0; id < 200; ++id) {
    AssembledFrame frame;
    frame.stream_id = 0;
    frame.frame_id = id;
    frame.kind = id % 20 == 0 ? FrameKind::kKey : FrameKind::kDelta;
    // ~5% of frames never assemble (their packets were lost upstream):
    // the buffer must wait, give up, and jump without ever violating its
    // ordering invariants.
    if (id % 20 != 0 && gen.Bernoulli(0.05)) {
      at += Duration::Millis(10);
      continue;
    }
    loop.ScheduleAt(at, [&, frame] {
      link->Send(1000, [&, frame](Timestamp) { fb.Insert(frame); });
    });
    at += Duration::Millis(10);
  }
  loop.RunAll();

  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();
  EXPECT_GT(released, 100);
  EXPECT_LE(fb.size(), 8u);
  // Every inserted frame was either released or counted as a drop (frames
  // skipped over are drops too, so dropped >= inserted - released is loose;
  // released alone never exceeds insertions).
  EXPECT_LE(released, fb.stats().frames_inserted);
}

// ---------------------------------------------------------------------------
// End-to-end determinism across every variant: identical configs produce
// bit-identical results.
// ---------------------------------------------------------------------------

class DeterminismTest : public testing::TestWithParam<Variant> {};

TEST_P(DeterminismTest, IdenticalRunsMatch) {
  CallConfig config;
  config.variant = GetParam();
  PathSpec a;
  a.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(6));
  a.prop_delay = Duration::Millis(20);
  a.loss = std::make_shared<BernoulliLoss>(0.01);
  PathSpec b = a;
  b.prop_delay = Duration::Millis(50);
  config.paths = {a, b};
  config.duration = Duration::Seconds(8);
  config.seed = 99;

  Call first(config);
  const CallStats s1 = first.Run();
  Call second(config);
  const CallStats s2 = second.Run();
  EXPECT_EQ(s1.media_packets_sent, s2.media_packets_sent);
  EXPECT_EQ(s1.fec_packets_sent, s2.fec_packets_sent);
  EXPECT_EQ(s1.rtx_packets_sent, s2.rtx_packets_sent);
  EXPECT_EQ(s1.total_frame_drops, s2.total_frame_drops);
  EXPECT_DOUBLE_EQ(s1.AvgFps(), s2.AvgFps());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, DeterminismTest,
    testing::Values(Variant::kWebRtcPath0, Variant::kWebRtcCm, Variant::kSrtt,
                    Variant::kEcf, Variant::kMtput, Variant::kMrtp,
                    Variant::kConverge, Variant::kConvergeNoFeedback,
                    Variant::kConvergeWebRtcFec));

}  // namespace
}  // namespace converge
