#include <gtest/gtest.h>

#include "core/path_manager.h"

namespace converge {
namespace {

PathInfo MakePath(PathId id, double srtt_ms) {
  PathInfo p;
  p.id = id;
  p.allocated_rate = DataRate::MegabitsPerSec(10);
  p.srtt = Duration::Millis(static_cast<int64_t>(srtt_ms));
  return p;
}

TEST(PathManagerTest, AllActiveByDefault) {
  PathManager mgr;
  EXPECT_TRUE(mgr.IsActive(0));
  EXPECT_TRUE(mgr.IsActive(1));
  EXPECT_EQ(mgr.disables(), 0);
}

TEST(PathManagerTest, DisableIsIdempotent) {
  PathManager mgr;
  mgr.Disable(1, Timestamp::Millis(10));
  mgr.Disable(1, Timestamp::Millis(20));
  EXPECT_FALSE(mgr.IsActive(1));
  EXPECT_EQ(mgr.disables(), 1);
}

TEST(PathManagerTest, ActivePathsFilters) {
  PathManager mgr;
  mgr.Disable(0, Timestamp::Millis(1));
  const auto active = mgr.ActivePaths({MakePath(0, 50), MakePath(1, 60)});
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].id, 1);
}

TEST(PathManagerTest, ProbeScheduleRespectsInterval) {
  PathManager::Config c;
  c.probe_interval = Duration::Millis(50);
  PathManager mgr(c);
  mgr.Disable(2, Timestamp::Millis(0));
  EXPECT_EQ(mgr.ProbeDue(Timestamp::Millis(1)), (std::vector<PathId>{2}));
  EXPECT_TRUE(mgr.ProbeDue(Timestamp::Millis(20)).empty());
  EXPECT_EQ(mgr.ProbeDue(Timestamp::Millis(60)), (std::vector<PathId>{2}));
}

TEST(PathManagerTest, ReenableRequiresEq3) {
  PathManager::Config c;
  c.min_disable_time = Duration::Millis(100);
  PathManager mgr(c);
  mgr.Disable(1, Timestamp::Millis(0));
  mgr.OnFeedbackFcd(Duration::Millis(10));

  // RTT gap (400-50)/2 = 175ms > FCD 10ms: stays disabled.
  std::vector<PathInfo> paths = {MakePath(0, 50), MakePath(1, 400)};
  mgr.MaybeReenable(paths, Timestamp::Millis(500));
  EXPECT_FALSE(mgr.IsActive(1));

  // Gap shrinks to (60-50)/2 = 5ms <= 10ms: re-enabled.
  paths[1].srtt = Duration::Millis(60);
  mgr.MaybeReenable(paths, Timestamp::Millis(600));
  EXPECT_TRUE(mgr.IsActive(1));
  EXPECT_EQ(mgr.reenables(), 1);
}

TEST(PathManagerTest, MinDisableTimeHolds) {
  PathManager::Config c;
  c.min_disable_time = Duration::Millis(500);
  PathManager mgr(c);
  mgr.Disable(1, Timestamp::Millis(0));
  mgr.OnFeedbackFcd(Duration::Millis(1000));  // Eq. 3 trivially satisfied

  std::vector<PathInfo> paths = {MakePath(0, 50), MakePath(1, 60)};
  mgr.MaybeReenable(paths, Timestamp::Millis(100));
  EXPECT_FALSE(mgr.IsActive(1));  // too soon
  mgr.MaybeReenable(paths, Timestamp::Millis(600));
  EXPECT_TRUE(mgr.IsActive(1));
}

TEST(PathManagerTest, FasterDisabledPathReenablesImmediately) {
  PathManager::Config c;
  c.min_disable_time = Duration::Zero();
  PathManager mgr(c);
  mgr.Disable(1, Timestamp::Millis(0));
  mgr.OnFeedbackFcd(Duration::Zero());
  // Disabled path is actually faster than the active one: penalty <= 0.
  std::vector<PathInfo> paths = {MakePath(0, 100), MakePath(1, 40)};
  mgr.MaybeReenable(paths, Timestamp::Millis(1));
  EXPECT_TRUE(mgr.IsActive(1));
}

}  // namespace
}  // namespace converge
