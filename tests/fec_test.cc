#include <gtest/gtest.h>

#include "fec/converge_fec_controller.h"
#include "fec/fec_tables.h"
#include "fec/webrtc_fec_controller.h"
#include "fec/xor_fec.h"
#include "receiver/fec_recovery.h"

namespace converge {
namespace {

std::vector<RtpPacket> MakeMedia(int n, uint16_t first_seq = 0) {
  std::vector<RtpPacket> out;
  for (int i = 0; i < n; ++i) {
    RtpPacket p;
    p.ssrc = 0x1000;
    p.seq = static_cast<uint16_t>(first_seq + i);
    p.frame_id = 5;
    p.gop_id = 1;
    p.kind = PayloadKind::kMedia;
    p.payload_bytes = 1000 + i;
    out.push_back(p);
  }
  return out;
}

std::vector<const RtpPacket*> Ptrs(const std::vector<RtpPacket>& v) {
  std::vector<const RtpPacket*> out;
  for (const auto& p : v) out.push_back(&p);
  return out;
}

std::vector<uint16_t> ProtectedSeqs(const RtpPacket& parity) {
  std::vector<uint16_t> out;
  if (parity.fec) {
    for (const ProtectedPacketMeta& meta : parity.fec->covered) {
      out.push_back(meta.seq);
    }
  }
  return out;
}

TEST(XorFecTest, GeneratesRequestedParityCount) {
  const auto media = MakeMedia(10);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 3, 42);
  ASSERT_EQ(parity.size(), 3u);
  for (const auto& f : parity) {
    EXPECT_EQ(f.kind, PayloadKind::kFec);
    EXPECT_EQ(f.priority, Priority::kFec);
    EXPECT_EQ(f.fec_block, 42);
    ASSERT_NE(f.fec, nullptr);
    EXPECT_FALSE(f.fec->covered.empty());
  }
  // Interleaved groups: parity g covers seqs {g, g+3, g+6, ...}.
  EXPECT_EQ(ProtectedSeqs(parity[0]), (std::vector<uint16_t>{0, 3, 6, 9}));
  EXPECT_EQ(ProtectedSeqs(parity[1]), (std::vector<uint16_t>{1, 4, 7}));
  EXPECT_EQ(ProtectedSeqs(parity[2]), (std::vector<uint16_t>{2, 5, 8}));
}

TEST(XorFecTest, EveryMediaPacketCoveredExactlyOnce) {
  const auto media = MakeMedia(17);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 4, 0);
  std::map<uint16_t, int> coverage;
  for (const auto& f : parity) {
    for (uint16_t s : ProtectedSeqs(f)) ++coverage[s];
  }
  EXPECT_EQ(coverage.size(), 17u);
  for (const auto& [seq, n] : coverage) EXPECT_EQ(n, 1);
}

TEST(XorFecTest, ParityCountClampedToMediaCount) {
  const auto media = MakeMedia(2);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 10, 0);
  EXPECT_EQ(parity.size(), 2u);
}

TEST(XorFecTest, ZeroFecOrEmptyMediaYieldNothing) {
  const auto media = MakeMedia(5);
  EXPECT_TRUE(XorFecEncoder::Generate(Ptrs(media), 0, 0).empty());
  EXPECT_TRUE(XorFecEncoder::Generate({}, 3, 0).empty());
}

TEST(XorFecTest, ParityPayloadCoversLargestPacket) {
  const auto media = MakeMedia(6);  // sizes 1000..1005
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 1, 0);
  ASSERT_EQ(parity.size(), 1u);
  EXPECT_GE(parity[0].payload_bytes, 1005);
}

TEST(FecRecoveryTest, RecoversSingleLoss) {
  const auto media = MakeMedia(4);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 1, 7);

  std::vector<RtpPacket> recovered;
  FecRecoverer rec([&](const RtpPacket& p) { recovered.push_back(p); });
  // Deliver all but seq 2, then the parity packet.
  for (const auto& p : media) {
    if (p.seq != 2) rec.OnMediaPacket(p);
  }
  rec.OnFecPacket(parity[0]);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].seq, 2);
  EXPECT_TRUE(recovered[0].via_fec);
  EXPECT_EQ(recovered[0].frame_id, 5);
  EXPECT_EQ(recovered[0].payload_bytes, 1002);
  EXPECT_EQ(rec.stats().fec_used, 1);
}

TEST(FecRecoveryTest, CannotRecoverTwoLossesInOneGroup) {
  const auto media = MakeMedia(4);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 1, 7);
  std::vector<RtpPacket> recovered;
  FecRecoverer rec([&](const RtpPacket& p) { recovered.push_back(p); });
  rec.OnMediaPacket(media[0]);
  rec.OnMediaPacket(media[1]);  // seqs 2 and 3 missing
  rec.OnFecPacket(parity[0]);
  EXPECT_TRUE(recovered.empty());
  EXPECT_EQ(rec.stats().fec_used, 0);
  EXPECT_EQ(rec.pending(), 1u);
}

TEST(FecRecoveryTest, LateMediaArrivalTriggersPendingRecovery) {
  const auto media = MakeMedia(4);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 1, 7);
  std::vector<RtpPacket> recovered;
  FecRecoverer rec([&](const RtpPacket& p) { recovered.push_back(p); });
  rec.OnMediaPacket(media[0]);
  rec.OnMediaPacket(media[1]);
  rec.OnFecPacket(parity[0]);  // two missing: parked
  EXPECT_TRUE(recovered.empty());
  rec.OnMediaPacket(media[2]);  // now only seq 3 missing
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].seq, 3);
}

TEST(FecRecoveryTest, TwoParityPacketsRecoverTwoLossesInDistinctGroups) {
  const auto media = MakeMedia(6);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 2, 9);
  std::vector<RtpPacket> recovered;
  FecRecoverer rec([&](const RtpPacket& p) { recovered.push_back(p); });
  // Lose seq 0 (group 0) and seq 1 (group 1).
  for (const auto& p : media) {
    if (p.seq >= 2) rec.OnMediaPacket(p);
  }
  rec.OnFecPacket(parity[0]);
  rec.OnFecPacket(parity[1]);
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(rec.stats().fec_used, 2);
}

TEST(FecRecoveryTest, NothingMissingCountsAsUnused) {
  const auto media = MakeMedia(4);
  const auto parity = XorFecEncoder::Generate(Ptrs(media), 1, 7);
  FecRecoverer rec([](const RtpPacket&) { FAIL() << "unexpected recovery"; });
  for (const auto& p : media) rec.OnMediaPacket(p);
  rec.OnFecPacket(parity[0]);
  EXPECT_EQ(rec.stats().fec_received, 1);
  EXPECT_EQ(rec.stats().fec_used, 0);
}

TEST(FecTablesTest, MatchesPaperCalibrationPoints) {
  // ~40% at 1% loss (Figure 12), rising with loss; keyframes doubled.
  EXPECT_NEAR(WebRtcProtectionFactor(0.01, FrameKind::kDelta), 0.40, 0.02);
  EXPECT_GT(WebRtcProtectionFactor(0.10, FrameKind::kDelta), 0.55);
  EXPECT_NEAR(WebRtcProtectionFactor(0.01, FrameKind::kKey), 0.80, 0.02);
  EXPECT_LT(WebRtcProtectionFactor(0.0, FrameKind::kDelta), 0.05);
}

TEST(FecTablesTest, MonotoneInLoss) {
  double prev = 0.0;
  for (double loss = 0.0; loss <= 0.2; loss += 0.005) {
    const double f = WebRtcProtectionFactor(loss, FrameKind::kDelta);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(WebRtcFecControllerTest, LongRunOverheadMatchesTable) {
  WebRtcFecController ctl;
  int64_t media = 0;
  int64_t fec = 0;
  for (int frame = 0; frame < 1000; ++frame) {
    const int m = 10;
    fec += ctl.NumFecPackets(m, FrameKind::kDelta, 0, 0.01, 0.01);
    media += m;
  }
  const double overhead = static_cast<double>(fec) / media;
  EXPECT_NEAR(overhead, 0.40, 0.02);
}

TEST(WebRtcFecControllerTest, UsesAggregateLossNotPathLoss) {
  WebRtcFecController ctl;
  int64_t fec_low = 0;
  int64_t fec_high = 0;
  for (int i = 0; i < 200; ++i) {
    fec_low += ctl.NumFecPackets(10, FrameKind::kDelta, 0,
                                 /*path_loss=*/0.2, /*aggregate=*/0.0);
  }
  WebRtcFecController ctl2;
  for (int i = 0; i < 200; ++i) {
    fec_high += ctl2.NumFecPackets(10, FrameKind::kDelta, 0,
                                   /*path_loss=*/0.0, /*aggregate=*/0.1);
  }
  EXPECT_LT(fec_low, fec_high);  // keyed on aggregate, not the path
}

TEST(ConvergeFecControllerTest, OverheadTracksPathLoss) {
  ConvergeFecController ctl;
  int64_t media = 0;
  int64_t fec = 0;
  for (int frame = 0; frame < 2000; ++frame) {
    const int m = 10;
    fec += ctl.NumFecPackets(m, FrameKind::kDelta, 0, 0.05, 0.20);
    ctl.OnFrameSent(0, m, 0);
    media += m;
  }
  // beta ~= 1 with no NACKs -> overhead ~= path loss (5%), far below the
  // table's 40%+.
  EXPECT_NEAR(static_cast<double>(fec) / media, 0.05, 0.01);
}

TEST(ConvergeFecControllerTest, ZeroLossMeansNoFec) {
  ConvergeFecController ctl;
  int64_t fec = 0;
  for (int i = 0; i < 100; ++i) {
    fec += ctl.NumFecPackets(10, FrameKind::kDelta, 0, 0.0, 0.0);
  }
  EXPECT_EQ(fec, 0);
}

TEST(ConvergeFecControllerTest, NackRaisesBetaAndDecays) {
  ConvergeFecController ctl;
  ctl.OnFrameSent(0, 100, 5);
  EXPECT_NEAR(ctl.beta(0), 1.0, 0.01);
  ctl.OnNack(0, 19);  // beta = 1 + 19/95 = 1.2
  EXPECT_NEAR(ctl.beta(0), 1.2, 0.01);
  for (int i = 0; i < 200; ++i) ctl.OnFrameSent(0, 10, 1);
  EXPECT_NEAR(ctl.beta(0), 1.0, 0.02);  // decayed back
}

TEST(ConvergeFecControllerTest, KeyframesGetExtraProtection) {
  ConvergeFecController ctl;
  int64_t fec_key = 0;
  int64_t fec_delta = 0;
  for (int i = 0; i < 500; ++i) {
    fec_key += ctl.NumFecPackets(10, FrameKind::kKey, 0, 0.05, 0.05);
  }
  ConvergeFecController ctl2;
  for (int i = 0; i < 500; ++i) {
    fec_delta += ctl2.NumFecPackets(10, FrameKind::kDelta, 0, 0.05, 0.05);
  }
  EXPECT_NEAR(static_cast<double>(fec_key) / fec_delta, 2.0, 0.3);
}

TEST(ConvergeFecControllerTest, BetaIsPerPath) {
  ConvergeFecController ctl;
  ctl.OnFrameSent(0, 100, 5);
  ctl.OnFrameSent(1, 100, 5);
  ctl.OnNack(1, 50);
  EXPECT_NEAR(ctl.beta(0), 1.0, 0.05);
  EXPECT_GT(ctl.beta(1), 1.3);
}

}  // namespace
}  // namespace converge
