// Regression tests for the parallel multi-seed driver: fanning seeded calls
// across worker threads must be invisible in the results. Every comparison
// here is exact (==, not near): each Call is an isolated deterministic
// island (own EventLoop, own seeded Random), so the parallel run is the
// same arithmetic in a different order of wall-clock time, not a different
// computation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "net/loss_model.h"
#include "session/call.h"

namespace converge {
namespace {

std::vector<PathSpec> TwoLossyPaths() {
  PathSpec a;
  a.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(6));
  a.prop_delay = Duration::Millis(20);
  a.loss = std::make_shared<BernoulliLoss>(0.01);
  PathSpec b = a;
  b.prop_delay = Duration::Millis(50);
  return {a, b};
}

CallConfig ShortConvergeCall() {
  CallConfig config;
  config.variant = Variant::kConverge;
  config.paths = TwoLossyPaths();
  config.duration = Duration::Seconds(6);
  config.seed = 7;
  return config;
}

void ExpectBitIdentical(const CallStats& a, const CallStats& b) {
  // Scalar counters and derived doubles. Doubles compare with ==: identical
  // operations in identical order must give identical bit patterns.
  EXPECT_EQ(a.media_packets_sent, b.media_packets_sent);
  EXPECT_EQ(a.fec_packets_sent, b.fec_packets_sent);
  EXPECT_EQ(a.rtx_packets_sent, b.rtx_packets_sent);
  EXPECT_EQ(a.frames_encoded, b.frames_encoded);
  EXPECT_EQ(a.fec_recovered_packets, b.fec_recovered_packets);
  EXPECT_EQ(a.total_frame_drops, b.total_frame_drops);
  EXPECT_EQ(a.total_keyframe_requests, b.total_keyframe_requests);
  EXPECT_EQ(a.fec_overhead, b.fec_overhead);
  EXPECT_EQ(a.fec_utilization, b.fec_utilization);

  // Per-stream QoE, field by field.
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (size_t i = 0; i < a.streams.size(); ++i) {
    const StreamQoe& x = a.streams[i];
    const StreamQoe& y = b.streams[i];
    EXPECT_EQ(x.avg_fps, y.avg_fps);
    EXPECT_EQ(x.freeze_total_ms, y.freeze_total_ms);
    EXPECT_EQ(x.freeze_count, y.freeze_count);
    EXPECT_EQ(x.e2e_mean_ms, y.e2e_mean_ms);
    EXPECT_EQ(x.e2e_p95_ms, y.e2e_p95_ms);
    EXPECT_EQ(x.e2e_std_ms, y.e2e_std_ms);
    EXPECT_EQ(x.tput_mbps, y.tput_mbps);
    EXPECT_EQ(x.received_mbps, y.received_mbps);
    EXPECT_EQ(x.qp_mean, y.qp_mean);
    EXPECT_EQ(x.psnr_mean_db, y.psnr_mean_db);
    EXPECT_EQ(x.frames_decoded, y.frames_decoded);
    EXPECT_EQ(x.frame_drops, y.frame_drops);
    EXPECT_EQ(x.keyframe_requests, y.keyframe_requests);
  }

  // Full per-second time series.
  ASSERT_EQ(a.time_series.size(), b.time_series.size());
  for (size_t i = 0; i < a.time_series.size(); ++i) {
    const SecondSample& x = a.time_series[i];
    const SecondSample& y = b.time_series[i];
    EXPECT_EQ(x.t_s, y.t_s);
    EXPECT_EQ(x.tput_mbps, y.tput_mbps);
    EXPECT_EQ(x.fps, y.fps);
    EXPECT_EQ(x.e2e_ms, y.e2e_ms);
    EXPECT_EQ(x.ifd_ms, y.ifd_ms);
    EXPECT_EQ(x.fcd_ms, y.fcd_ms);
  }
}

TEST(DeterminismRegressionTest, SameConfigSameSeedBitIdentical) {
  const CallConfig config = ShortConvergeCall();
  Call first(config);
  const CallStats s1 = first.Run();
  Call second(config);
  const CallStats s2 = second.Run();
  ExpectBitIdentical(s1, s2);
}

// The core promise of the parallel driver: running the same seed sweep on 4
// workers and on the serial fallback yields byte-for-byte the same results
// in the same order.
TEST(DeterminismRegressionTest, RunSeedsParallelMatchesSerial) {
  const CallConfig config = ShortConvergeCall();
  const std::vector<uint64_t> seeds = {11, 12, 13};
  const std::vector<CallStats> serial = RunSeeds(config, seeds, /*jobs=*/1);
  const std::vector<CallStats> parallel = RunSeeds(config, seeds, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectBitIdentical(serial[i], parallel[i]);
  }
}

// Same check one level up: RunMany's reduced Aggregate (the numbers every
// table bench prints) is bit-identical across worker counts, because the
// RunningStat reduction happens serially in seed order either way.
TEST(DeterminismRegressionTest, RunManyParallelMatchesSerial) {
  CallConfig base;
  base.variant = Variant::kConverge;
  base.duration = Duration::Seconds(6);
  auto paths = [](uint64_t) { return TwoLossyPaths(); };

  const bench::Aggregate serial = bench::RunMany(base, paths, 3, /*jobs=*/1);
  const bench::Aggregate parallel = bench::RunMany(base, paths, 3, /*jobs=*/4);

  auto expect_stat_eq = [](const RunningStat& x, const RunningStat& y) {
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.mean(), y.mean());
    EXPECT_EQ(x.stddev(), y.stddev());
    EXPECT_EQ(x.min(), y.min());
    EXPECT_EQ(x.max(), y.max());
  };
  expect_stat_eq(serial.fps, parallel.fps);
  expect_stat_eq(serial.freeze_ms, parallel.freeze_ms);
  expect_stat_eq(serial.e2e_ms, parallel.e2e_ms);
  expect_stat_eq(serial.tput_mbps, parallel.tput_mbps);
  expect_stat_eq(serial.qp, parallel.qp);
  expect_stat_eq(serial.psnr_db, parallel.psnr_db);
  expect_stat_eq(serial.frame_drops, parallel.frame_drops);
  expect_stat_eq(serial.keyframe_requests, parallel.keyframe_requests);
  expect_stat_eq(serial.fec_overhead, parallel.fec_overhead);
  expect_stat_eq(serial.fec_utilization, parallel.fec_utilization);
}

// Mixed configs through RunCalls keep input order regardless of which
// worker finishes first.
TEST(DeterminismRegressionTest, RunCallsPreservesInputOrder) {
  CallConfig base = ShortConvergeCall();
  std::vector<CallConfig> configs;
  for (int streams = 1; streams <= 3; ++streams) {
    CallConfig c = base;
    c.num_streams = streams;
    configs.push_back(c);
  }
  const std::vector<CallStats> out = RunCalls(configs, /*jobs=*/3);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].streams.size(), i + 1);
  }
}

}  // namespace
}  // namespace converge
