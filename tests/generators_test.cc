#include <gtest/gtest.h>

#include "trace/generators.h"
#include "util/stats.h"

namespace converge {
namespace {

RunningStat SampleTrace(const BandwidthTrace& trace, Duration length) {
  RunningStat st;
  for (Timestamp t = Timestamp::Zero(); t < Timestamp::Zero() + length;
       t += Duration::Millis(200)) {
    st.Add(trace.CapacityAt(t).mbps());
  }
  return st;
}

TEST(GeneratorsTest, Deterministic) {
  const auto a = GenerateBandwidth(Scenario::kDriving, Carrier::kVerizon, 7);
  const auto b = GenerateBandwidth(Scenario::kDriving, Carrier::kVerizon, 7);
  for (int s = 0; s < 180; s += 5) {
    EXPECT_EQ(a.CapacityAt(Timestamp::Seconds(s)).bps(),
              b.CapacityAt(Timestamp::Seconds(s)).bps());
  }
}

TEST(GeneratorsTest, SeedsChangeTrace) {
  const auto a = GenerateBandwidth(Scenario::kDriving, Carrier::kVerizon, 1);
  const auto b = GenerateBandwidth(Scenario::kDriving, Carrier::kVerizon, 2);
  int diffs = 0;
  for (int s = 0; s < 180; s += 5) {
    if (a.CapacityAt(Timestamp::Seconds(s)).bps() !=
        b.CapacityAt(Timestamp::Seconds(s)).bps()) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 20);
}

TEST(GeneratorsTest, StationaryWifiIsFastAndStable) {
  const auto trace =
      GenerateBandwidth(Scenario::kStationary, Carrier::kWifi, 3);
  const RunningStat st = SampleTrace(trace, Duration::Seconds(180));
  EXPECT_GT(st.mean(), 20.0);
  // Coefficient of variation stays moderate when stationary.
  EXPECT_LT(st.stddev() / st.mean(), 0.5);
}

TEST(GeneratorsTest, DrivingIsMoreVolatileThanStationary) {
  const auto stat = SampleTrace(
      GenerateBandwidth(Scenario::kStationary, Carrier::kTmobile, 5),
      Duration::Seconds(180));
  const auto drive = SampleTrace(
      GenerateBandwidth(Scenario::kDriving, Carrier::kTmobile, 5),
      Duration::Seconds(180));
  EXPECT_GT(drive.stddev() / drive.mean(), stat.stddev() / stat.mean());
}

TEST(GeneratorsTest, DrivingHasOutages) {
  // Across seeds, driving traces dip into outage territory (< 2 Mbps, i.e.
  // below what a 10 Mbps stream needs by 5x).
  int outage_seeds = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const auto trace =
        GenerateBandwidth(Scenario::kDriving, Carrier::kVerizon, seed);
    const RunningStat st = SampleTrace(trace, Duration::Seconds(180));
    if (st.min() < 2.0) ++outage_seeds;
  }
  EXPECT_GE(outage_seeds, 6);
}

TEST(GeneratorsTest, CapacityAlwaysPositive) {
  for (auto scenario :
       {Scenario::kStationary, Scenario::kWalking, Scenario::kDriving}) {
    for (auto carrier :
         {Carrier::kWifi, Carrier::kTmobile, Carrier::kVerizon}) {
      const auto trace = GenerateBandwidth(scenario, carrier, 9);
      const RunningStat st = SampleTrace(trace, Duration::Seconds(180));
      EXPECT_GT(st.min(), 0.0) << ToString(scenario) << "/" << ToString(carrier);
    }
  }
}

TEST(GeneratorsTest, ScenarioPathsMatchPaper) {
  const auto walking = MakeScenarioPaths(Scenario::kWalking, 1);
  ASSERT_EQ(walking.size(), 2u);
  EXPECT_EQ(walking[0].name, "WiFi");
  EXPECT_EQ(walking[1].name, "T-Mobile");

  const auto driving = MakeScenarioPaths(Scenario::kDriving, 1);
  ASSERT_EQ(driving.size(), 2u);
  EXPECT_EQ(driving[0].name, "Verizon");
  EXPECT_EQ(driving[1].name, "T-Mobile");
  EXPECT_NE(driving[0].loss, nullptr);
}

TEST(GeneratorsTest, LossModelScalesWithMobility) {
  auto stationary = GenerateLoss(Scenario::kStationary, Carrier::kTmobile, 1);
  auto driving = GenerateLoss(Scenario::kDriving, Carrier::kTmobile, 1);
  EXPECT_LT(stationary->AverageRate(Timestamp::Zero()),
            driving->AverageRate(Timestamp::Zero()));
}

TEST(GeneratorsTest, ToStringNames) {
  EXPECT_EQ(ToString(Scenario::kWalking), "walking");
  EXPECT_EQ(ToString(Carrier::kVerizon), "Verizon");
}

}  // namespace
}  // namespace converge
