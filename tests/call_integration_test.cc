#include <gtest/gtest.h>

#include "session/call.h"

namespace converge {
namespace {

PathSpec StablePath(const std::string& name, double mbps, int delay_ms,
                    double loss = 0.0) {
  PathSpec spec;
  spec.name = name;
  spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
  spec.prop_delay = Duration::Millis(delay_ms);
  if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
  return spec;
}

CallConfig ShortCall(Variant variant, Duration duration = Duration::Seconds(20)) {
  CallConfig config;
  config.variant = variant;
  config.paths = {StablePath("p0", 15.0, 20), StablePath("p1", 15.0, 25)};
  config.duration = duration;
  config.seed = 3;
  return config;
}

TEST(CallIntegrationTest, ConvergeDeliversVideoOnStablePaths) {
  Call call(ShortCall(Variant::kConverge));
  const CallStats stats = call.Run();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_GT(stats.AvgFps(), 24.0);
  EXPECT_GT(stats.TotalTputMbps(), 2.0);
  EXPECT_LT(stats.AvgE2eMs(), 300.0);
  EXPECT_GT(stats.frames_encoded, 500);
  EXPECT_EQ(stats.total_keyframe_requests, 0);
  EXPECT_LT(stats.total_frame_drops, 20);
}

TEST(CallIntegrationTest, SinglePathWebRtcWorksOnGoodPath) {
  Call call(ShortCall(Variant::kWebRtcPath0));
  const CallStats stats = call.Run();
  EXPECT_GT(stats.AvgFps(), 24.0);
  EXPECT_LT(stats.AvgE2eMs(), 300.0);
}

TEST(CallIntegrationTest, AggregationBeatsSinglePathWhenNeitherPathSuffices) {
  // Each path alone is ~5.5 Mbps but the app wants 10 Mbps.
  auto make = [&](Variant v) {
    CallConfig config;
    config.variant = v;
    config.paths = {StablePath("a", 5.5, 20), StablePath("b", 5.5, 30)};
    config.duration = Duration::Seconds(25);
    config.seed = 5;
    return config;
  };
  Call conv(make(Variant::kConverge));
  const CallStats cs = conv.Run();
  Call single(make(Variant::kWebRtcPath0));
  const CallStats ss = single.Run();
  EXPECT_GT(cs.TotalTputMbps(), ss.TotalTputMbps() * 1.2);
}

TEST(CallIntegrationTest, ConvergeSurvivesPathOutage) {
  // Path 1 dies from t=5s to t=15s.
  ValueTrace dying({{Timestamp::Seconds(0), 12e6},
                    {Timestamp::Seconds(5), 0.05e6},
                    {Timestamp::Seconds(15), 12e6}},
                   /*repeat=*/false);
  CallConfig config;
  config.variant = Variant::kConverge;
  config.paths = {StablePath("alive", 12.0, 20)};
  PathSpec failing;
  failing.name = "failing";
  failing.capacity = BandwidthTrace(dying);
  failing.prop_delay = Duration::Millis(25);
  config.paths.push_back(failing);
  config.duration = Duration::Seconds(25);
  Call call(config);
  const CallStats stats = call.Run();
  // The call keeps running at a usable frame rate thanks to the live path.
  EXPECT_GT(stats.AvgFps(), 15.0);
}

TEST(CallIntegrationTest, LossyPathsStillDeliverWithFec) {
  CallConfig config = ShortCall(Variant::kConverge);
  config.paths = {StablePath("a", 15.0, 20, 0.02),
                  StablePath("b", 15.0, 25, 0.02)};
  Call call(config);
  const CallStats stats = call.Run();
  EXPECT_GT(stats.fec_packets_sent, 0);
  EXPECT_GT(stats.fec_recovered_packets, 0);
  EXPECT_GT(stats.AvgFps(), 20.0);
}

TEST(CallIntegrationTest, MultiStreamCallRuns) {
  CallConfig config = ShortCall(Variant::kConverge);
  config.num_streams = 3;
  config.paths = {StablePath("a", 20.0, 20), StablePath("b", 20.0, 25)};
  Call call(config);
  const CallStats stats = call.Run();
  ASSERT_EQ(stats.streams.size(), 3u);
  for (const StreamQoe& s : stats.streams) {
    EXPECT_GT(s.avg_fps, 15.0);
  }
}

TEST(CallIntegrationTest, DeterministicAcrossRuns) {
  const CallConfig config = ShortCall(Variant::kConverge, Duration::Seconds(10));
  Call a(config);
  Call b(config);
  const CallStats sa = a.Run();
  const CallStats sb = b.Run();
  EXPECT_EQ(sa.media_packets_sent, sb.media_packets_sent);
  EXPECT_EQ(sa.fec_packets_sent, sb.fec_packets_sent);
  EXPECT_DOUBLE_EQ(sa.AvgFps(), sb.AvgFps());
  EXPECT_DOUBLE_EQ(sa.TotalTputMbps(), sb.TotalTputMbps());
}

TEST(CallIntegrationTest, AllVariantsRunWithoutCrashing) {
  for (Variant v :
       {Variant::kWebRtcPath0, Variant::kWebRtcPath1, Variant::kWebRtcCm,
        Variant::kSrtt, Variant::kMtput, Variant::kMrtp, Variant::kConverge,
        Variant::kConvergeNoFeedback, Variant::kConvergeWebRtcFec}) {
    Call call(ShortCall(v, Duration::Seconds(8)));
    const CallStats stats = call.Run();
    EXPECT_GT(stats.frames_encoded, 100) << ToString(v);
    EXPECT_GT(stats.AvgFps(), 1.0) << ToString(v);
  }
}

TEST(CallIntegrationTest, TimeSeriesCoversCallDuration) {
  Call call(ShortCall(Variant::kConverge, Duration::Seconds(12)));
  const CallStats stats = call.Run();
  EXPECT_NEAR(static_cast<double>(stats.time_series.size()), 12.0, 2.0);
  // Throughput series is non-zero once the call ramps.
  double late_tput = 0.0;
  for (const auto& s : stats.time_series) {
    if (s.t_s > 6.0) late_tput += s.tput_mbps;
  }
  EXPECT_GT(late_tput, 1.0);
}

TEST(CallIntegrationTest, RunSeedsProducesOneStatsPerSeed) {
  const auto all =
      RunSeeds(ShortCall(Variant::kConverge, Duration::Seconds(6)), {1, 2, 3});
  EXPECT_EQ(all.size(), 3u);
}

}  // namespace
}  // namespace converge
