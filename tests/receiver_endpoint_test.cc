// Endpoint-level RTCP machinery: per-path receiver reports (loss, SR echo),
// transport feedback with loss marking, NACK emission over per-path
// sequence spaces, and QoE feedback transport.
#include <gtest/gtest.h>

#include "session/receiver_endpoint.h"

namespace converge {
namespace {

class ReceiverEndpointTest : public testing::Test {
 protected:
  ReceiverEndpointTest() { Build(/*per_path_nack=*/true); }

  void Build(bool per_path_nack) {
    ReceiverEndpoint::Config config;
    config.ssrcs = {0x1000};
    config.feedback_interval = Duration::Millis(50);
    config.per_path_nack = per_path_nack;
    endpoint_ = std::make_unique<ReceiverEndpoint>(
        &loop_, config, nullptr,
        [this](PathId path, const RtcpPacket& packet) {
          sent_.emplace_back(path, packet);
        });
    endpoint_->Start();
  }

  RtpPacket MakePacket(PathId path, uint16_t mp_seq, uint16_t seq,
                       PayloadKind kind = PayloadKind::kMedia) {
    RtpPacket p;
    p.ssrc = 0x1000;
    p.seq = seq;
    p.mp_seq = mp_seq;
    p.mp_transport_seq = mp_seq;
    p.path_id = path;
    p.kind = kind;
    p.payload_bytes = 1000;
    p.send_time = loop_.now() - Duration::Millis(30);
    return p;
  }

  template <typename T>
  std::vector<std::pair<PathId, T>> Collect() const {
    std::vector<std::pair<PathId, T>> out;
    for (const auto& [path, pkt] : sent_) {
      if (const T* v = std::get_if<T>(&pkt.payload)) {
        out.emplace_back(path, *v);
      }
    }
    return out;
  }

  EventLoop loop_;
  std::unique_ptr<ReceiverEndpoint> endpoint_;
  std::vector<std::pair<PathId, RtcpPacket>> sent_;
};

TEST_F(ReceiverEndpointTest, PeriodicReceiverReportsPerPath) {
  for (uint16_t s = 0; s < 10; ++s) {
    endpoint_->OnRtpPacket(MakePacket(0, s, s), loop_.now(), 0);
    endpoint_->OnRtpPacket(MakePacket(1, s, 100 + s), loop_.now(), 1);
  }
  loop_.RunUntil(Timestamp::Millis(120));
  const auto reports = Collect<ReceiverReport>();
  int path0 = 0;
  int path1 = 0;
  for (const auto& [path, rr] : reports) {
    if (path == 0) ++path0;
    if (path == 1) ++path1;
    EXPECT_NEAR(rr.fraction_lost, 0.0, 1e-9);
  }
  EXPECT_GE(path0, 2);
  EXPECT_GE(path1, 2);
}

TEST_F(ReceiverEndpointTest, LossFractionReflectsMpSeqGaps) {
  // Path 0: receive mp_seq 0..9 except 3,4 -> 20% loss in the interval.
  for (uint16_t s = 0; s < 10; ++s) {
    if (s == 3 || s == 4) continue;
    endpoint_->OnRtpPacket(MakePacket(0, s, s), loop_.now(), 0);
  }
  loop_.RunUntil(Timestamp::Millis(60));
  const auto reports = Collect<ReceiverReport>();
  ASSERT_FALSE(reports.empty());
  EXPECT_NEAR(reports.front().second.fraction_lost, 0.2, 0.01);
}

TEST_F(ReceiverEndpointTest, TransportFeedbackMarksMissing) {
  endpoint_->OnRtpPacket(MakePacket(0, 0, 0), loop_.now(), 0);
  endpoint_->OnRtpPacket(MakePacket(0, 2, 2), loop_.now(), 0);  // 1 missing
  loop_.RunUntil(Timestamp::Millis(60));
  const auto feedbacks = Collect<TransportFeedback>();
  ASSERT_FALSE(feedbacks.empty());
  const TransportFeedback& fb = feedbacks.front().second;
  ASSERT_EQ(fb.arrivals.size(), 3u);
  EXPECT_TRUE(fb.arrivals[0].recv_time.IsFinite());
  EXPECT_FALSE(fb.arrivals[1].recv_time.IsFinite());  // the missing one
  EXPECT_TRUE(fb.arrivals[2].recv_time.IsFinite());
}

TEST_F(ReceiverEndpointTest, SrEchoedInReceiverReport) {
  RtcpPacket sr_packet;
  sr_packet.path_id = 0;
  SenderReport sr;
  sr.send_time = Timestamp::Millis(5);
  sr_packet.payload = sr;
  endpoint_->OnRtcpPacket(sr_packet, Timestamp::Millis(20), 0);
  endpoint_->OnRtpPacket(MakePacket(0, 0, 0), loop_.now(), 0);
  loop_.RunUntil(Timestamp::Millis(60));
  const auto reports = Collect<ReceiverReport>();
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports.front().second.last_sr_time, Timestamp::Millis(5));
  EXPECT_GT(reports.front().second.delay_since_last_sr, Duration::Zero());
}

TEST_F(ReceiverEndpointTest, NackEmittedForPathGap) {
  endpoint_->OnRtpPacket(MakePacket(0, 0, 0), loop_.now(), 0);
  endpoint_->OnRtpPacket(MakePacket(0, 3, 3), loop_.now(), 0);
  loop_.RunUntil(Timestamp::Millis(30));
  const auto nacks = Collect<Nack>();
  ASSERT_FALSE(nacks.empty());
  EXPECT_EQ(nacks.front().first, 0);  // describes path 0
  EXPECT_EQ(nacks.front().second.seqs, (std::vector<uint16_t>{1, 2}));
}

TEST_F(ReceiverEndpointTest, CrossPathSkewDoesNotNack) {
  // Interleave two paths with per-path continuity.
  for (uint16_t s = 0; s < 20; ++s) {
    endpoint_->OnRtpPacket(MakePacket(s % 2, s / 2, s), loop_.now(), s % 2);
  }
  loop_.RunUntil(Timestamp::Millis(200));
  EXPECT_TRUE(Collect<Nack>().empty());
}

TEST_F(ReceiverEndpointTest, ProbeDuplicatesRefreshStatsOnly) {
  RtpPacket probe = MakePacket(1, 0, 50, PayloadKind::kProbe);
  probe.is_probe_duplicate = true;
  endpoint_->OnRtpPacket(probe, loop_.now(), 1);
  loop_.RunUntil(Timestamp::Millis(60));
  // The probe produced per-path reports for path 1 but no media metrics.
  bool saw_path1_report = false;
  for (const auto& [path, rr] : Collect<ReceiverReport>()) {
    if (path == 1) saw_path1_report = true;
  }
  EXPECT_TRUE(saw_path1_report);
  EXPECT_EQ(endpoint_->stats().media_bytes, 0);
}

TEST_F(ReceiverEndpointTest, SdesSetsExpectedFps) {
  RtcpPacket sdes_packet;
  SdesFrameRate sdes;
  sdes.ssrc = 0x1000;
  sdes.fps = 24.0;
  sdes_packet.payload = sdes;
  endpoint_->OnRtcpPacket(sdes_packet, loop_.now(), 0);
  EXPECT_NEAR(endpoint_->stream(0).qoe().expected_ifd().ms(), 1000.0 / 24.0,
              0.5);
}

TEST_F(ReceiverEndpointTest, LegacyNackModeStormsUnderCrossPathSkew) {
  // The §2.3 pathology: with standard SSRC-sequence NACK, packets still in
  // flight on the other (slower) path read as loss.
  Build(/*per_path_nack=*/false);
  // Even seqs arrive on path 0 now; odd seqs are "in flight" on path 1.
  for (uint16_t s = 0; s < 20; s += 2) {
    endpoint_->OnRtpPacket(MakePacket(0, s / 2, s), loop_.now(), 0);
  }
  loop_.RunUntil(Timestamp::Millis(40));
  const auto nacks = Collect<Nack>();
  ASSERT_FALSE(nacks.empty());
  EXPECT_EQ(nacks.front().second.ssrc, 0x1000u);  // SSRC-addressed
  size_t total = 0;
  for (const auto& [path, n] : nacks) total += n.seqs.size();
  EXPECT_GE(total, 5u);  // spurious requests for the in-flight odd seqs
}

TEST_F(ReceiverEndpointTest, LegacyNackClearedByLateArrival) {
  Build(/*per_path_nack=*/false);
  endpoint_->OnRtpPacket(MakePacket(0, 0, 0), loop_.now(), 0);
  endpoint_->OnRtpPacket(MakePacket(0, 1, 2), loop_.now(), 0);
  // Seq 1 arrives late from the other path before any retry exhausts.
  endpoint_->OnRtpPacket(MakePacket(1, 0, 1), loop_.now(), 1);
  loop_.RunUntil(Timestamp::Millis(400));
  EXPECT_EQ(endpoint_->nack().outstanding(), 0u);
}

TEST_F(ReceiverEndpointTest, RtxClearsNackChase) {
  endpoint_->OnRtpPacket(MakePacket(0, 0, 0), loop_.now(), 0);
  endpoint_->OnRtpPacket(MakePacket(0, 2, 2), loop_.now(), 0);
  loop_.RunUntil(Timestamp::Millis(30));
  ASSERT_FALSE(Collect<Nack>().empty());

  // RTX arrives (on any path) tagged with the hole it plugs.
  RtpPacket rtx = MakePacket(1, 0, 1);
  rtx.via_rtx = true;
  rtx.rtx_for_path = 0;
  rtx.rtx_for_mp_seq = 1;
  endpoint_->OnRtpPacket(rtx, loop_.now(), 1);
  const size_t nacks_before = Collect<Nack>().size();
  loop_.RunUntil(Timestamp::Millis(500));
  EXPECT_EQ(Collect<Nack>().size(), nacks_before);  // chase stopped
  EXPECT_EQ(endpoint_->nack().stats().recovered, 1);
}

}  // namespace
}  // namespace converge
