#include <gtest/gtest.h>

#include "receiver/packet_buffer.h"

namespace converge {
namespace {

RtpPacket MakePacket(uint16_t seq, int64_t frame_id, bool first, bool last,
                     int stream = 0) {
  RtpPacket p;
  p.ssrc = 0x1000;
  p.seq = seq;
  p.stream_id = stream;
  p.frame_id = frame_id;
  p.gop_id = 0;
  p.kind = PayloadKind::kMedia;
  p.payload_bytes = 1000;
  p.first_in_frame = first;
  p.last_in_frame = last;
  p.marker = last;
  return p;
}

class PacketBufferTest : public testing::Test {
 protected:
  PacketBufferTest()
      : buffer_({.capacity_packets = 16},
                [this](GatheredFrame&& f) { frames_.push_back(std::move(f)); }) {}

  PacketBuffer buffer_;
  std::vector<GatheredFrame> frames_;
};

TEST_F(PacketBufferTest, AssemblesCompleteFrameInOrder) {
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(10), 0);
  buffer_.Insert(MakePacket(1, 0, false, false), Timestamp::Millis(12), 0);
  EXPECT_TRUE(frames_.empty());
  buffer_.Insert(MakePacket(2, 0, false, true), Timestamp::Millis(15), 1);
  ASSERT_EQ(frames_.size(), 1u);
  const AssembledFrame& f = frames_[0].frame;
  EXPECT_EQ(f.frame_id, 0);
  EXPECT_EQ(f.packets, 3);
  EXPECT_EQ(f.size_bytes, 3000);
  EXPECT_EQ(f.first_packet_time, Timestamp::Millis(10));
  EXPECT_EQ(f.complete_time, Timestamp::Millis(15));
  EXPECT_EQ(f.fcd, Duration::Millis(5));
  ASSERT_EQ(frames_[0].arrivals.size(), 3u);
  EXPECT_EQ(frames_[0].arrivals[2].path_id, 1);
}

TEST_F(PacketBufferTest, AssemblesOutOfOrderArrival) {
  buffer_.Insert(MakePacket(2, 0, false, true), Timestamp::Millis(15), 0);
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(16), 0);
  buffer_.Insert(MakePacket(1, 0, false, false), Timestamp::Millis(17), 0);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].frame.fcd, Duration::Millis(2));
}

TEST_F(PacketBufferTest, DuplicatesIgnored) {
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(1), 0);
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(2), 1);
  EXPECT_EQ(buffer_.stats().duplicates, 1);
  EXPECT_EQ(buffer_.stats().inserted, 1);
}

TEST_F(PacketBufferTest, MissingMiddlePacketBlocksAssembly) {
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(1), 0);
  buffer_.Insert(MakePacket(2, 0, false, true), Timestamp::Millis(2), 0);
  EXPECT_TRUE(frames_.empty());
  buffer_.Insert(MakePacket(1, 0, false, false), Timestamp::Millis(9), 0);
  EXPECT_EQ(frames_.size(), 1u);
}

TEST_F(PacketBufferTest, OverflowEvictsOldestAndDestroysFrame) {
  // Frame 0 incomplete (missing seq 1), then flood with later frames.
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(1), 0);
  uint16_t seq = 2;
  for (int frame = 1; frame <= 10; ++frame) {
    buffer_.Insert(MakePacket(seq, frame, true, false), Timestamp::Millis(frame), 0);
    buffer_.Insert(MakePacket(seq + 1, frame, false, false),
                   Timestamp::Millis(frame), 0);
    // Leave each frame incomplete so the buffer fills up.
    seq += 3;
  }
  EXPECT_GT(buffer_.stats().evicted, 0);
  EXPECT_GT(buffer_.stats().frames_destroyed, 0);
  EXPECT_LE(buffer_.size(), 16u);
}

TEST_F(PacketBufferTest, PurgeDropsFramesUpToId) {
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(1), 0);
  buffer_.Insert(MakePacket(3, 1, true, false), Timestamp::Millis(2), 0);
  buffer_.Insert(MakePacket(6, 2, true, false), Timestamp::Millis(3), 0);
  buffer_.PurgeFramesUpTo(0, 1);
  EXPECT_EQ(buffer_.stats().purged, 2);
  EXPECT_EQ(buffer_.size(), 1u);
  // Frame 2 can still complete.
  buffer_.Insert(MakePacket(7, 2, false, true), Timestamp::Millis(4), 0);
  EXPECT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].frame.frame_id, 2);
}

TEST_F(PacketBufferTest, PurgedFrameCannotAssembleLater) {
  buffer_.Insert(MakePacket(0, 0, true, false), Timestamp::Millis(1), 0);
  buffer_.PurgeFramesUpTo(0, 0);
  buffer_.Insert(MakePacket(1, 0, false, true), Timestamp::Millis(2), 0);
  EXPECT_TRUE(frames_.empty());
}

TEST_F(PacketBufferTest, TracksRecoveredPackets) {
  RtpPacket fec_recovered = MakePacket(1, 0, false, true);
  fec_recovered.via_fec = true;
  RtpPacket rtx = MakePacket(0, 0, true, false);
  rtx.via_rtx = true;
  buffer_.Insert(rtx, Timestamp::Millis(1), 0);
  buffer_.Insert(fec_recovered, Timestamp::Millis(2), 0);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].frame.recovered_by_fec, 1);
  EXPECT_EQ(frames_[0].frame.recovered_by_rtx, 1);
}

TEST_F(PacketBufferTest, SingleShotFrame) {
  RtpPacket p = MakePacket(0, 0, true, true);
  buffer_.Insert(p, Timestamp::Millis(3), 2);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].frame.fcd, Duration::Zero());
}

TEST_F(PacketBufferTest, MultipleStreamsSeparateFrames) {
  RtpPacket a = MakePacket(0, 0, true, true, /*stream=*/0);
  RtpPacket b = MakePacket(0, 0, true, true, /*stream=*/1);
  b.ssrc = 0x2000;
  buffer_.Insert(a, Timestamp::Millis(1), 0);
  buffer_.Insert(b, Timestamp::Millis(2), 0);
  EXPECT_EQ(frames_.size(), 2u);
}

}  // namespace
}  // namespace converge
