#include <gtest/gtest.h>

#include "session/stats_json.h"

namespace converge {
namespace {

CallStats SampleStats() {
  CallStats stats;
  StreamQoe s;
  s.avg_fps = 29.5;
  s.e2e_mean_ms = 120.0;
  s.tput_mbps = 8.2;
  s.frames_decoded = 5310;
  stats.streams.push_back(s);
  stats.media_packets_sent = 100000;
  stats.fec_packets_sent = 1200;
  stats.fec_overhead = 0.012;
  SecondSample sec;
  sec.t_s = 1.0;
  sec.tput_mbps = 5.5;
  sec.fps = 30.0;
  stats.time_series.push_back(sec);
  return stats;
}

TEST(StatsJsonTest, ContainsAllAggregateFields) {
  const std::string json = CallStatsToJson(SampleStats());
  for (const char* key :
       {"avg_fps", "avg_freeze_ms", "avg_e2e_ms", "total_tput_mbps",
        "media_packets_sent", "fec_packets_sent", "fec_overhead",
        "total_frame_drops", "streams", "time_series"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing key " << key;
  }
}

TEST(StatsJsonTest, StreamAndSeriesValuesPresent) {
  const std::string json = CallStatsToJson(SampleStats());
  EXPECT_NE(json.find("29.5"), std::string::npos);
  EXPECT_NE(json.find("100000"), std::string::npos);
  EXPECT_NE(json.find("5.5"), std::string::npos);
}

TEST(StatsJsonTest, BalancedBracesAndBrackets) {
  const std::string json = CallStatsToJson(SampleStats());
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(StatsJsonTest, EmptyStatsStillValid) {
  const std::string json = CallStatsToJson(CallStats{});
  EXPECT_NE(json.find("\"streams\": ["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(StatsJsonTest, NoTrailingCommas) {
  const std::string json = CallStatsToJson(SampleStats());
  EXPECT_EQ(json.find(",\n}"), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(", ]"), std::string::npos);
}

}  // namespace
}  // namespace converge
