#include <gtest/gtest.h>

#include "session/metrics.h"

namespace converge {
namespace {

DecodedFrame MakeDecoded(int stream, int64_t id, Timestamp render,
                         Duration e2e, int qp = 30, double psnr = 38.0,
                         int64_t bytes = 0) {
  DecodedFrame f;
  f.stream_id = stream;
  f.frame_id = id;
  f.render_time = render;
  f.e2e_latency = e2e;
  f.qp = qp;
  f.psnr_db = psnr;
  f.size_bytes = bytes;
  f.capture_time = render - e2e;
  return f;
}

class MetricsTest : public testing::Test {
 protected:
  MetricsTest() : metrics_(&loop_, {.num_streams = 2}) {}

  EventLoop loop_;
  MetricsCollector metrics_;
};

TEST_F(MetricsTest, FpsFromDecodedFrames) {
  // 30 fps for 2 seconds on stream 0.
  for (int i = 0; i < 60; ++i) {
    metrics_.OnDecodedFrame(MakeDecoded(0, i, Timestamp::Millis(33 * i),
                                        Duration::Millis(100)));
  }
  loop_.RunUntil(Timestamp::Seconds(2.0));
  const StreamQoe q = metrics_.StreamResult(0, Duration::Seconds(2.0));
  EXPECT_NEAR(q.avg_fps, 30.0, 0.5);
  EXPECT_EQ(q.frames_decoded, 60);
  EXPECT_NEAR(q.e2e_mean_ms, 100.0, 0.1);
}

TEST_F(MetricsTest, FreezeDetection) {
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 0, Timestamp::Millis(0), Duration::Millis(80)));
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 1, Timestamp::Millis(33), Duration::Millis(80)));
  // 500 ms gap: one freeze of ~467 ms beyond the expected interval. Call
  // ends shortly after the last frame so only the mid-call freeze counts.
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 2, Timestamp::Millis(533), Duration::Millis(80)));
  const StreamQoe q = metrics_.StreamResult(0, Duration::Millis(600));
  EXPECT_EQ(q.freeze_count, 1);
  EXPECT_NEAR(q.freeze_total_ms, 467.0, 1.0);
}

TEST_F(MetricsTest, ShortGapIsNotAFreeze) {
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 0, Timestamp::Millis(0), Duration::Millis(80)));
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 1, Timestamp::Millis(150), Duration::Millis(80)));
  const StreamQoe q = metrics_.StreamResult(0, Duration::Millis(300));
  EXPECT_EQ(q.freeze_count, 0);
}

// Regression: a tail outage — the stream dies mid-call and never recovers —
// must count as frozen time. The old per-frame accounting only booked a
// freeze when the NEXT frame decoded, so a freeze in progress at call end
// vanished from freeze_total_ms entirely.
TEST_F(MetricsTest, FreezeInProgressAtCallEndIsCounted) {
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 0, Timestamp::Millis(0), Duration::Millis(80)));
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 1, Timestamp::Millis(33), Duration::Millis(80)));
  // Nothing more decodes; the call runs to 2 s. Tail = 1967 ms, freeze
  // booked = tail - expected interval (33 ms) = 1934 ms.
  const StreamQoe q = metrics_.StreamResult(0, Duration::Seconds(2.0));
  EXPECT_EQ(q.freeze_count, 1);
  EXPECT_NEAR(q.freeze_total_ms, 1934.0, 1.0);

  // The accounting is computed at report time and must not double-book:
  // asking again yields the same totals.
  const StreamQoe again = metrics_.StreamResult(0, Duration::Seconds(2.0));
  EXPECT_EQ(again.freeze_count, q.freeze_count);
  EXPECT_EQ(again.freeze_total_ms, q.freeze_total_ms);

  // A mid-call freeze and a tail freeze both count.
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 2, Timestamp::Millis(533), Duration::Millis(80)));
  const StreamQoe both = metrics_.StreamResult(0, Duration::Seconds(2.0));
  EXPECT_EQ(both.freeze_count, 2);
}

TEST_F(MetricsTest, GoodputCountsOnlyDecodedBytes) {
  // 250 KB of media arrived, but only 125 KB became rendered frames.
  metrics_.OnMediaBytesReceived(0, 250000);
  metrics_.OnDecodedFrame(MakeDecoded(0, 0, Timestamp::Millis(10),
                                      Duration::Millis(50), 30, 38.0,
                                      /*bytes=*/125000));
  const StreamQoe q = metrics_.StreamResult(0, Duration::Seconds(1.0));
  EXPECT_NEAR(q.tput_mbps, 1.0, 1e-9);      // decoded goodput
  EXPECT_NEAR(q.received_mbps, 2.0, 1e-9);  // raw arrivals
}

TEST_F(MetricsTest, StreamsAreIndependent) {
  metrics_.OnDecodedFrame(MakeDecoded(0, 0, Timestamp::Millis(0),
                                      Duration::Millis(50), 30, 38.0, 1000));
  metrics_.OnMediaBytesReceived(1, 250000);
  const StreamQoe q0 = metrics_.StreamResult(0, Duration::Seconds(1.0));
  const StreamQoe q1 = metrics_.StreamResult(1, Duration::Seconds(1.0));
  EXPECT_EQ(q0.frames_decoded, 1);
  EXPECT_EQ(q1.frames_decoded, 0);
  EXPECT_NEAR(q1.received_mbps, 2.0, 1e-9);
  EXPECT_GT(q0.tput_mbps, 0.0);
  EXPECT_NEAR(q1.tput_mbps, 0.0, 1e-9);
}

TEST_F(MetricsTest, TimeSeriesSampledPerSecond) {
  loop_.ScheduleAt(Timestamp::Millis(100), [this] {
    metrics_.OnMediaBytesReceived(0, 125000);
    metrics_.OnDecodedFrame(
        MakeDecoded(0, 0, Timestamp::Millis(100), Duration::Millis(60)));
  });
  loop_.RunUntil(Timestamp::Seconds(3.0));
  const auto& series = metrics_.time_series();
  ASSERT_GE(series.size(), 3u);
  EXPECT_NEAR(series[0].tput_mbps, 1.0, 1e-9);
  EXPECT_EQ(series[1].tput_mbps, 0.0);
  EXPECT_GT(series[0].fps, 0.0);
}

TEST_F(MetricsTest, GatheredDelaysEnterSeries) {
  loop_.ScheduleAt(Timestamp::Millis(200), [this] {
    metrics_.OnFrameGatheredDelays(Duration::Millis(12), Duration::Millis(40));
    metrics_.OnFrameGatheredDelays(Duration::Millis(18), Duration::Millis(20));
  });
  loop_.RunUntil(Timestamp::Seconds(1.5));
  ASSERT_FALSE(metrics_.time_series().empty());
  EXPECT_NEAR(metrics_.time_series()[0].fcd_ms, 15.0, 1e-9);
  EXPECT_NEAR(metrics_.time_series()[0].ifd_ms, 30.0, 1e-9);
}

TEST_F(MetricsTest, ReceiverCountersReported) {
  metrics_.SetReceiverCounters(0, 42, 3);
  const StreamQoe q = metrics_.StreamResult(0, Duration::Seconds(1.0));
  EXPECT_EQ(q.frame_drops, 42);
  EXPECT_EQ(q.keyframe_requests, 3);
}

TEST_F(MetricsTest, DisplayPsnrDecaysDuringFreeze) {
  metrics_.OnDecodedFrame(
      MakeDecoded(0, 0, Timestamp::Millis(0), Duration::Millis(50), 30, 40.0));
  // No further frames: display ticks degrade the stale image.
  loop_.RunUntil(Timestamp::Seconds(1.0));
  const SampleSet& psnr = metrics_.psnr_samples(0);
  ASSERT_GT(psnr.size(), 10u);
  EXPECT_LT(psnr.Quantile(0.1), 30.0);   // decayed samples
  EXPECT_NEAR(psnr.Quantile(1.0), 40.0, 0.5);  // the fresh sample
}

}  // namespace
}  // namespace converge
